//! `rat` — the RC Amenability Test command-line tool.
//!
//! ```text
//! rat analyze <worksheet.toml>             run the RAT worksheet
//! rat clocks <worksheet.toml> <MHz>...     analyze at several clocks
//! rat solve <worksheet.toml> <speedup>     inverse-solve for the target
//! rat sweep <worksheet.toml> <param> <v>.. sweep one parameter
//! rat sensitivity <worksheet.toml>         rank parameter elasticities
//! rat explore <worksheet.toml> <speedup>   throughput-gate a design space
//! rat microbench <platform>                derive alpha(size) tables
//! rat reproduce <artifact|all> [--fast]    regenerate paper tables/figures
//! rat bench [--json] [--quick] [--serve]   time hot paths vs their baselines
//! rat serve [--port N] [--workers N]       resident analysis daemon
//! rat example-worksheet                    print a starter worksheet
//! ```
//!
//! The analysis renderers live in `rat_serve::api` and are shared with the
//! `rat serve` daemon, so a server response body is byte-identical to this
//! CLI's stdout for the same request (see DESIGN.md §14).

use std::process::ExitCode;

use rat_core::engine::{Engine, EngineConfig};
use rat_core::params::RatInput;
use rat_core::quantity::Freq;
use rat_core::sweep::SweepParam;
use rat_core::telemetry;
use rat_core::worksheet::Worksheet;
use rat_core::RatError;

/// A CLI failure: a command-line usage problem, a worksheet I/O or parse
/// failure, or an error from the model pipeline — each class mapped to a
/// distinct process exit code so scripts can tell "you typed it wrong" from
/// "the design is infeasible" (see DESIGN.md §10):
///
/// | exit code | class |
/// |-----------|-------|
/// | 0 | success |
/// | 2 | usage error (unknown command, bad flag, missing argument) |
/// | 3 | invalid worksheet parameter, quantity, or TOML |
/// | 4 | infeasible solve (no parameter value reaches the target) |
/// | 5 | simulator failure |
/// | 6 | I/O failure (worksheet file or simulator cache) |
#[derive(Debug)]
enum CliError {
    /// The command line itself is wrong.
    Usage(String),
    /// A worksheet file could not be read.
    Io {
        /// Path as given on the command line.
        path: String,
        /// Underlying filesystem error, rendered via the source chain.
        source: std::io::Error,
    },
    /// A worksheet file is not valid TOML for a RAT input.
    Parse {
        /// Path as given on the command line.
        path: String,
        /// The deserializer's message (already names the offending field).
        message: String,
    },
    /// The model pipeline rejected the inputs or failed while running.
    Rat(RatError),
    /// A model-pipeline error with CLI-level context (what the CLI was doing
    /// when it failed). The underlying [`RatError`] stays on the source chain
    /// — and keeps determining the exit code — so `caused by:` rendering
    /// shows both layers.
    Context {
        /// What the CLI was attempting.
        context: String,
        /// The pipeline failure underneath.
        source: RatError,
    },
    /// The `RAT_SIM_CACHE` persistence path cannot be opened for writing.
    /// Surfaced up front (before any simulation) instead of silently losing
    /// cache writes at the end of the run.
    CacheEnv {
        /// The path `RAT_SIM_CACHE` named.
        path: String,
        /// Underlying filesystem error, rendered via the source chain.
        source: std::io::Error,
    },
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    /// The process exit code for this error class.
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Parse { .. } => 3,
            CliError::Rat(e) | CliError::Context { source: e, .. } => match e {
                RatError::InvalidParameter(_) | RatError::InvalidQuantity { .. } => 3,
                RatError::Infeasible(_) => 4,
                RatError::Simulation(_) => 5,
                RatError::CacheIo(_) => 6,
            },
            CliError::Io { .. } | CliError::CacheEnv { .. } => 6,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io { path, .. } => write!(f, "reading {path}"),
            CliError::Parse { path, message } => write!(f, "parsing {path}: {message}"),
            CliError::Rat(e) => write!(f, "{e}"),
            CliError::Context { context, .. } => write!(f, "{context}"),
            CliError::CacheEnv { path, .. } => {
                write!(f, "opening simulator cache (RAT_SIM_CACHE) at {path}")
            }
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } | CliError::CacheEnv { source, .. } => Some(source),
            CliError::Context { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<RatError> for CliError {
    fn from(e: RatError) -> Self {
        CliError::Rat(e)
    }
}

/// Map a shared-API mode error onto the CLI taxonomy: the context line (if
/// any) becomes the `error:` line and the [`RatError`] stays on the source
/// chain, exactly as [`CliError::Context`] renders it.
impl From<rat_serve::api::ModeError> for CliError {
    fn from(e: rat_serve::api::ModeError) -> Self {
        match e.context {
            Some(context) => CliError::Context {
                context,
                source: e.source,
            },
            None => CliError::Rat(e.source),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_global_flags(&args) {
        Ok(v) => v,
        Err(err) => {
            report_error(&err);
            return ExitCode::from(err.exit_code());
        }
    };
    if let Err(err) = preflight_cache_env() {
        report_error(&err);
        return ExitCode::from(err.exit_code());
    }
    if flags.no_cache {
        fpga_sim::SimCache::global().set_enabled(false);
    }
    let telemetry_on = flags.metrics || flags.profile.is_some();
    if telemetry_on {
        telemetry::global().enable();
    }
    let engine = Engine::new(flags.config);
    let result = {
        let command = flags
            .rest
            .first()
            .cloned()
            .unwrap_or_else(|| "help".to_string());
        let _run_span = telemetry::span_args(
            "rat.run",
            vec![("command", telemetry::ArgValue::Str(command))],
        );
        dispatch(&engine, &flags.rest)
    };
    let code = match result {
        Ok(output) => {
            println!("{output}");
            report_engine_stats(&engine);
            ExitCode::SUCCESS
        }
        Err(err) => {
            report_error(&err);
            ExitCode::from(err.exit_code())
        }
    };
    if telemetry_on {
        if let Err(err) = emit_telemetry(flags.metrics, flags.profile.as_deref()) {
            report_error(&err);
            // Preserve the dispatch failure's code if there was one;
            // otherwise the telemetry I/O failure becomes the exit code.
            if code == ExitCode::SUCCESS {
                flush_global_cache();
                return ExitCode::from(err.exit_code());
            }
        }
    }
    flush_global_cache();
    code
}

/// Write the global simulator cache's batched inserts to disk. The global
/// cache lives in a `OnceLock` and is never dropped, so the write-behind
/// persistence needs this explicit flush before the process exits.
fn flush_global_cache() {
    fpga_sim::SimCache::global().flush();
}

/// Render an error (and its full `caused by:` source chain) on stderr.
fn report_error(err: &CliError) {
    eprintln!("error: {err}");
    let mut source = std::error::Error::source(err);
    while let Some(cause) = source {
        eprintln!("  caused by: {cause}");
        source = cause.source();
    }
    if matches!(err, CliError::Usage(_)) {
        eprintln!("run `rat help` for usage");
    }
}

/// Fail fast if `RAT_SIM_CACHE` names a persistence path that cannot be
/// opened for appending: `SimCache::insert` deliberately ignores write
/// failures mid-run (losing cache persistence must never corrupt results),
/// so an unusable path is reported here, before any simulation runs.
fn preflight_cache_env() -> Result<(), CliError> {
    let Ok(path) = std::env::var("RAT_SIM_CACHE") else {
        return Ok(());
    };
    if path.is_empty() || path == "off" || path == "0" {
        return Ok(());
    }
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map(drop)
        .map_err(|source| CliError::CacheEnv { path, source })
}

/// Drain the global telemetry collector and emit what the flags asked for:
/// the tree summary on stderr (`--metrics`; stdout stays byte-identical to
/// an uninstrumented run) and/or the chrome-trace JSON file (`--profile`).
fn emit_telemetry(metrics: bool, profile: Option<&str>) -> Result<(), CliError> {
    // Bridge simulator-cache statistics into the typed metrics at drain
    // time: the cache keeps its own counters (it predates telemetry and is
    // also used without it), so they are copied rather than double-counted.
    let cache = fpga_sim::SimCache::global().stats();
    telemetry::add(telemetry::Metric::CacheHits, cache.hits);
    telemetry::add(telemetry::Metric::CacheMisses, cache.misses);
    telemetry::add(telemetry::Metric::ShardContention, cache.shard_contention);
    let profile_data = telemetry::global().drain();
    if metrics {
        eprint!("{}", profile_data.render_tree());
    }
    if let Some(path) = profile {
        std::fs::write(path, profile_data.to_chrome_json()).map_err(|source| CliError::Io {
            path: path.to_string(),
            source,
        })?;
    }
    Ok(())
}

/// Engine and cache counters go to stderr so stdout stays byte-identical
/// across `--jobs` settings (wall/cpu times vary run to run).
fn report_engine_stats(engine: &Engine) {
    let stats = engine.stats();
    if stats.jobs_run > 0 {
        eprintln!("{}", stats.render());
    }
    let cache = fpga_sim::SimCache::global().stats();
    if cache.hits + cache.misses > 0 {
        eprintln!(
            "sim cache: {} hit(s), {} miss(es) ({:.0}% hit rate)",
            cache.hits,
            cache.misses,
            cache.hit_rate() * 100.0
        );
    }
}

/// The global flags every command accepts, stripped from the argument list.
struct GlobalFlags {
    /// Engine configuration (`--jobs`).
    config: EngineConfig,
    /// Disable the memoized simulator cache (`--no-cache`).
    no_cache: bool,
    /// Print the telemetry tree summary on stderr (`--metrics`).
    metrics: bool,
    /// Write a chrome-trace JSON profile to this path (`--profile <path>`).
    profile: Option<String>,
    /// Remaining (command) arguments.
    rest: Vec<String>,
}

/// Strip the global `--jobs N` / `--jobs=N` / `--no-cache` / `--metrics` /
/// `--profile <path.json>` flags from the argument list, returning them plus
/// the remaining (command) arguments.
fn parse_global_flags(args: &[String]) -> Result<GlobalFlags, CliError> {
    let mut flags = GlobalFlags {
        config: EngineConfig::default(),
        no_cache: false,
        metrics: false,
        profile: None,
        rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            let n = it
                .next()
                .ok_or_else(|| CliError::usage("--jobs needs a thread count"))?;
            flags.config = flags.config.with_jobs(
                n.parse()
                    .map_err(|e| CliError::usage(format!("bad --jobs value '{n}': {e}")))?,
            );
        } else if let Some(n) = a.strip_prefix("--jobs=") {
            flags.config = flags.config.with_jobs(
                n.parse()
                    .map_err(|e| CliError::usage(format!("bad --jobs value '{n}': {e}")))?,
            );
        } else if a == "--no-cache" {
            flags.no_cache = true;
            flags.config = flags.config.with_cache(false);
        } else if a == "--metrics" {
            flags.metrics = true;
        } else if a == "--profile" {
            let p = it
                .next()
                .ok_or_else(|| CliError::usage("--profile needs an output path"))?;
            flags.profile = Some(p.clone());
        } else if let Some(p) = a.strip_prefix("--profile=") {
            if p.is_empty() {
                return Err(CliError::usage("--profile needs an output path"));
            }
            flags.profile = Some(p.to_string());
        } else {
            flags.rest.push(a.clone());
        }
    }
    Ok(flags)
}

/// Test-facing entry point: parse global flags, build the engine, dispatch.
/// Telemetry flags are parsed but not enabled here — the global collector is
/// process-wide, and in-process tests must not leak spans into each other;
/// the end-to-end flag behavior is covered by `tests/cli_binary.rs`.
#[cfg(test)]
fn run(args: &[String]) -> Result<String, CliError> {
    let flags = parse_global_flags(args)?;
    preflight_cache_env()?;
    if flags.no_cache {
        fpga_sim::SimCache::global().set_enabled(false);
    }
    dispatch(&Engine::new(flags.config), &flags.rest)
}

fn dispatch(engine: &Engine, args: &[String]) -> Result<String, CliError> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "help" | "--help" | "-h" => Ok(usage()),
        "analyze" => {
            let input = load_worksheet(args.get(1))?;
            let report = Worksheet::new(input).analyze()?;
            if args.iter().any(|a| a == "--markdown") {
                Ok(report.render_markdown())
            } else {
                Ok(report.render())
            }
        }
        "clocks" => {
            let input = load_worksheet(args.get(1))?;
            let clocks = parse_mhz_list(&args[2..])?;
            let reports = Worksheet::new(input).analyze_clocks(&clocks)?;
            let mut out = String::new();
            for r in reports {
                out.push_str(&r.render_performance());
                out.push('\n');
            }
            Ok(out)
        }
        "solve" => {
            let strict = args.iter().any(|a| a == "--strict");
            let pos: Vec<&String> = args[1..].iter().filter(|a| *a != "--strict").collect();
            let input = load_worksheet(pos.first().copied())?;
            let target: f64 = pos
                .get(1)
                .ok_or_else(|| CliError::usage("solve needs a target speedup"))?
                .parse()
                .map_err(|e| CliError::usage(format!("bad target speedup: {e}")))?;
            if strict {
                Ok(rat_serve::api::solve_report_strict(&input, target)?)
            } else {
                Ok(rat_serve::api::solve_report(&input, target))
            }
        }
        "sweep" => {
            let input = load_worksheet(args.get(1))?;
            let param = parse_param(args.get(2).map(String::as_str).unwrap_or(""))?;
            let values: Vec<f64> = args[3..]
                .iter()
                .map(|v| {
                    v.parse()
                        .map_err(|e| CliError::usage(format!("bad sweep value '{v}': {e}")))
                })
                .collect::<Result<_, _>>()?;
            if values.is_empty() {
                return Err(CliError::usage("sweep needs at least one value"));
            }
            Ok(rat_serve::api::sweep_report(
                engine, &input, param, &values,
            )?)
        }
        "sensitivity" => {
            let input = load_worksheet(args.get(1))?;
            Ok(rat_serve::api::sensitivity_report(engine, &input)?)
        }
        "explore" => {
            let input = load_worksheet(args.get(1))?;
            let min_speedup: f64 = args
                .get(2)
                .ok_or_else(|| CliError::usage("explore needs a minimum speedup"))?
                .parse()
                .map_err(|e| CliError::usage(format!("bad minimum speedup: {e}")))?;
            let mut fclocks = None;
            let mut throughput_procs = None;
            let mut bufferings = None;
            let mut it = args.iter().skip(3);
            while let Some(a) = it.next() {
                let mut take = |flag: &str| {
                    it.next()
                        .ok_or_else(|| CliError::usage(format!("{flag} needs a value list")))
                };
                match a.as_str() {
                    "--fclocks" => fclocks = Some(parse_f64_csv(take("--fclocks")?)?),
                    "--throughput-procs" => {
                        throughput_procs = Some(parse_f64_csv(take("--throughput-procs")?)?)
                    }
                    "--bufferings" => {
                        bufferings = Some(
                            take("--bufferings")?
                                .split(',')
                                .map(|b| {
                                    rat_serve::api::parse_buffering(b.trim())
                                        .map_err(CliError::usage)
                                })
                                .collect::<Result<Vec<_>, _>>()?,
                        )
                    }
                    other => {
                        return Err(CliError::usage(format!("unknown explore flag '{other}'")))
                    }
                }
            }
            Ok(rat_serve::api::explore_report(
                &input,
                min_speedup,
                fclocks,
                throughput_procs,
                bufferings,
            )?)
        }
        "optimize" => {
            let input = load_worksheet(args.get(1))?;
            let mut spec = rat_serve::api::OptimizeSpec::default();
            let mut it = args.iter().skip(2);
            while let Some(a) = it.next() {
                let mut take = |flag: &str| {
                    it.next()
                        .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
                };
                let parse_range = |flag: &str, text: &str| -> Result<(f64, f64), CliError> {
                    let v = parse_f64_csv(text)?;
                    if v.len() != 2 {
                        return Err(CliError::usage(format!(
                            "{flag} needs a lo,hi pair, got {} value(s)",
                            v.len()
                        )));
                    }
                    Ok((v[0], v[1]))
                };
                match a.as_str() {
                    "--seed" => {
                        spec.seed = Some(
                            take("--seed")?
                                .parse()
                                .map_err(|e| CliError::usage(format!("bad --seed value: {e}")))?,
                        )
                    }
                    "--generations" => {
                        spec.generations = Some(take("--generations")?.parse().map_err(|e| {
                            CliError::usage(format!("bad --generations value: {e}"))
                        })?)
                    }
                    "--population" => {
                        spec.population =
                            Some(take("--population")?.parse().map_err(|e| {
                                CliError::usage(format!("bad --population value: {e}"))
                            })?)
                    }
                    "--fclock-range" => {
                        spec.fclock_range =
                            Some(parse_range("--fclock-range", take("--fclock-range")?)?)
                    }
                    "--throughput-range" => {
                        spec.throughput_range = Some(parse_range(
                            "--throughput-range",
                            take("--throughput-range")?,
                        )?)
                    }
                    "--bufferings" => {
                        spec.bufferings = Some(
                            take("--bufferings")?
                                .split(',')
                                .map(|b| {
                                    rat_serve::api::parse_buffering(b.trim())
                                        .map_err(CliError::usage)
                                })
                                .collect::<Result<Vec<_>, _>>()?,
                        )
                    }
                    "--devices" => {
                        spec.devices = Some(
                            take("--devices")?
                                .split(',')
                                .map(|d| d.trim().to_string())
                                .collect(),
                        )
                    }
                    "--precision-bits" => {
                        spec.precision_bits = Some(
                            take("--precision-bits")?
                                .split(',')
                                .map(|b| {
                                    b.trim().parse().map_err(|e| {
                                        CliError::usage(format!(
                                            "bad --precision-bits value '{b}': {e}"
                                        ))
                                    })
                                })
                                .collect::<Result<Vec<u32>, _>>()?,
                        )
                    }
                    other => {
                        return Err(CliError::usage(format!("unknown optimize flag '{other}'")))
                    }
                }
            }
            Ok(
                rat_serve::api::optimize_report(engine, &input, &spec).map_err(|e| {
                    rat_serve::api::ModeError::with_context(
                        format!("running optimize for worksheet '{}'", input.name),
                        e,
                    )
                })?,
            )
        }
        "multi-fpga" => {
            let input = load_worksheet(args.get(1))?;
            let max: u32 = args
                .get(2)
                .map(|v| {
                    v.parse()
                        .map_err(|e| CliError::usage(format!("bad device count: {e}")))
                })
                .transpose()?
                .unwrap_or(16);
            let curve = rat_core::multifpga::scaling_curve_with(engine, &input, max)?;
            let sat = rat_core::multifpga::saturating_devices(&input)?;
            Ok(format!(
                "{}channel saturates the scaling at {sat} device(s)\n",
                curve.render()
            ))
        }
        "streaming" => {
            let input = load_worksheet(args.get(1))?;
            let duplex = match args.get(2).map(String::as_str) {
                None | Some("half") => rat_core::streaming::ChannelDuplex::Half,
                Some("full") => rat_core::streaming::ChannelDuplex::Full,
                Some(other) => {
                    return Err(CliError::usage(format!(
                        "unknown duplex '{other}' (half|full)"
                    )))
                }
            };
            let s = rat_core::streaming::analyze(&input, duplex)?;
            Ok(s.render())
        }
        "uncertainty" => {
            let input = load_worksheet(args.get(1))?;
            // Ranges as triples: <param> <lo> <hi> ...
            let mut ranges = Vec::new();
            let mut rest = &args[2..];
            while rest.len() >= 3 {
                let param = parse_param(&rest[0])?;
                let lo: f64 = rest[1]
                    .parse()
                    .map_err(|e| CliError::usage(format!("bad range low '{}': {e}", rest[1])))?;
                let hi: f64 = rest[2]
                    .parse()
                    .map_err(|e| CliError::usage(format!("bad range high '{}': {e}", rest[2])))?;
                ranges.push(rat_core::uncertainty::ParamRange::new(param, lo, hi));
                rest = &rest[3..];
            }
            if ranges.is_empty() {
                return Err(CliError::usage(
                    "uncertainty needs at least one <param> <lo> <hi> triple",
                ));
            }
            Ok(rat_serve::api::uncertainty_report(
                engine,
                &input,
                &ranges,
                rat_serve::api::DEFAULT_MC_SAMPLES,
                engine.config().root_seed,
            )?)
        }
        "microbench" => {
            let spec = parse_platform(args.get(1).map(String::as_str).unwrap_or(""))?;
            let table = fpga_sim::microbench::alpha_table(
                &spec.interconnect,
                &fpga_sim::microbench::standard_sizes(),
            );
            Ok(format!(
                "alpha(size) for {}:\n{}",
                spec.name,
                fpga_sim::microbench::render_alpha_table(&table)
            ))
        }
        "reproduce" => {
            let what = args.get(1).map(String::as_str).unwrap_or("all");
            let fast = args.iter().any(|a| a == "--fast");
            if what == "all" || what == "--fast" {
                let mut out = String::new();
                for a in rat_bench::all_artifacts_with(engine, fast) {
                    out.push_str(&format!("==== {} — {} ====\n{}\n", a.id, a.title, a.body));
                }
                Ok(out)
            } else {
                rat_bench::artifact(what, fast)
                    .map(|a| format!("==== {} — {} ====\n{}", a.id, a.title, a.body))
                    .ok_or_else(|| {
                        CliError::usage(format!(
                            "unknown artifact '{what}' (table1..table10, figure1..figure3)"
                        ))
                    })
            }
        }
        "trace" => {
            let app = args.get(1).map(String::as_str);
            // Optional `--mhz <v>` overrides the case study's tuned clock; the
            // override is user input, so simulator rejections (e.g. a zero or
            // negative clock) surface as exit-code-5 errors with context
            // rather than panics.
            let mut mhz_override = None;
            let mut it = args.iter().skip(2);
            while let Some(a) = it.next() {
                if a == "--mhz" {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::usage("--mhz needs a frequency in MHz"))?;
                    mhz_override = Some(
                        v.parse::<f64>()
                            .map_err(|e| CliError::usage(format!("bad --mhz value '{v}': {e}")))?,
                    );
                }
            }
            let (name, default_hz, t_soft) = match app {
                Some("pdf1d") => ("pdf1d", 150.0e6, rat_apps::pdf::pdf1d::T_SOFT),
                Some("pdf2d") => ("pdf2d", 150.0e6, rat_apps::pdf::pdf2d::T_SOFT),
                Some("md") => ("md", 100.0e6, rat_apps::md::rat::T_SOFT),
                Some("sort") => ("sort", 150.0e6, rat_apps::sort::rat::T_SOFT),
                other => {
                    return Err(CliError::usage(format!(
                        "trace needs a case study (pdf1d|pdf2d|md|sort), got {other:?}"
                    )))
                }
            };
            let fclk = mhz_override.map_or(default_hz, |mhz| mhz * 1.0e6);
            let measurement = match name {
                "pdf1d" => rat_apps::pdf::pdf1d::design().try_simulate(fclk),
                "pdf2d" => rat_apps::pdf::pdf2d::design().try_simulate(fclk),
                "md" => rat_apps::md::hw::MdDesign::paper_scale_analytic().try_simulate(fclk),
                _ => rat_apps::sort::rat::design().try_simulate(fclk),
            }
            .map_err(|e| CliError::Context {
                context: format!("simulating {name} at {:.1} MHz", fclk / 1.0e6),
                source: e.into(),
            })?;
            let csv = args.iter().any(|a| a == "--csv");
            if csv {
                Ok(measurement.trace.to_csv())
            } else {
                Ok(format!(
                    "{}\nsimulated at {:.0} MHz; speedup {:.1}x\n\nfirst-iterations Gantt:\n{}",
                    measurement.render(),
                    fclk / 1e6,
                    t_soft / measurement.total.as_secs_f64(),
                    measurement.trace.render_gantt(100)
                ))
            }
        }
        "devices" => {
            let mut out = String::from("Device catalog:\n");
            for d in rat_core::resources::device::all_devices() {
                out.push_str(&format!(
                    "  {:<28} {:>4} {}  {:>4} BRAMs  {:>7} {}\n",
                    d.name,
                    d.dsp_blocks,
                    d.dsp_name,
                    d.bram_blocks,
                    d.logic_cells,
                    d.logic_kind.name()
                ));
            }
            Ok(out)
        }
        "compare" => {
            let designs = args[1..]
                .iter()
                .map(|p| load_worksheet(Some(p)))
                .collect::<Result<Vec<_>, _>>()?;
            let cmp = rat_core::comparison::DesignComparison::compare(&designs)?;
            Ok(cmp.render())
        }
        "breakeven" => {
            let input = load_worksheet(args.get(1))?;
            let dev_hours: f64 = args
                .get(2)
                .ok_or_else(|| CliError::usage("breakeven needs <dev-hours> <runs-per-day>"))?
                .parse()
                .map_err(|e| CliError::usage(format!("bad dev-hours: {e}")))?;
            let runs_per_day: f64 = args
                .get(3)
                .ok_or_else(|| CliError::usage("breakeven needs <dev-hours> <runs-per-day>"))?
                .parse()
                .map_err(|e| CliError::usage(format!("bad runs-per-day: {e}")))?;
            let cost = rat_core::breakeven::MigrationCost {
                development_hours: dev_hours,
                runs_per_day,
            };
            let be = rat_core::breakeven::BreakEven::analyze(&input, &cost)?;
            Ok(be.render())
        }
        "bench" => {
            let json = args.iter().any(|a| a == "--json");
            let quick = args.iter().any(|a| a == "--quick");
            let serve = args.iter().any(|a| a == "--serve");
            for a in &args[1..] {
                if a != "--json" && a != "--quick" && a != "--serve" {
                    return Err(CliError::usage(format!("unknown bench flag '{a}'")));
                }
            }
            let mut report = rat_bench::hotbench::run(quick);
            if serve {
                // The cold-CLI comparison spawns this very binary.
                let rat = std::env::current_exe().map_err(|source| CliError::Io {
                    path: "<current executable>".into(),
                    source,
                })?;
                let load = rat_serve::loadgen::run(&rat, quick).map_err(|source| CliError::Io {
                    path: "serve load generator".into(),
                    source,
                })?;
                report.serve = Some(rat_bench::hotbench::ServeBench {
                    requests: load.requests,
                    rps: load.rps,
                    close_requests: load.close_requests,
                    close_rps: load.close_rps,
                    keepalive_vs_close_rps: load.keepalive_vs_close_rps,
                    reuse_ratio: load.reuse_ratio,
                    connect_p50_us: load.connect_p50_us,
                    p50_us: load.p50_us,
                    p99_us: load.p99_us,
                    p999_us: load.p999_us,
                    warm_uncached_p50_us: load.warm_uncached_p50_us,
                    warm_cached_p50_us: load.warm_cached_p50_us,
                    warm_cached_speedup: load.warm_cached_speedup,
                    warm_solve_p50_us: load.warm_solve_p50_us,
                    cold_cli_solve_p50_us: load.cold_cli_solve_p50_us,
                    warm_vs_cold: load.warm_vs_cold,
                });
            }
            if json {
                Ok(report.to_json())
            } else {
                Ok(report.render())
            }
        }
        "serve" => {
            let mut config = rat_serve::ServeConfig {
                workers: 0,
                engine_jobs: engine.config().jobs,
                ..rat_serve::ServeConfig::default()
            };
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                let mut take = |flag: &str| {
                    it.next()
                        .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
                };
                match a.as_str() {
                    "--port" => {
                        let v = take("--port")?;
                        config.port = v
                            .parse()
                            .map_err(|e| CliError::usage(format!("bad --port value '{v}': {e}")))?;
                    }
                    "--addr" => config.addr = take("--addr")?.clone(),
                    "--workers" => {
                        let v = take("--workers")?;
                        config.workers = v.parse().map_err(|e| {
                            CliError::usage(format!("bad --workers value '{v}': {e}"))
                        })?;
                    }
                    "--queue" => {
                        let v = take("--queue")?;
                        let cap: usize = v.parse().map_err(|e| {
                            CliError::usage(format!("bad --queue value '{v}': {e}"))
                        })?;
                        if cap == 0 {
                            return Err(CliError::usage("--queue needs a capacity of at least 1"));
                        }
                        config.queue_capacity = cap;
                    }
                    "--no-response-cache" => config.response_cache_bytes = 0,
                    other => return Err(CliError::usage(format!("unknown serve flag '{other}'"))),
                }
            }
            let workers = config.workers;
            let handle = rat_serve::Server::start(config).map_err(|source| CliError::Io {
                path: "binding serve listener".into(),
                source,
            })?;
            rat_serve::server::install_signal_shutdown(handle.stop_trigger());
            // The readiness line goes to stderr immediately (stdout carries
            // only the final summary, printed after the drain completes).
            eprintln!(
                "rat serve: listening on http://{} ({} worker(s); POST /shutdown or SIGINT to drain)",
                handle.addr(),
                if workers == 0 {
                    std::thread::available_parallelism().map_or(2, |n| n.get())
                } else {
                    workers
                }
            );
            let summary = handle.join();
            Ok(format!(
                "serve: drained cleanly after {} accepted connection(s) \
                 ({} ok, {} errored, {} rejected busy)\n",
                summary.accepted, summary.ok, summary.errored, summary.rejected_busy
            ))
        }
        "watch" => {
            let mut path: Option<&String> = None;
            let mut poll_ms: u64 = 250;
            let mut max_renders: u64 = 0;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--poll-ms" => {
                        poll_ms = it
                            .next()
                            .ok_or_else(|| CliError::usage("--poll-ms needs a value"))?
                            .parse()
                            .map_err(|e| CliError::usage(format!("bad --poll-ms value: {e}")))?;
                    }
                    "--max-renders" => {
                        max_renders = it
                            .next()
                            .ok_or_else(|| CliError::usage("--max-renders needs a value"))?
                            .parse()
                            .map_err(|e| {
                                CliError::usage(format!("bad --max-renders value: {e}"))
                            })?;
                    }
                    other if other.starts_with("--") => {
                        return Err(CliError::usage(format!("unknown watch flag '{other}'")));
                    }
                    _ => {
                        if path.replace(a).is_some() {
                            return Err(CliError::usage("watch takes exactly one worksheet"));
                        }
                    }
                }
            }
            watch(path, poll_ms, max_renders)
        }
        "example-worksheet" => Ok(example_worksheet()),
        other => Err(CliError::usage(format!("unknown command '{other}'"))),
    }
}

/// `rat watch`: poll the worksheet file and re-run the analysis whenever its
/// contents change. Renders go through the staged solve path, so only the
/// stages whose inputs actually changed recompute; the per-render stderr line
/// reports each stage's hit/miss so the skipping is visible.
///
/// The first render happens immediately and its errors are fatal (a watch on
/// an unreadable or invalid worksheet is a mistake worth stopping for).
/// Later renders report errors on stderr and keep watching — a half-saved
/// edit shouldn't kill the session. With `--max-renders N` (N > 0) the final
/// render is returned as the command output; otherwise the loop runs until
/// interrupted and every render is printed as it happens.
fn watch(path: Option<&String>, poll_ms: u64, max_renders: u64) -> Result<String, CliError> {
    let path = path.ok_or_else(|| CliError::usage("missing worksheet path"))?;
    let mut digest = watch_digest(path)?;
    let first = watch_render(path, 1)?;
    let mut renders: u64 = 1;
    if max_renders == 1 {
        return Ok(first);
    }
    println!("{first}");
    loop {
        std::thread::sleep(std::time::Duration::from_millis(poll_ms));
        let next = match watch_digest(path) {
            Ok(d) => d,
            Err(err) => {
                report_error(&err);
                continue;
            }
        };
        if next == digest {
            continue;
        }
        digest = next;
        match watch_render(path, renders + 1) {
            Ok(out) => {
                renders += 1;
                if max_renders != 0 && renders >= max_renders {
                    return Ok(out);
                }
                println!("{out}");
            }
            Err(err) => report_error(&err),
        }
    }
}

/// FNV-1a digest of the worksheet's bytes. Content-keyed rather than
/// mtime-keyed: editors that rewrite identical bytes don't trigger renders,
/// and rapid successive writes within one mtime granule still do.
fn watch_digest(path: &String) -> Result<u64, CliError> {
    let bytes = std::fs::read(path).map_err(|e| CliError::Io {
        path: path.clone(),
        source: e,
    })?;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    Ok(hash)
}

/// One watch render: re-parse the worksheet, run the staged analysis, and
/// report per-stage cache hit/miss on stderr from the session-counter delta.
/// A stage counts as "hit" only if it recorded no misses this render.
fn watch_render(path: &String, k: u64) -> Result<String, CliError> {
    use rat_core::solve::stages::{self, Stage};
    let before = stages::session_counters();
    let input = load_worksheet(Some(path))?;
    let report = Worksheet::new(input).analyze()?;
    let delta = stages::session_counters().since(&before);
    let mut status = format!("watch[{k}]: stages");
    for stage in [Stage::Comm, Stage::Comp, Stage::Overlap, Stage::Speedup] {
        let verdict = if delta.misses_for(stage) == 0 && delta.hits_for(stage) > 0 {
            "hit"
        } else {
            "miss"
        };
        status.push_str(&format!(" {}={verdict}", stage.name()));
    }
    status.push_str(&format!(
        " (hits {}, misses {})",
        delta.total_hits(),
        delta.total_misses()
    ));
    eprintln!("{status}");
    Ok(report.render())
}

fn usage() -> String {
    "rat — RC Amenability Test (Holland et al., HPRCTA'07)

USAGE:
  rat analyze <worksheet.toml> [--markdown] run the RAT worksheet, print the report
  rat watch <worksheet.toml> [--poll-ms N] [--max-renders N]
                                            re-render on worksheet change; the
                                            stage cache recomputes only dirtied
                                            stages (hit/miss shown on stderr)
  rat clocks <worksheet.toml> <MHz>...      analyze the design at several clocks
  rat solve <worksheet.toml> <speedup> [--strict]
                                            required throughput_proc / fclock / alpha
                                            (--strict: infeasible targets exit 4)
  rat sweep <worksheet.toml> <param> <v>... sweep one parameter
                                            (fclock|alpha-write|alpha-read|alpha|
                                             throughput-proc|ops-per-element|
                                             elements-in|iterations)
  rat sensitivity <worksheet.toml>          rank speedup elasticity per parameter
  rat explore <ws.toml> <min-speedup> [--fclocks v,v..] [--throughput-procs v,v..]
              [--bufferings single,double]  throughput-gate a design space around
                                            the worksheet (defaults: base values,
                                            both buffering disciplines)
  rat optimize <ws.toml> [--seed N] [--generations N] [--population N]
               [--fclock-range lo,hi] [--throughput-range lo,hi]
               [--bufferings single,double] [--devices lx100,sx55]
               [--precision-bits 18,32]     guided search over the design space:
                                            seeded population search on the batch
                                            kernels, Pareto front of speedup vs
                                            utilization vs resources (same seed →
                                            byte-identical front at every --jobs)
  rat multi-fpga <worksheet.toml> [max]     scaling curve across devices (default 16)
  rat streaming <worksheet.toml> [half|full] streaming-mode throughput analysis
  rat uncertainty <ws.toml> <p> <lo> <hi>.. Monte-Carlo speedup distribution
  rat microbench <nallatech|xd1000|pcie>    derive alpha(size) like the paper's Sec 4.2
  rat trace <pdf1d|pdf2d|md|sort> [--csv] [--mhz V]
                                            simulate a case study, dump trace/Gantt
  rat devices                               list the FPGA device catalog
  rat compare <ws1.toml> <ws2.toml>...      rank candidate designs
  rat breakeven <ws.toml> <hours> <runs/day> development-vs-savings break-even
  rat reproduce <id|all> [--fast]           regenerate paper tables/figures
  rat bench [--json] [--quick] [--serve]    time the hot paths against their
                                            unoptimized baselines (--serve adds
                                            resident-server load generation)
  rat serve [--addr A] [--port N] [--workers N] [--queue N] [--no-response-cache]
                                            resident analysis daemon: HTTP/1.1+JSON
                                            (keep-alive) on POST /v1/{solve,sweep,
                                            uncertainty,explore,optimize,
                                            sensitivity,simulate}, plus
                                            GET /healthz, GET /metrics, and
                                            POST /shutdown (graceful drain)
  rat example-worksheet                     print a starter worksheet (Table 2)

GLOBAL OPTIONS (any command):
  --jobs N     run analysis jobs on N threads (0 = auto; results are
               bit-identical at every thread count)
  --no-cache   disable the memoized simulator-run cache
  --metrics    print a wall-clock span tree + typed counters on stderr
  --profile P  write a Chrome trace_event JSON profile to P
               (load in chrome://tracing or https://ui.perfetto.dev)

Engine and cache counters are reported on stderr; stdout carries only the
analysis output and is byte-identical across --jobs settings and with or
without --metrics/--profile.
"
    .to_string()
}

fn load_worksheet(path: Option<&String>) -> Result<RatInput, CliError> {
    let path = path.ok_or_else(|| CliError::usage("missing worksheet path"))?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io {
        path: path.clone(),
        source: e,
    })?;
    let input: RatInput = toml::from_str(&text).map_err(|e| CliError::Parse {
        path: path.clone(),
        message: e.to_string(),
    })?;
    input.validate()?;
    Ok(input)
}

fn parse_mhz_list(args: &[String]) -> Result<Vec<Freq>, CliError> {
    if args.is_empty() {
        return Err(CliError::usage(
            "clocks needs at least one frequency in MHz",
        ));
    }
    args.iter()
        .map(|a| {
            a.parse::<f64>()
                .map(Freq::from_mhz)
                .map_err(|e| CliError::usage(format!("bad frequency '{a}': {e}")))
        })
        .collect()
}

/// A comma-separated list of numbers (`100e6,150e6`), for explore's axes.
fn parse_f64_csv(text: &str) -> Result<Vec<f64>, CliError> {
    text.split(',')
        .map(|v| {
            v.trim()
                .parse()
                .map_err(|e| CliError::usage(format!("bad value '{v}': {e}")))
        })
        .collect()
}

/// Parameter names are owned by the shared API layer so the CLI and the
/// server accept (and reject) exactly the same spellings.
fn parse_param(name: &str) -> Result<SweepParam, CliError> {
    rat_serve::api::parse_param(name).map_err(CliError::usage)
}

fn parse_platform(name: &str) -> Result<fpga_sim::platform::PlatformSpec, CliError> {
    match name {
        "nallatech" => Ok(fpga_sim::catalog::nallatech_h101()),
        "xd1000" => Ok(fpga_sim::catalog::xd1000()),
        "pcie" => Ok(fpga_sim::catalog::generic_pcie_gen2_x8()),
        other => Err(CliError::usage(format!(
            "unknown platform '{other}' (nallatech|xd1000|pcie)"
        ))),
    }
}

fn example_worksheet() -> String {
    let input = rat_apps::pdf::pdf1d::rat_input(150.0e6);
    format!(
        "# RAT worksheet (the paper's Table 2: 1-D PDF estimation)\n{}",
        toml::to_string(&input).expect("serializable")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_runs_without_args() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&["help".into()]).unwrap().contains("reproduce"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["frobnicate".into()]).is_err());
    }

    #[test]
    fn example_worksheet_round_trips() {
        let text = example_worksheet();
        let parsed: RatInput = toml::from_str(&text).unwrap();
        assert_eq!(parsed.dataset.elements_in, 512);
    }

    #[test]
    fn analyze_from_a_temp_file() {
        let dir = std::env::temp_dir().join("rat-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ws.toml");
        std::fs::write(&path, example_worksheet()).unwrap();
        let out = run(&["analyze".into(), path.to_string_lossy().into_owned()]).unwrap();
        assert!(out.contains("speedup"), "{out}");
        assert!(out.contains("10.6"), "{out}");
        let md = run(&[
            "analyze".into(),
            path.to_string_lossy().into_owned(),
            "--markdown".into(),
        ])
        .unwrap();
        assert!(md.starts_with("## RAT analysis"), "{md}");
    }

    #[test]
    fn solve_prints_all_four_answers() {
        let dir = std::env::temp_dir().join("rat-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ws2.toml");
        std::fs::write(&path, example_worksheet()).unwrap();
        let out = run(&[
            "solve".into(),
            path.to_string_lossy().into_owned(),
            "8".into(),
        ])
        .unwrap();
        assert!(out.contains("throughput_proc"));
        assert!(out.contains("f_clock"));
        assert!(out.contains("ceiling"));
    }

    #[test]
    fn microbench_platforms_parse() {
        for p in ["nallatech", "xd1000", "pcie"] {
            let out = run(&["microbench".into(), p.into()]).unwrap();
            assert!(out.contains("alpha_write"), "{p}");
        }
        assert!(run(&["microbench".into(), "cray".into()]).is_err());
    }

    #[test]
    fn reproduce_single_artifact() {
        let out = run(&["reproduce".into(), "table2".into(), "--fast".into()]).unwrap();
        assert!(out.contains("Table 2"));
        assert!(run(&["reproduce".into(), "table42".into()]).is_err());
    }

    #[test]
    fn exit_codes_distinguish_error_classes() {
        assert_eq!(CliError::usage("x").exit_code(), 2);
        assert_eq!(
            CliError::from(RatError::quantity("comp.fclock", "must be positive")).exit_code(),
            3
        );
        assert_eq!(
            CliError::from(RatError::Infeasible("wall".into())).exit_code(),
            4
        );
        assert_eq!(
            CliError::from(RatError::simulation("diverged")).exit_code(),
            5
        );
        let io = CliError::Io {
            path: "ws.toml".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert_eq!(io.exit_code(), 6);
        // The I/O class carries its cause on the source chain.
        assert!(std::error::Error::source(&io).is_some());
    }

    #[test]
    fn malformed_worksheet_names_the_field() {
        let dir = std::env::temp_dir().join("rat-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.toml");
        std::fs::write(&path, example_worksheet().replace("150000000.0", "-1.0")).unwrap();
        let err = run(&["analyze".into(), path.to_string_lossy().into_owned()]).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        assert!(err.to_string().contains("fclock"), "{err}");
    }

    #[test]
    fn param_names_parse() {
        assert!(parse_param("fclock").is_ok());
        assert!(parse_param("alpha").is_ok());
        assert!(parse_param("warp-factor").is_err());
    }

    #[test]
    fn mhz_list_scales_to_hz() {
        let v = parse_mhz_list(&["75".into(), "150".into()]).unwrap();
        assert_eq!(v, vec![Freq::from_mhz(75.0), Freq::from_mhz(150.0)]);
        assert!(parse_mhz_list(&[]).is_err());
    }

    #[test]
    fn trace_command_renders_and_exports() {
        let out = run(&["trace".into(), "sort".into()]).unwrap();
        assert!(out.contains("Gantt"), "{out}");
        assert!(out.contains("speedup"), "{out}");
        let csv = run(&["trace".into(), "sort".into(), "--csv".into()]).unwrap();
        assert!(csv.starts_with("resource,label,start_ps"));
        assert!(run(&["trace".into(), "unknown-app".into()]).is_err());
        assert!(run(&["trace".into()]).is_err());
    }

    #[test]
    fn devices_compare_breakeven_via_cli() {
        let out = run(&["devices".into()]).unwrap();
        assert!(out.contains("LX100"));
        assert!(out.contains("EP2S180"));

        let dir = std::env::temp_dir().join("rat-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("cmp-a.toml");
        let b = dir.join("cmp-b.toml");
        std::fs::write(&a, example_worksheet()).unwrap();
        std::fs::write(&b, example_worksheet().replace("150000000", "75000000")).unwrap();
        let out = run(&[
            "compare".into(),
            a.to_string_lossy().into_owned(),
            b.to_string_lossy().into_owned(),
        ])
        .unwrap();
        assert!(out.contains("spread"), "{out}");

        let out = run(&[
            "breakeven".into(),
            a.to_string_lossy().into_owned(),
            "500".into(),
            "1000".into(),
        ])
        .unwrap();
        assert!(out.contains("days to break even"), "{out}");
        assert!(run(&["breakeven".into(), a.to_string_lossy().into_owned()]).is_err());
    }

    #[test]
    fn multifpga_streaming_uncertainty_via_cli() {
        let dir = std::env::temp_dir().join("rat-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ws4.toml");
        std::fs::write(&path, example_worksheet()).unwrap();
        let ws = path.to_string_lossy().into_owned();

        let out = run(&["multi-fpga".into(), ws.clone(), "8".into()]).unwrap();
        assert!(out.contains("Devices"), "{out}");
        assert!(out.contains("saturates"), "{out}");

        let out = run(&["streaming".into(), ws.clone()]).unwrap();
        assert!(out.contains("sustained rate"), "{out}");
        assert!(run(&["streaming".into(), ws.clone(), "quantum".into()]).is_err());

        let out = run(&[
            "uncertainty".into(),
            ws.clone(),
            "fclock".into(),
            "75e6".into(),
            "150e6".into(),
        ])
        .unwrap();
        assert!(out.contains("median"), "{out}");
        assert!(run(&["uncertainty".into(), ws]).is_err());
    }

    #[test]
    fn jobs_flag_is_stripped_and_output_identical() {
        let dir = std::env::temp_dir().join("rat-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ws5.toml");
        std::fs::write(&path, example_worksheet()).unwrap();
        let ws = path.to_string_lossy().into_owned();

        let seq = run(&[
            "--jobs".into(),
            "1".into(),
            "uncertainty".into(),
            ws.clone(),
            "fclock".into(),
            "75e6".into(),
            "150e6".into(),
        ])
        .unwrap();
        let par = run(&[
            "uncertainty".into(),
            ws.clone(),
            "--jobs=8".into(),
            "fclock".into(),
            "75e6".into(),
            "150e6".into(),
        ])
        .unwrap();
        assert_eq!(seq, par, "--jobs must not change stdout");

        let seq = run(&[
            "--jobs".into(),
            "1".into(),
            "sweep".into(),
            ws.clone(),
            "fclock".into(),
            "75e6".into(),
            "150e6".into(),
        ])
        .unwrap();
        let par = run(&[
            "--jobs".into(),
            "4".into(),
            "sweep".into(),
            ws,
            "fclock".into(),
            "75e6".into(),
            "150e6".into(),
        ])
        .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn batched_stdout_is_byte_identical_to_the_golden_fixture() {
        // The checked-in fixtures are the pre-batching scalar pipeline's
        // stdout (plus the trailing newline `main` prints). The batched
        // kernels must reproduce them byte-for-byte at every thread count —
        // this is the acceptance gate for the SoA rewrite.
        let dir = std::env::temp_dir().join("rat-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ws6.toml");
        std::fs::write(&path, example_worksheet()).unwrap();
        let ws = path.to_string_lossy().into_owned();

        for jobs in ["1", "2", "8"] {
            let out = run(&[
                format!("--jobs={jobs}"),
                "uncertainty".into(),
                ws.clone(),
                "fclock".into(),
                "75e6".into(),
                "150e6".into(),
            ])
            .unwrap();
            assert_eq!(
                format!("{out}\n"),
                include_str!("../testdata/golden_uncertainty.txt"),
                "uncertainty stdout drifted at --jobs={jobs}"
            );

            let out = run(&[
                format!("--jobs={jobs}"),
                "sweep".into(),
                ws.clone(),
                "fclock".into(),
                "75e6".into(),
                "100e6".into(),
                "125e6".into(),
                "150e6".into(),
            ])
            .unwrap();
            assert_eq!(
                format!("{out}\n"),
                include_str!("../testdata/golden_sweep.txt"),
                "sweep stdout drifted at --jobs={jobs}"
            );
        }
    }

    #[test]
    fn jobs_flag_rejects_garbage() {
        assert!(run(&["--jobs".into()]).is_err());
        assert!(run(&["--jobs".into(), "many".into(), "help".into()]).is_err());
        assert!(run(&["--jobs=lots".into(), "help".into()]).is_err());
    }

    #[test]
    fn no_cache_flag_is_stripped() {
        // --no-cache disables the global cache; re-enable afterwards so other
        // tests in this process still exercise the memoized path.
        let out = run(&[
            "--no-cache".into(),
            "reproduce".into(),
            "table2".into(),
            "--fast".into(),
        ]);
        fpga_sim::SimCache::global().set_enabled(true);
        assert!(out.unwrap().contains("Table 2"));
    }

    #[test]
    fn bench_emits_scenarios_and_json() {
        let json = run(&["bench".into(), "--json".into(), "--quick".into()]).unwrap();
        assert!(json.contains("\"scenarios\""), "{json}");
        assert!(json.contains("\"execute_summary_fast_forward\""), "{json}");
        assert!(json.contains("\"speedup\""), "{json}");
        let text = run(&["bench".into(), "--quick".into()]).unwrap();
        assert!(text.contains("Hot-path benchmarks"), "{text}");
        assert!(run(&["bench".into(), "--loud".into()]).is_err());
    }

    #[test]
    fn sweep_via_cli() {
        let dir = std::env::temp_dir().join("rat-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ws3.toml");
        std::fs::write(&path, example_worksheet()).unwrap();
        let out = run(&[
            "sweep".into(),
            path.to_string_lossy().into_owned(),
            "fclock".into(),
            "75e6".into(),
            "150e6".into(),
        ])
        .unwrap();
        assert!(out.contains("Sweep of f_clock"));
    }

    /// Build an argv for `run` from string literals.
    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn optimize_via_cli_is_seed_deterministic() {
        let dir = std::env::temp_dir().join("rat-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ws-opt.toml");
        std::fs::write(&path, example_worksheet()).unwrap();
        let ws = path.to_string_lossy().into_owned();
        let args = argv(&[
            "optimize",
            &ws,
            "--seed",
            "7",
            "--generations",
            "4",
            "--population",
            "48",
        ]);
        let a = run(&args).unwrap();
        let b = run(&args).unwrap();
        assert_eq!(a, b, "same seed must render the same front");
        assert!(a.contains("Guided design-space search (seed 7"), "{a}");
        assert!(a.contains("best speedup:"), "{a}");
    }

    /// The robustness contract for `rat optimize` inputs: degenerate
    /// ranges are exit 3 naming the field, all-infeasible spaces are
    /// exit 4 with the resource test on the `caused by:` chain, a legal
    /// single-candidate space still answers, and unknown flags are usage
    /// errors.
    #[test]
    fn optimize_edge_spaces_hit_the_documented_exit_codes() {
        let dir = std::env::temp_dir().join("rat-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ws-opt-edge.toml");
        std::fs::write(&path, example_worksheet()).unwrap();
        let ws = path.to_string_lossy().into_owned();

        // Inverted (empty) range → exit 3, field named on the chain.
        let err = run(&argv(&["optimize", &ws, "--fclock-range", "2e8,1e8"])).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        let cause = std::error::Error::source(&err)
            .expect("context chain")
            .to_string();
        assert!(cause.contains("fclock_range"), "{cause}");

        // Unknown device → exit 3 naming `devices`.
        let err = run(&argv(&["optimize", &ws, "--devices", "asic9000"])).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        let cause = std::error::Error::source(&err)
            .expect("context chain")
            .to_string();
        assert!(cause.contains("devices"), "{cause}");

        // All-infeasible space (32-bit lanes need 2 of the LX25's 48 DSPs
        // each, so 30–40 lanes never fit) → exit 4, context line plus the
        // resource-test infeasibility on the chain.
        let err = run(&argv(&[
            "optimize",
            &ws,
            "--seed",
            "3",
            "--generations",
            "2",
            "--population",
            "32",
            "--devices",
            "lx25",
            "--precision-bits",
            "32",
            "--throughput-range",
            "30,40",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(err.to_string().contains("running optimize"), "{err}");
        let cause = std::error::Error::source(&err)
            .expect("context chain")
            .to_string();
        assert!(
            cause.contains("infeasible") && cause.contains("resource test"),
            "{cause}"
        );

        // A single-candidate space is legal and yields a one-point front.
        let out = run(&argv(&[
            "optimize",
            &ws,
            "--generations",
            "1",
            "--population",
            "1",
            "--fclock-range",
            "1.5e8,1.5e8",
            "--throughput-range",
            "20,20",
            "--bufferings",
            "single",
            "--devices",
            "ep2s180",
            "--precision-bits",
            "18",
        ]))
        .unwrap();
        assert!(out.contains("front 1)"), "{out}");

        // Unknown flags are usage errors.
        let err = run(&argv(&["optimize", &ws, "--frobnicate", "1"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
    }
}
