//! Shared helpers for the serve integration suites: a tiny HTTP client,
//! response splitting, and the path to the compiled `rat` binary.

// Each integration-test binary includes this module and uses a subset of it.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use rat_core::telemetry::json::{self, Json};

/// Send one raw HTTP request and return one full framed response. The read
/// is framed by `Content-Length`, not by connection close, so it works
/// whether the server keeps the connection alive or closes it.
pub fn send_raw(addr: SocketAddr, raw: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    s.write_all(raw.as_bytes()).expect("write request");
    read_response(&mut s)
}

/// Read exactly one HTTP response off `s`: headers up to the blank line,
/// then a `Content-Length`-framed body. Panics on EOF before a full
/// response. Reads the head one byte at a time and the body with
/// `read_exact`, so it never consumes bytes of a pipelined next response —
/// that makes it safe to call repeatedly on one kept-alive connection.
pub fn read_response(s: &mut TcpStream) -> String {
    let mut buf: Vec<u8> = Vec::new();
    while !buf.ends_with(b"\r\n\r\n") {
        let mut byte = [0u8; 1];
        let n = s.read(&mut byte).expect("read response");
        assert!(
            n > 0,
            "connection closed before response head: {:?}",
            String::from_utf8_lossy(&buf)
        );
        buf.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&buf).to_string();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().expect("content-length"))
        })
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    s.read_exact(&mut body).expect("read body");
    buf.extend_from_slice(&body);
    String::from_utf8_lossy(&buf).to_string()
}

/// POST `body` to `path` on a fresh connection that asks the server to
/// close afterwards, returning `(status, body)` with headers stripped.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    split_response(&send_raw(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    ))
}

/// GET `path` on a fresh close-per-request connection, returning
/// `(status, body)`.
pub fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    split_response(&send_raw(
        addr,
        &format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n"),
    ))
}

/// Split a raw HTTP response into status code and body.
pub fn split_response(raw: &str) -> (u16, String) {
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Parse a success envelope and return its `report` field.
pub fn report_of(body: &str) -> String {
    let doc = json::parse(body).unwrap_or_else(|e| panic!("bad JSON {e}: {body}"));
    doc.get("report")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no report field: {body}"))
        .to_string()
}

/// Parse an error envelope and return `(error, caused_by)`.
pub fn error_of(body: &str) -> (String, Vec<String>) {
    let doc = json::parse(body).unwrap_or_else(|e| panic!("bad JSON {e}: {body}"));
    let error = doc
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no error field: {body}"))
        .to_string();
    let causes = doc
        .get("caused_by")
        .and_then(Json::as_array)
        .map(|a| {
            a.iter()
                .map(|c| c.as_str().expect("string cause").to_string())
                .collect()
        })
        .unwrap_or_default();
    (error, causes)
}

/// One metric's value out of the plaintext `/metrics` body.
pub fn metric_value(metrics_body: &str, name: &str) -> Option<u64> {
    metrics_body.lines().find_map(|l| {
        l.strip_prefix(name)
            .and_then(|rest| rest.trim().parse().ok())
    })
}

/// The compiled `rat` binary, relative to this test binary
/// (`target/<profile>/deps/...`).
pub fn rat_binary() -> PathBuf {
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("rat{}", std::env::consts::EXE_SUFFIX));
    p
}
