//! Shared helpers for the serve integration suites: a tiny HTTP client,
//! response splitting, and the path to the compiled `rat` binary.

// Each integration-test binary includes this module and uses a subset of it.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use rat_core::telemetry::json::{self, Json};

/// Send one raw HTTP request and return the full response text.
pub fn send_raw(addr: SocketAddr, raw: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    s.write_all(raw.as_bytes()).expect("write request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    out
}

/// POST `body` to `path`, returning `(status, body)` with headers stripped.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    split_response(&send_raw(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    ))
}

/// GET `path`, returning `(status, body)`.
pub fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    split_response(&send_raw(addr, &format!("GET {path} HTTP/1.1\r\n\r\n")))
}

/// Split a raw HTTP response into status code and body.
pub fn split_response(raw: &str) -> (u16, String) {
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Parse a success envelope and return its `report` field.
pub fn report_of(body: &str) -> String {
    let doc = json::parse(body).unwrap_or_else(|e| panic!("bad JSON {e}: {body}"));
    doc.get("report")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no report field: {body}"))
        .to_string()
}

/// Parse an error envelope and return `(error, caused_by)`.
pub fn error_of(body: &str) -> (String, Vec<String>) {
    let doc = json::parse(body).unwrap_or_else(|e| panic!("bad JSON {e}: {body}"));
    let error = doc
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no error field: {body}"))
        .to_string();
    let causes = doc
        .get("caused_by")
        .and_then(Json::as_array)
        .map(|a| {
            a.iter()
                .map(|c| c.as_str().expect("string cause").to_string())
                .collect()
        })
        .unwrap_or_default();
    (error, causes)
}

/// One metric's value out of the plaintext `/metrics` body.
pub fn metric_value(metrics_body: &str, name: &str) -> Option<u64> {
    metrics_body.lines().find_map(|l| {
        l.strip_prefix(name)
            .and_then(|rest| rest.trim().parse().ok())
    })
}

/// The compiled `rat` binary, relative to this test binary
/// (`target/<profile>/deps/...`).
pub fn rat_binary() -> PathBuf {
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("rat{}", std::env::consts::EXE_SUFFIX));
    p
}
