//! The differential CLI↔serve parity suite — the correctness contract of
//! `rat serve`.
//!
//! For every analysis mode, the JSON body a **warm** server returns must be
//! byte-identical to what the **cold** path computes for the same inputs:
//! the in-process scalar pipeline (the same `rat_serve::api` renderers the
//! CLI calls) and the spawned `rat` binary itself. Parity is asserted at
//! 1, 2, and 8 server workers, on cache-cold and cache-warm requests, and
//! for the seeded Monte-Carlo path (same seed → same quantiles through the
//! server).

mod common;

use std::process::Command;

use common::{get, metric_value, post, rat_binary, report_of};
use proptest::prelude::*;
use rat_core::engine::{Engine, EngineConfig};
use rat_core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat_core::quantity::{Freq, Seconds, Throughput};
use rat_core::sweep::SweepParam;
use rat_core::uncertainty::ParamRange;
use rat_serve::api::{self, escape_json, OptimizeSpec};
use rat_serve::{ServeConfig, Server, ServerHandle};

/// The worker counts the acceptance criteria pin.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn start(workers: usize) -> ServerHandle {
    Server::start(ServeConfig {
        workers,
        ..ServeConfig::default()
    })
    .expect("server starts")
}

/// A reference engine configured exactly like a server worker's.
fn reference_engine() -> Engine {
    Engine::new(EngineConfig::default().with_jobs(1))
}

fn pdf1d() -> RatInput {
    rat_apps::pdf::pdf1d::rat_input(150.0e6)
}

fn ws_toml(input: &RatInput) -> String {
    toml::to_string(input).expect("worksheet serializes")
}

/// The optimize request this suite pins: tiny but non-trivial — enough
/// generations for the sampler to adapt, small enough to stay fast.
fn optimize_spec() -> OptimizeSpec {
    OptimizeSpec {
        seed: Some(7),
        generations: Some(4),
        population: Some(48),
        ..OptimizeSpec::default()
    }
}

/// Request bodies for the six analysis modes on `input`, paired with the
/// in-process reference report each must match byte-for-byte.
fn mode_cases(input: &RatInput) -> Vec<(&'static str, String, String)> {
    let engine = reference_engine();
    let ws = escape_json(&ws_toml(input));
    let ranges = [ParamRange::new(SweepParam::Fclock, 75.0e6, 150.0e6)];
    vec![
        (
            "/v1/solve",
            format!("{{\"worksheet_toml\": \"{ws}\", \"target\": 8.0}}"),
            api::solve_report(input, 8.0),
        ),
        (
            "/v1/sweep",
            format!(
                "{{\"worksheet_toml\": \"{ws}\", \"param\": \"fclock\", \
                 \"values\": [75e6, 100e6, 150e6]}}"
            ),
            api::sweep_report(
                &engine,
                input,
                SweepParam::Fclock,
                &[75.0e6, 100.0e6, 150.0e6],
            )
            .expect("sweep reference"),
        ),
        (
            "/v1/uncertainty",
            format!(
                "{{\"worksheet_toml\": \"{ws}\", \
                 \"ranges\": [{{\"param\": \"fclock\", \"lo\": 75e6, \"hi\": 150e6}}]}}"
            ),
            api::uncertainty_report(
                &engine,
                input,
                &ranges,
                api::DEFAULT_MC_SAMPLES,
                engine.config().root_seed,
            )
            .expect("uncertainty reference"),
        ),
        (
            "/v1/explore",
            format!(
                "{{\"worksheet_toml\": \"{ws}\", \"min_speedup\": 5.0, \
                 \"fclocks\": [100e6, 150e6]}}"
            ),
            api::explore_report(input, 5.0, Some(vec![100.0e6, 150.0e6]), None, None)
                .expect("explore reference"),
        ),
        (
            "/v1/sensitivity",
            format!("{{\"worksheet_toml\": \"{ws}\"}}"),
            api::sensitivity_report(&engine, input).expect("sensitivity reference"),
        ),
        (
            "/v1/optimize",
            format!(
                "{{\"worksheet_toml\": \"{ws}\", \"seed\": 7, \
                 \"generations\": 4, \"population\": 48}}"
            ),
            api::optimize_report(&engine, input, &optimize_spec()).expect("optimize reference"),
        ),
    ]
}

#[test]
fn six_modes_byte_identical_at_1_2_8_workers_cold_and_warm() {
    let input = pdf1d();
    let cases = mode_cases(&input);
    for workers in WORKER_COUNTS {
        let handle = start(workers);
        let addr = handle.addr();
        for (path, body, reference) in &cases {
            // Cache-cold (first request of this mode on this server) ...
            let (status, cold) = post(addr, path, body);
            assert_eq!(status, 200, "{path} at {workers} workers: {cold}");
            assert_eq!(
                report_of(&cold),
                *reference,
                "{path} cold parity at {workers} workers"
            );
            // ... and cache-warm (every structure already resident) must be
            // byte-identical to each other and to the reference.
            let (status, warm) = post(addr, path, body);
            assert_eq!(status, 200);
            assert_eq!(
                cold, warm,
                "{path} warm response drifted at {workers} workers"
            );
        }
        handle.shutdown();
    }
}

#[test]
fn server_reports_match_cold_cli_stdout_for_every_mode() {
    // Spawn the real binary per mode and compare its stdout to the warm
    // server's report — the end-to-end version of the shared-renderer
    // argument. The CLI prints `{report}\n`, so stdout = report + newline.
    let input = pdf1d();
    let dir = std::env::temp_dir().join(format!("rat-serve-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ws_path = dir.join("ws.toml");
    std::fs::write(&ws_path, ws_toml(&input)).unwrap();
    let ws = ws_path.to_string_lossy().into_owned();

    let cli = |args: &[&str]| -> String {
        let out = Command::new(rat_binary())
            .args(args)
            .output()
            .expect("spawning the rat binary (build it with `cargo build -p rat-cli`)");
        assert!(
            out.status.success(),
            "rat {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf8 stdout")
    };

    let handle = start(2);
    let addr = handle.addr();
    let serve = |path: &str, body: &str| -> String {
        let (status, resp) = post(addr, path, body);
        assert_eq!(status, 200, "{path}: {resp}");
        report_of(&resp)
    };
    let ws_json = escape_json(&ws_toml(&input));

    let pairs = [
        (
            cli(&["solve", &ws, "8"]),
            serve(
                "/v1/solve",
                &format!("{{\"worksheet_toml\": \"{ws_json}\", \"target\": 8.0}}"),
            ),
        ),
        (
            cli(&["solve", "--strict", &ws, "4"]),
            serve(
                "/v1/solve",
                &format!(
                    "{{\"worksheet_toml\": \"{ws_json}\", \"target\": 4.0, \"strict\": true}}"
                ),
            ),
        ),
        (
            cli(&["sweep", &ws, "fclock", "75e6", "100e6", "150e6"]),
            serve(
                "/v1/sweep",
                &format!(
                    "{{\"worksheet_toml\": \"{ws_json}\", \"param\": \"fclock\", \
                     \"values\": [75e6, 100e6, 150e6]}}"
                ),
            ),
        ),
        (
            cli(&["uncertainty", &ws, "fclock", "75e6", "150e6"]),
            serve(
                "/v1/uncertainty",
                &format!(
                    "{{\"worksheet_toml\": \"{ws_json}\", \
                     \"ranges\": [{{\"param\": \"fclock\", \"lo\": 75e6, \"hi\": 150e6}}]}}"
                ),
            ),
        ),
        (
            cli(&["explore", &ws, "5", "--fclocks", "100e6,150e6"]),
            serve(
                "/v1/explore",
                &format!(
                    "{{\"worksheet_toml\": \"{ws_json}\", \"min_speedup\": 5.0, \
                     \"fclocks\": [100e6, 150e6]}}"
                ),
            ),
        ),
        (
            cli(&["sensitivity", &ws]),
            serve(
                "/v1/sensitivity",
                &format!("{{\"worksheet_toml\": \"{ws_json}\"}}"),
            ),
        ),
        (
            cli(&[
                "optimize",
                &ws,
                "--seed",
                "7",
                "--generations",
                "4",
                "--population",
                "48",
            ]),
            serve(
                "/v1/optimize",
                &format!(
                    "{{\"worksheet_toml\": \"{ws_json}\", \"seed\": 7, \
                     \"generations\": 4, \"population\": 48}}"
                ),
            ),
        ),
    ];
    handle.shutdown();
    for (i, (cli_stdout, server_report)) in pairs.iter().enumerate() {
        assert_eq!(
            *cli_stdout,
            format!("{server_report}\n"),
            "CLI stdout vs server report diverged for pair {i}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_mc_is_deterministic_through_the_server() {
    let input = pdf1d();
    let ws = escape_json(&ws_toml(&input));
    let body = format!(
        "{{\"worksheet_toml\": \"{ws}\", \"samples\": 2000, \"seed\": 42, \
         \"ranges\": [{{\"param\": \"alpha\", \"lo\": 0.5, \"hi\": 1.0}}]}}"
    );
    // Two different servers, different worker counts: the seed alone pins
    // the quantiles.
    let h1 = start(1);
    let (s1, r1) = post(h1.addr(), "/v1/uncertainty", &body);
    h1.shutdown();
    let h8 = start(8);
    let (s8, r8) = post(h8.addr(), "/v1/uncertainty", &body);
    let (s8b, r8b) = post(h8.addr(), "/v1/uncertainty", &body);
    h8.shutdown();
    assert_eq!((s1, s8, s8b), (200, 200, 200));
    assert_eq!(r1, r8, "seeded MC differs across server worker counts");
    assert_eq!(r8, r8b, "seeded MC differs across repeated requests");

    // And matches the in-process pipeline with the same seed.
    let engine = reference_engine();
    let ranges = [ParamRange::new(SweepParam::AlphaBoth, 0.5, 1.0)];
    let reference = api::uncertainty_report(&engine, &input, &ranges, 2000, 42).unwrap();
    assert_eq!(report_of(&r1), reference);
}

#[test]
fn simulate_parity_cold_vs_warm_with_cache_hits() {
    // /v1/simulate is the one endpoint that runs the cycle simulator; the
    // first request at a clock point renders fresh, the identical repeat is
    // served straight from the response cache — and the body must not
    // change by a byte either way.
    let handle = start(2);
    let addr = handle.addr();
    let body = "{\"app\": \"sort\", \"mhz\": 147.0}";
    let (_, metrics0) = get(addr, "/metrics");
    let hits0 = metric_value(&metrics0, "pipeline_cache_response_hits").unwrap();
    let (s1, cold) = post(addr, "/v1/simulate", body);
    let (s2, warm) = post(addr, "/v1/simulate", body);
    assert_eq!((s1, s2), (200, 200), "{cold}");
    assert_eq!(cold, warm, "cached simulation drifted");
    let (_, metrics1) = get(addr, "/metrics");
    let hits1 = metric_value(&metrics1, "pipeline_cache_response_hits").unwrap();
    assert!(
        hits1 > hits0,
        "warm request did not hit the response cache: {hits0} -> {hits1}"
    );
    // The report matches the in-process cached path.
    assert_eq!(
        report_of(&cold),
        api::simulate_report("sort", 147.0, Some(fpga_sim::SimCache::global())).unwrap()
    );
    handle.shutdown();
}

#[test]
fn shutdown_drains_single_flight_waiters_with_full_responses() {
    // A herd of identical optimize requests: one leader computes, the rest
    // block on the single-flight slot. Shutting down mid-herd must still
    // hand every waiter the complete rendered body — no torn responses, no
    // resets — because drain waits for in-flight requests.
    let handle = start(8);
    let addr = handle.addr();
    let ws = escape_json(&ws_toml(&pdf1d()));
    let body = format!(
        "{{\"worksheet_toml\": \"{ws}\", \"seed\": 11, \
         \"generations\": 6, \"population\": 64}}"
    );
    let n = 6;
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(n));
    let threads: Vec<_> = (0..n)
        .map(|_| {
            let body = body.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                post(addr, "/v1/optimize", &body)
            })
        })
        .collect();
    // Let the herd reach the workers (8 workers ≥ 6 requests, so all are
    // in flight at once), then pull the plug while they are computing.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let summary = handle.shutdown();
    let mut bodies = Vec::new();
    for t in threads {
        let (status, resp) = t.join().expect("waiter thread");
        assert_eq!(status, 200, "waiter got a torn response: {resp}");
        bodies.push(resp);
    }
    for b in &bodies[1..] {
        assert_eq!(b, &bodies[0], "single-flight waiters diverged");
    }
    let engine = reference_engine();
    let reference = api::optimize_report(
        &engine,
        &pdf1d(),
        &OptimizeSpec {
            seed: Some(11),
            generations: Some(6),
            population: Some(64),
            ..OptimizeSpec::default()
        },
    )
    .unwrap();
    assert_eq!(report_of(&bodies[0]), reference);
    assert!(summary.ok >= n as u64, "drain lost requests: {summary:?}");
}

// ---------------------------------------------------------------------------
// Property tests: random worksheets through the server vs the in-process
// scalar pipeline, bit for bit. Case counts are modest because every case
// boots requests against a live server; the deterministic tests above cover
// the worker-count matrix densely.
// ---------------------------------------------------------------------------

/// POST `body` twice and assert the cached repeat is byte-identical to the
/// cold render before returning the cold response. Every route under the
/// proptest goes through this, so cache parity is pinned across the whole
/// random-worksheet envelope, not just the handful of deterministic cases.
fn post_cold_and_cached(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    let (status, cold) = post(addr, path, body);
    let (status_cached, cached) = post(addr, path, body);
    assert_eq!(
        (status, &cold),
        (status_cached, &cached),
        "cached response drifted from the cold render for {path}"
    );
    (status, cold)
}

/// Strategy: a valid worksheet input across wide parameter ranges (the same
/// envelope the batch-differential suite uses).
fn worksheet() -> impl Strategy<Value = RatInput> {
    (
        1u64..100_000,  // elements_in
        0u64..100_000,  // elements_out
        1u64..64,       // bytes per element
        1.0e8..1.0e10,  // ideal bandwidth
        0.01f64..1.0,   // alpha_write
        0.01f64..1.0,   // alpha_read
        1.0f64..1.0e6,  // ops per element
        0.1f64..1000.0, // throughput_proc
        1.0e7..1.0e9,   // fclock
        1.0e-3..1.0e4,  // t_soft
        1u64..10_000,   // iterations
        prop_oneof![Just(Buffering::Single), Just(Buffering::Double)],
    )
        .prop_map(
            |(ein, eout, bpe, bw, aw, ar, ops, tp, f, tsoft, iters, buffering)| RatInput {
                name: "prop".into(),
                dataset: DatasetParams {
                    elements_in: ein,
                    elements_out: eout,
                    bytes_per_element: bpe,
                },
                comm: CommParams {
                    ideal_bandwidth: Throughput::from_bytes_per_sec(bw),
                    alpha_write: aw,
                    alpha_read: ar,
                },
                comp: CompParams {
                    ops_per_element: ops,
                    throughput_proc: tp,
                    fclock: Freq::from_hz(f),
                },
                software: SoftwareParams {
                    t_soft: Seconds::new(tsoft),
                    iterations: iters,
                },
                buffering,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every mode's server report equals the in-process report for random
    /// worksheets, at a randomly drawn worker count.
    #[test]
    fn random_worksheets_round_trip_bit_for_bit(
        input in worksheet(),
        target in 1.0f64..100.0,
        mc_seed in 0u64..1_000_000,
        workers in prop_oneof![Just(1usize), Just(2usize), Just(8usize)],
    ) {
        let engine = reference_engine();
        let ws = escape_json(&ws_toml(&input));
        let handle = start(workers);
        let addr = handle.addr();

        let (status, resp) = post_cold_and_cached(
            addr,
            "/v1/solve",
            &format!("{{\"worksheet_toml\": \"{ws}\", \"target\": {target}}}"),
        );
        prop_assert_eq!(status, 200, "{}", resp);
        prop_assert_eq!(report_of(&resp), api::solve_report(&input, target));

        let (status, resp) = post_cold_and_cached(
            addr,
            "/v1/sweep",
            &format!(
                "{{\"worksheet_toml\": \"{ws}\", \"param\": \"throughput-proc\", \
                 \"values\": [0.5, 5.0, 50.0]}}"
            ),
        );
        prop_assert_eq!(status, 200, "{}", resp);
        prop_assert_eq!(
            report_of(&resp),
            api::sweep_report(
                &engine,
                &input,
                SweepParam::ThroughputProc,
                &[0.5, 5.0, 50.0]
            )
            .unwrap()
        );

        let (status, resp) = post_cold_and_cached(
            addr,
            "/v1/sensitivity",
            &format!("{{\"worksheet_toml\": \"{ws}\"}}"),
        );
        prop_assert_eq!(status, 200, "{}", resp);
        prop_assert_eq!(
            report_of(&resp),
            api::sensitivity_report(&engine, &input).unwrap()
        );

        let (status, resp) = post_cold_and_cached(
            addr,
            "/v1/uncertainty",
            &format!(
                "{{\"worksheet_toml\": \"{ws}\", \"samples\": 64, \"seed\": {mc_seed}, \
                 \"ranges\": [{{\"param\": \"fclock\", \"lo\": 1e7, \"hi\": 1e9}}]}}"
            ),
        );
        prop_assert_eq!(status, 200, "{}", resp);
        let ranges = [ParamRange::new(SweepParam::Fclock, 1.0e7, 1.0e9)];
        prop_assert_eq!(
            report_of(&resp),
            api::uncertainty_report(&engine, &input, &ranges, 64, mc_seed).unwrap()
        );

        let (status, resp) = post_cold_and_cached(
            addr,
            "/v1/explore",
            &format!("{{\"worksheet_toml\": \"{ws}\", \"min_speedup\": {target}}}"),
        );
        prop_assert_eq!(status, 200, "{}", resp);
        prop_assert_eq!(
            report_of(&resp),
            api::explore_report(&input, target, None, None, None).unwrap()
        );

        handle.shutdown();
    }
}
