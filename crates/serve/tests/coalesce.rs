//! Server-level coalescing differentials: concurrent `/v1/solve` requests
//! that get batched into one column-set evaluation must answer with bodies
//! byte-identical to what each request gets alone — at 1, 2, and 8 workers,
//! for feasible, infeasible, and strict-rejected targets alike.
//!
//! The response cache is disabled here so every request actually reaches
//! the coalescer instead of being deduplicated by single-flight.

mod common;

use std::sync::{Arc, Barrier};

use common::post;
use rat_core::params::RatInput;
use rat_serve::api::escape_json;
use rat_serve::{ServeConfig, Server, ServerHandle};

fn start(workers: usize) -> ServerHandle {
    Server::start(ServeConfig {
        workers,
        response_cache_bytes: 0,
        ..ServeConfig::default()
    })
    .expect("server starts")
}

fn worksheet(bump: bool) -> RatInput {
    let mut input = rat_apps::pdf::pdf1d::rat_input(150.0e6);
    if bump {
        input.comp.throughput_proc += 1.0;
    }
    input
}

fn solve_body(input: &RatInput, target: f64, strict: bool) -> String {
    let ws = escape_json(&toml::to_string(input).unwrap());
    format!("{{\"worksheet_toml\": \"{ws}\", \"target\": {target}, \"strict\": {strict}}}")
}

#[test]
fn concurrent_solves_match_their_solo_bodies_at_1_2_8_workers() {
    // The case matrix mixes duplicate and distinct worksheets and targets,
    // including an infeasible target (1e9) and a rejected one (-2.0), and
    // both strict flavors — so coalesced groups carry mixed verdicts.
    let cases: Vec<(RatInput, f64, bool)> = (0..12)
        .map(|i| {
            let target = match i % 4 {
                0 => 8.0,
                1 => 1e9,
                2 => -2.0,
                _ => 2.5,
            };
            (worksheet(i % 2 == 0), target, i % 3 == 0)
        })
        .collect();

    // Solo references from a quiet server: one request at a time, nothing
    // to coalesce with.
    let reference = start(1);
    let solo: Vec<(u16, String)> = cases
        .iter()
        .map(|(input, target, strict)| {
            post(
                reference.addr(),
                "/v1/solve",
                &solve_body(input, *target, *strict),
            )
        })
        .collect();
    reference.shutdown();

    for workers in [1usize, 2, 8] {
        let handle = start(workers);
        let addr = handle.addr();
        let barrier = Arc::new(Barrier::new(cases.len()));
        let threads: Vec<_> = cases
            .iter()
            .map(|(input, target, strict)| {
                let body = solve_body(input, *target, *strict);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    post(addr, "/v1/solve", &body)
                })
            })
            .collect();
        for (i, t) in threads.into_iter().enumerate() {
            let got = t.join().expect("solve thread");
            assert_eq!(
                got, solo[i],
                "case {i} diverged from its solo body at {workers} workers"
            );
        }
        handle.shutdown();
    }
}

#[test]
fn strict_errors_survive_coalescing_byte_for_byte() {
    // A burst of identical strict-infeasible solves: whichever requests get
    // batched must all render the same 422 body the solo path renders.
    let input = worksheet(false);
    let body = solve_body(&input, 1e9, true);

    let reference = start(1);
    let solo = post(reference.addr(), "/v1/solve", &body);
    reference.shutdown();
    assert_eq!(solo.0, 422, "expected strict infeasibility: {}", solo.1);

    let handle = start(8);
    let addr = handle.addr();
    let n = 8;
    let barrier = Arc::new(Barrier::new(n));
    let threads: Vec<_> = (0..n)
        .map(|_| {
            let body = body.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                post(addr, "/v1/solve", &body)
            })
        })
        .collect();
    for t in threads {
        assert_eq!(t.join().expect("solve thread"), solo);
    }
    handle.shutdown();
}
