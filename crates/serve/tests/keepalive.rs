//! Keep-alive transport robustness: persistent connections must serve many
//! requests, honor `Connection:` overrides mid-stream, bound slow and
//! hostile clients with the same 408/400 behavior the close-per-request
//! server had, and never let a bad second request poison a good first
//! response.

mod common;

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use common::{read_response, report_of, split_response};
use rat_serve::api::escape_json;
use rat_serve::{ServeConfig, Server, ServerHandle};

fn start(config: ServeConfig) -> ServerHandle {
    Server::start(config).expect("server starts")
}

fn connect(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s
}

fn solve_request(target: f64) -> String {
    let ws = escape_json(&toml::to_string(&rat_apps::pdf::pdf1d::rat_input(150.0e6)).unwrap());
    let body = format!("{{\"worksheet_toml\": \"{ws}\", \"target\": {target}}}");
    format!(
        "POST /v1/solve HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Read until EOF, asserting the server closed without sending more bytes.
fn assert_closed_silently(s: &mut TcpStream) {
    let mut rest = Vec::new();
    s.read_to_end(&mut rest).expect("read to close");
    assert!(
        rest.is_empty(),
        "expected a silent close, got: {:?}",
        String::from_utf8_lossy(&rest)
    );
}

#[test]
fn one_connection_serves_many_requests_and_counts_one_accept() {
    let handle = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let mut s = connect(handle.addr());
    let mut reports = Vec::new();
    for target in [8.0, 4.0, 8.0] {
        s.write_all(solve_request(target).as_bytes()).unwrap();
        let raw = read_response(&mut s);
        assert!(
            raw.contains("Connection: keep-alive"),
            "HTTP/1.1 default should keep the connection: {raw}"
        );
        let (status, body) = split_response(&raw);
        assert_eq!(status, 200, "{body}");
        reports.push(report_of(&body));
    }
    assert_eq!(reports[0], reports[2], "same request drifted on one conn");
    assert_ne!(reports[0], reports[1], "distinct targets must differ");
    drop(s);
    let summary = handle.shutdown();
    assert_eq!(summary.accepted, 1, "one socket, one accept: {summary:?}");
    assert!(summary.ok >= 3, "three requests served: {summary:?}");
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let handle = start(ServeConfig::default());
    let mut s = connect(handle.addr());
    // Both requests in one write: the bytes of the second sit buffered
    // while the first computes, and the answers come back in order.
    let batch = format!("{}{}", solve_request(8.0), solve_request(4.0));
    s.write_all(batch.as_bytes()).unwrap();
    let (s1, first) = split_response(&read_response(&mut s));
    let (s2, second) = split_response(&read_response(&mut s));
    assert_eq!((s1, s2), (200, 200));
    assert!(
        report_of(&first).contains("8x speedup") && report_of(&second).contains("4x speedup"),
        "pipelined responses out of order:\n{first}\n{second}"
    );
    handle.shutdown();
}

#[test]
fn pipelined_garbage_does_not_poison_the_prior_response() {
    let handle = start(ServeConfig::default());
    let mut s = connect(handle.addr());
    // A valid request with non-HTTP garbage pipelined right behind it (a
    // request line with no path token). The valid one must answer 200 in
    // full; the garbage maps to 400 and the connection closes (framing is
    // unrecoverable after a parse failure).
    let batch = format!("{}\x01\x02\x03garbage\r\n\r\n", solve_request(8.0));
    s.write_all(batch.as_bytes()).unwrap();
    let (status, body) = split_response(&read_response(&mut s));
    assert_eq!(status, 200, "valid request poisoned by garbage: {body}");
    assert!(!report_of(&body).is_empty());
    let garbage_response = read_response(&mut s);
    let (status, _) = split_response(&garbage_response);
    assert_eq!(status, 400, "garbage should map to 400: {garbage_response}");
    assert!(
        garbage_response.contains("Connection: close"),
        "protocol errors must close: {garbage_response}"
    );
    assert_closed_silently(&mut s);
    handle.shutdown();
}

#[test]
fn slowloris_second_request_gets_408_then_close() {
    let handle = start(ServeConfig {
        workers: 1,
        request_timeout: Duration::from_millis(300),
        keepalive_idle: Duration::from_secs(10),
        ..ServeConfig::default()
    });
    let mut s = connect(handle.addr());
    s.write_all(solve_request(8.0).as_bytes()).unwrap();
    let (status, _) = split_response(&read_response(&mut s));
    assert_eq!(status, 200);
    // Start a second request but stall after a few header bytes: once the
    // first byte lands the per-request deadline applies, so this is a 408
    // (not a silent idle close) followed by a hangup.
    s.write_all(b"POST /v1/solve HTTP/1.1\r\nContent-Le")
        .unwrap();
    let raw = read_response(&mut s);
    let (status, _) = split_response(&raw);
    assert_eq!(status, 408, "stalled second request should 408: {raw}");
    assert!(raw.contains("Connection: close"), "{raw}");
    assert_closed_silently(&mut s);
    let summary = handle.shutdown();
    assert_eq!(summary.errored, 1, "the 408 counts as errored: {summary:?}");
}

#[test]
fn connection_close_is_honored_mid_stream() {
    let handle = start(ServeConfig::default());
    let mut s = connect(handle.addr());
    s.write_all(solve_request(8.0).as_bytes()).unwrap();
    let raw = read_response(&mut s);
    assert!(raw.contains("Connection: keep-alive"), "{raw}");
    // Second request asks to close; the server must say so and hang up.
    s.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let raw = read_response(&mut s);
    let (status, body) = split_response(&raw);
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    assert!(raw.contains("Connection: close"), "{raw}");
    assert_closed_silently(&mut s);
    handle.shutdown();
}

#[test]
fn idle_connections_are_closed_silently_not_408ed() {
    let handle = start(ServeConfig {
        keepalive_idle: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let mut s = connect(handle.addr());
    s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let (status, _) = split_response(&read_response(&mut s));
    assert_eq!(status, 200);
    // Say nothing. The idle deadline passes and the server closes without
    // writing a byte — an idle client is not a protocol error.
    assert_closed_silently(&mut s);
    let summary = handle.shutdown();
    assert_eq!(
        summary.errored, 0,
        "idle close is not an error: {summary:?}"
    );
}

#[test]
fn the_per_connection_request_cap_closes_politely() {
    let handle = start(ServeConfig {
        max_requests_per_conn: 3,
        ..ServeConfig::default()
    });
    let mut s = connect(handle.addr());
    for i in 0..3 {
        s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let raw = read_response(&mut s);
        let (status, _) = split_response(&raw);
        assert_eq!(status, 200);
        let expect_keep = i < 2;
        assert_eq!(
            raw.contains("Connection: keep-alive"),
            expect_keep,
            "request {i} of a 3-capped connection: {raw}"
        );
    }
    assert_closed_silently(&mut s);
    let summary = handle.shutdown();
    assert_eq!((summary.accepted, summary.ok), (1, 3), "{summary:?}");
}
