//! Protocol robustness: hostile and malformed traffic must map to the
//! documented status codes with a `caused by:`-style chain in the error
//! body, and the daemon must survive all of it — after every abuse case a
//! well-formed request still answers 200.

mod common;

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use common::{error_of, get, post, send_raw, split_response};
use rat_serve::api::escape_json;
use rat_serve::{ServeConfig, Server, ServerHandle};

fn start() -> ServerHandle {
    Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("server starts")
}

fn good_body() -> String {
    let ws = escape_json(&toml::to_string(&rat_apps::pdf::pdf1d::rat_input(150.0e6)).unwrap());
    format!("{{\"worksheet_toml\": \"{ws}\", \"target\": 8.0}}")
}

/// Assert the daemon still answers a well-formed request after an abuse.
fn still_alive(handle: &ServerHandle, after: &str) {
    let (status, resp) = post(handle.addr(), "/v1/solve", &good_body());
    assert_eq!(status, 200, "daemon unhealthy after {after}: {resp}");
}

#[test]
fn hostile_requests_map_to_documented_statuses_and_daemon_survives() {
    let handle = start();
    let addr = handle.addr();

    // Malformed JSON → 400 with the parse failure in the cause chain.
    let (status, body) = post(addr, "/v1/solve", "{\"worksheet_toml\": ");
    assert_eq!(status, 400, "{body}");
    let (error, causes) = error_of(&body);
    assert!(
        !error.is_empty() && !causes.is_empty(),
        "400 body lost its caused-by chain: {body}"
    );
    still_alive(&handle, "malformed JSON");

    // A body the request is not allowed to have: declared oversized → 413
    // from the headers alone, before any body bytes are read.
    let raw = format!(
        "POST /v1/solve HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        2 * 1024 * 1024
    );
    let (status, body) = split_response(&send_raw(addr, &raw));
    assert_eq!(status, 413, "{body}");
    let (error, _) = error_of(&body);
    assert!(
        error.contains("exceeds") && error.contains("limit"),
        "413 error should name the body limit: {error}"
    );
    still_alive(&handle, "oversized body");

    // Unknown route → 404; wrong method on known routes → 405.
    let (status, body) = post(addr, "/v1/frobnicate", "{}");
    assert_eq!(status, 404, "{body}");
    let (status, body) = split_response(&send_raw(addr, "GET /v1/solve HTTP/1.1\r\n\r\n"));
    assert_eq!(status, 405, "{body}");
    let (status, body) = split_response(&send_raw(
        addr,
        "POST /metrics HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
    ));
    assert_eq!(status, 405, "{body}");
    still_alive(&handle, "bad routes");

    // Infeasible design under --strict semantics → 422 (the HTTP face of
    // CLI exit code 4), with the infeasibility in the cause chain.
    let ws = escape_json(&toml::to_string(&rat_apps::pdf::pdf1d::rat_input(150.0e6)).unwrap());
    let (status, body) = post(
        addr,
        "/v1/solve",
        &format!("{{\"worksheet_toml\": \"{ws}\", \"target\": 1e9, \"strict\": true}}"),
    );
    assert_eq!(status, 422, "{body}");
    let (_, causes) = error_of(&body);
    assert!(
        causes.iter().any(|c| c.contains("infeasible")),
        "422 causes should name the infeasibility: {body}"
    );
    still_alive(&handle, "infeasible strict solve");

    // A simulation-layer failure → 500 (the HTTP face of exit code 5).
    let (status, body) = post(addr, "/v1/simulate", "{\"app\": \"sort\", \"mhz\": 0.0}");
    assert_eq!(status, 500, "{body}");
    still_alive(&handle, "simulate at 0 MHz");

    // A worksheet that parses as TOML but fails quantity validation → 400.
    let bad_ws = escape_json(
        &toml::to_string(&{
            let mut input = rat_apps::pdf::pdf1d::rat_input(150.0e6);
            input.comm.alpha_write = -0.5;
            input
        })
        .unwrap(),
    );
    let (status, body) = post(
        addr,
        "/v1/solve",
        &format!("{{\"worksheet_toml\": \"{bad_ws}\", \"target\": 2.0}}"),
    );
    assert_eq!(status, 400, "{body}");
    still_alive(&handle, "invalid worksheet quantities");

    // Mid-body disconnect: declare 100 bytes, send 10, hang up the write
    // half. The server must answer 400 (naming the short read), not die.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(b"POST /v1/solve HTTP/1.1\r\nContent-Length: 100\r\n\r\n0123456789")
        .unwrap();
    s.shutdown(Shutdown::Write).unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    let (status, body) = split_response(&resp);
    assert_eq!(status, 400, "{body}");
    let (error, causes) = error_of(&body);
    assert!(
        causes.iter().any(|c| c.contains("disconnected")),
        "mid-body disconnect should be named: {error} / {causes:?}"
    );
    still_alive(&handle, "mid-body disconnect");

    // Garbage that is not even HTTP.
    let (status, _) = split_response(&send_raw(addr, "\x01\x02\x03 nonsense\r\n\r\n"));
    assert_ne!(status, 200);
    still_alive(&handle, "non-HTTP garbage");

    let summary = handle.shutdown();
    assert!(
        summary.ok >= 8,
        "expected the still-alive probes among {summary:?}"
    );
}

/// `/v1/optimize` edge shapes: degenerate ranges and bogus axis values are
/// 400s naming the field, an all-infeasible space is a 422 whose cause
/// chain names the resource test, and a legal single-candidate space still
/// answers 200 — all without hurting the daemon.
#[test]
fn optimize_spaces_map_to_the_documented_statuses() {
    let handle = start();
    let addr = handle.addr();
    let ws = escape_json(&toml::to_string(&rat_apps::pdf::pdf1d::rat_input(150.0e6)).unwrap());

    // Inverted (empty) range → 400 naming the field.
    let (status, body) = post(
        addr,
        "/v1/optimize",
        &format!("{{\"worksheet_toml\": \"{ws}\", \"fclock_range\": [2e8, 1e8]}}"),
    );
    assert_eq!(status, 400, "{body}");
    let (_, causes) = error_of(&body);
    assert!(
        causes.iter().any(|c| c.contains("fclock_range")),
        "empty range should name its field: {body}"
    );
    still_alive(&handle, "inverted fclock_range");

    // A device name outside the catalog → 400 naming `devices`.
    let (status, body) = post(
        addr,
        "/v1/optimize",
        &format!("{{\"worksheet_toml\": \"{ws}\", \"devices\": [\"asic9000\"]}}"),
    );
    assert_eq!(status, 400, "{body}");
    let (_, causes) = error_of(&body);
    assert!(
        causes.iter().any(|c| c.contains("devices")),
        "unknown device should name the `devices` field: {body}"
    );
    still_alive(&handle, "unknown device");

    // An evaluation budget beyond the documented cap → 400.
    let (status, body) = post(
        addr,
        "/v1/optimize",
        &format!(
            "{{\"worksheet_toml\": \"{ws}\", \
             \"generations\": 1000000, \"population\": 1000000}}"
        ),
    );
    assert_eq!(status, 400, "{body}");
    still_alive(&handle, "oversized eval budget");

    // All-infeasible space (32-bit lanes on an LX25 need 2 DSPs each, so
    // 30–40 lanes always exceed its 48 DSP blocks) → 422, the HTTP face of
    // CLI exit code 4, with the resource test in the cause chain.
    let (status, body) = post(
        addr,
        "/v1/optimize",
        &format!(
            "{{\"worksheet_toml\": \"{ws}\", \"seed\": 3, \
             \"generations\": 2, \"population\": 32, \
             \"devices\": [\"lx25\"], \"precision_bits\": [32], \
             \"throughput_range\": [30.0, 40.0]}}"
        ),
    );
    assert_eq!(status, 422, "{body}");
    let (_, causes) = error_of(&body);
    assert!(
        causes
            .iter()
            .any(|c| c.contains("infeasible") && c.contains("resource test")),
        "422 causes should name the failed resource test: {body}"
    );
    still_alive(&handle, "all-infeasible optimize space");

    // A legal single-candidate space answers 200.
    let (status, body) = post(
        addr,
        "/v1/optimize",
        &format!(
            "{{\"worksheet_toml\": \"{ws}\", \"seed\": 3, \
             \"generations\": 1, \"population\": 1, \
             \"fclock_range\": [1.5e8, 1.5e8], \"throughput_range\": [20.0, 20.0], \
             \"bufferings\": [\"single\"], \"devices\": [\"ep2s180\"], \
             \"precision_bits\": [18]}}"
        ),
    );
    assert_eq!(status, 200, "{body}");

    let summary = handle.shutdown();
    assert!(
        summary.ok >= 5,
        "expected the still-alive probes: {summary:?}"
    );
}

#[test]
fn full_queue_answers_503_busy_and_recovers() {
    // One worker, one queue slot, short request timeout: occupy the worker
    // with a connection that sends nothing, fill the single slot with a
    // second idle connection, and a third (complete) request must bounce
    // with 503 from the backpressure path — then, once the stalled
    // connections time out, service resumes.
    let handle = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        request_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = handle.addr();

    let hog_worker = TcpStream::connect(addr).unwrap(); // popped by the worker, stalls it
    std::thread::sleep(Duration::from_millis(60));
    let hog_queue = TcpStream::connect(addr).unwrap(); // sits in the only queue slot
    std::thread::sleep(Duration::from_millis(60));

    let (status, body) = post(addr, "/v1/solve", &good_body());
    assert_eq!(status, 503, "expected busy rejection: {body}");
    let (error, _) = error_of(&body);
    assert!(
        error.contains("capacity"),
        "503 should say the server is at capacity: {error}"
    );

    // The stalled connections are answered 408 when their deadline passes.
    for (name, mut hog) in [("worker hog", hog_worker), ("queue hog", hog_queue)] {
        hog.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut resp = String::new();
        hog.read_to_string(&mut resp).unwrap();
        let (status, _) = split_response(&resp);
        assert_eq!(status, 408, "{name} should time out with 408");
    }

    // Backpressure released: the same request now succeeds, and the
    // rejection is visible in both /metrics and the drain summary.
    let (status, _) = post(addr, "/v1/solve", &good_body());
    assert_eq!(status, 200);
    let (_, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("serve_rejected_busy_total 1"),
        "busy rejection not counted:\n{metrics}"
    );
    let summary = handle.shutdown();
    assert_eq!(summary.rejected_busy, 1);
}
