//! Concurrency stress: N client threads hammer a warm server with mixed
//! analysis modes. Every response must be well-formed (no torn writes),
//! `cache.hits` must be monotonically non-decreasing across `/metrics`
//! samples, shard contention must be reported, and shutdown must drain
//! cleanly — in-flight requests complete and the write-behind simulator
//! cache is flushed to disk (verified by reading the TSV back).
//!
//! This file is a single `#[test]` on purpose: it owns the process-global
//! simulator cache (pointed at a temp path via `RAT_SIM_CACHE` before the
//! first touch), which integration tests in other files must not share.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use common::{get, metric_value, post};
use rat_core::telemetry::json::{self, Json};
use rat_serve::api::escape_json;
use rat_serve::{ServeConfig, Server};

const CLIENT_THREADS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 12;

/// `(path, body, expected mode)` for a representative mixed workload:
/// every analytic mode plus the simulator endpoint (the only one that
/// exercises the shared cache). Simulation points repeat across clients so
/// the cache sees concurrent hits on the same shards.
fn workload() -> Vec<(String, String, &'static str)> {
    let ws = escape_json(&toml::to_string(&rat_apps::pdf::pdf1d::rat_input(150.0e6)).unwrap());
    vec![
        (
            "/v1/solve".into(),
            format!("{{\"worksheet_toml\": \"{ws}\", \"target\": 8.0}}"),
            "solve",
        ),
        (
            "/v1/sweep".into(),
            format!(
                "{{\"worksheet_toml\": \"{ws}\", \"param\": \"fclock\", \
                 \"values\": [75e6, 100e6, 150e6]}}"
            ),
            "sweep",
        ),
        (
            "/v1/sensitivity".into(),
            format!("{{\"worksheet_toml\": \"{ws}\"}}"),
            "sensitivity",
        ),
        (
            "/v1/uncertainty".into(),
            format!(
                "{{\"worksheet_toml\": \"{ws}\", \"samples\": 128, \"seed\": 7, \
                 \"ranges\": [{{\"param\": \"fclock\", \"lo\": 75e6, \"hi\": 150e6}}]}}"
            ),
            "uncertainty",
        ),
        (
            "/v1/explore".into(),
            format!(
                "{{\"worksheet_toml\": \"{ws}\", \"min_speedup\": 4.0, \
                 \"fclocks\": [100e6, 150e6]}}"
            ),
            "explore",
        ),
        (
            "/v1/simulate".into(),
            "{\"app\": \"sort\", \"mhz\": 150.0}".into(),
            "simulate",
        ),
        (
            "/v1/simulate".into(),
            "{\"app\": \"pdf1d\", \"mhz\": 100.0}".into(),
            "simulate",
        ),
    ]
}

#[test]
fn mixed_load_is_torn_free_and_drains_with_cache_flush() {
    // Point the process-global cache at a fresh TSV *before* anything can
    // touch it, so shutdown's flush is observable on disk.
    let tsv = std::env::temp_dir().join(format!("rat-serve-stress-{}.tsv", std::process::id()));
    let _ = std::fs::remove_file(&tsv);
    std::env::set_var("RAT_SIM_CACHE", &tsv);

    let handle = Server::start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = handle.addr();
    let bodies = Arc::new(workload());
    let completed = Arc::new(AtomicU64::new(0));

    let clients: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let bodies = Arc::clone(&bodies);
            let completed = Arc::clone(&completed);
            std::thread::spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    let (path, body, mode) = &bodies[(t + i) % bodies.len()];
                    let (status, resp) = post(addr, path, body);
                    // A torn or interleaved response would fail one of
                    // these three ways: wrong status, unparsable JSON, or
                    // a mode that doesn't match the request.
                    assert_eq!(status, 200, "client {t} req {i} ({path}): {resp}");
                    let doc = json::parse(&resp)
                        .unwrap_or_else(|e| panic!("client {t} torn response ({e}): {resp}"));
                    assert_eq!(
                        doc.get("mode").and_then(Json::as_str),
                        Some(*mode),
                        "client {t} req {i} answered with the wrong mode: {resp}"
                    );
                    assert!(
                        doc.get("report").and_then(Json::as_str).is_some(),
                        "client {t} req {i} missing report: {resp}"
                    );
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // While the load runs, sample /metrics: both the simulator cache's
    // hits and the response cache's hits must never go backwards, and
    // shard contention must be reported (the counter may legitimately stay
    // 0 on an uncontended run — presence is the contract).
    let mut last_hits = 0u64;
    let mut last_response_hits = 0u64;
    let mut contention_seen = false;
    let total = (CLIENT_THREADS * REQUESTS_PER_CLIENT) as u64;
    while completed.load(Ordering::Relaxed) < total {
        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        let hits = metric_value(&body, "cache_hits ").expect("cache_hits exported");
        assert!(
            hits >= last_hits,
            "cache.hits went backwards: {last_hits} -> {hits}"
        );
        last_hits = hits;
        let response_hits = metric_value(&body, "pipeline_cache_response_hits")
            .expect("pipeline_cache_response_hits exported");
        assert!(
            response_hits >= last_response_hits,
            "cache.response.hits went backwards: {last_response_hits} -> {response_hits}"
        );
        last_response_hits = response_hits;
        contention_seen |= metric_value(&body, "cache_shard_contention ").is_some();
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        contention_seen,
        "cache_shard_contention missing from /metrics"
    );
    for c in clients {
        c.join().expect("client thread panicked");
    }

    // Every client repeats the same seven bodies, so the response cache
    // must have served real hits by the end.
    let (_, body) = get(addr, "/metrics");
    let response_hits = metric_value(&body, "pipeline_cache_response_hits").unwrap();
    assert!(
        response_hits > 0,
        "repeated identical requests never hit the response cache"
    );

    // Clean drain: every accepted connection was answered, nothing was
    // dropped mid-flight, and the worker/acceptor threads are all joined by
    // the time shutdown() returns.
    let summary = handle.shutdown();
    assert!(
        summary.accepted >= total,
        "accepted {} < {total} issued",
        summary.accepted
    );
    assert_eq!(
        summary.ok + summary.errored + summary.rejected_busy,
        summary.accepted
    );
    assert!(
        summary.ok >= total,
        "some stress requests were not answered ok"
    );

    // The write-behind cache was flushed on drain: the TSV exists and
    // holds at least the distinct simulation points we drove.
    let flushed = std::fs::read_to_string(&tsv)
        .unwrap_or_else(|e| panic!("cache TSV not flushed to {}: {e}", tsv.display()));
    let entries = flushed.lines().filter(|l| !l.trim().is_empty()).count();
    assert!(
        entries >= 2,
        "flushed cache has {entries} entries, expected >= 2:\n{flushed}"
    );
    let _ = std::fs::remove_file(&tsv);
}
