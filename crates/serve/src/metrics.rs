//! Server-side observability: request counters, a fixed-bucket latency
//! histogram, and the plaintext `GET /metrics` rendering.
//!
//! The pipeline's own counters (engine jobs, simulator events, cache hits)
//! come from `rat_core::telemetry`; since [`Telemetry::drain`] resets the
//! collector, workers periodically drain into the cumulative totals held
//! here, so `/metrics` is monotonic across the server's lifetime while the
//! per-thread span buffers stay bounded.
//!
//! [`Telemetry::drain`]: rat_core::telemetry::Telemetry::drain

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use fpga_sim::CacheStats;
use rat_core::telemetry::{Metric, Profile};

/// The status codes the server can emit, in rendering order.
pub const STATUSES: [u16; 10] = [200, 400, 404, 405, 408, 413, 422, 500, 503, 507];

/// Latency histogram with power-of-two microsecond buckets: bucket `i`
/// counts requests in `[2^i, 2^(i+1))` µs, with the last bucket open-ended.
/// Fixed buckets keep recording lock-free-cheap (one index computation, one
/// add under the caller's lock) and render compactly.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; Histogram::BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Histogram {
    /// Bucket count: `2^31` µs ≈ 36 minutes in the top open-ended bucket.
    pub const BUCKETS: usize = 32;

    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; Histogram::BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    fn bucket_index(us: u64) -> usize {
        ((64 - us.leading_zeros()).saturating_sub(1) as usize).min(Histogram::BUCKETS - 1)
    }

    /// Record one request latency.
    pub fn record(&mut self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_index(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Total recorded requests.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Estimate quantile `q` in microseconds (upper bucket bound), `None`
    /// while empty. Bucket resolution makes this an estimate within 2x,
    /// which is plenty to tell a 40 µs warm hit from a 40 ms cold miss.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if i + 1 >= Histogram::BUCKETS {
                    self.max_us
                } else {
                    (1u64 << (i + 1)) - 1
                });
            }
        }
        Some(self.max_us)
    }

    /// Render as `latency_us_bucket{le="..."} n` lines plus count/sum/max.
    pub fn render(&self, out: &mut String) {
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if *n == 0 {
                continue;
            }
            let le = if i + 1 >= Histogram::BUCKETS {
                "+Inf".to_string()
            } else {
                format!("{}", 1u64 << (i + 1))
            };
            out.push_str(&format!("latency_us_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("latency_us_count {}\n", self.count));
        out.push_str(&format!("latency_us_sum {}\n", self.sum_us));
        out.push_str(&format!("latency_us_max {}\n", self.max_us));
        for (label, q) in [("p50", 0.50), ("p99", 0.99), ("p999", 0.999)] {
            if let Some(v) = self.quantile_us(q) {
                out.push_str(&format!("latency_us_{label} {v}\n"));
            }
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Cumulative server metrics shared by every worker.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Connections rejected with 503 because the queue was full.
    pub rejected_busy: AtomicU64,
    /// Responses by status code, indexed like [`STATUSES`].
    status_counts: [AtomicU64; STATUSES.len()],
    /// Latency histogram over all served requests.
    latency: Mutex<Histogram>,
    /// Cumulative pipeline counters, merged from periodic telemetry drains.
    pipeline: Mutex<[u64; Metric::ALL.len()]>,
}

impl ServerMetrics {
    /// A zeroed collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one response with `status`, taking `latency` from queue-entry
    /// to response-written.
    pub fn observe(&self, status: u16, latency: Duration) {
        if let Some(i) = STATUSES.iter().position(|s| *s == status) {
            self.status_counts[i].fetch_add(1, Ordering::Relaxed);
        }
        self.latency.lock().expect("latency lock").record(latency);
    }

    /// Total responses with `status` so far.
    pub fn status_count(&self, status: u16) -> u64 {
        STATUSES
            .iter()
            .position(|s| *s == status)
            .map(|i| self.status_counts[i].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Merge one drained telemetry [`Profile`] into the cumulative pipeline
    /// totals (sum for counters, max for gauges).
    pub fn merge_profile(&self, profile: &Profile) {
        let mut totals = self.pipeline.lock().expect("pipeline lock");
        for (i, m) in Metric::ALL.iter().enumerate() {
            let v = profile.metric(*m);
            if m.is_gauge() {
                totals[i] = totals[i].max(v);
            } else {
                totals[i] = totals[i].saturating_add(v);
            }
        }
    }

    /// Cumulative value of one pipeline metric.
    pub fn pipeline_metric(&self, metric: Metric) -> u64 {
        let totals = self.pipeline.lock().expect("pipeline lock");
        Metric::ALL
            .iter()
            .position(|m| *m == metric)
            .map(|i| totals[i])
            .unwrap_or(0)
    }

    /// Render the plaintext `/metrics` body: serve-layer counters, the
    /// latency histogram, cumulative pipeline counters, the live
    /// simulator-cache statistics, and (when the response cache is on) the
    /// rendered-response cache occupancy.
    pub fn render(
        &self,
        cache: &CacheStats,
        queue_depth: usize,
        queue_high_water: usize,
        workers: usize,
        responses: Option<crate::respcache::ResponseCacheStats>,
    ) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("serve_workers {workers}\n"));
        out.push_str(&format!("serve_queue_depth {queue_depth}\n"));
        out.push_str(&format!(
            "serve_queue_depth_high_water {queue_high_water}\n"
        ));
        out.push_str(&format!(
            "serve_accepted_total {}\n",
            self.accepted.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "serve_rejected_busy_total {}\n",
            self.rejected_busy.load(Ordering::Relaxed)
        ));
        for (i, s) in STATUSES.iter().enumerate() {
            let n = self.status_counts[i].load(Ordering::Relaxed);
            if n > 0 {
                out.push_str(&format!("serve_responses_total{{status=\"{s}\"}} {n}\n"));
            }
        }
        self.latency.lock().expect("latency lock").render(&mut out);
        {
            let totals = self.pipeline.lock().expect("pipeline lock");
            for (i, m) in Metric::ALL.iter().enumerate() {
                out.push_str(&format!(
                    "pipeline_{} {}\n",
                    m.name().replace('.', "_"),
                    totals[i]
                ));
            }
        }
        out.push_str(&format!("cache_hits {}\n", cache.hits));
        out.push_str(&format!("cache_misses {}\n", cache.misses));
        out.push_str(&format!("cache_entries {}\n", cache.entries));
        out.push_str(&format!(
            "cache_shard_contention {}\n",
            cache.shard_contention
        ));
        if let Some(r) = responses {
            out.push_str(&format!("response_cache_entries {}\n", r.entries));
            out.push_str(&format!("response_cache_bytes {}\n", r.bytes));
        }
        out
    }

    /// Snapshot of the latency histogram (for bench reporting).
    pub fn latency_snapshot(&self) -> Histogram {
        self.latency.lock().expect("latency lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_power_of_two_microseconds() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(u64::MAX), Histogram::BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_recorded_latencies() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), None);
        for _ in 0..99 {
            h.record(Duration::from_micros(10));
        }
        h.record(Duration::from_millis(50));
        let p50 = h.quantile_us(0.50).unwrap();
        let p999 = h.quantile_us(0.999).unwrap();
        assert!(
            p50 <= 31,
            "p50 estimate {p50} should be in the 10 µs bucket"
        );
        assert!(
            p999 >= 32_768,
            "p999 estimate {p999} should see the 50 ms outlier"
        );
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn render_includes_counters_and_cache_stats() {
        let m = ServerMetrics::new();
        m.accepted.fetch_add(3, Ordering::Relaxed);
        m.observe(200, Duration::from_micros(100));
        m.observe(422, Duration::from_micros(200));
        let stats = CacheStats {
            hits: 7,
            misses: 2,
            entries: 2,
            shard_contention: 1,
        };
        let text = m.render(
            &stats,
            4,
            9,
            2,
            Some(crate::respcache::ResponseCacheStats {
                entries: 3,
                bytes: 1234,
            }),
        );
        assert!(text.contains("serve_workers 2"), "{text}");
        assert!(text.contains("serve_queue_depth 4"), "{text}");
        assert!(text.contains("serve_queue_depth_high_water 9"), "{text}");
        assert!(text.contains("serve_accepted_total 3"), "{text}");
        assert!(
            text.contains("serve_responses_total{status=\"200\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("serve_responses_total{status=\"422\"} 1"),
            "{text}"
        );
        assert!(text.contains("latency_us_count 2"), "{text}");
        assert!(text.contains("cache_hits 7"), "{text}");
        assert!(text.contains("cache_shard_contention 1"), "{text}");
        assert!(text.contains("pipeline_mc_samples 0"), "{text}");
        // The stage-graph counters are part of the schema even when idle:
        // dashboards scrape them unconditionally.
        assert!(text.contains("pipeline_stage_hits 0"), "{text}");
        assert!(text.contains("pipeline_stage_misses 0"), "{text}");
        assert!(text.contains("pipeline_stage_comm_hits 0"), "{text}");
        assert!(text.contains("pipeline_stage_comm_misses 0"), "{text}");
        // The serving-layer counters added with the response cache and the
        // solve coalescer are likewise always present.
        assert!(text.contains("pipeline_cache_response_hits 0"), "{text}");
        assert!(text.contains("pipeline_cache_response_misses 0"), "{text}");
        assert!(
            text.contains("pipeline_cache_response_inflight_waits 0"),
            "{text}"
        );
        assert!(text.contains("pipeline_coalesce_batches 0"), "{text}");
        assert!(text.contains("pipeline_coalesce_requests 0"), "{text}");
        assert!(text.contains("response_cache_entries 3"), "{text}");
        assert!(text.contains("response_cache_bytes 1234"), "{text}");
    }

    #[test]
    fn profiles_merge_cumulatively() {
        use rat_core::telemetry::Telemetry;
        let m = ServerMetrics::new();
        let t = Telemetry::new();
        t.enable();
        t.add(Metric::McSamples, 10);
        t.gauge_max(Metric::QueueHighWater, 5);
        m.merge_profile(&t.drain());
        t.add(Metric::McSamples, 7);
        t.gauge_max(Metric::QueueHighWater, 3);
        m.merge_profile(&t.drain());
        assert_eq!(m.pipeline_metric(Metric::McSamples), 17);
        assert_eq!(m.pipeline_metric(Metric::QueueHighWater), 5);
    }
}
