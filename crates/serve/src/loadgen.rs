//! The `rat bench --serve` load generator.
//!
//! Boots an in-process server, fires concurrent mixed-mode requests at it
//! recording exact per-request latencies (requests/sec, p50/p99/p999), then
//! measures the headline warm-vs-cold ratio: the p50 of a cached `solve`
//! against a warm server versus the p50 of spawning a cold `rat solve`
//! process for the same worksheet. The ratio is checked into `BENCH_6.json`
//! and enforced by the CI perf gate.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

use crate::api::escape_json;
use crate::server::{ServeConfig, Server};

/// Results of one load-generation run. All latencies in microseconds.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Whether this was the reduced-size quick run.
    pub quick: bool,
    /// Mixed-load requests completed (all 200s).
    pub requests: u64,
    /// Wall time for the mixed-load phase, milliseconds.
    pub wall_ms: f64,
    /// Mixed-load throughput, requests per second.
    pub rps: f64,
    /// Mixed-load median latency.
    pub p50_us: f64,
    /// Mixed-load 99th percentile latency.
    pub p99_us: f64,
    /// Mixed-load 99.9th percentile latency.
    pub p999_us: f64,
    /// p50 of a cached `solve` against the warm server.
    pub warm_solve_p50_us: f64,
    /// p50 of a cold `rat solve` process invocation (fork+exec+parse+solve).
    pub cold_cli_solve_p50_us: f64,
    /// `cold_cli_solve_p50_us / warm_solve_p50_us` — the resident-service
    /// speedup the ISSUE's acceptance criteria pin at ≥ 10x.
    pub warm_vs_cold: f64,
}

/// Exact percentile of a latency sample (nearest-rank), in microseconds.
pub fn percentile_us(samples: &mut [u64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * samples.len() as f64).ceil() as usize).max(1);
    samples[rank.min(samples.len()) - 1] as f64
}

fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(30)))?;
    s.write_all(
        format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )?;
    let mut out = String::new();
    s.read_to_string(&mut out)?;
    let status = out
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    Ok((status, out))
}

fn solve_body(ws_toml: &str) -> String {
    format!(
        "{{\"worksheet_toml\": \"{}\", \"target\": 8.0}}",
        escape_json(ws_toml)
    )
}

/// The mixed-mode request set: one body per analysis mode, all on the
/// shipped pdf1d worksheet, plus a cached simulation point.
fn mixed_bodies(ws_toml: &str) -> Vec<(&'static str, String)> {
    let ws = escape_json(ws_toml);
    vec![
        ("/v1/solve", solve_body(ws_toml)),
        (
            "/v1/sweep",
            format!(
                "{{\"worksheet_toml\": \"{ws}\", \"param\": \"fclock\", \
                 \"values\": [100e6, 150e6, 200e6, 250e6]}}"
            ),
        ),
        (
            "/v1/sensitivity",
            format!("{{\"worksheet_toml\": \"{ws}\"}}"),
        ),
        (
            "/v1/uncertainty",
            format!(
                "{{\"worksheet_toml\": \"{ws}\", \"samples\": 256, \
                 \"ranges\": [{{\"param\": \"alpha\", \"lo\": 0.5, \"hi\": 1.0}}]}}"
            ),
        ),
        (
            "/v1/explore",
            format!(
                "{{\"worksheet_toml\": \"{ws}\", \"min_speedup\": 5.0, \
                 \"fclocks\": [100e6, 150e6, 200e6]}}"
            ),
        ),
        (
            "/v1/simulate",
            "{\"app\": \"pdf1d\", \"mhz\": 150.0}".into(),
        ),
    ]
}

/// Run the load generator. `rat_binary` is the compiled CLI used for the
/// cold-process comparison (the CLI passes its own `current_exe`). `quick`
/// shrinks every phase for CI smoke tests.
pub fn run(rat_binary: &Path, quick: bool) -> std::io::Result<LoadReport> {
    let ws_toml =
        toml::to_string(&rat_apps::pdf::pdf1d::rat_input(150.0e6)).expect("worksheet serializes");

    // A worksheet file for the cold CLI runs.
    let ws_path = std::env::temp_dir().join(format!("rat-serve-bench-{}.toml", std::process::id()));
    std::fs::write(&ws_path, &ws_toml)?;

    let (clients, per_client, warm_n, cold_n) = if quick {
        (2usize, 30usize, 30usize, 3usize)
    } else {
        (4, 250, 200, 9)
    };

    let handle = Server::start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })?;
    let addr = handle.addr();
    let bodies = mixed_bodies(&ws_toml);

    // Phase 1: concurrent mixed-mode load.
    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let bodies = bodies.clone();
            std::thread::spawn(move || -> std::io::Result<Vec<u64>> {
                let mut lat = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let (path, body) = &bodies[(c + i) % bodies.len()];
                    let t = Instant::now();
                    let (status, resp) = post(addr, path, body)?;
                    assert_eq!(status, 200, "load request failed: {resp}");
                    lat.push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
                }
                Ok(lat)
            })
        })
        .collect();
    let mut mixed: Vec<u64> = Vec::new();
    for t in threads {
        mixed.extend(t.join().expect("load client panicked")?);
    }
    let wall = started.elapsed();

    // Phase 2: warm cached solve, sequential, exact latencies.
    let warm_body = solve_body(&ws_toml);
    let mut warm = Vec::with_capacity(warm_n);
    for _ in 0..warm_n {
        let t = Instant::now();
        let (status, resp) = post(addr, "/v1/solve", &warm_body)?;
        assert_eq!(status, 200, "warm solve failed: {resp}");
        warm.push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
    }

    handle.shutdown();

    // Phase 3: cold CLI process invocations of the same solve.
    let mut cold = Vec::with_capacity(cold_n);
    for _ in 0..cold_n {
        let t = Instant::now();
        let out = std::process::Command::new(rat_binary)
            .arg("solve")
            .arg(&ws_path)
            .arg("8")
            .output()?;
        assert!(
            out.status.success(),
            "cold `rat solve` failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        cold.push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    let _ = std::fs::remove_file(&ws_path);

    let requests = mixed.len() as u64;
    let warm_solve_p50_us = percentile_us(&mut warm, 0.50);
    let cold_cli_solve_p50_us = percentile_us(&mut cold, 0.50);
    Ok(LoadReport {
        quick,
        requests,
        wall_ms: wall.as_secs_f64() * 1e3,
        rps: requests as f64 / wall.as_secs_f64().max(1e-9),
        p50_us: percentile_us(&mut mixed, 0.50),
        p99_us: percentile_us(&mut mixed, 0.99),
        p999_us: percentile_us(&mut mixed, 0.999),
        warm_solve_p50_us,
        cold_cli_solve_p50_us,
        warm_vs_cold: cold_cli_solve_p50_us / warm_solve_p50_us.max(1.0),
    })
}

impl LoadReport {
    /// Human-readable rendering for `rat bench --serve` without `--json`.
    pub fn render(&self) -> String {
        format!(
            "serve load{}: {} requests in {:.1} ms ({:.0} req/s)\n\
             \x20 mixed-mode latency: p50 {:.0} us | p99 {:.0} us | p999 {:.0} us\n\
             \x20 cached solve p50: warm server {:.0} us vs cold CLI {:.0} us ({:.1}x)\n",
            if self.quick { " (quick)" } else { "" },
            self.requests,
            self.wall_ms,
            self.rps,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.warm_solve_p50_us,
            self.cold_cli_solve_p50_us,
            self.warm_vs_cold,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let mut v = vec![50, 10, 30, 20, 40];
        assert_eq!(percentile_us(&mut v, 0.50), 30.0);
        assert_eq!(percentile_us(&mut v, 0.99), 50.0);
        assert_eq!(percentile_us(&mut v, 0.0), 10.0);
        assert_eq!(percentile_us(&mut [], 0.5), 0.0);
    }
}
