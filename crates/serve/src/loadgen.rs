//! The `rat bench --serve` load generator.
//!
//! Two in-process servers, one workload, four measurements:
//!
//! 1. **Close-per-request baseline**: a server with the response cache
//!    disabled, every request on a fresh connection — the pre-keep-alive
//!    serving path, preserved as the honest comparison point.
//! 2. **Keep-alive mixed load**: the full server (response cache +
//!    coalescing), persistent connections, the same request mix with heavy
//!    duplication across clients — the shape a dashboard or sweep driver
//!    actually produces. The RPS ratio between the two phases is the
//!    tentpole evidence (`keepalive_vs_close_rps`, gated ≥ 3x).
//! 3. **Warm repeat latency**: the p50 of one identical request repeated on
//!    a warm connection, against the cached server vs the uncached baseline
//!    (`warm_cached_speedup`, gated ≥ 5x).
//! 4. **Warm server vs cold CLI**: the p50 of a cached `solve` against the
//!    warm server vs spawning a cold `rat solve` process (the resident-
//!    service ratio earlier evidence pinned at ≥ 10x).
//!
//! Clients are honest HTTP/1.1 citizens: framed reads (never trusting EOF),
//! reconnect when the server says `Connection: close`, and split timings so
//! connect() cost is visible separately from request round-trips.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

use crate::api::escape_json;
use crate::server::{ServeConfig, Server};

/// Results of one load-generation run. All latencies in microseconds.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Whether this was the reduced-size quick run.
    pub quick: bool,
    /// Keep-alive mixed-load requests completed (all 200s).
    pub requests: u64,
    /// Wall time for the keep-alive mixed-load phase, milliseconds.
    pub wall_ms: f64,
    /// Keep-alive mixed-load throughput, requests per second.
    pub rps: f64,
    /// Close-per-request baseline requests completed.
    pub close_requests: u64,
    /// Close-per-request baseline throughput, requests per second.
    pub close_rps: f64,
    /// `rps / close_rps` — the serving-path overhaul's headline ratio,
    /// gated ≥ 3x by the perf gate.
    pub keepalive_vs_close_rps: f64,
    /// Fraction of keep-alive-phase requests that reused an existing
    /// connection: `(requests - connects) / requests`.
    pub reuse_ratio: f64,
    /// Median `TcpStream::connect` time across both phases.
    pub connect_p50_us: f64,
    /// Keep-alive mixed-load median latency (request write → full response).
    pub p50_us: f64,
    /// Keep-alive mixed-load 99th percentile latency.
    pub p99_us: f64,
    /// Keep-alive mixed-load 99.9th percentile latency.
    pub p999_us: f64,
    /// p50 of an identical repeated request against the uncached baseline
    /// server (recomputed every time) on a warm connection.
    pub warm_uncached_p50_us: f64,
    /// p50 of the same repeated request against the cached server (rendered
    /// once, replayed from the response cache) on a warm connection.
    pub warm_cached_p50_us: f64,
    /// `warm_uncached_p50_us / warm_cached_p50_us` — gated ≥ 5x.
    pub warm_cached_speedup: f64,
    /// p50 of a cached `solve` against the warm server.
    pub warm_solve_p50_us: f64,
    /// p50 of a cold `rat solve` process invocation (fork+exec+parse+solve).
    pub cold_cli_solve_p50_us: f64,
    /// `cold_cli_solve_p50_us / warm_solve_p50_us` — the resident-service
    /// speedup earlier evidence pinned at ≥ 10x.
    pub warm_vs_cold: f64,
}

/// Exact percentile of a latency sample (nearest-rank), in microseconds.
pub fn percentile_us(samples: &mut [u64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * samples.len() as f64).ceil() as usize).max(1);
    samples[rank.min(samples.len()) - 1] as f64
}

/// A measuring HTTP/1.1 client: persistent connection (when `keep_alive`),
/// `Content-Length`-framed response reads with a carry-over buffer, and
/// split connect vs request timing.
struct HttpClient {
    addr: SocketAddr,
    keep_alive: bool,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
    /// Times a connection was (re)established.
    connects: u64,
    /// Requests completed.
    requests: u64,
    /// Each connect() duration, microseconds.
    connect_us: Vec<u64>,
}

impl HttpClient {
    fn new(addr: SocketAddr, keep_alive: bool) -> Self {
        HttpClient {
            addr,
            keep_alive,
            stream: None,
            buf: Vec::new(),
            connects: 0,
            requests: 0,
            connect_us: Vec::new(),
        }
    }

    fn ensure_connected(&mut self) -> std::io::Result<()> {
        if self.stream.is_none() {
            let t = Instant::now();
            let s = TcpStream::connect(self.addr)?;
            s.set_nodelay(true)?;
            s.set_read_timeout(Some(Duration::from_secs(30)))?;
            self.connect_us
                .push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
            self.connects += 1;
            self.buf.clear();
            self.stream = Some(s);
        }
        Ok(())
    }

    /// POST and return `(status, body)`. Reconnects transparently if a
    /// reused connection was closed under us (idle deadline, request cap).
    fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        let connection = if self.keep_alive {
            ""
        } else {
            "Connection: close\r\n"
        };
        let request = format!(
            "POST {path} HTTP/1.1\r\n{connection}Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let mut retried = false;
        loop {
            let reused = self.stream.is_some();
            self.ensure_connected()?;
            match self.try_round_trip(request.as_bytes()) {
                Ok((status, body, close)) => {
                    if close || !self.keep_alive {
                        self.stream = None;
                        self.buf.clear();
                    }
                    self.requests += 1;
                    return Ok((status, body));
                }
                Err(e) if reused && !retried => {
                    // The server may close a kept-alive connection at any
                    // time (idle, per-connection cap); one clean retry on a
                    // fresh socket is the contract-following response.
                    retried = true;
                    self.stream = None;
                    self.buf.clear();
                    let _ = e;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn try_round_trip(&mut self, request: &[u8]) -> std::io::Result<(u16, String, bool)> {
        let stream = self.stream.as_mut().expect("connected");
        stream.write_all(request)?;

        // Head: grow the carry-over buffer until the blank line.
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let mut chunk = [0u8; 4096];
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let mut content_length = 0usize;
        let mut close = !self.keep_alive;
        for line in head.lines() {
            if let Some((name, value)) = line.split_once(':') {
                let (name, value) = (name.trim(), value.trim());
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().unwrap_or(0);
                } else if name.eq_ignore_ascii_case("connection")
                    && value.eq_ignore_ascii_case("close")
                {
                    close = true;
                }
            }
        }
        self.buf.drain(..head_end);

        // Body: buffered bytes first, then exact reads — never past the end,
        // so a pipelined next response (there is none, but the framing must
        // not depend on that) would survive in the buffer.
        while self.buf.len() < content_length {
            let mut chunk = [0u8; 4096];
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8_lossy(&self.buf[..content_length]).into_owned();
        self.buf.drain(..content_length);
        Ok((status, body, close))
    }
}

fn solve_body(ws_toml: &str) -> String {
    format!(
        "{{\"worksheet_toml\": \"{}\", \"target\": 8.0}}",
        escape_json(ws_toml)
    )
}

/// The mixed-mode request set: one body per analysis mode on the shipped
/// pdf1d worksheet, a cached simulation point, and a small seeded optimize —
/// fired repeatedly by every client, so the stream is duplicate-heavy the
/// way real dashboard traffic is.
fn mixed_bodies(ws_toml: &str) -> Vec<(&'static str, String)> {
    let ws = escape_json(ws_toml);
    vec![
        ("/v1/solve", solve_body(ws_toml)),
        (
            "/v1/sweep",
            format!(
                "{{\"worksheet_toml\": \"{ws}\", \"param\": \"fclock\", \
                 \"values\": [100e6, 150e6, 200e6, 250e6]}}"
            ),
        ),
        (
            "/v1/sensitivity",
            format!("{{\"worksheet_toml\": \"{ws}\"}}"),
        ),
        (
            "/v1/uncertainty",
            format!(
                "{{\"worksheet_toml\": \"{ws}\", \"samples\": 256, \
                 \"ranges\": [{{\"param\": \"alpha\", \"lo\": 0.5, \"hi\": 1.0}}]}}"
            ),
        ),
        (
            "/v1/explore",
            format!(
                "{{\"worksheet_toml\": \"{ws}\", \"min_speedup\": 5.0, \
                 \"fclocks\": [100e6, 150e6, 200e6]}}"
            ),
        ),
        (
            "/v1/simulate",
            "{\"app\": \"pdf1d\", \"mhz\": 150.0}".into(),
        ),
        (
            "/v1/optimize",
            format!(
                "{{\"worksheet_toml\": \"{ws}\", \"seed\": 7, \
                 \"generations\": 2, \"population\": 16}}"
            ),
        ),
    ]
}

/// What one load phase measured.
struct PhaseStats {
    latencies_us: Vec<u64>,
    wall: Duration,
    requests: u64,
    connects: u64,
    connect_us: Vec<u64>,
}

/// Fire `per_client` requests from each of `clients` threads at `addr`,
/// walking the shared body list round-robin from a per-client offset.
fn run_phase(
    addr: SocketAddr,
    bodies: &[(&'static str, String)],
    clients: usize,
    per_client: usize,
    keep_alive: bool,
) -> std::io::Result<PhaseStats> {
    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let bodies = bodies.to_vec();
            std::thread::spawn(move || -> std::io::Result<(Vec<u64>, u64, u64, Vec<u64>)> {
                let mut client = HttpClient::new(addr, keep_alive);
                let mut lat = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let (path, body) = &bodies[(c + i) % bodies.len()];
                    let t = Instant::now();
                    let (status, resp) = client.post(path, body)?;
                    assert_eq!(status, 200, "load request failed ({path}): {resp}");
                    lat.push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
                }
                Ok((lat, client.requests, client.connects, client.connect_us))
            })
        })
        .collect();
    let mut stats = PhaseStats {
        latencies_us: Vec::new(),
        wall: Duration::ZERO,
        requests: 0,
        connects: 0,
        connect_us: Vec::new(),
    };
    for t in threads {
        let (lat, requests, connects, connect_us) = t.join().expect("load client panicked")?;
        stats.latencies_us.extend(lat);
        stats.requests += requests;
        stats.connects += connects;
        stats.connect_us.extend(connect_us);
    }
    stats.wall = started.elapsed();
    Ok(stats)
}

/// p50 of `n` sequential repeats of one request on a warm keep-alive
/// connection — the per-request cost with connect() amortized away.
fn warm_repeat_p50(addr: SocketAddr, path: &str, body: &str, n: usize) -> std::io::Result<f64> {
    let mut client = HttpClient::new(addr, true);
    // One untimed request to warm the connection and (when enabled) the
    // response cache.
    let (status, resp) = client.post(path, body)?;
    assert_eq!(status, 200, "warm-up request failed: {resp}");
    let mut lat = Vec::with_capacity(n);
    for _ in 0..n {
        let t = Instant::now();
        let (status, resp) = client.post(path, body)?;
        assert_eq!(status, 200, "warm repeat failed: {resp}");
        lat.push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    Ok(percentile_us(&mut lat, 0.50))
}

/// Run the load generator. `rat_binary` is the compiled CLI used for the
/// cold-process comparison (the CLI passes its own `current_exe`). `quick`
/// shrinks every phase for CI smoke tests.
pub fn run(rat_binary: &Path, quick: bool) -> std::io::Result<LoadReport> {
    let ws_toml =
        toml::to_string(&rat_apps::pdf::pdf1d::rat_input(150.0e6)).expect("worksheet serializes");

    // A worksheet file for the cold CLI runs.
    let ws_path = std::env::temp_dir().join(format!("rat-serve-bench-{}.toml", std::process::id()));
    std::fs::write(&ws_path, &ws_toml)?;

    let (clients, per_client, warm_n, cold_n) = if quick {
        (2usize, 30usize, 30usize, 3usize)
    } else {
        (4, 250, 200, 9)
    };
    let bodies = mixed_bodies(&ws_toml);
    // The repeated-identical-request probe: a Monte-Carlo body heavy enough
    // that recomputing it is real work, exactly the kind of request a
    // polling dashboard repeats.
    let warm_probe = (
        "/v1/uncertainty",
        format!(
            "{{\"worksheet_toml\": \"{}\", \"samples\": 4096, \
             \"ranges\": [{{\"param\": \"alpha\", \"lo\": 0.5, \"hi\": 1.0}}]}}",
            escape_json(&ws_toml)
        ),
    );

    // Phase 1: the close-per-request, no-response-cache baseline server.
    let baseline = Server::start(ServeConfig {
        workers: 4,
        response_cache_bytes: 0,
        ..ServeConfig::default()
    })?;
    let close_stats = run_phase(baseline.addr(), &bodies, clients, per_client, false)?;
    let warm_uncached_p50_us =
        warm_repeat_p50(baseline.addr(), warm_probe.0, &warm_probe.1, warm_n)?;
    baseline.shutdown();

    // Phase 2: the full server — keep-alive, response cache, coalescing.
    let handle = Server::start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })?;
    let addr = handle.addr();
    let keep_stats = run_phase(addr, &bodies, clients, per_client, true)?;
    let warm_cached_p50_us = warm_repeat_p50(addr, warm_probe.0, &warm_probe.1, warm_n)?;

    // Phase 3: warm cached solve, sequential, exact latencies — the
    // longstanding warm-server-vs-cold-CLI probe.
    let warm_body = solve_body(&ws_toml);
    let mut warm_client = HttpClient::new(addr, true);
    let mut warm = Vec::with_capacity(warm_n);
    for _ in 0..warm_n {
        let t = Instant::now();
        let (status, resp) = warm_client.post("/v1/solve", &warm_body)?;
        assert_eq!(status, 200, "warm solve failed: {resp}");
        warm.push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
    }

    handle.shutdown();

    // Phase 4: cold CLI process invocations of the same solve.
    let mut cold = Vec::with_capacity(cold_n);
    for _ in 0..cold_n {
        let t = Instant::now();
        let out = std::process::Command::new(rat_binary)
            .arg("solve")
            .arg(&ws_path)
            .arg("8")
            .output()?;
        assert!(
            out.status.success(),
            "cold `rat solve` failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        cold.push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    let _ = std::fs::remove_file(&ws_path);

    let mut mixed = keep_stats.latencies_us.clone();
    let mut connect_all: Vec<u64> = close_stats
        .connect_us
        .iter()
        .chain(&keep_stats.connect_us)
        .copied()
        .collect();
    let requests = keep_stats.requests;
    let close_requests = close_stats.requests;
    let rps = requests as f64 / keep_stats.wall.as_secs_f64().max(1e-9);
    let close_rps = close_requests as f64 / close_stats.wall.as_secs_f64().max(1e-9);
    let warm_solve_p50_us = percentile_us(&mut warm, 0.50);
    let cold_cli_solve_p50_us = percentile_us(&mut cold, 0.50);
    Ok(LoadReport {
        quick,
        requests,
        wall_ms: keep_stats.wall.as_secs_f64() * 1e3,
        rps,
        close_requests,
        close_rps,
        keepalive_vs_close_rps: rps / close_rps.max(1e-9),
        reuse_ratio: (requests.saturating_sub(keep_stats.connects)) as f64
            / (requests as f64).max(1.0),
        connect_p50_us: percentile_us(&mut connect_all, 0.50),
        p50_us: percentile_us(&mut mixed, 0.50),
        p99_us: percentile_us(&mut mixed, 0.99),
        p999_us: percentile_us(&mut mixed, 0.999),
        warm_uncached_p50_us,
        warm_cached_p50_us,
        warm_cached_speedup: warm_uncached_p50_us / warm_cached_p50_us.max(1.0),
        warm_solve_p50_us,
        cold_cli_solve_p50_us,
        warm_vs_cold: cold_cli_solve_p50_us / warm_solve_p50_us.max(1.0),
    })
}

impl LoadReport {
    /// Human-readable rendering for `rat bench --serve` without `--json`.
    pub fn render(&self) -> String {
        format!(
            "serve load{}: {} keep-alive requests in {:.1} ms ({:.0} req/s)\n\
             \x20 close-per-request baseline: {} requests at {:.0} req/s -> keep-alive {:.1}x\n\
             \x20 connection reuse: {:.3} (connect p50 {:.0} us)\n\
             \x20 mixed-mode latency: p50 {:.0} us | p99 {:.0} us | p999 {:.0} us\n\
             \x20 repeated request p50: uncached {:.0} us vs cached {:.0} us ({:.1}x)\n\
             \x20 cached solve p50: warm server {:.0} us vs cold CLI {:.0} us ({:.1}x)\n",
            if self.quick { " (quick)" } else { "" },
            self.requests,
            self.wall_ms,
            self.rps,
            self.close_requests,
            self.close_rps,
            self.keepalive_vs_close_rps,
            self.reuse_ratio,
            self.connect_p50_us,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.warm_uncached_p50_us,
            self.warm_cached_p50_us,
            self.warm_cached_speedup,
            self.warm_solve_p50_us,
            self.cold_cli_solve_p50_us,
            self.warm_vs_cold,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let mut v = vec![50, 10, 30, 20, 40];
        assert_eq!(percentile_us(&mut v, 0.50), 30.0);
        assert_eq!(percentile_us(&mut v, 0.99), 50.0);
        assert_eq!(percentile_us(&mut v, 0.0), 10.0);
        assert_eq!(percentile_us(&mut [], 0.5), 0.0);
    }

    #[test]
    fn keep_alive_client_reuses_its_connection() {
        let handle = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .expect("server starts");
        let mut client = HttpClient::new(handle.addr(), true);
        let body = "{\"app\": \"sort\", \"mhz\": 147.0}";
        for _ in 0..5 {
            let (status, _) = client.post("/v1/simulate", body).expect("request");
            assert_eq!(status, 200);
        }
        assert_eq!(client.requests, 5);
        assert_eq!(client.connects, 1, "keep-alive client reconnected");
        handle.shutdown();
    }

    #[test]
    fn close_client_reconnects_every_request() {
        let handle = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .expect("server starts");
        let mut client = HttpClient::new(handle.addr(), false);
        let body = "{\"app\": \"sort\", \"mhz\": 147.0}";
        for _ in 0..3 {
            let (status, _) = client.post("/v1/simulate", body).expect("request");
            assert_eq!(status, 200);
        }
        assert_eq!(client.connects, 3, "close client must not reuse");
        assert_eq!(client.connect_us.len(), 3);
        handle.shutdown();
    }

    #[test]
    fn keep_alive_client_survives_a_server_side_close() {
        let handle = Server::start(ServeConfig {
            workers: 1,
            max_requests_per_conn: 2,
            ..ServeConfig::default()
        })
        .expect("server starts");
        let mut client = HttpClient::new(handle.addr(), true);
        let body = "{\"app\": \"sort\", \"mhz\": 147.0}";
        for _ in 0..5 {
            let (status, _) = client.post("/v1/simulate", body).expect("request");
            assert_eq!(status, 200);
        }
        // Cap of 2 per connection → 5 requests need 3 connections, and the
        // reconnects are transparent.
        assert_eq!(client.requests, 5);
        assert_eq!(client.connects, 3);
        handle.shutdown();
    }
}
