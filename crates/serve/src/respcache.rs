//! Content-addressed cache of fully rendered response bodies, with
//! single-flight deduplication.
//!
//! Storage is sharded 16 ways like the simulation cache, so concurrent
//! workers rarely contend on one lock. Each shard maps a 128-bit request
//! digest (see [`crate::keys`]) to either a ready body or a *flight*: a
//! marker that some worker is already computing this exact response.
//! Arrivals that find a flight block on its condvar instead of recomputing —
//! under a thundering herd of identical requests, exactly one computation
//! runs and every waiter gets the leader's bytes, which are byte-identical
//! to a fresh render because they *are* the leader's fresh render.
//!
//! A second, cheaper tier keys the byte-exact `(route, body)` pair so a
//! repeated identical request skips JSON and TOML parsing entirely; it is an
//! alias onto the canonical entry's body, filled in after the canonical key
//! is known.
//!
//! Eviction is LRU by a global access tick under a per-shard byte budget.
//! Flights are never evicted — a leader must always find its own marker to
//! complete. If a leader fails (error response) or panics, its guard's
//! `Drop` clears the flight and wakes all waiters to retry, so a poisoned
//! request cannot wedge the cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use rat_core::telemetry::{self, Metric};

const SHARD_COUNT: usize = 16;

/// One in-flight computation; waiters sleep on `cv` until the leader
/// completes (body published) or fails (retry signal).
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

enum FlightState {
    Pending,
    Done(Arc<String>),
    Failed,
}

enum Slot {
    Ready { body: Arc<String>, stamp: u64 },
    Pending(Arc<Flight>),
}

#[derive(Default)]
struct Shard {
    map: HashMap<u128, Slot>,
    /// Bytes held by Ready bodies in this shard.
    bytes: usize,
}

#[derive(Default)]
struct RawShard {
    map: HashMap<u128, (Arc<String>, u64)>,
    bytes: usize,
}

/// What [`ResponseCache::begin`] resolved to.
pub enum Lookup {
    /// A ready body — serve it as-is.
    Hit(Arc<String>),
    /// This caller is the leader: compute the response, then call
    /// [`FlightGuard::complete`] (or drop the guard on failure).
    Miss(FlightGuard),
}

/// Leadership token for one cache fill. Dropping it without completing
/// marks the flight failed and wakes waiters to retry.
pub struct FlightGuard {
    cache: Arc<ResponseCache>,
    key: u128,
    flight: Arc<Flight>,
    completed: bool,
}

impl FlightGuard {
    /// Publish the rendered body: waiters wake with it, and it becomes a
    /// Ready entry (unless it alone exceeds the shard budget, in which case
    /// waiters still get it but nothing is stored).
    pub fn complete(mut self, body: Arc<String>) {
        self.completed = true;
        {
            let mut st = self.flight.state.lock().expect("flight lock poisoned");
            *st = FlightState::Done(Arc::clone(&body));
        }
        self.flight.cv.notify_all();

        let shard = &self.cache.shards[shard_of(self.key)];
        let mut sh = shard.lock().expect("response cache shard poisoned");
        if let Some(Slot::Pending(_)) = sh.map.get(&self.key) {
            sh.map.remove(&self.key);
            if body.len() <= self.cache.shard_budget {
                sh.bytes += body.len();
                sh.map.insert(
                    self.key,
                    Slot::Ready {
                        body,
                        stamp: self.cache.tick(),
                    },
                );
                let budget = self.cache.shard_budget;
                evict_over_budget(&mut sh, budget);
            }
        }
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        // Leader failed: clear the marker and signal retry.
        {
            let shard = &self.cache.shards[shard_of(self.key)];
            let mut sh = shard.lock().expect("response cache shard poisoned");
            if let Some(Slot::Pending(_)) = sh.map.get(&self.key) {
                sh.map.remove(&self.key);
            }
        }
        let mut st = self.flight.state.lock().expect("flight lock poisoned");
        *st = FlightState::Failed;
        drop(st);
        self.flight.cv.notify_all();
    }
}

fn shard_of(key: u128) -> usize {
    // High bits: the FNV mixing concentrates entropy there.
    (key >> 124) as usize % SHARD_COUNT
}

fn evict_over_budget(sh: &mut Shard, budget: usize) {
    while sh.bytes > budget {
        let victim = sh
            .map
            .iter()
            .filter_map(|(k, slot)| match slot {
                Slot::Ready { stamp, .. } => Some((*k, *stamp)),
                Slot::Pending(_) => None,
            })
            .min_by_key(|&(_, stamp)| stamp)
            .map(|(k, _)| k);
        match victim {
            Some(k) => {
                if let Some(Slot::Ready { body, .. }) = sh.map.remove(&k) {
                    sh.bytes -= body.len();
                }
            }
            None => break, // only flights left; nothing evictable
        }
    }
}

/// Point-in-time occupancy, for `/metrics` rendering and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseCacheStats {
    /// Ready entries across both tiers.
    pub entries: usize,
    /// Bytes held by ready bodies across both tiers.
    pub bytes: usize,
}

/// The serving layer's rendered-response cache. One per server.
pub struct ResponseCache {
    shards: [Mutex<Shard>; SHARD_COUNT],
    raw_shards: [Mutex<RawShard>; SHARD_COUNT],
    shard_budget: usize,
    clock: AtomicU64,
}

impl ResponseCache {
    /// A cache splitting `total_budget_bytes` evenly across 16 shards (the
    /// canonical tier; the raw alias tier gets the same again — aliases are
    /// `Arc` clones, so the true overhead is key + pointer, not body bytes).
    pub fn new(total_budget_bytes: usize) -> Arc<Self> {
        Arc::new(ResponseCache {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            raw_shards: std::array::from_fn(|_| Mutex::new(RawShard::default())),
            shard_budget: (total_budget_bytes / SHARD_COUNT).max(1),
            clock: AtomicU64::new(0),
        })
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Byte-exact fast tier: a hit skips request parsing entirely.
    pub fn lookup_raw(&self, raw_key: u128) -> Option<Arc<String>> {
        let mut sh = self.raw_shards[shard_of(raw_key)]
            .lock()
            .expect("raw response shard poisoned");
        let stamp = self.tick();
        let hit = sh.map.get_mut(&raw_key).map(|(body, s)| {
            *s = stamp;
            Arc::clone(body)
        });
        if hit.is_some() {
            telemetry::add(Metric::ResponseCacheHits, 1);
        }
        hit
    }

    /// Alias the byte-exact request onto a body the canonical tier settled.
    pub fn alias_raw(&self, raw_key: u128, body: &Arc<String>) {
        if body.len() > self.shard_budget {
            return;
        }
        let mut sh = self.raw_shards[shard_of(raw_key)]
            .lock()
            .expect("raw response shard poisoned");
        let stamp = self.tick();
        match sh.map.entry(raw_key) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().1 = stamp,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((Arc::clone(body), stamp));
                sh.bytes += body.len();
            }
        }
        while sh.bytes > self.shard_budget {
            let victim = sh.map.iter().min_by_key(|(_, (_, s))| *s).map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    if let Some((body, _)) = sh.map.remove(&k) {
                        sh.bytes -= body.len();
                    }
                }
                None => break,
            }
        }
    }

    /// Resolve a canonical key: a ready hit, a wait on someone else's
    /// flight (counted, then resolved to their body), or leadership of a
    /// new flight.
    pub fn begin(self: &Arc<Self>, key: u128) -> Lookup {
        loop {
            let flight = {
                let mut sh = self.shards[shard_of(key)]
                    .lock()
                    .expect("response cache shard poisoned");
                match sh.map.get_mut(&key) {
                    Some(Slot::Ready { body, stamp }) => {
                        *stamp = self.tick();
                        let body = Arc::clone(body);
                        telemetry::add(Metric::ResponseCacheHits, 1);
                        return Lookup::Hit(body);
                    }
                    Some(Slot::Pending(flight)) => Arc::clone(flight),
                    None => {
                        let flight = Arc::new(Flight {
                            state: Mutex::new(FlightState::Pending),
                            cv: Condvar::new(),
                        });
                        sh.map.insert(key, Slot::Pending(Arc::clone(&flight)));
                        telemetry::add(Metric::ResponseCacheMisses, 1);
                        return Lookup::Miss(FlightGuard {
                            cache: Arc::clone(self),
                            key,
                            flight,
                            completed: false,
                        });
                    }
                }
            };

            // Wait outside the shard lock: flights block only their own key.
            telemetry::add(Metric::ResponseCacheInflightWaits, 1);
            let mut st = flight.state.lock().expect("flight lock poisoned");
            loop {
                match &*st {
                    FlightState::Pending => {
                        st = flight.cv.wait(st).expect("flight lock poisoned");
                    }
                    FlightState::Done(body) => {
                        telemetry::add(Metric::ResponseCacheHits, 1);
                        return Lookup::Hit(Arc::clone(body));
                    }
                    FlightState::Failed => break, // retry; may become leader
                }
            }
        }
    }

    /// Occupancy across both tiers.
    pub fn stats(&self) -> ResponseCacheStats {
        let mut entries = 0;
        let mut bytes = 0;
        for sh in &self.shards {
            let sh = sh.lock().expect("response cache shard poisoned");
            entries += sh
                .map
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count();
            bytes += sh.bytes;
        }
        for sh in &self.raw_shards {
            let sh = sh.lock().expect("raw response shard poisoned");
            entries += sh.map.len();
            bytes += sh.bytes;
        }
        ResponseCacheStats { entries, bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    fn body(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn miss_then_hit_round_trips_the_exact_bytes() {
        let cache = ResponseCache::new(1 << 20);
        match cache.begin(7) {
            Lookup::Miss(guard) => guard.complete(body("the rendered response")),
            Lookup::Hit(_) => panic!("empty cache cannot hit"),
        }
        match cache.begin(7) {
            Lookup::Hit(b) => assert_eq!(*b, "the rendered response"),
            Lookup::Miss(_) => panic!("completed entry must hit"),
        }
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn single_flight_runs_one_leader_for_a_herd() {
        let cache = ResponseCache::new(1 << 20);
        let n = 8;
        let barrier = Arc::new(Barrier::new(n));
        let leaders = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    barrier.wait();
                    match cache.begin(99) {
                        Lookup::Miss(guard) => {
                            leaders.fetch_add(1, Ordering::Relaxed);
                            // Give waiters time to pile onto the flight.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            guard.complete(body("only once"));
                            "only once".to_string()
                        }
                        Lookup::Hit(b) => (*b).clone(),
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), "only once");
        }
        assert_eq!(leaders.load(Ordering::Relaxed), 1, "exactly one leader");
    }

    #[test]
    fn failed_leader_wakes_waiters_into_retry() {
        let cache = ResponseCache::new(1 << 20);
        let guard = match cache.begin(5) {
            Lookup::Miss(g) => g,
            Lookup::Hit(_) => unreachable!(),
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || match cache.begin(5) {
                // After the leader's failure the waiter retries and becomes
                // the new leader.
                Lookup::Miss(g) => {
                    g.complete(body("second try"));
                    true
                }
                Lookup::Hit(_) => false,
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        drop(guard); // leader fails without completing
        assert!(waiter.join().unwrap(), "waiter should retry as leader");
        match cache.begin(5) {
            Lookup::Hit(b) => assert_eq!(*b, "second try"),
            Lookup::Miss(_) => panic!("retry should have filled the entry"),
        }
    }

    #[test]
    fn lru_evicts_oldest_ready_entries_under_byte_pressure() {
        // Budget of 64 bytes per shard; three 30-byte bodies on one shard
        // (small keys all land on shard 0) must evict the least recently
        // used.
        let cache = ResponseCache::new(64 * SHARD_COUNT);
        for i in 0..2u128 {
            match cache.begin(i) {
                Lookup::Miss(g) => g.complete(body(&"x".repeat(30))),
                Lookup::Hit(_) => panic!(),
            }
        }
        // Touch key 0 so key 1 is the LRU victim.
        assert!(matches!(cache.begin(0), Lookup::Hit(_)));
        match cache.begin(2) {
            Lookup::Miss(g) => g.complete(body(&"x".repeat(30))),
            Lookup::Hit(_) => panic!(),
        }
        assert!(
            matches!(cache.begin(0), Lookup::Hit(_)),
            "recently touched entry survives"
        );
        assert!(
            matches!(cache.begin(1), Lookup::Miss(_)),
            "LRU entry was evicted"
        );
    }

    #[test]
    fn raw_tier_aliases_without_double_charging_entries() {
        let cache = ResponseCache::new(1 << 20);
        assert!(cache.lookup_raw(11).is_none());
        let b = body("aliased");
        cache.alias_raw(11, &b);
        assert_eq!(*cache.lookup_raw(11).unwrap(), "aliased");
    }

    #[test]
    fn oversized_bodies_are_served_but_not_stored() {
        let cache = ResponseCache::new(16); // 1 byte per shard
        match cache.begin(3) {
            Lookup::Miss(g) => g.complete(body("way too big for the budget")),
            Lookup::Hit(_) => panic!(),
        }
        assert!(matches!(cache.begin(3), Lookup::Miss(_)));
        assert_eq!(cache.stats().bytes, 0);
    }
}
