//! `rat serve` — a resident analysis service for the RAT model pipeline.
//!
//! Every CLI invocation is a cold process: it re-parses TOML, rebuilds the
//! platform catalog, and starts with an empty simulator cache. This crate
//! keeps all of that warm in a long-running daemon and serves the five
//! analysis modes (`solve`, `sweep`, `uncertainty`, `explore`,
//! `sensitivity`) plus cached case-study simulation over a deliberately
//! tiny, hand-rolled HTTP/1.1 + JSON protocol on `std::net::TcpListener` —
//! no framework, no async runtime, no new dependencies.
//!
//! The architecture is a stack of small layers:
//!
//! * [`http`] — request framing: a strict HTTP/1.1 reader (request line,
//!   headers, `Content-Length` body) and response writer over a persistent
//!   [`http::Connection`] that loops requests per socket (keep-alive by
//!   default under HTTP/1.1, honoring `Connection:` overrides) and carries
//!   pipelined bytes between them.
//! * [`api`] — the analysis surface: request JSON in, the **same rendered
//!   report text the CLI prints** out, wrapped in JSON. Both the CLI and the
//!   server call the same `*_report` functions here, which is what makes the
//!   differential parity suite's byte-identity contract hold by
//!   construction rather than by luck. The [`RatError`] taxonomy maps onto
//!   HTTP status codes exactly the way it maps onto CLI exit codes; see
//!   [`api::http_status`].
//! * [`keys`] — content-addressed digests of requests: a byte-exact raw
//!   tier and a canonicalized parsed tier, both 128-bit FNV via the
//!   `fpga-sim` digest scheme.
//! * [`respcache`] — the rendered-response cache those keys index, 16-way
//!   sharded with an LRU byte budget and single-flight dedup: a thundering
//!   herd of identical requests computes once.
//! * [`coalesce`] — cross-request solve batching: concurrent `/v1/solve`
//!   computations drain into one batched evaluation whose per-request
//!   answers are bit-identical to the solo path.
//! * [`server`] — the daemon: an acceptor thread feeding a bounded
//!   connection queue (backpressure → `503`), N worker threads each owning
//!   a warm [`rat_core::engine::Engine`] and looping requests on kept-alive
//!   connections, graceful drain on `POST /shutdown` or SIGINT/SIGTERM
//!   (in-flight requests complete, the write-behind simulator cache is
//!   flushed to disk), and a plaintext `GET /metrics` endpoint with
//!   per-request latency histograms.
//! * [`loadgen`] — the `rat bench --serve` load generator: fires mixed
//!   keep-alive load (with duplicate phases) at an in-process server plus a
//!   close-per-request baseline, records RPS, tail latency, connection
//!   reuse, and the warm-vs-cold CLI ratio checked into `BENCH_10.json`.
//!
//! [`RatError`]: rat_core::RatError

#![warn(missing_docs)]

pub mod api;
pub mod coalesce;
pub mod http;
pub mod keys;
pub mod loadgen;
pub mod metrics;
mod queue;
pub mod respcache;
pub mod server;

pub use server::{ServeConfig, ServeSummary, Server, ServerHandle};
