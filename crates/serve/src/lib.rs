//! `rat serve` — a resident analysis service for the RAT model pipeline.
//!
//! Every CLI invocation is a cold process: it re-parses TOML, rebuilds the
//! platform catalog, and starts with an empty simulator cache. This crate
//! keeps all of that warm in a long-running daemon and serves the five
//! analysis modes (`solve`, `sweep`, `uncertainty`, `explore`,
//! `sensitivity`) plus cached case-study simulation over a deliberately
//! tiny, hand-rolled HTTP/1.1 + JSON protocol on `std::net::TcpListener` —
//! no framework, no async runtime, no new dependencies.
//!
//! The architecture is four small layers:
//!
//! * [`http`] — request framing: a strict HTTP/1.1 reader (request line,
//!   headers, `Content-Length` body) and response writer. One request per
//!   connection (`Connection: close`), which on loopback costs microseconds
//!   and keeps the state machine trivial.
//! * [`api`] — the analysis surface: request JSON in, the **same rendered
//!   report text the CLI prints** out, wrapped in JSON. Both the CLI and the
//!   server call the same `*_report` functions here, which is what makes the
//!   differential parity suite's byte-identity contract hold by
//!   construction rather than by luck. The [`RatError`] taxonomy maps onto
//!   HTTP status codes exactly the way it maps onto CLI exit codes; see
//!   [`api::http_status`].
//! * [`server`] — the daemon: an acceptor thread feeding a bounded
//!   connection queue (backpressure → `503`), N worker threads each owning
//!   a warm [`rat_core::engine::Engine`], graceful drain on `POST
//!   /shutdown` or SIGINT/SIGTERM (in-flight requests complete, the
//!   write-behind simulator cache is flushed to disk), and a plaintext
//!   `GET /metrics` endpoint with per-request latency histograms.
//! * [`loadgen`] — the `rat bench --serve` load generator: fires warm
//!   requests at an in-process server, records requests/sec and
//!   p50/p99/p999 tail latency, and times cold CLI process invocations of
//!   the same analysis for the warm-vs-cold ratio checked into
//!   `BENCH_6.json`.
//!
//! [`RatError`]: rat_core::RatError

#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod loadgen;
pub mod metrics;
mod queue;
pub mod server;

pub use server::{ServeConfig, ServeSummary, Server, ServerHandle};
