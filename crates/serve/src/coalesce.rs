//! Cross-request solve coalescing.
//!
//! When several `/v1/solve` requests are in flight at once, evaluating them
//! one-by-one repeats the per-worksheet work (validation, `t_comm`,
//! `t_comp`, the memoized ceiling) once per request. The coalescer instead
//! drains everything pending into one batch, groups it by worksheet, and
//! evaluates each group through [`rat_core::solve::inverse_quad_batch`] —
//! whose elements are bit-identical to the scalar [`inverse_quad`] path, so
//! a coalesced response is byte-for-byte the solo response.
//!
//! The shape is leader election on one mutex/condvar pair: a submitter
//! parks its job, and whoever finds no active leader drains the pending
//! list, evaluates it outside the lock, scatters results into each job's
//! slot, and wakes everyone. Submitters that wake without a result loop —
//! either becoming the next leader or waiting again. The leader runs pure
//! total arithmetic (no I/O, no panics on any input the parser admits), so
//! leadership always terminates.
//!
//! [`inverse_quad`]: rat_core::solve::inverse_quad

use std::sync::{Arc, Condvar, Mutex};

use rat_core::params::RatInput;
use rat_core::solve::{inverse_quad_batch, InverseQuad};
use rat_core::telemetry::{self, Metric};

/// Cap on jobs drained into one batch; keeps a pathological backlog from
/// turning one leader pass into an unbounded stall for its first submitter.
const MAX_BATCH: usize = 1024;

struct Job {
    input: RatInput,
    target: f64,
    slot: Arc<Mutex<Option<InverseQuad>>>,
}

#[derive(Default)]
struct State {
    pending: Vec<Job>,
    leader_active: bool,
}

/// The per-server coalescer. Cheap when idle: a solo request becomes a
/// batch of one with a single lock round-trip.
#[derive(Default)]
pub struct Coalescer {
    state: Mutex<State>,
    changed: Condvar,
}

impl Coalescer {
    /// Evaluate the inverse quad for one request, possibly batched with
    /// whatever else is pending. Blocks until this request's result exists.
    pub fn solve(&self, input: &RatInput, target: f64) -> InverseQuad {
        let slot = Arc::new(Mutex::new(None));
        let mut st = self.state.lock().expect("coalescer poisoned");
        st.pending.push(Job {
            input: input.clone(),
            target,
            slot: Arc::clone(&slot),
        });

        loop {
            if let Some(quad) = slot.lock().expect("coalescer slot poisoned").take() {
                return quad;
            }
            if !st.leader_active {
                st.leader_active = true;
                let batch: Vec<Job> = {
                    let n = st.pending.len().min(MAX_BATCH);
                    st.pending.drain(..n).collect()
                };
                drop(st);

                evaluate(&batch);

                st = self.state.lock().expect("coalescer poisoned");
                st.leader_active = false;
                self.changed.notify_all();
                // The leader's own job was in the drained batch (jobs are
                // drained oldest-first and ours predates leadership), so
                // the next loop iteration finds the slot filled.
            } else {
                st = self.changed.wait(st).expect("coalescer poisoned");
            }
        }
    }
}

/// Group a drained batch by worksheet and evaluate each group as one
/// column set, scattering per-job results.
fn evaluate(batch: &[Job]) {
    let mut visited = vec![false; batch.len()];
    for i in 0..batch.len() {
        if visited[i] {
            continue;
        }
        let mut members = vec![i];
        for j in (i + 1)..batch.len() {
            if !visited[j] && batch[j].input == batch[i].input {
                visited[j] = true;
                members.push(j);
            }
        }
        let targets: Vec<f64> = members.iter().map(|&j| batch[j].target).collect();
        if members.len() >= 2 {
            telemetry::add(Metric::CoalesceBatches, 1);
            telemetry::add(Metric::CoalesceRequests, members.len() as u64);
        }
        let quads = inverse_quad_batch(&batch[i].input, &targets);
        for (&j, quad) in members.iter().zip(quads) {
            *batch[j].slot.lock().expect("coalescer slot poisoned") = Some(quad);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn pdf1d_example() -> rat_core::params::RatInput {
        rat_apps::pdf::pdf1d::rat_input(150.0e6)
    }
    use rat_core::solve::inverse_quad;
    use std::sync::Barrier;

    fn assert_same(a: &InverseQuad, b: &InverseQuad) {
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "coalesced quad must match the scalar quad exactly"
        );
    }

    #[test]
    fn solo_solve_matches_the_scalar_path() {
        let c = Coalescer::default();
        let input = pdf1d_example();
        assert_same(&c.solve(&input, 8.0), &inverse_quad(&input, 8.0));
    }

    #[test]
    fn a_storm_of_concurrent_solves_all_match_their_scalar_answers() {
        let c = Arc::new(Coalescer::default());
        let n = 16;
        let barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let c = Arc::clone(&c);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    // Two distinct worksheets and a spread of targets,
                    // including infeasible and nonsensical ones.
                    let mut input = pdf1d_example();
                    if i % 2 == 0 {
                        input.comp.throughput_proc += 1.0;
                    }
                    let target = match i % 4 {
                        0 => 8.0,
                        1 => 1e9,  // infeasible
                        2 => -3.0, // rejected target
                        _ => 2.5,
                    };
                    barrier.wait();
                    let got = c.solve(&input, target);
                    (input, target, got)
                })
            })
            .collect();
        for h in handles {
            let (input, target, got) = h.join().unwrap();
            assert_same(&got, &inverse_quad(&input, target));
        }
    }
}
