//! The analysis API surface shared by the CLI and the server.
//!
//! Every mode handler here returns the **exact report text** the CLI prints
//! for the same inputs — the CLI's `dispatch` calls these functions, and the
//! server wraps their output in a one-field JSON envelope. That shared code
//! path is the parity contract: `crates/serve/tests/parity.rs` asserts the
//! JSON body a warm server returns is byte-identical to what a cold CLI
//! process computes, and it holds because there is only one renderer.
//!
//! The error side mirrors the CLI the same way. [`RatError`] classes map
//! onto HTTP status codes exactly as they map onto CLI exit codes
//! (DESIGN.md §10 and §14):
//!
//! | class | CLI exit | HTTP status |
//! |-------|----------|-------------|
//! | usage / malformed request | 2 | 400 |
//! | invalid parameter, quantity, or TOML | 3 | 400 |
//! | infeasible | 4 | 422 |
//! | simulation failure | 5 | 500 |
//! | cache I/O failure | 6 | 507 |
//!
//! plus the protocol-level codes an HTTP surface needs: 404 unknown route,
//! 405 wrong method, 408 request timeout, 413 oversized body, 503 queue
//! full / draining.

use fixedpoint::QFormat;
use fpga_sim::SimCache;
use rat_core::engine::Engine;
use rat_core::explore::{explore, DesignSpace};
use rat_core::optimize::{optimize, OptimizeConfig, OptimizeSpace};
use rat_core::params::{Buffering, RatInput};
use rat_core::quantity::Freq;
use rat_core::sweep::SweepParam;
use rat_core::telemetry::json::{self, Json};
use rat_core::uncertainty::ParamRange;
use rat_core::RatError;

/// Monte-Carlo sample count used when a request does not specify one — the
/// same 10 000 the CLI's `uncertainty` command always uses.
pub const DEFAULT_MC_SAMPLES: usize = 10_000;

/// Upper bound on Monte-Carlo samples per request: a resident service must
/// not let one request monopolize the workers.
pub const MAX_MC_SAMPLES: usize = 1_000_000;

/// Upper bound on sweep values per request.
pub const MAX_SWEEP_VALUES: usize = 100_000;

/// Upper bound on design-space corners per explore request.
pub const MAX_EXPLORE_CORNERS: usize = 1_000_000;

/// Upper bound on guided-search evaluations (generations × population) per
/// optimize request.
pub const MAX_OPTIMIZE_EVALS: u64 = 1_000_000;

/// A model-pipeline failure plus the context line describing what the
/// service (or CLI) was doing — rendered as `error: <context>` /
/// `caused by: <source>`, matching the CLI's stderr format.
#[derive(Debug)]
pub struct ModeError {
    /// What was being attempted (e.g. `solving 'md' for 10x speedup`).
    pub context: Option<String>,
    /// The underlying pipeline failure; determines exit code and status.
    pub source: RatError,
}

impl ModeError {
    /// Wrap `source` with a context line.
    pub fn with_context(context: impl Into<String>, source: RatError) -> Self {
        ModeError {
            context: Some(context.into()),
            source,
        }
    }
}

impl From<RatError> for ModeError {
    fn from(source: RatError) -> Self {
        ModeError {
            context: None,
            source,
        }
    }
}

/// The HTTP status for a [`RatError`] class — the same partition the CLI
/// maps onto exit codes 3/4/5/6 (usage errors, exit 2, are requests that
/// never reach the pipeline and map to 400 at the protocol layer).
pub fn http_status(e: &RatError) -> u16 {
    match e {
        RatError::InvalidParameter(_) | RatError::InvalidQuantity { .. } => 400,
        RatError::Infeasible(_) => 422,
        RatError::Simulation(_) => 500,
        RatError::CacheIo(_) => 507,
    }
}

/// Every failure the service can report, each with a pinned status code and
/// a `caused by:` chain for the error body.
#[derive(Debug)]
pub enum ApiError {
    /// 400: the request itself is malformed (bad JSON, missing or mistyped
    /// fields, unparsable worksheet TOML, unknown parameter names).
    BadRequest {
        /// What the server was doing when the request fell over.
        what: String,
        /// The underlying reason (parser message, offending value).
        cause: String,
    },
    /// 404: no such route.
    UnknownRoute(String),
    /// 405: the route exists but not with this method.
    WrongMethod {
        /// The requested path.
        path: String,
        /// The method the route supports.
        allowed: &'static str,
    },
    /// 408: the client did not deliver a complete request in time.
    Timeout,
    /// 413: the declared body length exceeds the server's limit.
    TooLarge {
        /// The configured body-size limit in bytes.
        limit: usize,
    },
    /// 503: the bounded request queue is full, or the server is draining.
    Busy,
    /// A model-pipeline failure; status from [`http_status`].
    Mode(ModeError),
}

impl ApiError {
    /// Shorthand for a 400 with context and cause.
    pub fn bad_request(what: impl Into<String>, cause: impl Into<String>) -> Self {
        ApiError::BadRequest {
            what: what.into(),
            cause: cause.into(),
        }
    }

    /// The HTTP status code for this error.
    pub fn status(&self) -> u16 {
        match self {
            ApiError::BadRequest { .. } => 400,
            ApiError::UnknownRoute(_) => 404,
            ApiError::WrongMethod { .. } => 405,
            ApiError::Timeout => 408,
            ApiError::TooLarge { .. } => 413,
            ApiError::Busy => 503,
            ApiError::Mode(m) => http_status(&m.source),
        }
    }

    /// The top-line message (the CLI's `error: ...` line).
    pub fn message(&self) -> String {
        match self {
            ApiError::BadRequest { what, .. } => what.clone(),
            ApiError::UnknownRoute(path) => format!("no such route: {path}"),
            ApiError::WrongMethod { path, allowed } => {
                format!("method not allowed on {path} (use {allowed})")
            }
            ApiError::Timeout => "request timed out before a complete read".into(),
            ApiError::TooLarge { limit } => {
                format!("request body exceeds the {limit}-byte limit")
            }
            ApiError::Busy => "server is at capacity or draining; retry later".into(),
            ApiError::Mode(m) => m.context.clone().unwrap_or_else(|| m.source.to_string()),
        }
    }

    /// The `caused by:` chain under the top line.
    pub fn causes(&self) -> Vec<String> {
        match self {
            ApiError::BadRequest { cause, .. } => vec![cause.clone()],
            ApiError::Mode(ModeError {
                context: Some(_),
                source,
            }) => vec![source.to_string()],
            _ => Vec::new(),
        }
    }

    /// The JSON error body: `{"error": ..., "caused_by": [...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"error\": \"");
        out.push_str(&escape_json(&self.message()));
        out.push_str("\", \"caused_by\": [");
        for (i, c) in self.causes().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(&escape_json(c));
            out.push('"');
        }
        out.push_str("]}");
        out
    }
}

impl From<ModeError> for ApiError {
    fn from(m: ModeError) -> Self {
        ApiError::Mode(m)
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A successful analysis response: the mode name plus the rendered report.
/// The `report` string is byte-identical to what the CLI prints (minus the
/// trailing newline `main` appends).
#[derive(Debug, Clone, PartialEq)]
pub struct ApiOk {
    /// The analysis mode that produced the report.
    pub mode: &'static str,
    /// The rendered report text.
    pub report: String,
}

impl ApiOk {
    /// The JSON success envelope: `{"mode": ..., "report": ...}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"mode\": \"{}\", \"report\": \"{}\"}}",
            self.mode,
            escape_json(&self.report)
        )
    }
}

// ---------------------------------------------------------------------------
// Shared argument parsing (CLI flags and request JSON use the same names).
// ---------------------------------------------------------------------------

/// Parse a sweep-parameter name. The accepted names are the CLI's.
pub fn parse_param(name: &str) -> Result<SweepParam, String> {
    match name {
        "fclock" => Ok(SweepParam::Fclock),
        "alpha-write" => Ok(SweepParam::AlphaWrite),
        "alpha-read" => Ok(SweepParam::AlphaRead),
        "alpha" => Ok(SweepParam::AlphaBoth),
        "throughput-proc" => Ok(SweepParam::ThroughputProc),
        "ops-per-element" => Ok(SweepParam::OpsPerElement),
        "elements-in" => Ok(SweepParam::ElementsIn),
        "iterations" => Ok(SweepParam::Iterations),
        other => Err(format!("unknown sweep parameter '{other}'")),
    }
}

/// Parse a buffering-discipline name (`single` | `double`).
pub fn parse_buffering(name: &str) -> Result<Buffering, String> {
    match name {
        "single" => Ok(Buffering::Single),
        "double" => Ok(Buffering::Double),
        other => Err(format!("unknown buffering '{other}' (single|double)")),
    }
}

/// Parse and validate a worksheet from its TOML text.
pub fn parse_worksheet(toml_text: &str) -> Result<RatInput, ApiError> {
    let input: RatInput = toml::from_str(toml_text)
        .map_err(|e| ApiError::bad_request("parsing worksheet_toml", e.to_string()))?;
    input.validate().map_err(|source| {
        ApiError::Mode(ModeError::with_context(
            format!("validating worksheet '{}'", input.name),
            source,
        ))
    })?;
    Ok(input)
}

// ---------------------------------------------------------------------------
// Mode reports — the single renderer each mode has. The CLI calls these.
// ---------------------------------------------------------------------------

/// `rat solve` without `--strict`: every sub-solve renders inline, feasible
/// or not, and the report always succeeds.
pub fn solve_report(input: &RatInput, target: f64) -> String {
    solve_report_from_quad(input, target, &rat_core::solve::inverse_quad(input, target))
}

/// Render the non-strict solve report from an already-evaluated quad. The
/// coalesced server path evaluates quads in cross-request batches and feeds
/// them here, so solo and batched responses share one renderer — the only
/// way the byte-identity contract can hold by construction.
pub fn solve_report_from_quad(
    input: &RatInput,
    target: f64,
    quad: &rat_core::solve::InverseQuad,
) -> String {
    let mut out = format!("Inverse solve for {target}x speedup on '{}':\n", input.name);
    match &quad.throughput_proc {
        Ok(v) => out.push_str(&format!("  required throughput_proc: {v:.1} ops/cycle\n")),
        Err(e) => out.push_str(&format!("  throughput_proc: {e}\n")),
    }
    match &quad.fclock {
        Ok(v) => out.push_str(&format!("  required f_clock:         {:.1} MHz\n", v.mhz())),
        Err(e) => out.push_str(&format!("  f_clock: {e}\n")),
    }
    match &quad.alpha_scale {
        Ok(v) => out.push_str(&format!("  required alpha scale:     {v:.2}x current\n")),
        Err(e) => out.push_str(&format!("  alpha: {e}\n")),
    }
    match &quad.ceiling {
        Ok(v) => out.push_str(&format!("  speedup ceiling (comm-bound wall): {v:.1}x\n")),
        Err(e) => out.push_str(&format!("  ceiling: {e}\n")),
    }
    out
}

/// `rat solve --strict`: any infeasible sub-solve is a hard error (CLI exit
/// code 4, HTTP 422) instead of an inline annotation.
pub fn solve_report_strict(input: &RatInput, target: f64) -> Result<String, ModeError> {
    solve_report_strict_from_quad(input, target, &rat_core::solve::inverse_quad(input, target))
}

/// Strict renderer over an already-evaluated quad; same error precedence as
/// the sequential path (throughput_proc, then f_clock, alpha, ceiling).
pub fn solve_report_strict_from_quad(
    input: &RatInput,
    target: f64,
    quad: &rat_core::solve::InverseQuad,
) -> Result<String, ModeError> {
    let wrap = |source: &RatError| {
        ModeError::with_context(
            format!("solving '{}' for {target}x speedup", input.name),
            source.clone(),
        )
    };
    let tp = quad.throughput_proc.as_ref().map_err(wrap)?;
    let fclk = quad.fclock.as_ref().map_err(wrap)?;
    let alpha = quad.alpha_scale.as_ref().map_err(wrap)?;
    let ceiling = quad.ceiling.as_ref().map_err(wrap)?;
    Ok(format!(
        "Inverse solve for {target}x speedup on '{}':\n\
         \x20 required throughput_proc: {tp:.1} ops/cycle\n\
         \x20 required f_clock:         {:.1} MHz\n\
         \x20 required alpha scale:     {alpha:.2}x current\n\
         \x20 speedup ceiling (comm-bound wall): {ceiling:.1}x\n",
        input.name,
        fclk.mhz(),
    ))
}

/// `rat sweep`: one parameter over explicit values, on `engine`.
pub fn sweep_report(
    engine: &Engine,
    input: &RatInput,
    param: SweepParam,
    values: &[f64],
) -> Result<String, RatError> {
    Ok(rat_core::sweep::sweep_with(engine, input, param, values)?.render())
}

/// `rat sensitivity`: parameter elasticities, on `engine`.
pub fn sensitivity_report(engine: &Engine, input: &RatInput) -> Result<String, RatError> {
    Ok(rat_core::sensitivity::analyze_with(engine, input)?.render())
}

/// `rat uncertainty`: seeded Monte-Carlo propagation, on `engine`. The same
/// seed produces the same quantiles at every worker and thread count.
pub fn uncertainty_report(
    engine: &Engine,
    input: &RatInput,
    ranges: &[ParamRange],
    samples: usize,
    seed: u64,
) -> Result<String, RatError> {
    Ok(rat_core::uncertainty::propagate_with(engine, input, ranges, samples, seed)?.render())
}

/// `rat explore`: throughput-gate the cartesian corner space around a base
/// worksheet. `None` axes default to the base worksheet's own value
/// (clock, throughput) or to both disciplines (buffering).
pub fn explore_report(
    input: &RatInput,
    min_speedup: f64,
    fclocks: Option<Vec<f64>>,
    throughput_procs: Option<Vec<f64>>,
    bufferings: Option<Vec<Buffering>>,
) -> Result<String, RatError> {
    let space = DesignSpace {
        fclocks: fclocks.unwrap_or_else(|| vec![input.comp.fclock.hz()]),
        throughput_procs: throughput_procs.unwrap_or_else(|| vec![input.comp.throughput_proc]),
        bufferings: bufferings.unwrap_or_else(|| vec![Buffering::Single, Buffering::Double]),
        base: input.clone(),
    };
    Ok(explore(&space, min_speedup)?.render())
}

/// Axis overrides for a guided search, shared by the CLI flags and the JSON
/// body — `None` means "use the [`OptimizeSpace::around`] default".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptimizeSpec {
    /// Search seed; `None` uses the engine's root seed (the CLI default), so
    /// an unseeded request matches the CLI byte-for-byte.
    pub seed: Option<u64>,
    /// Generations to run; `None` = [`OptimizeConfig::default`].
    pub generations: Option<u32>,
    /// Candidates per generation; `None` = [`OptimizeConfig::default`].
    pub population: Option<usize>,
    /// Clock range in Hz, inclusive.
    pub fclock_range: Option<(f64, f64)>,
    /// `throughput_proc` range in ops/cycle, inclusive.
    pub throughput_range: Option<(f64, f64)>,
    /// Buffering candidates.
    pub bufferings: Option<Vec<Buffering>>,
    /// Device candidates, as case-insensitive catalog-name substrings.
    pub devices: Option<Vec<String>>,
    /// Fixed-point precision candidates, as total bit widths.
    pub precision_bits: Option<Vec<u32>>,
}

impl OptimizeSpec {
    /// Resolve the spec against a base worksheet into a concrete space and
    /// config, naming the offending field on failure.
    pub fn resolve(
        &self,
        input: &RatInput,
        default_seed: u64,
    ) -> Result<(OptimizeSpace, OptimizeConfig), RatError> {
        let mut space = OptimizeSpace::around(input.clone());
        if let Some(r) = self.fclock_range {
            space.fclock_hz = r;
        }
        if let Some(r) = self.throughput_range {
            space.throughput_proc = r;
        }
        if let Some(b) = &self.bufferings {
            space.bufferings = b.clone();
        }
        if let Some(names) = &self.devices {
            let mut devices = Vec::with_capacity(names.len());
            for n in names {
                devices.push(rat_core::resources::device::find_device(n).ok_or_else(|| {
                    RatError::quantity("devices", format!("no catalog device matches '{n}'"))
                })?);
            }
            space.devices = devices;
        }
        if let Some(bits) = &self.precision_bits {
            let mut precisions = Vec::with_capacity(bits.len());
            for &b in bits {
                let total = b.checked_sub(1).ok_or_else(|| {
                    RatError::quantity("precision_bits", "width must be at least 1 bit".to_string())
                })?;
                precisions.push(QFormat::signed(0, total).map_err(|e| {
                    RatError::quantity("precision_bits", format!("{b}-bit format: {e}"))
                })?);
            }
            space.precisions = precisions;
        }
        let defaults = OptimizeConfig::default();
        let config = OptimizeConfig {
            seed: self.seed.unwrap_or(default_seed),
            generations: self.generations.unwrap_or(defaults.generations),
            population: self.population.unwrap_or(defaults.population),
        };
        Ok((space, config))
    }
}

/// `rat optimize`: deterministic guided search over the design space around
/// a base worksheet, on `engine`. Same seed → byte-identical front at every
/// worker and thread count.
pub fn optimize_report(
    engine: &Engine,
    input: &RatInput,
    spec: &OptimizeSpec,
) -> Result<String, RatError> {
    let (space, config) = spec.resolve(input, engine.config().root_seed)?;
    Ok(optimize(engine, &space, &config)?.render())
}

/// Cached case-study simulation: run one of the four shipped hardware
/// designs on its simulated platform at `mhz`, memoized through `cache` so
/// repeated points cost a hash lookup instead of a simulation. This is the
/// endpoint that exercises cross-request simulator-cache sharing.
pub fn simulate_report(app: &str, mhz: f64, cache: Option<&SimCache>) -> Result<String, ModeError> {
    let wrap = |source: RatError| {
        ModeError::with_context(format!("simulating {app} at {mhz:.1} MHz"), source)
    };
    // The simulator's clock is picosecond-resolution; past 1 THz a cycle
    // rounds to zero, so reject anything outside the physically plausible
    // band up front instead of letting the simulator panic.
    if !(mhz.is_finite() && mhz > 0.0 && mhz <= 1.0e6) {
        return Err(wrap(RatError::simulation(format!(
            "clock must be a positive frequency in (0, 1e6] MHz, got {mhz}"
        ))));
    }
    let fclock_hz = mhz * 1.0e6;
    let summary = match app {
        "pdf1d" => rat_apps::pdf::pdf1d::design().simulate_summary(fclock_hz, cache),
        "pdf2d" => rat_apps::pdf::pdf2d::design().simulate_summary(fclock_hz, cache),
        "md" => {
            rat_apps::md::hw::MdDesign::paper_scale_analytic().simulate_summary(fclock_hz, cache)
        }
        "sort" => rat_apps::sort::rat::design().simulate_summary(fclock_hz, cache),
        other => {
            return Err(wrap(RatError::simulation(format!(
                "unknown case study '{other}' (pdf1d|pdf2d|md|sort)"
            ))))
        }
    };
    Ok(format!(
        "simulated {app} at {mhz:.1} MHz over {} iterations:\n\
         \x20 total (t_RC)   {}\n\
         \x20 comm busy      {}  ({:.1}% of makespan)\n\
         \x20 compute busy   {}  ({:.1}% of makespan)\n\
         \x20 host overhead  {}\n",
        summary.iterations,
        summary.total,
        summary.comm_busy,
        summary.channel_utilization() * 100.0,
        summary.compute_busy,
        summary.compute_utilization() * 100.0,
        summary.host_overhead,
    ))
}

// ---------------------------------------------------------------------------
// Request parsing and dispatch for the HTTP surface.
// ---------------------------------------------------------------------------

/// A parsed analysis request, ready to run.
#[derive(Debug, Clone)]
pub enum ApiRequest {
    /// `POST /v1/solve`
    Solve {
        /// The validated worksheet.
        input: RatInput,
        /// Target speedup.
        target: f64,
        /// Whether infeasible sub-solves are hard errors (422).
        strict: bool,
    },
    /// `POST /v1/sweep`
    Sweep {
        /// The validated worksheet.
        input: RatInput,
        /// Which parameter to sweep.
        param: SweepParam,
        /// The values to sweep over.
        values: Vec<f64>,
    },
    /// `POST /v1/uncertainty`
    Uncertainty {
        /// The validated worksheet.
        input: RatInput,
        /// Uncertain-parameter ranges.
        ranges: Vec<ParamRange>,
        /// Monte-Carlo sample count.
        samples: usize,
        /// Explicit RNG seed; `None` uses the engine's root seed (the CLI
        /// default), so an unseeded request matches the CLI byte-for-byte.
        seed: Option<u64>,
    },
    /// `POST /v1/explore`
    Explore {
        /// The validated worksheet (the base design).
        input: RatInput,
        /// Pass/fail speedup threshold.
        min_speedup: f64,
        /// Clock axis (Hz); defaults to the base worksheet's clock.
        fclocks: Option<Vec<f64>>,
        /// Parallelism axis; defaults to the base worksheet's value.
        throughput_procs: Option<Vec<f64>>,
        /// Buffering axis; defaults to both disciplines.
        bufferings: Option<Vec<Buffering>>,
    },
    /// `POST /v1/optimize`
    Optimize {
        /// The validated worksheet (the base design).
        input: RatInput,
        /// Search axes and knobs.
        spec: OptimizeSpec,
    },
    /// `POST /v1/sensitivity`
    Sensitivity {
        /// The validated worksheet.
        input: RatInput,
    },
    /// `POST /v1/simulate`
    Simulate {
        /// Case-study name (`pdf1d` | `pdf2d` | `md` | `sort`).
        app: String,
        /// Clock in MHz.
        mhz: f64,
    },
}

impl ApiRequest {
    /// The stable mode name echoed in the response envelope.
    pub fn mode(&self) -> &'static str {
        match self {
            ApiRequest::Solve { .. } => "solve",
            ApiRequest::Sweep { .. } => "sweep",
            ApiRequest::Uncertainty { .. } => "uncertainty",
            ApiRequest::Explore { .. } => "explore",
            ApiRequest::Optimize { .. } => "optimize",
            ApiRequest::Sensitivity { .. } => "sensitivity",
            ApiRequest::Simulate { .. } => "simulate",
        }
    }
}

/// All mode route suffixes under `/v1/`, in documentation order.
pub const MODES: [&str; 7] = [
    "solve",
    "sweep",
    "uncertainty",
    "explore",
    "optimize",
    "sensitivity",
    "simulate",
];

fn require<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, ApiError> {
    doc.get(key)
        .ok_or_else(|| ApiError::bad_request("reading request body", format!("missing '{key}'")))
}

fn require_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, ApiError> {
    require(doc, key)?.as_str().ok_or_else(|| {
        ApiError::bad_request("reading request body", format!("'{key}' must be a string"))
    })
}

fn require_f64(doc: &Json, key: &str) -> Result<f64, ApiError> {
    require(doc, key)?.as_f64().ok_or_else(|| {
        ApiError::bad_request("reading request body", format!("'{key}' must be a number"))
    })
}

fn optional_f64(doc: &Json, key: &str) -> Result<Option<f64>, ApiError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or_else(|| {
            ApiError::bad_request("reading request body", format!("'{key}' must be a number"))
        }),
    }
}

fn optional_bool(doc: &Json, key: &str) -> Result<bool, ApiError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(ApiError::bad_request(
            "reading request body",
            format!("'{key}' must be a boolean"),
        )),
    }
}

fn f64_list(v: &Json, key: &str) -> Result<Vec<f64>, ApiError> {
    v.as_array()
        .ok_or_else(|| {
            ApiError::bad_request("reading request body", format!("'{key}' must be an array"))
        })?
        .iter()
        .map(|x| {
            x.as_f64().ok_or_else(|| {
                ApiError::bad_request(
                    "reading request body",
                    format!("'{key}' must contain only numbers"),
                )
            })
        })
        .collect()
}

fn optional_f64_list(doc: &Json, key: &str) -> Result<Option<Vec<f64>>, ApiError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => f64_list(v, key).map(Some),
    }
}

fn optional_str_list(doc: &Json, key: &str) -> Result<Option<Vec<String>>, ApiError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let arr = v.as_array().ok_or_else(|| {
                ApiError::bad_request(
                    "reading request body",
                    format!("'{key}' must be an array of strings"),
                )
            })?;
            let mut out = Vec::with_capacity(arr.len());
            for s in arr {
                out.push(
                    s.as_str()
                        .ok_or_else(|| {
                            ApiError::bad_request(
                                "reading request body",
                                format!("'{key}' must be an array of strings"),
                            )
                        })?
                        .to_string(),
                );
            }
            Ok(Some(out))
        }
    }
}

fn parse_buffering_list(doc: &Json) -> Result<Option<Vec<Buffering>>, ApiError> {
    match optional_str_list(doc, "bufferings")? {
        None => Ok(None),
        Some(names) => {
            let mut out = Vec::with_capacity(names.len());
            for n in &names {
                out.push(
                    parse_buffering(n)
                        .map_err(|e| ApiError::bad_request("reading request body", e))?,
                );
            }
            Ok(Some(out))
        }
    }
}

/// Parse the JSON body of `POST /v1/<mode>` into a runnable request.
pub fn parse_mode_request(mode: &str, body: &str) -> Result<ApiRequest, ApiError> {
    let doc =
        json::parse(body).map_err(|e| ApiError::bad_request("parsing request body as JSON", e))?;
    if doc.as_object().is_none() {
        return Err(ApiError::bad_request(
            "reading request body",
            "top-level value must be an object",
        ));
    }
    match mode {
        "solve" => {
            let input = parse_worksheet(require_str(&doc, "worksheet_toml")?)?;
            let target = require_f64(&doc, "target")?;
            let strict = optional_bool(&doc, "strict")?;
            Ok(ApiRequest::Solve {
                input,
                target,
                strict,
            })
        }
        "sweep" => {
            let input = parse_worksheet(require_str(&doc, "worksheet_toml")?)?;
            let param = parse_param(require_str(&doc, "param")?)
                .map_err(|e| ApiError::bad_request("reading request body", e))?;
            let values = f64_list(require(&doc, "values")?, "values")?;
            if values.is_empty() {
                return Err(ApiError::bad_request(
                    "reading request body",
                    "sweep needs at least one value",
                ));
            }
            if values.len() > MAX_SWEEP_VALUES {
                return Err(ApiError::bad_request(
                    "reading request body",
                    format!("at most {MAX_SWEEP_VALUES} sweep values per request"),
                ));
            }
            Ok(ApiRequest::Sweep {
                input,
                param,
                values,
            })
        }
        "uncertainty" => {
            let input = parse_worksheet(require_str(&doc, "worksheet_toml")?)?;
            let ranges_json = require(&doc, "ranges")?.as_array().ok_or_else(|| {
                ApiError::bad_request("reading request body", "'ranges' must be an array")
            })?;
            let mut ranges = Vec::with_capacity(ranges_json.len());
            for r in ranges_json {
                let param = parse_param(require_str(r, "param")?)
                    .map_err(|e| ApiError::bad_request("reading request body", e))?;
                let lo = require_f64(r, "lo")?;
                let hi = require_f64(r, "hi")?;
                ranges.push(ParamRange::new(param, lo, hi));
            }
            if ranges.is_empty() {
                return Err(ApiError::bad_request(
                    "reading request body",
                    "uncertainty needs at least one {param, lo, hi} range",
                ));
            }
            let samples = match optional_f64(&doc, "samples")? {
                None => DEFAULT_MC_SAMPLES,
                Some(s) if s.fract() == 0.0 && s >= 1.0 && s <= MAX_MC_SAMPLES as f64 => s as usize,
                Some(s) => {
                    return Err(ApiError::bad_request(
                        "reading request body",
                        format!("'samples' must be an integer in 1..={MAX_MC_SAMPLES}, got {s}"),
                    ))
                }
            };
            let seed = match optional_f64(&doc, "seed")? {
                None => None,
                Some(s) if s.fract() == 0.0 && (0.0..9.0e15).contains(&s) => Some(s as u64),
                Some(s) => {
                    return Err(ApiError::bad_request(
                        "reading request body",
                        format!("'seed' must be a non-negative integer below 2^53, got {s}"),
                    ))
                }
            };
            Ok(ApiRequest::Uncertainty {
                input,
                ranges,
                samples,
                seed,
            })
        }
        "explore" => {
            let input = parse_worksheet(require_str(&doc, "worksheet_toml")?)?;
            let min_speedup = require_f64(&doc, "min_speedup")?;
            let fclocks = optional_f64_list(&doc, "fclocks")?;
            let throughput_procs = optional_f64_list(&doc, "throughput_procs")?;
            let bufferings = parse_buffering_list(&doc)?;
            let corners = fclocks.as_ref().map_or(1, Vec::len)
                * throughput_procs.as_ref().map_or(1, Vec::len)
                * bufferings.as_ref().map_or(2, Vec::len);
            if corners > MAX_EXPLORE_CORNERS {
                return Err(ApiError::bad_request(
                    "reading request body",
                    format!("design space has {corners} corners; at most {MAX_EXPLORE_CORNERS}"),
                ));
            }
            Ok(ApiRequest::Explore {
                input,
                min_speedup,
                fclocks,
                throughput_procs,
                bufferings,
            })
        }
        "optimize" => {
            let input = parse_worksheet(require_str(&doc, "worksheet_toml")?)?;
            let seed = match optional_f64(&doc, "seed")? {
                None => None,
                Some(s) if s.fract() == 0.0 && (0.0..9.0e15).contains(&s) => Some(s as u64),
                Some(s) => {
                    return Err(ApiError::bad_request(
                        "reading request body",
                        format!("'seed' must be a non-negative integer below 2^53, got {s}"),
                    ))
                }
            };
            let small_int = |key: &str, max: f64| -> Result<Option<f64>, ApiError> {
                match optional_f64(&doc, key)? {
                    None => Ok(None),
                    Some(v) if v.fract() == 0.0 && v >= 1.0 && v <= max => Ok(Some(v)),
                    Some(v) => Err(ApiError::bad_request(
                        "reading request body",
                        format!("'{key}' must be an integer in 1..={max}, got {v}"),
                    )),
                }
            };
            let generations = small_int("generations", 1.0e6)?.map(|v| v as u32);
            let population =
                small_int("population", MAX_OPTIMIZE_EVALS as f64)?.map(|v| v as usize);
            let defaults = OptimizeConfig::default();
            let evals = u64::from(generations.unwrap_or(defaults.generations))
                .saturating_mul(population.unwrap_or(defaults.population) as u64);
            if evals > MAX_OPTIMIZE_EVALS {
                return Err(ApiError::bad_request(
                    "reading request body",
                    format!(
                        "generations x population is {evals} evaluations; \
                         at most {MAX_OPTIMIZE_EVALS}"
                    ),
                ));
            }
            let pair = |key: &str| -> Result<Option<(f64, f64)>, ApiError> {
                match optional_f64_list(&doc, key)? {
                    None => Ok(None),
                    Some(v) if v.len() == 2 => Ok(Some((v[0], v[1]))),
                    Some(v) => Err(ApiError::bad_request(
                        "reading request body",
                        format!("'{key}' must be a [lo, hi] pair, got {} values", v.len()),
                    )),
                }
            };
            let fclock_range = pair("fclock_range")?;
            let throughput_range = pair("throughput_range")?;
            let bufferings = parse_buffering_list(&doc)?;
            let devices = optional_str_list(&doc, "devices")?;
            let precision_bits = match optional_f64_list(&doc, "precision_bits")? {
                None => None,
                Some(v) => {
                    let mut bits = Vec::with_capacity(v.len());
                    for b in v {
                        if b.fract() != 0.0 || !(1.0..=63.0).contains(&b) {
                            return Err(ApiError::bad_request(
                                "reading request body",
                                format!("'precision_bits' must be integers in 1..=63, got {b}"),
                            ));
                        }
                        bits.push(b as u32);
                    }
                    Some(bits)
                }
            };
            Ok(ApiRequest::Optimize {
                input,
                spec: OptimizeSpec {
                    seed,
                    generations,
                    population,
                    fclock_range,
                    throughput_range,
                    bufferings,
                    devices,
                    precision_bits,
                },
            })
        }
        "sensitivity" => {
            let input = parse_worksheet(require_str(&doc, "worksheet_toml")?)?;
            Ok(ApiRequest::Sensitivity { input })
        }
        "simulate" => {
            let app = require_str(&doc, "app")?.to_string();
            let mhz = require_f64(&doc, "mhz")?;
            Ok(ApiRequest::Simulate { app, mhz })
        }
        other => Err(ApiError::UnknownRoute(format!("/v1/{other}"))),
    }
}

/// Run a parsed request on `engine`, memoizing simulations through `cache`.
/// The success value's `report` is byte-identical to the CLI's stdout for
/// the same inputs.
pub fn handle(
    engine: &Engine,
    req: &ApiRequest,
    cache: Option<&SimCache>,
) -> Result<ApiOk, ApiError> {
    let mode = req.mode();
    let wrap = |input: &RatInput, source: RatError| {
        ApiError::Mode(ModeError::with_context(
            format!("running {mode} for worksheet '{}'", input.name),
            source,
        ))
    };
    let report = match req {
        ApiRequest::Solve {
            input,
            target,
            strict,
        } => {
            if *strict {
                solve_report_strict(input, *target).map_err(ApiError::Mode)?
            } else {
                solve_report(input, *target)
            }
        }
        ApiRequest::Sweep {
            input,
            param,
            values,
        } => sweep_report(engine, input, *param, values).map_err(|e| wrap(input, e))?,
        ApiRequest::Uncertainty {
            input,
            ranges,
            samples,
            seed,
        } => {
            let seed = seed.unwrap_or(engine.config().root_seed);
            uncertainty_report(engine, input, ranges, *samples, seed).map_err(|e| wrap(input, e))?
        }
        ApiRequest::Explore {
            input,
            min_speedup,
            fclocks,
            throughput_procs,
            bufferings,
        } => explore_report(
            input,
            *min_speedup,
            fclocks.clone(),
            throughput_procs.clone(),
            bufferings.clone(),
        )
        .map_err(|e| wrap(input, e))?,
        ApiRequest::Optimize { input, spec } => {
            optimize_report(engine, input, spec).map_err(|e| wrap(input, e))?
        }
        ApiRequest::Sensitivity { input } => {
            sensitivity_report(engine, input).map_err(|e| wrap(input, e))?
        }
        ApiRequest::Simulate { app, mhz } => {
            simulate_report(app, *mhz, cache).map_err(ApiError::Mode)?
        }
    };
    Ok(ApiOk { mode, report })
}

/// A convenience for tests and the load generator: the Freq type the CLI
/// uses for clock arguments, re-exported so callers need not depend on
/// `rat-core` directly for it.
pub type Clock = Freq;

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_toml() -> String {
        toml::to_string(&rat_apps::pdf::pdf1d::rat_input(150.0e6)).expect("serializable")
    }

    #[test]
    fn status_table_mirrors_cli_exit_codes() {
        // exit 3 → 400, exit 4 → 422, exit 5 → 500, exit 6 → 507.
        assert_eq!(http_status(&RatError::InvalidParameter("x".into())), 400);
        assert_eq!(http_status(&RatError::quantity("comp.fclock", "bad")), 400);
        assert_eq!(http_status(&RatError::Infeasible("wall".into())), 422);
        assert_eq!(http_status(&RatError::simulation("diverged")), 500);
        assert_eq!(http_status(&RatError::cache_io("disk")), 507);
        // exit 2 (usage) → 400 at the protocol layer.
        assert_eq!(ApiError::bad_request("x", "y").status(), 400);
    }

    #[test]
    fn protocol_errors_have_distinct_statuses() {
        assert_eq!(ApiError::UnknownRoute("/nope".into()).status(), 404);
        assert_eq!(
            ApiError::WrongMethod {
                path: "/metrics".into(),
                allowed: "GET"
            }
            .status(),
            405
        );
        assert_eq!(ApiError::Timeout.status(), 408);
        assert_eq!(ApiError::TooLarge { limit: 1 }.status(), 413);
        assert_eq!(ApiError::Busy.status(), 503);
    }

    #[test]
    fn error_bodies_carry_the_cause_chain() {
        let e = ApiError::Mode(ModeError::with_context(
            "solving 'x' for 10x speedup",
            RatError::Infeasible("communication alone exceeds budget".into()),
        ));
        let body = e.to_json();
        assert!(
            body.contains("\"error\": \"solving 'x' for 10x speedup\""),
            "{body}"
        );
        assert!(body.contains("caused_by"), "{body}");
        assert!(body.contains("infeasible: communication"), "{body}");
    }

    #[test]
    fn escape_handles_quotes_newlines_and_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        // Round-trips through the strict reader.
        let s = "line1\nline2\t\"quoted\"";
        let doc = json::parse(&format!("{{\"x\": \"{}\"}}", escape_json(s))).unwrap();
        assert_eq!(doc.get("x").and_then(Json::as_str), Some(s));
    }

    #[test]
    fn parse_solve_request_round_trips() {
        let body = format!(
            "{{\"worksheet_toml\": \"{}\", \"target\": 8.0}}",
            escape_json(&ws_toml())
        );
        let req = parse_mode_request("solve", &body).unwrap();
        match &req {
            ApiRequest::Solve {
                input,
                target,
                strict,
            } => {
                assert_eq!(input.dataset.elements_in, 512);
                assert_eq!(*target, 8.0);
                assert!(!strict);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let ok = handle(&Engine::sequential(), &req, None).unwrap();
        assert_eq!(ok.mode, "solve");
        assert_eq!(
            ok.report,
            solve_report(&rat_apps::pdf::pdf1d::rat_input(150.0e6), 8.0)
        );
    }

    #[test]
    fn parse_rejects_missing_and_mistyped_fields() {
        assert!(matches!(
            parse_mode_request("solve", "{\"target\": 8}"),
            Err(ApiError::BadRequest { .. })
        ));
        assert!(matches!(
            parse_mode_request("solve", "not json"),
            Err(ApiError::BadRequest { .. })
        ));
        assert!(matches!(
            parse_mode_request("solve", "[1,2]"),
            Err(ApiError::BadRequest { .. })
        ));
        let body = format!(
            "{{\"worksheet_toml\": \"{}\", \"target\": \"ten\"}}",
            escape_json(&ws_toml())
        );
        assert!(matches!(
            parse_mode_request("solve", &body),
            Err(ApiError::BadRequest { .. })
        ));
        let body = format!(
            "{{\"worksheet_toml\": \"{}\", \"param\": \"warp\", \"values\": [1]}}",
            escape_json(&ws_toml())
        );
        assert!(matches!(
            parse_mode_request("sweep", &body),
            Err(ApiError::BadRequest { .. })
        ));
    }

    #[test]
    fn invalid_worksheet_maps_to_the_taxonomy_not_400_json() {
        let bad = ws_toml().replace("150000000.0", "-1.0");
        let body = format!(
            "{{\"worksheet_toml\": \"{}\", \"target\": 8.0}}",
            escape_json(&bad)
        );
        let err = parse_mode_request("solve", &body).unwrap_err();
        assert_eq!(err.status(), 400, "{err:?}");
        assert!(err.to_json().contains("fclock"), "{}", err.to_json());
    }

    #[test]
    fn simulate_report_is_deterministic_and_cached() {
        let cache = SimCache::new();
        let a = simulate_report("pdf1d", 150.0, Some(&cache)).unwrap();
        let before = cache.stats();
        let b = simulate_report("pdf1d", 150.0, Some(&cache)).unwrap();
        let after = cache.stats();
        assert_eq!(a, b);
        assert!(after.hits > before.hits, "{after:?} vs {before:?}");
        assert!(a.contains("total (t_RC)"), "{a}");
        // Bad inputs are simulation-class errors, not panics.
        let err = simulate_report("pdf1d", 0.0, Some(&cache)).unwrap_err();
        assert_eq!(http_status(&err.source), 500);
        let err = simulate_report("warp", 100.0, Some(&cache)).unwrap_err();
        assert!(err.source.to_string().contains("unknown case study"));
    }

    #[test]
    fn explore_defaults_mirror_the_cli() {
        let input = rat_apps::pdf::pdf1d::rat_input(150.0e6);
        let via_api = explore_report(&input, 5.0, None, None, None).unwrap();
        let space = DesignSpace {
            base: input.clone(),
            fclocks: vec![input.comp.fclock.hz()],
            throughput_procs: vec![input.comp.throughput_proc],
            bufferings: vec![Buffering::Single, Buffering::Double],
        };
        assert_eq!(via_api, explore(&space, 5.0).unwrap().render());
    }
}
