//! The resident daemon: acceptor, bounded queue, worker pool, shutdown.
//!
//! Threading model: one acceptor thread pushes accepted connections into a
//! bounded queue; N worker threads pop, each owning a **warm
//! [`Engine`]** reused across requests, and run the full
//! read-route-handle-respond cycle per *connection* — which, since
//! connections are persistent, may be many requests. The queue is the only
//! coordination point, and its bound is the backpressure contract — when
//! it fills, the acceptor answers `503` inline instead of letting latency
//! grow without bound.
//!
//! Three serving-path accelerations live here (all with escape hatches):
//!
//! - **Keep-alive**: a worker loops requests on its connection until the
//!   client closes, asks to close, idles past [`ServeConfig::keepalive_idle`],
//!   or hits [`ServeConfig::max_requests_per_conn`].
//! - **Response cache**: deterministic `/v1/*` responses are cached by
//!   content-addressed digest with single-flight dedup
//!   (see [`crate::respcache`]); disable with `response_cache_bytes: 0`
//!   (the CLI's `--no-response-cache`).
//! - **Solve coalescing**: concurrent `/v1/solve` computations are drained
//!   into cross-request batches (see [`crate::coalesce`]) whose per-request
//!   answers are bit-identical to the solo path.
//!
//! Shutdown is a drain, not an abort: `POST /shutdown` (or SIGINT/SIGTERM
//! via [`install_signal_shutdown`]) sets the stop flag and wakes the
//! acceptor with a loopback connection; the acceptor stops accepting and
//! closes the queue; workers finish every connection already queued (their
//! final responses advertise `Connection: close`) and exit;
//! [`ServerHandle::join`] then flushes the write-behind simulator cache to
//! disk and returns a [`ServeSummary`]. No thread is detached, so a joined
//! server has provably leaked nothing.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fpga_sim::SimCache;
use rat_core::engine::{Engine, EngineConfig};
use rat_core::telemetry;

use crate::api::{self, ApiError, ApiRequest};
use crate::coalesce::Coalescer;
use crate::http::{self, Connection, ReadError, Request};
use crate::keys;
use crate::metrics::ServerMetrics;
use crate::queue::BoundedQueue;
use crate::respcache::{Lookup, ResponseCache};

/// Worker threads drain the global telemetry collector into the cumulative
/// `/metrics` totals every this-many requests, bounding span-buffer growth.
const TELEMETRY_DRAIN_INTERVAL: u64 = 64;

/// Server configuration, all fields defaulted for tests (`port: 0` binds an
/// ephemeral port).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (default loopback).
    pub addr: String,
    /// TCP port; `0` picks an ephemeral port (the bound address is on the
    /// returned handle).
    pub port: u16,
    /// Worker threads, each with a warm engine. `0` = available parallelism.
    pub workers: usize,
    /// Bound on queued connections before the acceptor answers 503.
    pub queue_capacity: usize,
    /// `jobs` for each worker's engine (0 = engine default). Workers already
    /// provide request-level parallelism, so per-request engine fan-out
    /// defaults to sequential.
    pub engine_jobs: usize,
    /// Per-request read deadline; a client that stalls mid-request gets 408.
    pub request_timeout: Duration,
    /// Cap on request-body bytes (413 beyond it).
    pub max_body_bytes: usize,
    /// How long a kept-alive connection may sit idle between requests
    /// before the server closes it silently.
    pub keepalive_idle: Duration,
    /// Requests served on one connection before the server answers the
    /// last with `Connection: close` — bounds per-connection resource
    /// pinning under a client that never lets go.
    pub max_requests_per_conn: u64,
    /// Byte budget for the rendered-response cache; `0` disables it
    /// (every request recomputes, as `--no-response-cache`).
    pub response_cache_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1".into(),
            port: 0,
            workers: 2,
            queue_capacity: 128,
            engine_jobs: 1,
            request_timeout: Duration::from_secs(10),
            max_body_bytes: http::MAX_BODY_BYTES,
            keepalive_idle: Duration::from_secs(5),
            max_requests_per_conn: 1000,
            response_cache_bytes: 16 * 1024 * 1024,
        }
    }
}

struct Shared {
    stop: AtomicBool,
    queue: BoundedQueue<(TcpStream, Instant)>,
    metrics: ServerMetrics,
    config: ServeConfig,
    addr: SocketAddr,
    /// `None` when the cache is disabled (`response_cache_bytes: 0`).
    respcache: Option<Arc<ResponseCache>>,
    coalescer: Coalescer,
}

impl Shared {
    /// Request a drain: future accepts stop, queued work still completes.
    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept(). The no-op
        // connection is accepted (or fails — either way accept returns) and
        // immediately closed once the stop flag is observed.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A cloneable trigger that initiates graceful shutdown — handed to the
/// signal watcher and available to tests.
#[derive(Clone)]
pub struct StopTrigger {
    shared: Arc<Shared>,
}

impl StopTrigger {
    /// Initiate the drain (idempotent).
    pub fn trigger(&self) {
        self.shared.request_stop();
    }
}

/// Final accounting returned by [`ServerHandle::join`].
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Connections accepted over the server's lifetime. With keep-alive,
    /// one connection can account for many requests, so `ok + errored`
    /// may exceed this.
    pub accepted: u64,
    /// Requests answered 200.
    pub ok: u64,
    /// Requests answered with any non-200 status.
    pub errored: u64,
    /// Connections bounced with 503 by the full-queue backpressure path.
    pub rejected_busy: u64,
}

/// A running server. Dropping the handle without calling [`join`] aborts
/// the process's threads unjoined — call [`ServerHandle::shutdown`] (or
/// `join` after an external trigger) for a clean drain.
///
/// [`join`]: ServerHandle::join
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The cumulative server metrics.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// A trigger that initiates graceful shutdown from another thread.
    pub fn stop_trigger(&self) -> StopTrigger {
        StopTrigger {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Block until the server has fully drained (after `POST /shutdown`, a
    /// signal, or [`StopTrigger::trigger`]), then flush the write-behind
    /// simulator cache and return the final accounting. Joins every thread
    /// the server started.
    pub fn join(self) -> ServeSummary {
        self.acceptor.join().expect("acceptor thread panicked");
        // No more pushes are possible; close so workers drain and exit.
        self.shared.queue.close();
        for w in self.workers {
            w.join().expect("worker thread panicked");
        }
        // Final telemetry drain (workers drain periodically, not at exit).
        self.shared
            .metrics
            .merge_profile(&telemetry::global().drain());
        // Durable shutdown: push the write-behind cache to disk.
        SimCache::global().flush();
        let m = &self.shared.metrics;
        let ok = m.status_count(200);
        let total: u64 = crate::metrics::STATUSES
            .iter()
            .map(|s| m.status_count(*s))
            .sum();
        ServeSummary {
            accepted: m.accepted.load(Ordering::Relaxed),
            ok,
            errored: total - ok,
            rejected_busy: m.rejected_busy.load(Ordering::Relaxed),
        }
    }

    /// Trigger shutdown and [`join`](ServerHandle::join) — the programmatic
    /// equivalent of `POST /shutdown`.
    pub fn shutdown(self) -> ServeSummary {
        self.shared.request_stop();
        self.join()
    }
}

/// The server type; [`Server::start`] is the entry point.
pub struct Server;

impl Server {
    /// Bind and start: spawns the acceptor and `config.workers` workers,
    /// returns immediately with a handle.
    pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind((config.addr.as_str(), config.port))?;
        let addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(2, |n| n.get())
        } else {
            config.workers
        };
        // Pipeline counters for /metrics come from the global telemetry
        // collector; a resident service keeps it on for its lifetime.
        telemetry::global().enable();
        let respcache = if config.response_cache_bytes > 0 {
            Some(ResponseCache::new(config.response_cache_bytes))
        } else {
            None
        };
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            queue: BoundedQueue::new(config.queue_capacity),
            metrics: ServerMetrics::new(),
            config,
            addr,
            respcache,
            coalescer: Coalescer::default(),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(listener, &shared))?
        };
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        Ok(ServerHandle {
            shared,
            acceptor,
            workers: worker_handles,
        })
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            // The wake-up connection (or a straggler past the drain point).
            break;
        }
        // Responses are written whole, so Nagle buys nothing — and on a
        // kept-alive connection it interacts with delayed ACK to stall
        // every second response by tens of milliseconds.
        let _ = stream.set_nodelay(true);
        shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        if let Err((mut stream, queued_at)) = shared.queue.try_push((stream, Instant::now())) {
            // Backpressure: answer inline rather than queueing unboundedly.
            shared.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
            let err = ApiError::Busy;
            let _ = http::write_json(&mut stream, err.status(), &err.to_json(), false);
            // Drain whatever request bytes the client already sent before
            // dropping the socket: closing with unread data pending makes
            // the kernel send RST, which can discard the 503 the client
            // has not read yet.
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
            let _ = std::io::copy(&mut stream, &mut std::io::sink());
            shared.metrics.observe(err.status(), queued_at.elapsed());
        }
    }
}

fn worker_loop(shared: &Shared) {
    let engine = Engine::new(EngineConfig::default().with_jobs(shared.config.engine_jobs));
    let mut served = 0u64;
    while let Some((stream, queued_at)) = shared.queue.pop() {
        served += serve_connection(shared, &engine, stream, queued_at);
        if served >= TELEMETRY_DRAIN_INTERVAL {
            shared.metrics.merge_profile(&telemetry::global().drain());
            served = 0;
        }
    }
}

/// Handle one connection end to end — possibly many requests under
/// keep-alive — and return how many requests were answered. Never panics on
/// client input: every failure maps to a status + JSON error body, and a
/// client that vanished mid-write is simply logged as the status we tried
/// to send.
fn serve_connection(
    shared: &Shared,
    engine: &Engine,
    stream: TcpStream,
    queued_at: Instant,
) -> u64 {
    let _ = stream.set_write_timeout(Some(shared.config.request_timeout));
    let mut conn = Connection::new(stream);
    let mut served = 0u64;
    loop {
        // The first request owes us bytes (the client connected for a
        // reason); later ones may simply never come, which is an idle
        // close, not an error.
        let between_requests = served > 0;
        let wait = if between_requests {
            shared.config.keepalive_idle
        } else {
            shared.config.request_timeout
        };
        let fallback_start = Instant::now();
        let (req, first_byte) = match conn.read_request(
            wait,
            shared.config.request_timeout,
            shared.config.max_body_bytes,
            between_requests,
        ) {
            Ok(ok) => ok,
            Err(ReadError::Idle) => break,
            Err(ReadError::Protocol(e)) => {
                // Framing is unsynchronized after a protocol error, so the
                // answer always closes the connection.
                let _ = http::write_json(conn.stream(), e.status(), &e.to_json(), false);
                let start = if between_requests {
                    fallback_start
                } else {
                    queued_at
                };
                shared.metrics.observe(e.status(), start.elapsed());
                served += 1;
                break;
            }
        };
        // Queue time counts against the first request only; later requests
        // are measured from their first byte.
        let start = if between_requests {
            first_byte
        } else {
            queued_at
        };
        let keep = req.keep_alive
            && served + 1 < shared.config.max_requests_per_conn
            && !shared.stop.load(Ordering::SeqCst);
        let status = match route(shared, engine, &req) {
            Ok(Response::Json(body)) => {
                let _ = http::write_json(conn.stream(), 200, &body, keep);
                200
            }
            Ok(Response::Text(body)) => {
                let _ = http::write_response(
                    conn.stream(),
                    200,
                    "text/plain; charset=utf-8",
                    &body,
                    keep,
                );
                200
            }
            Err(e) => {
                let _ = http::write_json(conn.stream(), e.status(), &e.to_json(), keep);
                e.status()
            }
        };
        shared.metrics.observe(status, start.elapsed());
        served += 1;
        if !keep {
            break;
        }
    }
    served
}

enum Response {
    Json(Arc<String>),
    Text(String),
}

fn route(shared: &Shared, engine: &Engine, req: &Request) -> Result<Response, ApiError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Ok(Response::Text("ok\n".into())),
        ("GET", "/metrics") => {
            // Pull whatever the workers have recorded since the last
            // periodic drain, so counters are current at read time.
            shared.metrics.merge_profile(&telemetry::global().drain());
            Ok(Response::Text(shared.metrics.render(
                &SimCache::global().stats(),
                shared.queue.len(),
                shared.queue.high_water(),
                shared.config.workers,
                shared.respcache.as_deref().map(|c| c.stats()),
            )))
        }
        ("POST", "/shutdown") => {
            shared.request_stop();
            Ok(Response::Json(Arc::new(
                "{\"status\": \"draining\"}".into(),
            )))
        }
        (_, "/healthz") | (_, "/metrics") => Err(ApiError::WrongMethod {
            path: req.path.clone(),
            allowed: "GET",
        }),
        (_, "/shutdown") => Err(ApiError::WrongMethod {
            path: req.path.clone(),
            allowed: "POST",
        }),
        (method, path) => {
            let Some(mode) = path.strip_prefix("/v1/") else {
                return Err(ApiError::UnknownRoute(path.into()));
            };
            if !api::MODES.contains(&mode) {
                return Err(ApiError::UnknownRoute(path.into()));
            }
            if method != "POST" {
                return Err(ApiError::WrongMethod {
                    path: path.into(),
                    allowed: "POST",
                });
            }
            let Some(cache) = &shared.respcache else {
                let parsed = api::parse_mode_request(mode, &req.body)?;
                return Ok(Response::Json(Arc::new(
                    run_mode(shared, engine, &parsed)?.to_json(),
                )));
            };

            // Tier 1: byte-exact repeat — skip parsing entirely. Every
            // `/v1/*` mode is deterministic given (payload, engine knobs):
            // seeds resolve against the engine's root seed and the
            // simulator is a deterministic event machine, so replaying
            // cached bytes is indistinguishable from recomputing.
            let raw = keys::raw_key(path, &req.body);
            if let Some(body) = cache.lookup_raw(raw) {
                return Ok(Response::Json(body));
            }

            let parsed = api::parse_mode_request(mode, &req.body)?;
            let key = keys::request_key(
                &parsed,
                engine.config().root_seed,
                shared.config.engine_jobs,
            );
            match cache.begin(key) {
                Lookup::Hit(body) => {
                    cache.alias_raw(raw, &body);
                    Ok(Response::Json(body))
                }
                Lookup::Miss(guard) => {
                    // Errors are not cached: on `?`, the guard's Drop marks
                    // the flight failed and waiters retry for themselves.
                    let ok = run_mode(shared, engine, &parsed)?;
                    let body = Arc::new(ok.to_json());
                    guard.complete(Arc::clone(&body));
                    cache.alias_raw(raw, &body);
                    Ok(Response::Json(body))
                }
            }
        }
    }
}

/// Evaluate one parsed request. Solve goes through the coalescer so
/// concurrent solves share batched evaluation; everything else is the
/// engine path the CLI also uses.
fn run_mode(shared: &Shared, engine: &Engine, parsed: &ApiRequest) -> Result<api::ApiOk, ApiError> {
    match parsed {
        ApiRequest::Solve {
            input,
            target,
            strict,
        } => {
            let quad = shared.coalescer.solve(input, *target);
            let report = if *strict {
                api::solve_report_strict_from_quad(input, *target, &quad).map_err(ApiError::Mode)?
            } else {
                api::solve_report_from_quad(input, *target, &quad)
            };
            Ok(api::ApiOk {
                mode: "solve",
                report,
            })
        }
        _ => api::handle(engine, parsed, Some(SimCache::global())),
    }
}

// ---------------------------------------------------------------------------
// Signal handling: SIGINT/SIGTERM → graceful drain, via a self-pipe. The
// handler itself only writes one byte (async-signal-safe); a watcher thread
// does the actual shutdown. Hand-declared libc externs — the workspace has
// no libc crate and does not take new dependencies.
// ---------------------------------------------------------------------------

/// Install SIGINT + SIGTERM handlers that trigger a graceful drain of the
/// server behind `trigger`. Returns `false` (and installs nothing) on
/// non-Unix platforms or if the self-pipe cannot be created. Call at most
/// once per process.
pub fn install_signal_shutdown(trigger: StopTrigger) -> bool {
    #[cfg(unix)]
    {
        unix_signal::install(trigger)
    }
    #[cfg(not(unix))]
    {
        let _ = trigger;
        false
    }
}

#[cfg(unix)]
mod unix_signal {
    use super::StopTrigger;
    use std::sync::atomic::{AtomicI32, Ordering};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn pipe(fds: *mut i32) -> i32;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    }

    static WRITE_FD: AtomicI32 = AtomicI32::new(-1);

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one write to the self-pipe.
        let fd = WRITE_FD.load(Ordering::SeqCst);
        if fd >= 0 {
            let byte = 1u8;
            unsafe {
                let _ = write(fd, &byte, 1);
            }
        }
    }

    pub(super) fn install(trigger: StopTrigger) -> bool {
        let mut fds = [-1i32; 2];
        // SAFETY: pipe(2) with a valid two-element array.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return false;
        }
        let (read_fd, write_fd) = (fds[0], fds[1]);
        WRITE_FD.store(write_fd, Ordering::SeqCst);
        // SAFETY: installing an async-signal-safe handler for SIGINT/SIGTERM.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
        std::thread::Builder::new()
            .name("serve-signal".into())
            .spawn(move || {
                let mut buf = [0u8; 1];
                // SAFETY: blocking read on our own pipe's read end.
                let n = unsafe { read(read_fd, buf.as_mut_ptr(), 1) };
                if n > 0 {
                    trigger.trigger();
                }
            })
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// One request on its own connection (`Connection: close`, so
    /// `read_to_string` terminates under keep-alive defaults).
    fn send_raw(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn get_close(addr: SocketAddr, path: &str) -> String {
        send_raw(
            addr,
            &format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n"),
        )
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> String {
        send_raw(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn healthz_metrics_and_shutdown_round_trip() {
        let handle = Server::start(ServeConfig::default()).unwrap();
        let addr = handle.addr();

        let health = get_close(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        let ws = toml::to_string(&rat_apps::pdf::pdf1d::rat_input(150.0e6)).unwrap();
        let body = format!(
            "{{\"worksheet_toml\": \"{}\", \"target\": 8.0}}",
            crate::api::escape_json(&ws)
        );
        let resp = post(addr, "/v1/solve", &body);
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("\"mode\": \"solve\""), "{resp}");
        assert!(resp.contains("Inverse solve"), "{resp}");

        let metrics = get_close(addr, "/metrics");
        assert!(metrics.contains("serve_accepted_total"), "{metrics}");
        assert!(metrics.contains("latency_us_count"), "{metrics}");

        let bye = post(addr, "/shutdown", "");
        assert!(bye.contains("draining"), "{bye}");
        let summary = handle.join();
        assert!(summary.accepted >= 4, "{summary:?}");
        assert!(summary.ok >= 4, "{summary:?}");
    }

    #[test]
    fn a_kept_alive_connection_serves_many_requests() {
        let handle = Server::start(ServeConfig::default()).unwrap();
        let addr = handle.addr();
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        for i in 0..3 {
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            // Frame the response by its Content-Length trailer ("ok\n").
            let mut buf = Vec::new();
            let mut byte = [0u8; 1];
            while !buf.ends_with(b"\r\n\r\nok\n") {
                assert!(s.read(&mut byte).unwrap() > 0, "server closed early at {i}");
                buf.push(byte[0]);
            }
            let text = String::from_utf8_lossy(&buf);
            assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
            assert!(text.contains("Connection: keep-alive"), "{text}");
        }
        drop(s);
        let summary = handle.shutdown();
        assert!(summary.ok >= 3, "{summary:?}");
        // Three requests, one connection (plus none others).
        assert_eq!(summary.accepted, 1, "{summary:?}");
    }

    #[test]
    fn protocol_errors_map_to_their_statuses_and_daemon_survives() {
        let handle = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = handle.addr();

        let resp = get_close(addr, "/nope");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        let resp = get_close(addr, "/v1/solve");
        assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
        let resp = send_raw(addr, "POST /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
        let resp = post(addr, "/v1/solve", "this is not json");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("caused_by"), "{resp}");

        // After all that abuse, a good request still works.
        let ws = toml::to_string(&rat_apps::pdf::pdf1d::rat_input(150.0e6)).unwrap();
        let body = format!(
            "{{\"worksheet_toml\": \"{}\", \"target\": 2.0}}",
            crate::api::escape_json(&ws)
        );
        let resp = post(addr, "/v1/solve", &body);
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");

        handle.shutdown();
    }

    #[test]
    fn stop_trigger_drains_without_a_shutdown_request() {
        let handle = Server::start(ServeConfig::default()).unwrap();
        let trigger = handle.stop_trigger();
        trigger.trigger();
        let summary = handle.join();
        assert_eq!(summary.ok, 0);
    }
}
