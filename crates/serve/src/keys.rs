//! Content-addressed cache keys for rendered responses.
//!
//! Two tiers, both 128-bit FNV-1a digests via [`fpga_sim::SpecDigest`] (the
//! same framed scheme the simulation cache trusts for its on-disk keys):
//!
//! - [`raw_key`]: digest of the route plus the *byte-exact* request body.
//!   Cheap enough to compute before any parsing, so a repeated identical
//!   request skips JSON and TOML decoding entirely — the warm fast path.
//! - [`request_key`]: digest of the *canonicalized* parsed request plus the
//!   engine knobs that feed determinism (root seed, jobs). Two bodies that
//!   differ only in JSON whitespace, key order, or an explicit seed equal to
//!   the default all collapse onto one entry.
//!
//! Every field is framed (length-prefixed strings, tagged options, counted
//! lists) exactly as `fpga-sim`'s digest does, so no two field sequences can
//! collide by concatenation.

use fpga_sim::SpecDigest;
use rat_core::params::{Buffering, RatInput};
use rat_core::sweep::SweepParam;
use rat_core::uncertainty::ParamRange;

use crate::api::{ApiRequest, OptimizeSpec};

/// Key for the raw fast tier: route + exact body bytes. Any byte difference
/// is a different key; canonicalization is the parsed tier's job.
pub fn raw_key(path: &str, body: &str) -> u128 {
    let mut d = SpecDigest::new();
    d.write_str("response-raw-v1");
    d.write_str(path);
    d.write_str(body);
    d.finish()
}

fn write_f64_list(d: &mut SpecDigest, vs: &[f64]) {
    d.write_u64(vs.len() as u64);
    for &v in vs {
        d.write_f64(v);
    }
}

fn write_opt_f64_list(d: &mut SpecDigest, vs: Option<&Vec<f64>>) {
    match vs {
        None => d.write_tag(0),
        Some(vs) => {
            d.write_tag(1);
            write_f64_list(d, vs);
        }
    }
}

fn buffering_tag(b: Buffering) -> u8 {
    match b {
        Buffering::Single => 0,
        Buffering::Double => 1,
    }
}

fn write_opt_bufferings(d: &mut SpecDigest, bs: Option<&Vec<Buffering>>) {
    match bs {
        None => d.write_tag(0),
        Some(bs) => {
            d.write_tag(1);
            d.write_u64(bs.len() as u64);
            for &b in bs {
                d.write_tag(buffering_tag(b));
            }
        }
    }
}

fn param_tag(p: SweepParam) -> u8 {
    match p {
        SweepParam::Fclock => 0,
        SweepParam::AlphaWrite => 1,
        SweepParam::AlphaRead => 2,
        SweepParam::AlphaBoth => 3,
        SweepParam::ThroughputProc => 4,
        SweepParam::OpsPerElement => 5,
        SweepParam::ElementsIn => 6,
        SweepParam::Iterations => 7,
    }
}

fn write_input(d: &mut SpecDigest, input: &RatInput) {
    d.write_str(&input.name);
    d.write_u64(input.dataset.elements_in);
    d.write_u64(input.dataset.elements_out);
    d.write_u64(input.dataset.bytes_per_element);
    d.write_f64(input.comm.ideal_bandwidth.bytes_per_sec());
    d.write_f64(input.comm.alpha_write);
    d.write_f64(input.comm.alpha_read);
    d.write_f64(input.comp.ops_per_element);
    d.write_f64(input.comp.throughput_proc);
    d.write_f64(input.comp.fclock.hz());
    d.write_f64(input.software.t_soft.seconds());
    d.write_u64(input.software.iterations);
    d.write_tag(buffering_tag(input.buffering));
}

fn write_optimize_spec(d: &mut SpecDigest, spec: &OptimizeSpec, root_seed: u64) {
    // The seed resolves against the engine default so an explicit
    // `"seed": <root_seed>` and an unseeded request share an entry.
    d.write_u64(spec.seed.unwrap_or(root_seed));
    match spec.generations {
        None => d.write_tag(0),
        Some(g) => {
            d.write_tag(1);
            d.write_u64(u64::from(g));
        }
    }
    match spec.population {
        None => d.write_tag(0),
        Some(p) => {
            d.write_tag(1);
            d.write_u64(p as u64);
        }
    }
    for range in [spec.fclock_range, spec.throughput_range] {
        match range {
            None => d.write_tag(0),
            Some((lo, hi)) => {
                d.write_tag(1);
                d.write_f64(lo);
                d.write_f64(hi);
            }
        }
    }
    write_opt_bufferings(d, spec.bufferings.as_ref());
    match &spec.devices {
        None => d.write_tag(0),
        Some(ds) => {
            d.write_tag(1);
            d.write_u64(ds.len() as u64);
            for dev in ds {
                d.write_str(dev);
            }
        }
    }
    match &spec.precision_bits {
        None => d.write_tag(0),
        Some(bits) => {
            d.write_tag(1);
            d.write_u64(bits.len() as u64);
            for &b in bits {
                d.write_u64(u64::from(b));
            }
        }
    }
}

fn write_ranges(d: &mut SpecDigest, ranges: &[ParamRange]) {
    d.write_u64(ranges.len() as u64);
    for r in ranges {
        d.write_tag(param_tag(r.param));
        d.write_f64(r.lo);
        d.write_f64(r.hi);
    }
}

/// Key for the canonical tier: the parsed request plus the engine knobs a
/// response depends on. Seeds resolve to their engine defaults here, so the
/// key captures what will actually be computed, not how it was spelled.
pub fn request_key(req: &ApiRequest, root_seed: u64, jobs: usize) -> u128 {
    let mut d = SpecDigest::new();
    d.write_str("response-v1");
    d.write_u64(root_seed);
    d.write_u64(jobs as u64);
    match req {
        ApiRequest::Solve {
            input,
            target,
            strict,
        } => {
            d.write_tag(0);
            write_input(&mut d, input);
            d.write_f64(*target);
            d.write_tag(u8::from(*strict));
        }
        ApiRequest::Sweep {
            input,
            param,
            values,
        } => {
            d.write_tag(1);
            write_input(&mut d, input);
            d.write_tag(param_tag(*param));
            write_f64_list(&mut d, values);
        }
        ApiRequest::Uncertainty {
            input,
            ranges,
            samples,
            seed,
        } => {
            d.write_tag(2);
            write_input(&mut d, input);
            write_ranges(&mut d, ranges);
            d.write_u64(*samples as u64);
            d.write_u64(seed.unwrap_or(root_seed));
        }
        ApiRequest::Explore {
            input,
            min_speedup,
            fclocks,
            throughput_procs,
            bufferings,
        } => {
            d.write_tag(3);
            write_input(&mut d, input);
            d.write_f64(*min_speedup);
            write_opt_f64_list(&mut d, fclocks.as_ref());
            write_opt_f64_list(&mut d, throughput_procs.as_ref());
            write_opt_bufferings(&mut d, bufferings.as_ref());
        }
        ApiRequest::Optimize { input, spec } => {
            d.write_tag(4);
            write_input(&mut d, input);
            write_optimize_spec(&mut d, spec, root_seed);
        }
        ApiRequest::Sensitivity { input } => {
            d.write_tag(5);
            write_input(&mut d, input);
        }
        ApiRequest::Simulate { app, mhz } => {
            d.write_tag(6);
            d.write_str(app);
            d.write_f64(*mhz);
        }
    }
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    fn pdf1d_example() -> rat_core::params::RatInput {
        rat_apps::pdf::pdf1d::rat_input(150.0e6)
    }

    fn solve_req(target: f64, strict: bool) -> ApiRequest {
        ApiRequest::Solve {
            input: pdf1d_example(),
            target,
            strict,
        }
    }

    #[test]
    fn equal_requests_share_a_key_and_knobs_split_it() {
        let a = request_key(&solve_req(8.0, false), 42, 1);
        let b = request_key(&solve_req(8.0, false), 42, 1);
        assert_eq!(a, b);
        assert_ne!(a, request_key(&solve_req(8.0, true), 42, 1), "strict flag");
        assert_ne!(a, request_key(&solve_req(9.0, false), 42, 1), "target");
        assert_ne!(a, request_key(&solve_req(8.0, false), 43, 1), "root seed");
        assert_ne!(a, request_key(&solve_req(8.0, false), 42, 2), "jobs");
    }

    #[test]
    fn explicit_default_seed_collapses_onto_unseeded() {
        let input = pdf1d_example();
        let ranges = vec![ParamRange::new(SweepParam::AlphaWrite, 0.3, 0.6)];
        let unseeded = ApiRequest::Uncertainty {
            input: input.clone(),
            ranges: ranges.clone(),
            samples: 100,
            seed: None,
        };
        let seeded = ApiRequest::Uncertainty {
            input,
            ranges,
            samples: 100,
            seed: Some(42),
        };
        assert_eq!(request_key(&unseeded, 42, 1), request_key(&seeded, 42, 1));
        assert_ne!(request_key(&unseeded, 7, 1), request_key(&seeded, 7, 1));
    }

    #[test]
    fn raw_key_is_byte_exact() {
        assert_eq!(raw_key("/v1/solve", "{}"), raw_key("/v1/solve", "{}"));
        assert_ne!(raw_key("/v1/solve", "{}"), raw_key("/v1/solve", "{ }"));
        assert_ne!(raw_key("/v1/solve", "{}"), raw_key("/v1/sweep", "{}"));
    }

    #[test]
    fn modes_never_collide() {
        let input = pdf1d_example();
        let keys = [
            request_key(&solve_req(8.0, false), 42, 1),
            request_key(
                &ApiRequest::Sensitivity {
                    input: input.clone(),
                },
                42,
                1,
            ),
            request_key(
                &ApiRequest::Simulate {
                    app: "sort".into(),
                    mhz: 147.0,
                },
                42,
                1,
            ),
            request_key(
                &ApiRequest::Optimize {
                    input,
                    spec: OptimizeSpec::default(),
                },
                42,
                1,
            ),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
