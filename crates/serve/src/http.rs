//! Minimal, strict HTTP/1.1 framing over a [`TcpStream`].
//!
//! One request per connection (`Connection: close`): read a request line,
//! headers, and a `Content-Length` body; write a status line, headers, and a
//! body; close. On loopback that costs microseconds per request and keeps
//! the parser a straight-line function — no chunked encoding, no keep-alive
//! state machine, no pipelining to get wrong. The reader is deliberately
//! paranoid: it enforces per-request read deadlines, a header-size cap, and
//! a body-size cap, mapping each failure onto the [`ApiError`] protocol
//! statuses (408/413/400) so a misbehaving client gets a diagnosis instead
//! of killing a worker.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::api::ApiError;

/// Cap on the request line + headers, generous for hand-written clients.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on request bodies. Worksheets are a few hundred bytes; a
/// megabyte leaves room for large sweep-value lists without letting a
/// client buffer gigabytes into a resident service.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, path, and (possibly empty) body.
#[derive(Debug, Clone)]
pub struct Request {
    /// The HTTP method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request path (`/v1/solve`, `/metrics`, ...), query string stripped.
    pub path: String,
    /// The request body, UTF-8 decoded.
    pub body: String,
}

/// Read one request from `stream`, enforcing `deadline` for the whole read
/// and `max_body` for the declared body length.
pub fn read_request(
    stream: &mut TcpStream,
    deadline: Duration,
    max_body: usize,
) -> Result<Request, ApiError> {
    stream
        .set_read_timeout(Some(deadline))
        .map_err(|e| ApiError::bad_request("configuring connection", e.to_string()))?;

    // Read until the blank line that ends the headers.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(ApiError::bad_request(
                    "reading request",
                    "connection closed before headers completed",
                ))
            }
            Ok(_) => head.push(byte[0]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(ApiError::Timeout)
            }
            Err(e) => {
                return Err(ApiError::bad_request("reading request", e.to_string()));
            }
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(ApiError::TooLarge {
                limit: MAX_HEAD_BYTES,
            });
        }
    }

    let head = String::from_utf8_lossy(&head);
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ApiError::bad_request("reading request", "empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ApiError::bad_request("reading request", "request line has no path"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    ApiError::bad_request(
                        "reading request",
                        format!("unparsable Content-Length '{}'", value.trim()),
                    )
                })?;
            }
        }
    }
    if content_length > max_body {
        return Err(ApiError::TooLarge { limit: max_body });
    }

    let mut body = vec![0u8; content_length];
    let mut read = 0usize;
    while read < content_length {
        match stream.read(&mut body[read..]) {
            Ok(0) => {
                return Err(ApiError::bad_request(
                    "reading request body",
                    format!("client disconnected after {read} of {content_length} bytes"),
                ))
            }
            Ok(n) => read += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(ApiError::Timeout)
            }
            Err(e) => {
                return Err(ApiError::bad_request("reading request body", e.to_string()));
            }
        }
    }
    let body = String::from_utf8(body)
        .map_err(|_| ApiError::bad_request("reading request body", "body is not valid UTF-8"))?;

    Ok(Request { method, path, body })
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        507 => "Insufficient Storage",
        _ => "Unknown",
    }
}

/// Write a complete response and flush. Errors are returned so the caller
/// can count them, but a failed write to a gone client is not fatal.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Write a JSON response (`application/json`).
pub fn write_json(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response(stream, status, "application/json", body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &[u8]) -> Result<Request, ApiError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Hold the socket open so the server side sees a timeout (not
            // EOF) if it expects more bytes than were sent.
            std::thread::sleep(Duration::from_millis(300));
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream, Duration::from_millis(150), MAX_BODY_BYTES);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = round_trip(b"POST /v1/solve HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/solve");
        assert_eq!(req.body, "abcd");
    }

    #[test]
    fn parses_a_get_without_body_and_strips_query() {
        let req = round_trip(b"GET /metrics?x=1 HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.body, "");
    }

    #[test]
    fn short_body_times_out_instead_of_hanging() {
        let err = round_trip(b"POST /v1/solve HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-some")
            .unwrap_err();
        assert_eq!(err.status(), 408, "{err:?}");
    }

    #[test]
    fn oversized_declared_body_is_413() {
        let err = round_trip(b"POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn garbage_content_length_is_400() {
        let err = round_trip(b"POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn reason_phrases_cover_the_status_table() {
        for s in [200, 400, 404, 405, 408, 413, 422, 500, 503, 507] {
            assert_ne!(reason(s), "Unknown", "status {s}");
        }
    }
}
