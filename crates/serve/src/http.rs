//! Minimal, strict HTTP/1.1 framing over a [`TcpStream`], with persistent
//! connections.
//!
//! A [`Connection`] wraps the socket plus a carry-over read buffer, so bytes
//! a client pipelined behind one request are the prefix of the next instead
//! of being lost. Requests default to keep-alive under HTTP/1.1 (honoring a
//! `Connection: close`/`keep-alive` override, case-insensitively) and to
//! close for HTTP/1.0 or unrecognizable version tokens. The reader stays
//! deliberately paranoid: per-request read deadlines, a header-size cap, and
//! a body-size cap, mapping each failure onto the [`ApiError`] protocol
//! statuses (408/413/400) so a misbehaving client gets a diagnosis instead
//! of killing a worker. No chunked encoding — `Content-Length` framing only.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::api::ApiError;

/// Cap on the request line + headers, generous for hand-written clients.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on request bodies. Worksheets are a few hundred bytes; a
/// megabyte leaves room for large sweep-value lists without letting a
/// client buffer gigabytes into a resident service.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, path, (possibly empty) body, and whether the
/// client wants the connection kept open afterwards.
#[derive(Debug, Clone)]
pub struct Request {
    /// The HTTP method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request path (`/v1/solve`, `/metrics`, ...), query string stripped.
    pub path: String,
    /// The request body, UTF-8 decoded.
    pub body: String,
    /// Whether the connection should persist after this request: HTTP/1.1
    /// defaults to yes, HTTP/1.0 (or garbage versions) to no, and a
    /// `Connection:` header overrides either way.
    pub keep_alive: bool,
}

/// Why a read produced no request.
#[derive(Debug)]
pub enum ReadError {
    /// The connection went quiet between requests — the client closed it or
    /// the idle deadline passed before a first byte arrived. Close silently;
    /// nothing was promised and nothing is owed.
    Idle,
    /// A request was underway (or required) and went wrong; answer with the
    /// mapped status, then close.
    Protocol(ApiError),
}

/// A socket plus the bytes read past the end of the previous request.
pub struct Connection {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Connection {
    /// Wrap an accepted stream.
    pub fn new(stream: TcpStream) -> Self {
        Connection {
            stream,
            buf: Vec::new(),
        }
    }

    /// The underlying stream, for writing responses.
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Read one request. `wait` bounds how long to sit for the *first* byte
    /// (when no pipelined bytes are already buffered); `request_timeout`
    /// bounds each subsequent read of the same request. With `idle_wait`
    /// set (a kept-alive connection between requests), first-byte timeout
    /// or clean EOF is [`ReadError::Idle`]; without it (a fresh connection
    /// that owes us a request), the same conditions are protocol errors —
    /// 408 and 400 respectively — exactly as the one-shot parser behaved.
    ///
    /// On success, the returned [`Instant`] is when the request's first
    /// byte was seen, the honest start point for latency accounting on a
    /// connection that may have idled between requests.
    pub fn read_request(
        &mut self,
        wait: Duration,
        request_timeout: Duration,
        max_body: usize,
        idle_wait: bool,
    ) -> Result<(Request, Instant), ReadError> {
        let bad = |what: &str, why: String| ReadError::Protocol(ApiError::bad_request(what, why));

        // Phase A: acquire at least one byte of this request.
        if self.buf.is_empty() {
            self.set_timeout(wait)?;
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(if idle_wait {
                        ReadError::Idle
                    } else {
                        bad(
                            "reading request",
                            "connection closed before headers completed".into(),
                        )
                    })
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if is_timeout(&e) => {
                    return Err(if idle_wait {
                        ReadError::Idle
                    } else {
                        ReadError::Protocol(ApiError::Timeout)
                    })
                }
                Err(e) => return Err(bad("reading request", e.to_string())),
            }
        }
        let started = Instant::now();

        // Phase B: the request is underway; the per-request deadline governs.
        self.set_timeout(request_timeout)?;

        // Scan (and grow) the buffer until the blank line ending the headers.
        let head_end = loop {
            if let Some(end) = find_head_end(&self.buf) {
                break end;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(ReadError::Protocol(ApiError::TooLarge {
                    limit: MAX_HEAD_BYTES,
                }));
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(bad(
                        "reading request",
                        "connection closed before headers completed".into(),
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if is_timeout(&e) => return Err(ReadError::Protocol(ApiError::Timeout)),
                Err(e) => return Err(bad("reading request", e.to_string())),
            }
        };

        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        self.buf.drain(..head_end);

        let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| bad("reading request", "empty request line".into()))?
            .to_ascii_uppercase();
        let target = parts
            .next()
            .ok_or_else(|| bad("reading request", "request line has no path".into()))?;
        let path = target.split('?').next().unwrap_or(target).to_string();
        // HTTP/1.1 persists by default; 1.0 and unrecognizable versions do
        // not (a client that can't speak 1.1 can't be assumed to frame
        // responses without EOF).
        let mut keep_alive = parts.next() == Some("HTTP/1.1");

        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        bad(
                            "reading request",
                            format!("unparsable Content-Length '{}'", value.trim()),
                        )
                    })?;
                } else if name.eq_ignore_ascii_case("connection") {
                    let value = value.trim();
                    if value.eq_ignore_ascii_case("close") {
                        keep_alive = false;
                    } else if value.eq_ignore_ascii_case("keep-alive") {
                        keep_alive = true;
                    }
                }
            }
        }
        if content_length > max_body {
            return Err(ReadError::Protocol(ApiError::TooLarge { limit: max_body }));
        }

        // Body: drain buffered bytes first, then the socket.
        let take = content_length.min(self.buf.len());
        let mut body = Vec::with_capacity(content_length);
        body.extend_from_slice(&self.buf[..take]);
        self.buf.drain(..take);
        let mut read = body.len();
        body.resize(content_length, 0);
        while read < content_length {
            match self.stream.read(&mut body[read..]) {
                Ok(0) => {
                    return Err(bad(
                        "reading request body",
                        format!("client disconnected after {read} of {content_length} bytes"),
                    ))
                }
                Ok(n) => read += n,
                Err(e) if is_timeout(&e) => return Err(ReadError::Protocol(ApiError::Timeout)),
                Err(e) => return Err(bad("reading request body", e.to_string())),
            }
        }
        let body = String::from_utf8(body).map_err(|_| {
            bad(
                "reading request body",
                "body is not valid UTF-8".to_string(),
            )
        })?;

        Ok((
            Request {
                method,
                path,
                body,
                keep_alive,
            },
            started,
        ))
    }

    fn set_timeout(&mut self, t: Duration) -> Result<(), ReadError> {
        self.stream.set_read_timeout(Some(t)).map_err(|e| {
            ReadError::Protocol(ApiError::bad_request(
                "configuring connection",
                e.to_string(),
            ))
        })
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut
}

/// Index one past the blank line ending the headers, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    (1..=buf.len()).find(|&end| buf[..end].ends_with(b"\r\n\r\n") || buf[..end].ends_with(b"\n\n"))
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        507 => "Insufficient Storage",
        _ => "Unknown",
    }
}

/// Write a complete response and flush, advertising whether the connection
/// stays open. Errors are returned so the caller can count them, but a
/// failed write to a gone client is not fatal.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Write a JSON response (`application/json`).
pub fn write_json(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response(stream, status, "application/json", body, keep_alive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Feed `raw` to a fresh connection and read the first request with
    /// first-request semantics (no idle grace).
    fn round_trip(raw: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Hold the socket open so the server side sees a timeout (not
            // EOF) if it expects more bytes than were sent.
            std::thread::sleep(Duration::from_millis(300));
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Connection::new(stream);
        let req = conn
            .read_request(
                Duration::from_millis(150),
                Duration::from_millis(150),
                MAX_BODY_BYTES,
                false,
            )
            .map(|(req, _)| req);
        client.join().unwrap();
        req
    }

    fn status_of(err: ReadError) -> u16 {
        match err {
            ReadError::Idle => panic!("expected a protocol error, got Idle"),
            ReadError::Protocol(e) => e.status(),
        }
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = round_trip(b"POST /v1/solve HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/solve");
        assert_eq!(req.body, "abcd");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_get_without_body_and_strips_query() {
        let req = round_trip(b"GET /metrics?x=1 HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.body, "");
    }

    #[test]
    fn connection_header_overrides_the_version_default() {
        let req = round_trip(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert!(!req.keep_alive, "Connection: close wins over HTTP/1.1");
        let req = round_trip(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(req.keep_alive, "Connection: keep-alive wins over HTTP/1.0");
        let req = round_trip(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
        let req = round_trip(b"GET /\r\n\r\n").unwrap();
        assert!(
            !req.keep_alive,
            "versionless request lines default to close"
        );
    }

    #[test]
    fn pipelined_bytes_become_the_next_request() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Two complete requests in one write.
            s.write_all(
                b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nonePOST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\ntwo",
            )
            .unwrap();
            std::thread::sleep(Duration::from_millis(200));
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Connection::new(stream);
        let wait = Duration::from_millis(150);
        let (first, _) = conn
            .read_request(wait, wait, MAX_BODY_BYTES, false)
            .unwrap();
        assert_eq!((first.path.as_str(), first.body.as_str()), ("/a", "one"));
        let (second, _) = conn.read_request(wait, wait, MAX_BODY_BYTES, true).unwrap();
        assert_eq!((second.path.as_str(), second.body.as_str()), ("/b", "two"));
        client.join().unwrap();
    }

    #[test]
    fn idle_wait_timeout_is_idle_not_408() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let _s = TcpStream::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(250));
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Connection::new(stream);
        let wait = Duration::from_millis(60);
        match conn.read_request(wait, wait, MAX_BODY_BYTES, true) {
            Err(ReadError::Idle) => {}
            other => panic!("idle keep-alive wait should be Idle, got {other:?}"),
        }
        // The same silence on a fresh connection is a 408.
        match conn.read_request(wait, wait, MAX_BODY_BYTES, false) {
            Err(ReadError::Protocol(e)) => assert_eq!(e.status(), 408),
            other => panic!("fresh-connection silence should be 408, got {other:?}"),
        }
        client.join().unwrap();
    }

    #[test]
    fn short_body_times_out_instead_of_hanging() {
        let err = round_trip(b"POST /v1/solve HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-some")
            .unwrap_err();
        assert_eq!(status_of(err), 408);
    }

    #[test]
    fn oversized_declared_body_is_413() {
        let err = round_trip(b"POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n").unwrap_err();
        assert_eq!(status_of(err), 413);
    }

    #[test]
    fn garbage_content_length_is_400() {
        let err = round_trip(b"POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n").unwrap_err();
        assert_eq!(status_of(err), 400);
    }

    #[test]
    fn reason_phrases_cover_the_status_table() {
        for s in [200, 400, 404, 405, 408, 413, 422, 500, 503, 507] {
            assert_ne!(reason(s), "Unknown", "status {s}");
        }
    }
}
