//! A bounded multi-producer/multi-consumer queue on `Mutex` + `Condvar`.
//!
//! `std::sync::mpsc` is single-consumer, so it cannot feed a pool of worker
//! threads from one acceptor; this is the few dozen lines that can. The
//! queue is the server's backpressure point: `try_push` fails immediately
//! when full (the acceptor turns that into a `503`), and `pop` blocks until
//! an item arrives or the queue is closed — draining remaining items first,
//! which is what makes shutdown complete in-flight work instead of dropping
//! it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue. Shared via `Arc`; all methods take `&self`.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
    /// Deepest the queue has ever been — the headroom gauge that tells an
    /// operator how close a load pattern came to the 503 bound.
    high_water: AtomicUsize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            high_water: AtomicUsize::new(0),
        }
    }

    /// Enqueue without blocking. Returns the item back on a full or closed
    /// queue so the caller can reject it (503) instead of stalling.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().expect("queue lock");
        if s.closed || s.items.len() >= self.capacity {
            return Err(item);
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.high_water.fetch_max(depth, Ordering::Relaxed);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue, blocking until an item is available. Returns `None` only
    /// once the queue is closed **and** empty, so close + pop-until-None is
    /// a complete drain.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).expect("queue lock");
        }
    }

    /// Close the queue: future pushes fail, poppers drain what remains and
    /// then observe `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Items currently waiting (for the queue-depth gauge).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_drains_on_close() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.high_water(), 2, "rejected pushes don't raise the mark");
        q.close();
        assert_eq!(q.try_push(4), Err(4));
        // Close drains remaining items before reporting exhaustion.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn feeds_multiple_consumers_exactly_once() {
        let q = Arc::new(BoundedQueue::new(64));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut pushed = 0;
        while pushed < 200 {
            if q.try_push(pushed).is_ok() {
                pushed += 1;
            } else {
                std::thread::yield_now();
            }
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }
}
