//! Property-based tests for the case-study substrates: estimator identities,
//! neighbor-search correctness, force-field physics.

use proptest::prelude::*;
use rat_apps::datagen;
use rat_apps::md::cell_list::neighbor_counts;
use rat_apps::md::forces::{compute_forces, total_ops, LjParams};
use rat_apps::md::system::{min_image_vec, System, Vec3};
use rat_apps::pdf::parzen::{estimate_1d, StreamingEstimator1d};
use rat_apps::pdf::{bin_centers, BANDWIDTH};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Streaming estimation is invariant to how samples are split into blocks.
    #[test]
    fn streaming_split_invariance(n in 16usize..256, split in 1usize..64, tag in 0u64..100) {
        let samples = datagen::bimodal_samples(n, tag);
        let bins: Vec<f64> = (0..32).map(|i| i as f64 / 16.0 - 1.0).collect();
        let batch = estimate_1d(&samples, &bins, BANDWIDTH);
        let mut stream = StreamingEstimator1d::new(bins, BANDWIDTH);
        for block in samples.chunks(split) {
            stream.process_block(block);
        }
        let streamed = stream.finish();
        for (a, b) in batch.iter().zip(&streamed) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// The Parzen estimate is translation-equivariant: shifting samples and
    /// evaluation points together leaves the density unchanged.
    #[test]
    fn parzen_translation_equivariance(n in 8usize..128, shift in -0.3f64..0.3, tag in 0u64..50) {
        let samples = datagen::bimodal_samples(n, tag);
        let bins: Vec<f64> = (0..16).map(|i| i as f64 / 16.0 - 0.5).collect();
        let base = estimate_1d(&samples, &bins, BANDWIDTH);
        let moved_samples: Vec<f64> = samples.iter().map(|x| x + shift).collect();
        let moved_bins: Vec<f64> = bins.iter().map(|b| b + shift).collect();
        let moved = estimate_1d(&moved_samples, &moved_bins, BANDWIDTH);
        for (a, b) in base.iter().zip(&moved) {
            prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        }
    }

    /// Parzen density is non-negative and bounded by the kernel peak.
    #[test]
    fn parzen_density_bounds(n in 1usize..256, tag in 0u64..50) {
        let samples = datagen::bimodal_samples(n, tag);
        let bins = bin_centers();
        let pdf = estimate_1d(&samples, &bins, BANDWIDTH);
        let peak = rat_apps::pdf::parzen::gaussian_kernel(0.0, BANDWIDTH);
        for &p in &pdf {
            prop_assert!(p >= 0.0);
            prop_assert!(p <= peak * (1.0 + 1e-12));
        }
    }

    /// Cell-list neighbor counts match brute force for arbitrary cutoffs, and
    /// their sum is even (pairs are mutual).
    #[test]
    fn neighbor_counts_match_brute_force(
        n in 20usize..150,
        cutoff in 0.05f64..0.9,
        tag in 0u64..50,
    ) {
        let s = System::random(n, 1.0, tag);
        let counts = neighbor_counts(&s.positions, 1.0, cutoff);
        let c2 = cutoff * cutoff;
        let brute: Vec<u32> = s
            .positions
            .iter()
            .enumerate()
            .map(|(i, p)| {
                s.positions
                    .iter()
                    .enumerate()
                    .filter(|&(j, q)| j != i && min_image_vec(*p - *q, 1.0).norm2() < c2)
                    .count() as u32
            })
            .collect();
        prop_assert_eq!(&counts, &brute);
        let sum: u64 = counts.iter().map(|&c| c as u64).sum();
        prop_assert_eq!(sum % 2, 0, "mutual pairs must count twice");
    }

    /// The hardware op model is monotone in near counts and bounded between
    /// the all-distant and all-near extremes.
    #[test]
    fn op_model_bounds(counts in prop::collection::vec(0u32..500, 2..64)) {
        let n = 1000usize;
        let ops = total_ops(&counts, n);
        let all_distant = counts.len() as u64 * 3 * (n as u64 - 1);
        prop_assert!(ops >= all_distant);
        let mut more = counts.clone();
        more[0] += 1;
        prop_assert!(total_ops(&more, n) > ops);
    }

    /// Newton's third law holds for arbitrary random systems (relative to the
    /// largest force present).
    #[test]
    fn forces_cancel_for_random_systems(
        n in 10usize..120,
        cutoff in 0.1f64..0.5,
        tag in 0u64..50,
    ) {
        let s = System::random(n, 1.0, tag);
        let params = LjParams { epsilon: 1e-4, sigma: 0.04, cutoff };
        let (forces, _) = compute_forces(&s, &params);
        let net = forces.iter().fold(Vec3::ZERO, |a, &f| a + f);
        let scale = forces
            .iter()
            .map(|f| f.norm2().sqrt())
            .fold(0.0f64, f64::max)
            .max(1e-30);
        prop_assert!(net.norm2().sqrt() / scale < 1e-8, "net {net:?} vs scale {scale:.2e}");
    }

    /// Potential energy is invariant under global translation (periodic box).
    #[test]
    fn potential_translation_invariance(
        n in 10usize..80,
        shift in 0.0f64..1.0,
        tag in 0u64..50,
    ) {
        let s = System::random(n, 1.0, tag);
        let params = LjParams { epsilon: 1e-4, sigma: 0.04, cutoff: 0.3 };
        let (_, u0) = compute_forces(&s, &params);
        let mut moved = s.clone();
        for p in &mut moved.positions {
            p.x = (p.x + shift).rem_euclid(1.0);
            p.y = (p.y + shift).rem_euclid(1.0);
            p.z = (p.z + shift).rem_euclid(1.0);
        }
        let (_, u1) = compute_forces(&moved, &params);
        prop_assert!((u0 - u1).abs() <= 1e-9 * u0.abs().max(1e-12), "{u0} vs {u1}");
    }
}
