//! The bitonic sorting-network hardware design model.
//!
//! A 4096-key bitonic network is 78 compare-exchange stages deep
//! (`log2(n)(log2(n)+1)/2`). Fully pipelined, it accepts one key per cycle per
//! lane; with 4 parallel input lanes a 4096-key block streams through in
//! ~1024 cycles plus the pipeline depth. That is a *blisteringly* effective
//! compute engine — which is exactly why the sorting case study is
//! interesting: the computation is so cheap that the bus dominates utterly.

use fpga_sim::cache::{SimCache, SimSummary};
use fpga_sim::catalog;
use fpga_sim::pipeline::{PipelineSpec, PipelinedKernel, StallModel};
use fpga_sim::platform::{AppRun, BufferMode, ExecError, Measurement, Platform};
use rat_core::quantity::Freq;
use rat_core::resources::{device, ResourceEstimate, ResourceReport};

use crate::sort::{BLOCK_KEYS, CE_STAGES, TOTAL_KEYS};

/// The bitonic-network design.
#[derive(Debug, Clone, Copy, Default)]
pub struct BitonicDesign;

impl BitonicDesign {
    /// Parallel input lanes (keys accepted per cycle).
    pub const LANES: u32 = 4;

    /// Compare-exchange operations per key (one per network stage).
    pub const OPS_PER_ELEMENT: u64 = CE_STAGES;

    /// Cycle model: each lane retires one key's full set of stage-operations
    /// per cycle once the network is full; the fill is the network depth.
    pub fn pipeline_spec(&self) -> PipelineSpec {
        PipelineSpec {
            lanes: Self::LANES,
            ops_per_lane_cycle: CE_STAGES as u32,
            fill_latency: CE_STAGES, // one cycle per stage to fill
            drain_latency: CE_STAGES,
            stall: StallModel::None, // sorting networks are data-oblivious
        }
    }

    /// The design as a simulator kernel.
    pub fn kernel(&self) -> PipelinedKernel {
        PipelinedKernel::new("bitonic-4096", self.pipeline_spec(), Self::OPS_PER_ELEMENT)
    }

    /// Per-iteration data movement: every key in, every key out.
    pub fn app_run(&self) -> AppRun {
        AppRun::builder()
            .iterations((TOTAL_KEYS / BLOCK_KEYS) as u64)
            .elements_per_iter(BLOCK_KEYS as u64)
            .input_bytes_per_iter((BLOCK_KEYS * 4) as u64)
            .output_bytes_per_iter((BLOCK_KEYS * 4) as u64)
            .buffer_mode(BufferMode::Double)
            .build()
    }

    /// Resource estimate on the LX100: compare-exchange units are pure
    /// logic — 78 stages x 4 lanes x ~25 slices, plus inter-stage registers
    /// folded in, plus block RAM for the two 16 KB ping-pong buffers. No
    /// DSPs at all (comparators don't multiply).
    pub fn resource_estimate(&self) -> ResourceEstimate {
        ResourceEstimate {
            dsp: 0,
            bram: 24 + 16,
            logic: 7_800,
        }
    }

    /// The resource test against the LX100.
    pub fn resource_report(&self) -> ResourceReport {
        rat_core::solve::stages::resource_report(&device::virtex4_lx100(), self.resource_estimate())
    }

    /// Execute on the simulated Nallatech H101 at `fclock_hz`.
    pub fn simulate(&self, fclock_hz: f64) -> Measurement {
        self.try_simulate(fclock_hz)
            .expect("valid run by construction")
    }

    /// [`Self::simulate`], surfacing execution errors (e.g. a non-positive
    /// clock from a user-supplied `--mhz`) instead of panicking.
    pub fn try_simulate(&self, fclock_hz: f64) -> Result<Measurement, ExecError> {
        let platform = Platform::new(catalog::nallatech_h101());
        platform.execute(&self.kernel(), &self.app_run(), Freq::from_hz(fclock_hz))
    }

    /// [`Self::simulate`] memoized through `cache`, returning the scalar
    /// summary.
    pub fn simulate_summary(&self, fclock_hz: f64, cache: Option<&SimCache>) -> SimSummary {
        let platform = Platform::new(catalog::nallatech_h101());
        platform
            .execute_summary(
                &self.kernel(),
                &self.app_run(),
                Freq::from_hz(fclock_hz),
                cache,
            )
            .expect("valid run by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_sim::kernel::{Batch, HardwareKernel};
    use rat_core::quantity::Cycles;

    #[test]
    fn block_streams_in_about_n_over_lanes_cycles() {
        let k = BitonicDesign.kernel();
        let cycles = k.batch_cycles(&Batch {
            index: 0,
            elements: 4096,
            bytes: 16_384,
        });
        // 4096 keys / 4 lanes = 1024 steady cycles + fill + drain.
        assert_eq!(cycles, Cycles::new(1024 + 78 + 78));
    }

    #[test]
    fn compute_is_trivially_fast_next_to_the_bus() {
        let m = BitonicDesign.simulate(150.0e6);
        // Per iteration: compute ~1180 cycles at 150 MHz ~ 7.9 us; the two
        // 16 KB transfers plus overheads are several times that.
        assert!(
            m.comm_busy.as_secs_f64() > 3.0 * m.compute_busy.as_secs_f64(),
            "comm {} vs comp {}",
            m.comm_busy,
            m.compute_busy
        );
    }

    #[test]
    fn no_dsps_needed() {
        let r = BitonicDesign.resource_report();
        assert_eq!(r.dsp_util, 0.0);
        assert!(r.fits);
        assert_eq!(r.limiting_resource(), "block RAM");
    }
}
