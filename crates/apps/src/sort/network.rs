//! A software-emulated bitonic sorting network.
//!
//! This is the exact dataflow the hardware design pipelines: a fixed,
//! data-oblivious sequence of compare-exchange stages. Emulating it serves
//! two purposes — it proves the network sorts (the hardware's functional
//! correctness argument), and it counts the stages/compare-exchanges the
//! cycle model charges for, tying [`crate::sort::CE_STAGES`] to an executable
//! artifact instead of a formula in a comment.

/// Statistics from one network pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkStats {
    /// Compare-exchange stages applied (the network's depth).
    pub stages: u64,
    /// Total compare-exchange operations executed (`n/2` per stage).
    pub compare_exchanges: u64,
}

/// Sort `data` in place with a bitonic network. The length must be a power of
/// two (networks are fixed-wiring; hardware pads odd blocks). Returns the
/// stage/CE counts.
pub fn bitonic_sort(data: &mut [u32]) -> NetworkStats {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "bitonic network needs a power-of-two size, got {n}"
    );
    if n < 2 {
        return NetworkStats {
            stages: 0,
            compare_exchanges: 0,
        };
    }
    let mut stages = 0u64;
    let mut ces = 0u64;
    // k: size of the bitonic sequences being merged; j: comparison distance.
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            stages += 1;
            for i in 0..n {
                let partner = i ^ j;
                if partner > i {
                    ces += 1;
                    let ascending = (i & k) == 0;
                    if (data[i] > data[partner]) == ascending {
                        data.swap(i, partner);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    NetworkStats {
        stages,
        compare_exchanges: ces,
    }
}

/// The network depth for `n` keys: `log2(n) * (log2(n) + 1) / 2` stages.
pub fn network_depth(n: usize) -> u64 {
    assert!(n.is_power_of_two() && n >= 1, "need a power-of-two size");
    let log2n = n.trailing_zeros() as u64;
    log2n * (log2n + 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sorts_a_block() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..4096).map(|_| rng.gen()).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        bitonic_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn stage_count_matches_the_hardware_models_constant() {
        // The cycle model's CE_STAGES must equal what the real network does.
        let mut v = vec![0u32; crate::sort::BLOCK_KEYS];
        let stats = bitonic_sort(&mut v);
        assert_eq!(stats.stages, crate::sort::CE_STAGES);
        assert_eq!(stats.stages, network_depth(crate::sort::BLOCK_KEYS));
        // n/2 compare-exchanges per stage.
        assert_eq!(
            stats.compare_exchanges,
            stats.stages * (crate::sort::BLOCK_KEYS as u64 / 2)
        );
    }

    #[test]
    fn tiny_networks() {
        let mut v = vec![3u32, 1];
        let stats = bitonic_sort(&mut v);
        assert_eq!(v, vec![1, 3]);
        assert_eq!(stats.stages, 1);
        let mut v = vec![7u32];
        assert_eq!(bitonic_sort(&mut v).stages, 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        bitonic_sort(&mut [1, 2, 3]);
    }

    proptest! {
        /// The network sorts arbitrary power-of-two-sized inputs, with a
        /// data-independent operation count (the property that makes it
        /// pipeline so well in hardware).
        #[test]
        fn network_sorts_and_is_data_oblivious(
            log_n in 1u32..10,
            seed in 0u64..1000,
        ) {
            let n = 1usize << log_n;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut v: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            let stats = bitonic_sort(&mut v);
            prop_assert_eq!(&v, &expect);
            // Identical op counts for sorted input: data-obliviousness.
            let mut sorted = expect.clone();
            let stats2 = bitonic_sort(&mut sorted);
            prop_assert_eq!(stats, stats2);
            prop_assert_eq!(stats.stages, network_depth(n));
        }
    }
}
