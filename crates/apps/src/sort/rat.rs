//! The sorting worksheet — RAT's negative verdict.
//!
//! Alphas are probed at the design's own 16 KB transfer size (the §4.2
//! discipline the 2-D PDF study taught), and the prediction still can't
//! rescue the design: the communication-bound ceiling sits near 4x, so a 10x
//! goal is unreachable by *any* amount of parallelism. The correct decision
//! is to not build it — which is RAT working as intended.

use rat_core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat_core::quantity::{Freq, Seconds, Throughput};

use crate::sort::hw::BitonicDesign;
use crate::sort::{BLOCK_KEYS, CE_STAGES, TOTAL_KEYS};

/// Software baseline: block-sorting 4 M keys in 4,096-key blocks on the
/// paper-era Xeon (~250 us per block). Re-measure on modern hardware with
/// [`crate::sort::baseline::sort_blocks`].
pub const T_SOFT: f64 = 0.256;

/// The RAT worksheet input for the bitonic design at `fclock_hz`.
pub fn rat_input(fclock_hz: f64) -> RatInput {
    // Alphas from the simulated platform's microbenchmark at 16 KB.
    let ic = fpga_sim::catalog::nallatech_h101().interconnect;
    let probe = fpga_sim::microbench::measure_alpha(&ic, (BLOCK_KEYS * 4) as u64);
    RatInput {
        name: "Bitonic sort".into(),
        dataset: DatasetParams {
            elements_in: BLOCK_KEYS as u64,
            elements_out: BLOCK_KEYS as u64,
            bytes_per_element: 4,
        },
        comm: CommParams {
            ideal_bandwidth: Throughput::from_bytes_per_sec(1.0e9),
            alpha_write: probe.alpha_write,
            alpha_read: probe.alpha_read,
        },
        comp: CompParams {
            ops_per_element: CE_STAGES as f64,
            throughput_proc: (BitonicDesign::LANES as u64 * CE_STAGES) as f64,
            fclock: Freq::from_hz(fclock_hz),
        },
        software: SoftwareParams {
            t_soft: Seconds::new(T_SOFT),
            iterations: (TOTAL_KEYS / BLOCK_KEYS) as u64,
        },
        buffering: Buffering::Double,
    }
}

/// The hardware design model.
pub fn design() -> BitonicDesign {
    BitonicDesign
}

#[cfg(test)]
mod tests {
    use super::*;
    use rat_core::methodology::{AmenabilityTest, Requirements, Verdict};
    use rat_core::solve;
    use rat_core::worksheet::Worksheet;

    #[test]
    fn sorting_is_communication_bound() {
        let r = Worksheet::new(rat_input(150.0e6)).analyze().unwrap();
        assert!(r.throughput.comm_bound());
        assert!(r.throughput.t_comm > 5.0 * r.throughput.t_comp);
        // Modest predicted speedup despite 312 ops/cycle of parallelism.
        assert!(r.speedup < 5.0, "predicted {}", r.speedup);
    }

    #[test]
    fn ten_x_is_structurally_infeasible() {
        let input = rat_input(150.0e6);
        let wall = solve::max_speedup(&input).unwrap();
        assert!(wall < 5.0, "comm-bound ceiling {wall}");
        assert!(solve::required_throughput_proc(&input, 10.0).is_err());
        // Even an infinitely fast clock cannot help.
        assert!(solve::required_fclock(&input, 10.0).is_err());
    }

    #[test]
    fn methodology_bounces_the_migration() {
        let report = AmenabilityTest::new(
            rat_input(150.0e6),
            Requirements {
                min_speedup: 10.0,
                reject_routing_strain: true,
            },
        )
        .with_resources(design().resource_report())
        .evaluate()
        .unwrap();
        assert!(matches!(
            report.verdict,
            Verdict::Revise(rat_core::methodology::Bounce::InsufficientThroughput { .. })
        ));
    }

    #[test]
    fn simulation_confirms_the_prediction_direction() {
        // The negative prediction is validated, not just asserted: the
        // simulated run lands at an even lower speedup than the alpha-model
        // prediction (per-transfer overheads on 1,024 round trips).
        let predicted = Worksheet::new(rat_input(150.0e6)).analyze().unwrap();
        let m = design().simulate(150.0e6);
        let measured = T_SOFT / m.total.as_secs_f64();
        assert!(
            measured < predicted.speedup,
            "{measured} vs {}",
            predicted.speedup
        );
        assert!(measured < 5.0);
        // Same order of magnitude: the prediction is honest.
        assert!(predicted.speedup / measured < 2.0);
    }

    #[test]
    fn parallelism_cannot_rescue_a_comm_bound_design() {
        let input = rat_input(150.0e6);
        let one = rat_core::multifpga::analyze(&input, 1).unwrap();
        let eight = rat_core::multifpga::analyze(&input, 8).unwrap();
        assert!((eight.speedup - one.speedup) / one.speedup < 0.05);
        assert_eq!(rat_core::multifpga::saturating_devices(&input).unwrap(), 1);
    }
}
