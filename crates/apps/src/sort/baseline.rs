//! Software sorting baselines.
//!
//! A hand-rolled bottom-up merge sort (the classic software counterpart of a
//! merging network) plus a rayon-parallel variant, with `slice::sort_unstable`
//! available as the "tuned library" reference the benchmarks compare against.

use rayon::prelude::*;

/// Bottom-up (iterative) merge sort; stable, O(n log n), no recursion.
pub fn merge_sort(data: &mut [u32]) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let mut buf = vec![0u32; n];
    let mut width = 1;
    let mut src_is_data = true;
    while width < n {
        {
            let (src, dst): (&[u32], &mut [u32]) = if src_is_data {
                (&*data, &mut buf)
            } else {
                (&buf, data)
            };
            let mut i = 0;
            while i < n {
                let mid = (i + width).min(n);
                let end = (i + 2 * width).min(n);
                merge_runs(&src[i..mid], &src[mid..end], &mut dst[i..end]);
                i = end;
            }
        }
        src_is_data = !src_is_data;
        width *= 2;
    }
    if !src_is_data {
        data.copy_from_slice(&buf);
    }
}

fn merge_runs(a: &[u32], b: &[u32], out: &mut [u32]) {
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Parallel merge sort: rayon-sorted halves merged on one thread. Good enough
/// as a multicore baseline without reimplementing parallel merge.
pub fn merge_sort_parallel(data: &mut [u32]) {
    data.par_sort_unstable();
}

/// Sort each `block`-sized chunk independently — the exact work the bitonic
/// hardware performs per iteration (the host merges blocks afterwards, in
/// both the software and hardware formulations, so block sorting is the
/// apples-to-apples unit).
pub fn sort_blocks(data: &mut [u32], block: usize) {
    assert!(block > 0, "block size must be positive");
    for chunk in data.chunks_mut(block) {
        chunk.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_keys(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn merge_sort_sorts() {
        for n in [0usize, 1, 2, 3, 100, 1000, 4096, 5000] {
            let mut v = random_keys(n, n as u64);
            let mut expect = v.clone();
            expect.sort_unstable();
            merge_sort(&mut v);
            assert_eq!(v, expect, "n = {n}");
        }
    }

    #[test]
    fn merge_sort_handles_presorted_and_reversed() {
        let mut v: Vec<u32> = (0..1000).collect();
        merge_sort(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        let mut v: Vec<u32> = (0..1000).rev().collect();
        merge_sort(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn merge_sort_handles_duplicates() {
        let mut v = vec![5u32; 257];
        v.extend([1, 9, 5, 3]);
        merge_sort(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(v.iter().filter(|&&x| x == 5).count(), 258);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut a = random_keys(10_000, 7);
        let mut b = a.clone();
        merge_sort(&mut a);
        merge_sort_parallel(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn sort_blocks_sorts_each_block_only() {
        let mut v = random_keys(1024, 11);
        sort_blocks(&mut v, 256);
        for chunk in v.chunks(256) {
            assert!(chunk.windows(2).all(|w| w[0] <= w[1]));
        }
        // The whole array is (almost surely) not globally sorted.
        assert!(!v.windows(2).all(|w| w[0] <= w[1]));
    }
}
