//! Sorting: the paper's "value in an array to be sorted" element example,
//! built out as a fourth case study — and a deliberately *negative* one.
//!
//! A bitonic sorting network is a classic FPGA showpiece: fully pipelined,
//! one element per cycle, massively parallel compare-exchanges. Yet RAT's
//! worksheet says the migration loses: sorting does only `O(log^2 n)` work
//! per element, so the design drowns in its own data movement — every key
//! crosses the bus twice for a few dozen comparator passes. The amenability
//! test exists precisely to catch this *before* anyone writes the RTL, which
//! makes sorting the perfect foil to the PDF and MD studies.
//!
//! - [`baseline`]: merge-sort software baselines (sequential + parallel).
//! - [`hw`]: the bitonic-network hardware design model.
//! - [`rat`]: the worksheet input and its (unflattering) predictions.

pub mod baseline;
pub mod hw;
pub mod network;
pub mod rat;

/// Keys per buffered block: one network load.
pub const BLOCK_KEYS: usize = 4096;

/// Total keys in the full problem (1,024 iterations of 4,096).
pub const TOTAL_KEYS: usize = 4_194_304;

/// Compare-exchange stages a 4096-key bitonic network applies to each key:
/// `log2(n) * (log2(n) + 1) / 2` = 12 * 13 / 2.
pub const CE_STAGES: u64 = 78;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_depth_formula() {
        let log2n = (BLOCK_KEYS as f64).log2() as u64;
        assert_eq!(log2n, 12);
        assert_eq!(CE_STAGES, log2n * (log2n + 1) / 2);
    }

    #[test]
    fn iteration_structure() {
        assert_eq!(TOTAL_KEYS / BLOCK_KEYS, 1024);
    }
}
