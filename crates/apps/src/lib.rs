//! The RAT paper's case-study applications, implemented end to end.
//!
//! Each case study provides four artifacts:
//!
//! 1. a **software baseline** — the real algorithm in Rust (sequential and
//!    rayon-parallel), standing in for the paper's C-on-Xeon/Opteron codes;
//! 2. a **hardware design model** — the microarchitecture the paper describes
//!    (e.g. Figure 3's eight parallel pipelines), expressed as an
//!    [`fpga_sim`] kernel with calibrated fill/stall behaviour plus a
//!    [`rat_core`] resource estimate;
//! 3. the **RAT worksheet input** — the paper's Table 2 / 5 / 8 parameters;
//! 4. a **simulated execution** on the corresponding catalog platform,
//!    producing the "actual" columns of Tables 3 / 6 / 9.
//!
//! | Case study | Paper section | Platform |
//! |---|---|---|
//! | [`pdf::pdf1d`] 1-D Parzen-window PDF estimation | §4 | Nallatech H101 (V4 LX100) |
//! | [`pdf::pdf2d`] 2-D Parzen-window PDF estimation | §5.1 | Nallatech H101 (V4 LX100) |
//! | [`pdf::ndim`] d-dimensional generalization | extends §5.1 | Nallatech H101 (V4 LX100) |
//! | [`md`] molecular dynamics | §5.2 | XtremeData XD1000 (EP2S180) |
//! | [`sort`] bitonic sorting (negative result) | §3.1's element example | Nallatech H101 (V4 LX100) |

#![warn(missing_docs)]

pub mod datagen;
pub mod md;
pub mod pdf;
pub mod sort;
