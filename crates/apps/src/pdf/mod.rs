//! Parzen-window probability-density-function estimation.
//!
//! The Parzen window technique estimates a PDF nonparametrically: every data
//! sample contributes a kernel "bump" at every discrete probability level
//! (bin). Complexity is `O(N·n^d)` for `N` bins per dimension, `n` samples,
//! `d` dimensions — embarrassingly parallel over bins, which is why the paper
//! picks it as a hardware-friendly case study.
//!
//! - [`parzen`]: the reference algorithm in `f64`, any dimension, sequential
//!   and rayon-parallel — the software baseline.
//! - [`fixed`]: the 18-bit fixed-point datapath the paper's hardware uses,
//!   bit-accurately modelled with [`fixedpoint`], for the precision test.
//! - [`hw`]: the Figure-3 hardware design (8 parallel MAC pipelines) and its
//!   2-D sibling as simulator kernels plus resource estimates.
//! - [`pdf1d`], [`pdf2d`]: the complete case studies (Table 2/5 inputs,
//!   simulated "actual" runs for Tables 3/6).

pub mod fixed;
pub mod hw;
pub mod ndim;
pub mod parzen;
pub mod pdf1d;
pub mod pdf2d;

/// Number of discrete probability levels per dimension in both case studies.
pub const BINS: usize = 256;

/// Samples processed per iteration (one buffered block), per dimension.
pub const BLOCK: usize = 512;

/// Total samples in the full 1-D problem (400 iterations of 512).
pub const TOTAL_SAMPLES_1D: usize = 204_800;

/// Gaussian kernel bandwidth used by both case studies. Chosen by Silverman's
/// rule of thumb for the bimodal dataset at this scale.
pub const BANDWIDTH: f64 = 0.05;

/// Bin centers: `BINS` points evenly spread across `(-1, 1)`.
pub fn bin_centers() -> Vec<f64> {
    (0..BINS)
        .map(|j| (2.0 * (j as f64 + 0.5) / BINS as f64) - 1.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_centers_span_the_open_interval() {
        let c = bin_centers();
        assert_eq!(c.len(), BINS);
        assert!(c[0] > -1.0 && c[0] < -0.99);
        assert!(c[BINS - 1] < 1.0 && c[BINS - 1] > 0.99);
        // Uniform spacing.
        let step = c[1] - c[0];
        for w in c.windows(2) {
            assert!((w[1] - w[0] - step).abs() < 1e-12);
        }
    }

    #[test]
    fn block_and_iteration_counts_match_the_paper() {
        assert_eq!(TOTAL_SAMPLES_1D / BLOCK, 400);
    }
}
