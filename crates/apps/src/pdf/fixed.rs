//! The fixed-point PDF datapath, bit-accurately modelled.
//!
//! The paper's hardware uses 18-bit fixed point "so that only one Xilinx 18x18
//! multiply-accumulate (MAC) unit would be needed per multiplication", after
//! establishing its maximum error (~2%) was acceptable. This module models
//! that datapath:
//!
//! - samples and bin centers quantized to `Q0.17` (18 bits),
//! - the difference `d = b - x` held exactly (the DSP pre-adder's full width),
//! - the squared distance compared against a cutoff and used to index a
//!   Gaussian lookup table whose entries are `Q0.17`-quantized,
//! - accumulation in the DSP48's 48-bit accumulator (exact).
//!
//! Error therefore comes from input quantization, LUT value quantization, and
//! LUT index resolution — the same sources a real implementation has. The
//! datapath is parameterized over fractional width so the RAT precision test
//! can sweep candidate formats (reproducing the paper's 18-vs-32-bit study).

use crate::pdf::parzen::gaussian_kernel;
use fixedpoint::{ErrorStats, Fx, Overflow, QFormat, Rounding};

/// Kernel lookup-table entries for a datapath with `frac_bits` fractional
/// bits. A real design sizes the LUT to the datapath: the table is addressed
/// by the top half of the squared-distance word, so its depth grows with the
/// format (clamped to one physical BRAM's worth). The paper's 18-bit format
/// gets 512 entries — half a BRAM18.
pub fn lut_size_for(frac_bits: u32) -> usize {
    1usize << (frac_bits.div_ceil(2)).clamp(4, 12)
}

/// Kernel support cutoff in bandwidths: beyond `CUTOFF_BW * h` the Gaussian is
/// treated as zero (at 5 bandwidths it is below 4e-6 of the peak).
pub const CUTOFF_BW: f64 = 5.0;

/// A fixed-point Parzen datapath with a given data format.
#[derive(Debug, Clone)]
pub struct FixedParzen1d {
    fmt: QFormat,
    h: f64,
    cutoff2: f64,
    /// LUT of kernel values, normalized to peak 1.0, quantized to `fmt`.
    lut: Vec<Fx>,
    /// Peak kernel value, multiplied back in during normalization.
    peak: f64,
}

impl FixedParzen1d {
    /// Build the datapath for bandwidth `h` at the paper's 18-bit format.
    pub fn paper_18bit(h: f64) -> Self {
        Self::with_format(QFormat::signed(0, 17).expect("Q0.17 is valid"), h)
    }

    /// Build the datapath for bandwidth `h` with data format `fmt`
    /// (must be a signed sub-unity format, `Q0.f`).
    pub fn with_format(fmt: QFormat, h: f64) -> Self {
        assert!(h > 0.0, "bandwidth must be positive");
        assert!(
            fmt.is_signed() && fmt.int_bits() == 0,
            "data format must be Q0.f"
        );
        let peak = gaussian_kernel(0.0, h);
        let cutoff2 = (CUTOFF_BW * h) * (CUTOFF_BW * h);
        let lut_size = lut_size_for(fmt.frac_bits());
        let lut = (0..lut_size)
            .map(|i| {
                // Table entry i covers squared distances
                // [i, i+1) * cutoff2 / lut_size; store the midpoint value.
                let d2 = (i as f64 + 0.5) * cutoff2 / lut_size as f64;
                let v = gaussian_kernel(d2, h) / peak;
                Fx::from_f64(v, fmt, Rounding::Nearest, Overflow::Saturate)
            })
            .collect();
        Self {
            fmt,
            h,
            cutoff2,
            lut,
            peak,
        }
    }

    /// The data format in use.
    pub fn format(&self) -> QFormat {
        self.fmt
    }

    /// The bandwidth.
    pub fn bandwidth(&self) -> f64 {
        self.h
    }

    /// Kernel value (normalized to peak 1.0) the hardware produces for one
    /// (bin, sample) pair.
    fn kernel_fx(&self, bin_q: f64, x_q: f64) -> Option<Fx> {
        // The difference and its square are exact in the DSP's full width.
        let d = bin_q - x_q;
        let s = d * d;
        if s >= self.cutoff2 {
            return None; // beyond LUT support: hardware contributes zero
        }
        let idx = (s / self.cutoff2 * self.lut.len() as f64) as usize;
        Some(self.lut[idx.min(self.lut.len() - 1)])
    }

    /// Run the full fixed-point estimate: quantize inputs, accumulate each
    /// kernel value in a 48-bit accumulator (exact: entries are multiples of
    /// one ULP), normalize at the end.
    pub fn estimate(&self, samples: &[f64], bins: &[f64]) -> Vec<f64> {
        let q = |v: f64| Fx::from_f64(v, self.fmt, Rounding::Nearest, Overflow::Saturate).to_f64();
        let norm = self.peak / samples.len().max(1) as f64;
        bins.iter()
            .map(|&b| {
                let bq = q(b);
                // 48-bit accumulation of Q0.f entries is exact for any block
                // size below 2^(47-f); model it as an i64 sum of raw values.
                let mut acc_raw: i64 = 0;
                for &x in samples {
                    if let Some(k) = self.kernel_fx(bq, q(x)) {
                        acc_raw += k.raw();
                    }
                }
                acc_raw as f64 * self.fmt.ulp() * norm
            })
            .collect()
    }

    /// Error of this datapath against the `f64` reference on the same data.
    pub fn error_vs_reference(&self, samples: &[f64], bins: &[f64]) -> ErrorStats {
        let reference = crate::pdf::parzen::estimate_1d(samples, bins, self.h);
        let quantized = self.estimate(samples, bins);
        // Relative error on near-zero density values is meaningless (and the
        // paper's ~2% figure is against the PDF's meaningful range), so
        // compare only bins with non-negligible reference density.
        let floor = reference.iter().cloned().fold(0.0, f64::max) * 1e-3;
        let mut stats = ErrorStats::new();
        for (&r, &q) in reference.iter().zip(&quantized) {
            if r > floor {
                stats.record(r, q);
            }
        }
        stats
    }
}

/// Precision-test evaluation hook: error of a `Q0.(bits-1)` datapath on a
/// standard workload. Suitable for [`rat_core::precision::precision_test`].
pub fn precision_eval(fmt: QFormat, samples: &[f64], bins: &[f64], h: f64) -> ErrorStats {
    FixedParzen1d::with_format(fmt, h).error_vs_reference(samples, bins)
}

/// The 2-D fixed-point datapath: same quantization discipline as the 1-D
/// design (inputs and LUT entries in `Q0.f`, exact squared distances, exact
/// 48-bit accumulation), with the squared distance summed over both
/// dimensions before the LUT lookup — exactly the `(N1-n1)^2 + (N2-n2)^2`
/// structure §5.1 describes.
#[derive(Debug, Clone)]
pub struct FixedParzen2d {
    inner: FixedParzen1d,
}

impl FixedParzen2d {
    /// Build the 2-D datapath at the paper's 18-bit format.
    pub fn paper_18bit(h: f64) -> Self {
        Self {
            inner: FixedParzen1d::paper_18bit(h),
        }
    }

    /// Build with an explicit data format.
    pub fn with_format(fmt: QFormat, h: f64) -> Self {
        Self {
            inner: FixedParzen1d::with_format(fmt, h),
        }
    }

    /// Run the fixed-point 2-D estimate over the `bins_x` x `bins_y` grid
    /// (x-major ordering, matching [`crate::pdf::parzen::estimate_2d`]).
    pub fn estimate(&self, samples: &[(f64, f64)], bins_x: &[f64], bins_y: &[f64]) -> Vec<f64> {
        let fmt = self.inner.fmt;
        let q = |v: f64| Fx::from_f64(v, fmt, Rounding::Nearest, Overflow::Saturate).to_f64();
        // 2-D normalization: peak of the 2-D kernel.
        let peak2 = crate::pdf::parzen::gaussian_kernel_2d(0.0, self.inner.h);
        let norm = peak2 / samples.len().max(1) as f64;
        let qsamples: Vec<(f64, f64)> = samples.iter().map(|&(x, y)| (q(x), q(y))).collect();
        let mut out = Vec::with_capacity(bins_x.len() * bins_y.len());
        for &bx in bins_x {
            let bxq = q(bx);
            for &by in bins_y {
                let byq = q(by);
                let mut acc_raw: i64 = 0;
                for &(xq, yq) in &qsamples {
                    let dx = bxq - xq;
                    let dy = byq - yq;
                    let s = dx * dx + dy * dy;
                    if s >= self.inner.cutoff2 {
                        continue;
                    }
                    let idx = (s / self.inner.cutoff2 * self.inner.lut.len() as f64) as usize;
                    acc_raw += self.inner.lut[idx.min(self.inner.lut.len() - 1)].raw();
                }
                out.push(acc_raw as f64 * fmt.ulp() * norm);
            }
        }
        out
    }

    /// Error against the f64 2-D reference on the same data (bins with
    /// negligible reference density are excluded from relative error, as in
    /// the 1-D path).
    pub fn error_vs_reference(
        &self,
        samples: &[(f64, f64)],
        bins_x: &[f64],
        bins_y: &[f64],
    ) -> ErrorStats {
        let reference = crate::pdf::parzen::estimate_2d(samples, bins_x, bins_y, self.inner.h);
        let quantized = self.estimate(samples, bins_x, bins_y);
        let floor = reference.iter().cloned().fold(0.0, f64::max) * 1e-3;
        let mut stats = ErrorStats::new();
        for (&r, &q) in reference.iter().zip(&quantized) {
            if r > floor {
                stats.record(r, q);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::bimodal_samples;
    use crate::pdf::{bin_centers, BANDWIDTH};

    fn workload() -> (Vec<f64>, Vec<f64>) {
        (bimodal_samples(2048, 31), bin_centers())
    }

    #[test]
    fn paper_18bit_error_is_about_two_percent() {
        let (samples, bins) = workload();
        let dp = FixedParzen1d::paper_18bit(BANDWIDTH);
        let stats = dp.error_vs_reference(&samples, &bins);
        let err = stats.max_rel_error();
        assert!(
            err < 0.03,
            "18-bit datapath error {err:.4} should be within the paper's ~2-3% band"
        );
        assert!(err > 1e-4, "error {err:.2e} suspiciously small for 18-bit");
    }

    #[test]
    fn wider_formats_reduce_error() {
        let (samples, bins) = workload();
        let e18 = FixedParzen1d::with_format(QFormat::signed(0, 17).unwrap(), BANDWIDTH)
            .error_vs_reference(&samples, &bins)
            .max_rel_error();
        let e24 = FixedParzen1d::with_format(QFormat::signed(0, 23).unwrap(), BANDWIDTH)
            .error_vs_reference(&samples, &bins)
            .max_rel_error();
        assert!(
            e24 < e18,
            "24-bit ({e24:.2e}) should beat 18-bit ({e18:.2e})"
        );
    }

    #[test]
    fn narrow_format_fails_tolerance() {
        let (samples, bins) = workload();
        let e10 = FixedParzen1d::with_format(QFormat::signed(0, 9).unwrap(), BANDWIDTH)
            .error_vs_reference(&samples, &bins)
            .max_rel_error();
        assert!(
            e10 > 0.03,
            "10-bit error {e10:.3} should bust the 2-3% tolerance"
        );
    }

    #[test]
    fn estimate_is_close_to_reference_in_shape() {
        let (samples, bins) = workload();
        let dp = FixedParzen1d::paper_18bit(BANDWIDTH);
        let fx = dp.estimate(&samples, &bins);
        let f64ref = crate::pdf::parzen::estimate_1d(&samples, &bins, BANDWIDTH);
        // Peak bin agrees.
        let argmax = |v: &[f64]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        assert_eq!(argmax(&fx), argmax(&f64ref));
    }

    #[test]
    fn lut_is_monotone_decreasing() {
        let dp = FixedParzen1d::paper_18bit(BANDWIDTH);
        for w in dp.lut.windows(2) {
            assert!(w[1].raw() <= w[0].raw());
        }
        // First entry is ~peak (1.0 saturates to max representable).
        // First entry is the first bin's midpoint value, just below the peak.
        assert!(dp.lut[0].to_f64() > 0.98);
        // Last entry is ~0 (5 bandwidths out).
        assert_eq!(dp.lut.len(), lut_size_for(17));
        assert_eq!(dp.lut.len(), 512);
        assert!(dp.lut[dp.lut.len() - 1].to_f64() < 1e-4);
    }

    #[test]
    fn beyond_cutoff_contributes_nothing() {
        let dp = FixedParzen1d::paper_18bit(BANDWIDTH);
        // Sample at -0.9, bin at +0.9: far beyond 5 bandwidths.
        let est = dp.estimate(&[-0.9], &[0.9]);
        assert_eq!(est[0], 0.0);
    }

    #[test]
    fn precision_eval_hook_matches_direct_call() {
        let (samples, bins) = workload();
        let fmt = QFormat::signed(0, 17).unwrap();
        let via_hook = precision_eval(fmt, &samples, &bins, BANDWIDTH);
        let direct = FixedParzen1d::with_format(fmt, BANDWIDTH).error_vs_reference(&samples, &bins);
        assert_eq!(via_hook.max_rel_error(), direct.max_rel_error());
    }

    #[test]
    #[should_panic(expected = "Q0.f")]
    fn integer_bits_rejected() {
        FixedParzen1d::with_format(QFormat::signed(2, 15).unwrap(), BANDWIDTH);
    }

    fn workload_2d() -> (Vec<(f64, f64)>, Vec<f64>) {
        let samples = crate::datagen::bimodal_samples_2d(512, 33);
        let bins: Vec<f64> = (0..32)
            .map(|i| i as f64 / 16.0 - 1.0 + 1.0 / 32.0)
            .collect();
        (samples, bins)
    }

    #[test]
    fn two_d_18bit_error_within_band() {
        let (samples, bins) = workload_2d();
        let dp = FixedParzen2d::paper_18bit(BANDWIDTH);
        let stats = dp.error_vs_reference(&samples, &bins, &bins);
        let err = stats.max_rel_error();
        assert!(err < 0.04, "2-D 18-bit datapath error {err:.4}");
        assert!(err > 1e-5, "error {err:.2e} suspiciously small");
    }

    #[test]
    fn two_d_wider_format_reduces_error() {
        let (samples, bins) = workload_2d();
        let e18 = FixedParzen2d::with_format(QFormat::signed(0, 17).unwrap(), BANDWIDTH)
            .error_vs_reference(&samples, &bins, &bins)
            .max_rel_error();
        let e24 = FixedParzen2d::with_format(QFormat::signed(0, 23).unwrap(), BANDWIDTH)
            .error_vs_reference(&samples, &bins, &bins)
            .max_rel_error();
        assert!(e24 < e18, "24-bit {e24:.2e} should beat 18-bit {e18:.2e}");
    }

    #[test]
    fn two_d_estimate_matches_reference_shape() {
        let (samples, bins) = workload_2d();
        let fx = FixedParzen2d::paper_18bit(BANDWIDTH).estimate(&samples, &bins, &bins);
        let reference = crate::pdf::parzen::estimate_2d(&samples, &bins, &bins, BANDWIDTH);
        assert_eq!(fx.len(), reference.len());
        let argmax = |v: &[f64]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        assert_eq!(argmax(&fx), argmax(&reference));
    }
}
