//! d-dimensional generalization of the PDF case studies.
//!
//! The Parzen technique "is applicable in an arbitrary number of dimensions"
//! (§5.1), with complexity `O(N n^d)`. The paper stops at d = 2 and already
//! finds the trade inverted: more parallelizable work, less delivered
//! speedup. This module extends the design family to arbitrary `d` so the
//! trend can be charted — and shows where it dies: at d = 3 the bin lattice
//! (256^3 partial sums) no longer fits the LX100's block RAM, so the design
//! fails RAT's *resource* gate before throughput even matters.

use rat_core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat_core::quantity::{Freq, Seconds, Throughput};
use rat_core::resources::{device, estimate, ResourceEstimate, ResourceReport};

use crate::pdf::{BINS, BLOCK};

/// Software cost per (sample, bin) pair on the paper's 3.2 GHz Xeon,
/// calibrated from both published baselines: 0.578 s / (204800 x 256) and
/// 158.8 s / (204800 x 65536) agree at ~1.1e-8 s.
pub const SOFT_SECS_PER_PAIR: f64 = 1.13e-8;

/// Total samples in every configuration (matching the 1-D study).
pub const TOTAL_SAMPLES: u64 = crate::pdf::TOTAL_SAMPLES_1D as u64;

/// A d-dimensional PDF estimation design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdfNdDesign {
    /// Dimensionality (1..=4 supported; beyond that the numbers are absurd).
    pub dims: u32,
    /// Parallel pipelines instantiated.
    pub pipelines: u32,
}

impl PdfNdDesign {
    /// The paper's two published design points.
    pub fn paper_1d() -> Self {
        Self {
            dims: 1,
            pipelines: 8,
        }
    }

    /// The 2-D design point.
    pub fn paper_2d() -> Self {
        Self {
            dims: 2,
            pipelines: 12,
        }
    }

    /// A design point for `dims` dimensions with `pipelines` pipelines.
    /// Panics outside `1..=4` dimensions or with zero pipelines.
    pub fn new(dims: u32, pipelines: u32) -> Self {
        assert!(
            (1..=4).contains(&dims),
            "supported dimensionality is 1..=4, got {dims}"
        );
        assert!(pipelines > 0, "need at least one pipeline");
        Self { dims, pipelines }
    }

    /// Bins in the full lattice: `256^dims`.
    pub fn total_bins(&self) -> u64 {
        (BINS as u64).pow(self.dims)
    }

    /// Operations per (element, bin) pair: one subtract-square per dimension
    /// plus the accumulate chain — `3 * dims` in the paper's convention
    /// (3 ops at d = 1, 6 ops at d = 2).
    pub fn ops_per_pair(&self) -> u64 {
        3 * self.dims as u64
    }

    /// Operations per element: `256^d * 3d` (768 at d = 1, 393216 at d = 2).
    pub fn ops_per_element(&self) -> u64 {
        self.total_bins() * self.ops_per_pair()
    }

    /// Elements per iteration: one 512-sample block per dimension.
    pub fn elements_per_iter(&self) -> u64 {
        self.dims as u64 * BLOCK as u64
    }

    /// Structural peak ops/cycle.
    pub fn structural_ops_per_cycle(&self) -> f64 {
        (self.pipelines as u64 * self.ops_per_pair()) as f64
    }

    /// The worksheet's conservative `throughput_proc`: the paper discounted
    /// 24 -> 20 at d = 1 and 72 -> 48 at d = 2; a flat ~80% discount covers
    /// the family.
    pub fn worksheet_ops_per_cycle(&self) -> f64 {
        (self.structural_ops_per_cycle() * 0.8).floor()
    }

    /// Extrapolated software-baseline time: pairs x calibrated per-pair cost.
    pub fn t_soft(&self) -> f64 {
        TOTAL_SAMPLES as f64 * self.total_bins() as f64 * SOFT_SECS_PER_PAIR
    }

    /// The RAT worksheet input for this design point at `fclock_hz`.
    pub fn rat_input(&self, fclock_hz: f64) -> RatInput {
        RatInput {
            name: format!("{}-D PDF", self.dims),
            dataset: DatasetParams {
                elements_in: self.elements_per_iter(),
                // d = 1 accumulates on-chip (one result element); higher
                // dimensions return the full lattice per iteration, as the
                // 2-D study did.
                elements_out: if self.dims == 1 { 1 } else { self.total_bins() },
                bytes_per_element: 4,
            },
            comm: CommParams {
                ideal_bandwidth: Throughput::from_bytes_per_sec(1.0e9),
                alpha_write: 0.37,
                alpha_read: 0.16,
            },
            comp: CompParams {
                ops_per_element: self.ops_per_element() as f64,
                throughput_proc: self.worksheet_ops_per_cycle(),
                fclock: Freq::from_hz(fclock_hz),
            },
            software: SoftwareParams {
                t_soft: Seconds::new(self.t_soft()),
                iterations: TOTAL_SAMPLES / BLOCK as u64,
            },
            buffering: Buffering::Single,
        }
    }

    /// Resource estimate on the LX100: `dims` MACs per pipeline, the bin
    /// lattice in 18-bit block RAM partials, one kernel LUT per pipeline,
    /// the constant vendor wrapper, and ~(560 + 110*dims) slices/pipeline —
    /// coefficients fitted to the two published design points (Tables 4, 7).
    pub fn resource_estimate(&self) -> ResourceEstimate {
        let dsp = self.pipelines * self.dims;
        let bin_bytes = self.total_bins() * 18 / 8; // 18-bit partials
        let bin_brams = estimate::brams_for_buffer(bin_bytes, estimate::XILINX_BRAM18_BYTES);
        let bram = 24 + self.pipelines + 4 + bin_brams;
        let logic = self.pipelines as u64 * (560 + 110 * self.dims as u64) + 1_200;
        ResourceEstimate { dsp, bram, logic }
    }

    /// The resource test against the LX100.
    pub fn resource_report(&self) -> ResourceReport {
        rat_core::solve::stages::resource_report(&device::virtex4_lx100(), self.resource_estimate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rat_core::worksheet::Worksheet;

    #[test]
    fn reduces_to_the_paper_at_d1_and_d2() {
        let d1 = PdfNdDesign::paper_1d();
        assert_eq!(d1.ops_per_element(), 768);
        assert_eq!(d1.worksheet_ops_per_cycle(), 19.0); // paper used 20; 0.8*24
        let d2 = PdfNdDesign::paper_2d();
        assert_eq!(d2.ops_per_element(), 393_216);
        assert_eq!(d2.elements_per_iter(), 1024);
        // 0.8 * 72 = 57.6 -> 57; the paper's 48 was more conservative still.
        assert!(d2.worksheet_ops_per_cycle() >= 48.0);
    }

    #[test]
    fn t_soft_extrapolation_matches_published_baselines() {
        let d1 = PdfNdDesign::paper_1d().t_soft();
        assert!((d1 - 0.578).abs() / 0.578 < 0.05, "d=1 t_soft {d1}");
        let d2 = PdfNdDesign::paper_2d().t_soft();
        assert!((d2 - 158.8).abs() / 158.8 < 0.08, "d=2 t_soft {d2}");
    }

    #[test]
    fn speedup_trend_peaks_early_then_decays() {
        // With the paper's design scaling (pipelines grow modestly with d),
        // predicted speedup drops from d=1 to d=2 — §5.1's punchline —
        // because ops grow 256x per dimension while parallelism grows ~1.5x.
        let s = |design: PdfNdDesign| {
            Worksheet::new(design.rat_input(150.0e6))
                .analyze()
                .unwrap()
                .speedup
        };
        let s1 = s(PdfNdDesign::paper_1d());
        let s2 = s(PdfNdDesign::paper_2d());
        let s3 = s(PdfNdDesign::new(3, 16));
        assert!(s2 < s1, "2-D predicted {s2} should trail 1-D {s1}");
        assert!(
            s3 < s2 * 1.2,
            "3-D gains nothing without massive parallelism: {s3}"
        );
    }

    #[test]
    fn d3_busts_block_ram_on_the_lx100() {
        // 256^3 bins of 18-bit partials = ~37.7 MB >> 240 BRAM18s.
        let d3 = PdfNdDesign::new(3, 16);
        let r = d3.resource_report();
        assert!(!r.fits, "{}", r.render());
        assert_eq!(r.limiting_resource(), "block RAM");
        // d = 1 and d = 2 fit, as the paper measured.
        assert!(PdfNdDesign::paper_1d().resource_report().fits);
        assert!(PdfNdDesign::paper_2d().resource_report().fits);
    }

    #[test]
    fn resource_estimates_track_the_published_tables() {
        let r1 = PdfNdDesign::paper_1d().resource_report();
        assert!(
            (r1.bram_util - 0.15).abs() < 0.02,
            "d=1 BRAM {:.3}",
            r1.bram_util
        );
        let r2 = PdfNdDesign::paper_2d().resource_report();
        assert!(
            (r2.logic_util - 0.21).abs() < 0.05,
            "d=2 slices {:.3}",
            r2.logic_util
        );
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn absurd_dimensionality_panics() {
        PdfNdDesign::new(7, 8);
    }
}
