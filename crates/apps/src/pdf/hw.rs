//! Hardware designs for the PDF case studies.
//!
//! The 1-D design is the paper's Figure 3: eight parallel pipelines, each
//! owning a 32-bin slice of the 256 probability levels, fed the 512-element
//! block sequentially; each pipeline retires one (element, bin) pair — three
//! operations: subtract, multiply, accumulate — per cycle. Structural peak is
//! therefore 24 ops/cycle; the paper's worksheet conservatively uses 20, and
//! the measured design achieved ~18.9 (pipeline fill plus stalls), which is
//! exactly what the calibrated [`PipelineSpec`] reproduces.
//!
//! The 2-D design doubles the per-pair work (two subtract-squares plus two
//! accumulates: six operations) and widens to twelve pipelines; the paper's
//! worksheet again discounts the structural 72 ops/cycle to 48.

use fpga_sim::cache::{SimCache, SimSummary};
use fpga_sim::catalog;
use fpga_sim::pipeline::{PipelineSpec, PipelinedKernel, StallModel};
use fpga_sim::platform::{AppRun, BufferMode, ExecError, Measurement, Platform};
use rat_core::quantity::Freq;
use rat_core::resources::{device, ResourceEstimate, ResourceReport};

use crate::pdf::{BINS, BLOCK};

/// The Figure-3 1-D PDF estimation design.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pdf1dDesign;

impl Pdf1dDesign {
    /// Parallel pipelines instantiated.
    pub const PIPELINES: u32 = 8;

    /// Operations per (element, bin) pair: subtract, multiply, accumulate.
    pub const OPS_PER_PAIR: u32 = 3;

    /// Operations per element: 256 bins x 3 ops.
    pub const OPS_PER_ELEMENT: u64 = (BINS as u64) * (Self::OPS_PER_PAIR as u64);

    /// The pipeline's cycle model, calibrated so the effective rate lands at
    /// the measured ~18.9 ops/cycle (Table 3's actual t_comp of 1.39e-4 s at
    /// 150 MHz): 18-cycle fill, 4-cycle drain, and an average 8.7 stall cycles
    /// per element from bin-accumulator read-modify-write hazards.
    pub fn pipeline_spec(&self) -> PipelineSpec {
        PipelineSpec {
            lanes: Self::PIPELINES,
            ops_per_lane_cycle: Self::OPS_PER_PAIR,
            fill_latency: 18,
            drain_latency: 4,
            stall: StallModel::PerElement { cycles: 8.7 },
        }
    }

    /// The design as a simulator kernel.
    pub fn kernel(&self) -> PipelinedKernel {
        PipelinedKernel::new("pdf1d-fig3", self.pipeline_spec(), Self::OPS_PER_ELEMENT)
    }

    /// How the implemented application actually drives the platform. Note one
    /// deviation from the worksheet's assumption (Table 2's N_out = 1 with a
    /// single final read): the implementation read the 256-bin running block
    /// back every iteration — the "800 (400 read, 400 write) repetitive
    /// transfers" §4.3 blames for the communication underestimate.
    pub fn app_run(&self) -> AppRun {
        AppRun::builder()
            .iterations((crate::pdf::TOTAL_SAMPLES_1D / BLOCK) as u64)
            .elements_per_iter(BLOCK as u64)
            .input_bytes_per_iter((BLOCK * 4) as u64)
            .output_bytes_per_iter((BINS * 4) as u64)
            .buffer_mode(BufferMode::Single)
            .build()
    }

    /// Resource estimate on the LX100 (the paper's Table 4: BRAMs 15%, low
    /// DSP and slice usage):
    /// - one 18x18 MAC per pipeline = 8 DSP48s;
    /// - 24 BRAMs for the vendor's PCI-X wrapper (constant per the paper),
    ///   8 kernel LUTs (one per pipeline), 4 I/O buffers = 36 BRAMs;
    /// - ~760 slices per pipeline plus control = ~6100 slices.
    pub fn resource_estimate(&self) -> ResourceEstimate {
        ResourceEstimate {
            dsp: 8,
            bram: 36,
            logic: 6100,
        }
    }

    /// The resource test against the LX100.
    pub fn resource_report(&self) -> ResourceReport {
        rat_core::solve::stages::resource_report(&device::virtex4_lx100(), self.resource_estimate())
    }

    /// Execute on the simulated Nallatech H101 at `fclock_hz`, producing the
    /// "actual" column of Table 3.
    pub fn simulate(&self, fclock_hz: f64) -> Measurement {
        self.try_simulate(fclock_hz)
            .expect("valid run by construction")
    }

    /// [`Self::simulate`], surfacing execution errors (e.g. a non-positive
    /// clock from a user-supplied `--mhz`) instead of panicking.
    pub fn try_simulate(&self, fclock_hz: f64) -> Result<Measurement, ExecError> {
        let platform = Platform::new(catalog::nallatech_h101());
        platform.execute(&self.kernel(), &self.app_run(), Freq::from_hz(fclock_hz))
    }

    /// [`Self::simulate`] memoized through `cache`, returning the scalar
    /// summary (all any table needs).
    pub fn simulate_summary(&self, fclock_hz: f64, cache: Option<&SimCache>) -> SimSummary {
        let platform = Platform::new(catalog::nallatech_h101());
        platform
            .execute_summary(
                &self.kernel(),
                &self.app_run(),
                Freq::from_hz(fclock_hz),
                cache,
            )
            .expect("valid run by construction")
    }

    /// Render the Figure-3 architecture sketch.
    pub fn render_architecture(&self) -> String {
        let mut s = String::new();
        s.push_str("1-D PDF estimation architecture (paper Figure 3)\n");
        s.push_str("================================================\n");
        s.push_str("512-element input buffer  ->  broadcast to 8 pipelines\n\n");
        for p in 0..Self::PIPELINES {
            let lo = p * (BINS as u32) / Self::PIPELINES;
            let hi = (p + 1) * (BINS as u32) / Self::PIPELINES - 1;
            s.push_str(&format!(
                "  pipeline {p}: bins {lo:>3}-{hi:>3}  [sub]->[sq/MAC]->[LUT]->[acc]  1 elt-bin/cycle\n"
            ));
        }
        s.push_str("\nPer-bin running totals held in registers; final 256-bin\n");
        s.push_str("block transferred to host. Structural 24 ops/cycle, worksheet\n");
        s.push_str("estimate 20, measured ~18.9 after fill + stalls.\n");
        s
    }
}

/// The 2-D PDF estimation design (§5.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Pdf2dDesign;

impl Pdf2dDesign {
    /// Parallel pipelines instantiated.
    pub const PIPELINES: u32 = 12;

    /// Operations per (element, bin) pair: two subtract-squares, an add, and
    /// the scaled accumulate — six operations.
    pub const OPS_PER_PAIR: u32 = 6;

    /// Operations per element: 256 x 256 bins x 6 ops = 393,216 (Table 5).
    pub const OPS_PER_ELEMENT: u64 = (BINS as u64) * (BINS as u64) * (Self::OPS_PER_PAIR as u64);

    /// Elements per iteration: 512 samples in each of two dimensions.
    pub const ELEMENTS_PER_ITER: u64 = 2 * BLOCK as u64;

    /// Cycle model: structural peak 72 ops/cycle; calibrated stalls (bin-row
    /// buffer swaps every 256 pairs) cost ~13%, landing the effective rate
    /// near 64 ops/cycle — consistent with §5.1's observation that the
    /// *prediction's* conservative 48 ops/cycle overestimated t_comp.
    pub fn pipeline_spec(&self) -> PipelineSpec {
        PipelineSpec {
            lanes: Self::PIPELINES,
            ops_per_lane_cycle: Self::OPS_PER_PAIR,
            fill_latency: 24,
            drain_latency: 8,
            stall: StallModel::PerElement { cycles: 720.0 },
        }
    }

    /// The design as a simulator kernel.
    pub fn kernel(&self) -> PipelinedKernel {
        PipelinedKernel::new("pdf2d", self.pipeline_spec(), Self::OPS_PER_ELEMENT)
    }

    /// Per-iteration data movement: 1024 input elements (512 per dimension)
    /// and — unlike the 1-D design — the full 65,536-value PDF block read back
    /// every iteration ("the PDF values computed over each iteration are sent
    /// back to the host processor", §5.1).
    pub fn app_run(&self) -> AppRun {
        AppRun::builder()
            .iterations(400)
            .elements_per_iter(Self::ELEMENTS_PER_ITER)
            .input_bytes_per_iter(Self::ELEMENTS_PER_ITER * 4)
            .output_bytes_per_iter((BINS * BINS * 4) as u64)
            .buffer_mode(BufferMode::Single)
            .build()
    }

    /// Resource estimate on the LX100 (Table 7; the readable figure is 21%
    /// slices, with the paper noting usage "increased but still has not nearly
    /// exhausted the resources"):
    /// - two MACs per pipeline (one per dimension) = 24 DSP48s;
    /// - 24 wrapper + 12 LUT + 64 bin-partial + 4 I/O = 104 BRAMs;
    /// - ~860 slices per pipeline plus control = ~10300 slices (21%).
    pub fn resource_estimate(&self) -> ResourceEstimate {
        ResourceEstimate {
            dsp: 24,
            bram: 104,
            logic: 10_300,
        }
    }

    /// The resource test against the LX100.
    pub fn resource_report(&self) -> ResourceReport {
        rat_core::solve::stages::resource_report(&device::virtex4_lx100(), self.resource_estimate())
    }

    /// Execute on the simulated Nallatech H101 at `fclock_hz` ("actual"
    /// column of Table 6).
    pub fn simulate(&self, fclock_hz: f64) -> Measurement {
        self.try_simulate(fclock_hz)
            .expect("valid run by construction")
    }

    /// [`Self::simulate`], surfacing execution errors (e.g. a non-positive
    /// clock from a user-supplied `--mhz`) instead of panicking.
    pub fn try_simulate(&self, fclock_hz: f64) -> Result<Measurement, ExecError> {
        let platform = Platform::new(catalog::nallatech_h101());
        platform.execute(&self.kernel(), &self.app_run(), Freq::from_hz(fclock_hz))
    }

    /// [`Self::simulate`] memoized through `cache`, returning the scalar
    /// summary.
    pub fn simulate_summary(&self, fclock_hz: f64, cache: Option<&SimCache>) -> SimSummary {
        let platform = Platform::new(catalog::nallatech_h101());
        platform
            .execute_summary(
                &self.kernel(),
                &self.app_run(),
                Freq::from_hz(fclock_hz),
                cache,
            )
            .expect("valid run by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_sim::kernel::{Batch, HardwareKernel};

    #[test]
    fn fig3_constants_match_table2() {
        assert_eq!(Pdf1dDesign::OPS_PER_ELEMENT, 768);
        assert_eq!(Pdf1dDesign.pipeline_spec().peak_ops_per_cycle(), 24);
    }

    #[test]
    fn pdf2d_constants_match_table5() {
        assert_eq!(Pdf2dDesign::OPS_PER_ELEMENT, 393_216);
        assert_eq!(Pdf2dDesign.pipeline_spec().peak_ops_per_cycle(), 72);
    }

    #[test]
    fn pdf1d_batch_cycles_match_measured_tcomp() {
        // Table 3 actual: t_comp = 1.39e-4 s at 150 MHz = 20,850 cycles.
        let k = Pdf1dDesign.kernel();
        let cycles = k.batch_cycles(&Batch {
            index: 0,
            elements: 512,
            bytes: 2048,
        });
        assert!(
            (cycles.as_f64() - 20_850.0).abs() / 20_850.0 < 0.02,
            "got {cycles} cycles"
        );
    }

    #[test]
    fn pdf2d_effective_rate_lands_near_64() {
        let spec = Pdf2dDesign.pipeline_spec();
        let eff = spec.effective_ops_per_cycle(
            Pdf2dDesign::ELEMENTS_PER_ITER * Pdf2dDesign::OPS_PER_ELEMENT / 2,
            1024,
        );
        // 1024 elements * 393216 ops... (per-element convention: the 2-D pair
        // count is per input element).
        let eff_full = spec.effective_ops_per_cycle(1024 * Pdf2dDesign::OPS_PER_ELEMENT, 1024);
        assert!(
            (60.0..68.0).contains(&eff_full),
            "effective rate {eff_full}"
        );
        assert!(eff > 0.0);
    }

    #[test]
    fn pdf1d_simulation_reproduces_table3_actual_row() {
        let m = Pdf1dDesign.simulate(150.0e6);
        let comm = m.comm_per_iter().as_secs_f64();
        let comp = m.comp_per_iter().as_secs_f64();
        let total = m.total.as_secs_f64();
        // Table 3 actual at 150 MHz: t_comm 2.50e-5, t_comp 1.39e-4,
        // t_RC 7.45e-2 (speedup 7.8 against t_soft 0.578).
        assert!((comm - 2.5e-5).abs() / 2.5e-5 < 0.10, "comm {comm:.3e}");
        assert!((comp - 1.39e-4).abs() / 1.39e-4 < 0.03, "comp {comp:.3e}");
        assert!(
            (total - 7.45e-2).abs() / 7.45e-2 < 0.05,
            "total {total:.3e}"
        );
        let speedup = 0.578 / total;
        assert!((7.4..8.2).contains(&speedup), "speedup {speedup:.2}");
    }

    #[test]
    fn pdf2d_simulation_reproduces_table6_actual_constraints() {
        // The paper's Table 6 actual column is OCR-damaged; §5.1's prose fixes
        // three facts: communication ~6x the prediction (1.65e-3), comm = 19%
        // of execution, computation overestimated (predicted 5.59e-2).
        let m = Pdf2dDesign.simulate(150.0e6);
        let comm = m.comm_per_iter().as_secs_f64();
        let comp = m.comp_per_iter().as_secs_f64();
        let ratio = comm / 1.65e-3;
        assert!(
            (5.4..6.6).contains(&ratio),
            "comm {comm:.3e} is {ratio:.2}x prediction"
        );
        assert!(
            comp < 5.59e-2,
            "comp {comp:.3e} must undercut the conservative prediction"
        );
        let util_comm = comm / (comm + comp);
        assert!(
            (0.17..0.21).contains(&util_comm),
            "util_comm {util_comm:.3}"
        );
        let speedup = 158.8 / m.total.as_secs_f64();
        assert!((7.0..8.0).contains(&speedup), "speedup {speedup:.2}");
    }

    #[test]
    fn faster_clock_shortens_pdf1d_compute() {
        let slow = Pdf1dDesign.simulate(75.0e6);
        let fast = Pdf1dDesign.simulate(150.0e6);
        assert!(fast.compute_busy < slow.compute_busy);
        // Communication is clock-independent.
        assert_eq!(fast.comm_busy, slow.comm_busy);
    }

    #[test]
    fn resource_reports_fit_with_headroom() {
        let r1 = Pdf1dDesign.resource_report();
        assert!(r1.fits && !r1.routing_strain);
        // Table 4: BRAMs 15%.
        assert!(
            (r1.bram_util - 0.15).abs() < 0.01,
            "bram {:.3}",
            r1.bram_util
        );
        // "Relatively low resource usage ... potential for further speedup".
        assert!(r1.replication_headroom() > 2.0);

        let r2 = Pdf2dDesign.resource_report();
        assert!(r2.fits);
        // Table 7's readable figure: 21% slices.
        assert!(
            (r2.logic_util - 0.21).abs() < 0.01,
            "slices {:.3}",
            r2.logic_util
        );
        // 2-D uses more of everything than 1-D but doesn't exhaust the part.
        assert!(r2.dsp_util > r1.dsp_util && r2.dsp_util < 0.5);
    }

    #[test]
    fn architecture_rendering_shows_eight_pipelines() {
        let s = Pdf1dDesign.render_architecture();
        assert_eq!(s.matches("pipeline ").count(), 8);
        assert!(s.contains("bins   0- 31"));
        assert!(s.contains("bins 224-255"));
    }

    #[test]
    fn app_runs_match_paper_iteration_structure() {
        let r1 = Pdf1dDesign.app_run();
        assert_eq!(r1.iterations, 400);
        assert_eq!(r1.input_bytes_per_iter, 2048);
        let r2 = Pdf2dDesign.app_run();
        assert_eq!(r2.iterations, 400);
        assert_eq!(r2.output_bytes_per_iter, 262_144);
    }
}
