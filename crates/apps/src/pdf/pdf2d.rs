//! The 2-D PDF estimation case study (paper §5.1).
//!
//! The two-dimensional Parzen estimate multiplies the per-element work by
//! three orders of magnitude (65,536 bins x 6 ops) while the parallelism only
//! doubles — the paper's cautionary tale about how a "more amenable" algorithm
//! can deliver *less* speedup when its higher communication demand collides
//! with platform limits.

use rat_core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat_core::quantity::{Freq, Seconds, Throughput};

use crate::datagen;
use crate::pdf::hw::Pdf2dDesign;
use crate::pdf::parzen::estimate_2d;
use crate::pdf::{bin_centers, BANDWIDTH, BINS};

/// The paper's software baseline: 158.8 s (C, gcc, 3.2 GHz Xeon).
pub const T_SOFT: f64 = 158.8;

/// The paper's Table 5: RAT input parameters for the 2-D PDF design.
pub fn rat_input(fclock_hz: f64) -> RatInput {
    RatInput {
        name: "2-D PDF".into(),
        dataset: DatasetParams {
            elements_in: Pdf2dDesign::ELEMENTS_PER_ITER,
            elements_out: (BINS * BINS) as u64,
            bytes_per_element: 4,
        },
        comm: CommParams {
            ideal_bandwidth: Throughput::from_bytes_per_sec(1.0e9),
            alpha_write: 0.37,
            alpha_read: 0.16,
        },
        comp: CompParams {
            ops_per_element: Pdf2dDesign::OPS_PER_ELEMENT as f64,
            // Structural peak 72; the worksheet uses 48, "conservatively
            // estimated to account for unforeseen problems".
            throughput_proc: 48.0,
            fclock: Freq::from_hz(fclock_hz),
        },
        software: SoftwareParams {
            t_soft: Seconds::new(T_SOFT),
            iterations: 400,
        },
        buffering: Buffering::Single,
    }
}

/// The hardware design model.
pub fn design() -> Pdf2dDesign {
    Pdf2dDesign
}

/// A seeded 2-D dataset of `n` correlated sample pairs.
pub fn dataset(n: usize) -> Vec<(f64, f64)> {
    datagen::bimodal_samples_2d(n, 0x2d)
}

/// Run the software baseline on `samples`, returning the 256x256 PDF grid
/// (x-major).
pub fn run_software_baseline(samples: &[(f64, f64)]) -> Vec<f64> {
    let bins = bin_centers();
    estimate_2d(samples, &bins, &bins, BANDWIDTH)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rat_core::worksheet::Worksheet;

    #[test]
    fn rat_input_is_table5() {
        let i = rat_input(150.0e6);
        assert_eq!(i.dataset.elements_in, 1024);
        assert_eq!(i.dataset.elements_out, 65_536);
        assert_eq!(i.comp.ops_per_element, 393_216.0);
        assert_eq!(i.comp.throughput_proc, 48.0);
        assert_eq!(i.software.t_soft, Seconds::new(158.8));
    }

    #[test]
    fn predictions_match_table6_columns() {
        // Table 6 predicted: t_comm 1.65e-3 (clock-independent), and per clock
        // (t_comp, t_RC, speedup): 75 MHz (1.12e-1, 4.54e+1, 3.5),
        // 100 MHz (8.39e-2, 3.42e+1, 4.6), 150 MHz (5.59e-2, 2.30e+1, 6.9).
        for (f, tc, trc, sp) in [
            (75.0e6, 1.12e-1, 4.54e1, 3.5),
            (100.0e6, 8.39e-2, 3.42e1, 4.6),
            (150.0e6, 5.59e-2, 2.30e1, 6.9),
        ] {
            let r = Worksheet::new(rat_input(f)).analyze().unwrap();
            assert!((r.throughput.t_comm.seconds() - 1.65e-3).abs() / 1.65e-3 < 0.01);
            assert!(
                (r.throughput.t_comp.seconds() - tc).abs() / tc < 0.01,
                "t_comp at {f}"
            );
            assert!(
                (r.throughput.t_rc.seconds() - trc).abs() / trc < 0.01,
                "t_RC at {f}"
            );
            assert!(
                (r.speedup - sp).abs() < 0.06,
                "speedup {} vs {sp}",
                r.speedup
            );
        }
    }

    #[test]
    fn two_d_predicts_less_speedup_than_one_d_despite_more_parallel_work() {
        // The paper's §5.1 takeaway.
        let one_d = Worksheet::new(crate::pdf::pdf1d::rat_input(150.0e6))
            .analyze()
            .unwrap();
        let two_d = Worksheet::new(rat_input(150.0e6)).analyze().unwrap();
        assert!(two_d.input.comp.ops_per_element > one_d.input.comp.ops_per_element * 100.0);
        assert!(two_d.speedup < one_d.speedup);
    }

    #[test]
    fn simulated_run_validates_prose_constraints() {
        // Covered in depth in hw.rs tests; here check the end-to-end speedup
        // relationship the prose fixes: prediction 6.9 close to measurement,
        // closer than the 1-D case was.
        let predicted = Worksheet::new(rat_input(150.0e6)).analyze().unwrap();
        let m = design().simulate(150.0e6);
        let measured_speedup = T_SOFT / m.total.as_secs_f64();
        let rel_err_2d = (predicted.speedup - measured_speedup).abs() / measured_speedup;
        assert!(rel_err_2d < 0.15, "2-D prediction error {rel_err_2d:.3}");
        // 1-D's error was ~36% (10.6 vs 7.8).
        assert!(rel_err_2d < 0.36);
    }

    #[test]
    fn software_baseline_produces_a_normalized_grid() {
        let samples = dataset(256);
        let grid = run_software_baseline(&samples);
        assert_eq!(grid.len(), BINS * BINS);
        let cell = (2.0 / BINS as f64) * (2.0 / BINS as f64);
        let integral: f64 = grid.iter().sum::<f64>() * cell;
        assert!((integral - 1.0).abs() < 0.1, "integral {integral}");
    }
}
