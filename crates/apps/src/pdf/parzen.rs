//! Reference Parzen-window estimators in `f64`.
//!
//! These are the software baselines: the algorithm the paper's C code runs on
//! a 3.2 GHz Xeon. Sequential and rayon-parallel variants are provided; the
//! parallel ones exist because a credible modern baseline is multicore, and
//! they let the benchmark harness report how the FPGA-era speedup claims fare
//! against 2026 CPUs.

use rayon::prelude::*;

/// 1-D Gaussian kernel value for squared distance `d2` and bandwidth `h`.
#[inline]
pub fn gaussian_kernel(d2: f64, h: f64) -> f64 {
    (-d2 / (2.0 * h * h)).exp() / (h * (std::f64::consts::TAU).sqrt())
}

/// 2-D (isotropic product) Gaussian kernel value for squared distance `d2`
/// and bandwidth `h`. The normalization differs from the 1-D kernel:
/// `1 / (2 pi h^2)`.
#[inline]
pub fn gaussian_kernel_2d(d2: f64, h: f64) -> f64 {
    (-d2 / (2.0 * h * h)).exp() / (std::f64::consts::TAU * h * h)
}

/// 1-D Parzen-window estimate: density at each of `bins` evaluation points
/// from `samples`, bandwidth `h`. Sequential.
pub fn estimate_1d(samples: &[f64], bins: &[f64], h: f64) -> Vec<f64> {
    assert!(h > 0.0, "bandwidth must be positive");
    let norm = 1.0 / samples.len().max(1) as f64;
    bins.iter()
        .map(|&b| {
            samples
                .iter()
                .map(|&x| gaussian_kernel((b - x) * (b - x), h))
                .sum::<f64>()
                * norm
        })
        .collect()
}

/// 1-D Parzen-window estimate, parallel over bins.
pub fn estimate_1d_parallel(samples: &[f64], bins: &[f64], h: f64) -> Vec<f64> {
    assert!(h > 0.0, "bandwidth must be positive");
    let norm = 1.0 / samples.len().max(1) as f64;
    bins.par_iter()
        .map(|&b| {
            samples
                .iter()
                .map(|&x| gaussian_kernel((b - x) * (b - x), h))
                .sum::<f64>()
                * norm
        })
        .collect()
}

/// 2-D Parzen-window estimate on the `bins_x` x `bins_y` grid (row-major,
/// x-major ordering). Sequential.
pub fn estimate_2d(samples: &[(f64, f64)], bins_x: &[f64], bins_y: &[f64], h: f64) -> Vec<f64> {
    assert!(h > 0.0, "bandwidth must be positive");
    let norm = 1.0 / samples.len().max(1) as f64;
    let mut out = Vec::with_capacity(bins_x.len() * bins_y.len());
    for &bx in bins_x {
        for &by in bins_y {
            let mut acc = 0.0;
            for &(x, y) in samples {
                let d2 = (bx - x) * (bx - x) + (by - y) * (by - y);
                acc += gaussian_kernel_2d(d2, h);
            }
            out.push(acc * norm);
        }
    }
    out
}

/// 2-D Parzen-window estimate, parallel over grid rows.
pub fn estimate_2d_parallel(
    samples: &[(f64, f64)],
    bins_x: &[f64],
    bins_y: &[f64],
    h: f64,
) -> Vec<f64> {
    assert!(h > 0.0, "bandwidth must be positive");
    let norm = 1.0 / samples.len().max(1) as f64;
    bins_x
        .par_iter()
        .flat_map_iter(|&bx| bins_y.iter().map(move |&by| (bx, by)))
        .map(|(bx, by)| {
            let mut acc = 0.0;
            for &(x, y) in samples {
                let d2 = (bx - x) * (bx - x) + (by - y) * (by - y);
                acc += gaussian_kernel_2d(d2, h);
            }
            acc * norm
        })
        .collect()
}

/// Streaming accumulator matching the hardware's iteration structure: bins'
/// partial sums persist across blocks of samples, normalized only at the end.
/// This is how Figure 3's design works — "internal registering for each bin
/// keeps a running total of the impact of all processed elements".
#[derive(Debug, Clone)]
pub struct StreamingEstimator1d {
    bins: Vec<f64>,
    acc: Vec<f64>,
    h: f64,
    seen: u64,
}

impl StreamingEstimator1d {
    /// New estimator over `bins` with bandwidth `h`.
    pub fn new(bins: Vec<f64>, h: f64) -> Self {
        assert!(h > 0.0, "bandwidth must be positive");
        let acc = vec![0.0; bins.len()];
        Self {
            bins,
            acc,
            h,
            seen: 0,
        }
    }

    /// Fold in one block of samples.
    pub fn process_block(&mut self, samples: &[f64]) {
        for (b, a) in self.bins.iter().zip(self.acc.iter_mut()) {
            for &x in samples {
                *a += gaussian_kernel((b - x) * (b - x), self.h);
            }
        }
        self.seen += samples.len() as u64;
    }

    /// Samples folded in so far.
    pub fn samples_seen(&self) -> u64 {
        self.seen
    }

    /// The normalized density estimate.
    pub fn finish(&self) -> Vec<f64> {
        let norm = 1.0 / self.seen.max(1) as f64;
        self.acc.iter().map(|a| a * norm).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::bimodal_samples;
    use crate::pdf::{bin_centers, BANDWIDTH};

    #[test]
    fn density_integrates_to_about_one() {
        let samples = bimodal_samples(4000, 21);
        let bins = bin_centers();
        let pdf = estimate_1d(&samples, &bins, BANDWIDTH);
        let dx = bins[1] - bins[0];
        let integral: f64 = pdf.iter().sum::<f64>() * dx;
        assert!((integral - 1.0).abs() < 0.02, "integral {integral}");
    }

    #[test]
    fn density_is_nonnegative_and_peaks_at_modes() {
        let samples = bimodal_samples(4000, 22);
        let bins = bin_centers();
        let pdf = estimate_1d(&samples, &bins, BANDWIDTH);
        assert!(pdf.iter().all(|&p| p >= 0.0));
        let at = |c: f64| {
            let idx = bins.iter().position(|&b| (b - c).abs() < 0.01).unwrap();
            pdf[idx]
        };
        assert!(at(-0.4) > at(0.0), "left mode should beat the trough");
        assert!(at(0.45) > at(0.0), "right mode should beat the trough");
    }

    #[test]
    fn parallel_matches_sequential_1d() {
        let samples = bimodal_samples(1000, 23);
        let bins = bin_centers();
        let seq = estimate_1d(&samples, &bins, BANDWIDTH);
        let par = estimate_1d_parallel(&samples, &bins, BANDWIDTH);
        for (s, p) in seq.iter().zip(&par) {
            assert!((s - p).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_sequential_2d() {
        let samples: Vec<(f64, f64)> = crate::datagen::bimodal_samples_2d(300, 24);
        let bx: Vec<f64> = (0..16).map(|i| i as f64 / 8.0 - 1.0).collect();
        let by = bx.clone();
        let seq = estimate_2d(&samples, &bx, &by, BANDWIDTH);
        let par = estimate_2d_parallel(&samples, &bx, &by, BANDWIDTH);
        assert_eq!(seq.len(), 256);
        for (s, p) in seq.iter().zip(&par) {
            assert!((s - p).abs() < 1e-12);
        }
    }

    #[test]
    fn streaming_blocks_match_batch() {
        let samples = bimodal_samples(1024, 25);
        let bins = bin_centers();
        let batch = estimate_1d(&samples, &bins, BANDWIDTH);
        let mut stream = StreamingEstimator1d::new(bins, BANDWIDTH);
        for block in samples.chunks(128) {
            stream.process_block(block);
        }
        assert_eq!(stream.samples_seen(), 1024);
        for (b, s) in batch.iter().zip(stream.finish()) {
            assert!((b - s).abs() < 1e-12);
        }
    }

    #[test]
    fn gaussian_kernel_properties() {
        let h = 0.1;
        assert!(gaussian_kernel(0.0, h) > gaussian_kernel(0.01, h));
        assert!(gaussian_kernel(1.0, h) < 1e-10);
        // Peak value is 1/(h*sqrt(2*pi)).
        let peak = gaussian_kernel(0.0, h);
        assert!((peak - 1.0 / (h * (std::f64::consts::TAU).sqrt())).abs() < 1e-12);
    }

    #[test]
    fn empty_samples_give_zero_density() {
        let bins = bin_centers();
        let pdf = estimate_1d(&[], &bins, BANDWIDTH);
        assert!(pdf.iter().all(|&p| p == 0.0));
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        estimate_1d(&[0.0], &[0.0], 0.0);
    }

    #[test]
    fn two_d_grid_is_x_major() {
        // A single sample at (0.9, -0.9): density at grid point (0.9, -0.9)
        // must exceed (−0.9, 0.9), and indexing must find it x-major.
        let bx: Vec<f64> = vec![-0.9, 0.9];
        let by: Vec<f64> = vec![-0.9, 0.9];
        let pdf = estimate_2d(&[(0.9, -0.9)], &bx, &by, 0.1);
        // Layout: [(x0,y0), (x0,y1), (x1,y0), (x1,y1)].
        assert!(pdf[2] > pdf[0]);
        assert!(pdf[2] > pdf[1]);
        assert!(pdf[2] > pdf[3]);
    }
}
