//! The 1-D PDF estimation case study (paper §4).
//!
//! Ties the pieces together: the Table-2 worksheet input, the software
//! baseline, the Figure-3 hardware design, and the simulated platform run
//! whose measurements fill Table 3's "actual" column.

use rat_core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat_core::quantity::{Freq, Seconds, Throughput};

use crate::datagen;
use crate::pdf::hw::Pdf1dDesign;
use crate::pdf::parzen::StreamingEstimator1d;
use crate::pdf::{bin_centers, BANDWIDTH, BLOCK, TOTAL_SAMPLES_1D};

/// The software baseline time the paper reports (C, gcc, 3.2 GHz Xeon):
/// 0.578 s for the full 204,800-sample problem. Used for table reproduction;
/// a live baseline can be timed with [`run_software_baseline`].
pub const T_SOFT: f64 = 0.578;

/// The paper's Table 2: RAT input parameters for the 1-D PDF design.
///
/// `fclock_hz` is the clock assumption — the paper evaluates 75/100/150 MHz
/// because the achievable clock is unknowable pre-implementation.
pub fn rat_input(fclock_hz: f64) -> RatInput {
    RatInput {
        name: "1-D PDF".into(),
        dataset: DatasetParams {
            elements_in: BLOCK as u64,
            elements_out: 1,
            bytes_per_element: 4,
        },
        comm: CommParams {
            ideal_bandwidth: Throughput::from_bytes_per_sec(1.0e9),
            alpha_write: 0.37,
            alpha_read: 0.16,
        },
        comp: CompParams {
            ops_per_element: Pdf1dDesign::OPS_PER_ELEMENT as f64,
            // Structural peak is 24; the worksheet "conservatively rounds down
            // to 20 to account for pipeline latency and other overheads".
            throughput_proc: 20.0,
            fclock: Freq::from_hz(fclock_hz),
        },
        software: SoftwareParams {
            t_soft: Seconds::new(T_SOFT),
            iterations: (TOTAL_SAMPLES_1D / BLOCK) as u64,
        },
        buffering: Buffering::Single,
    }
}

/// The hardware design model.
pub fn design() -> Pdf1dDesign {
    Pdf1dDesign
}

/// The full-problem dataset (204,800 bimodal samples), seeded.
pub fn dataset() -> Vec<f64> {
    datagen::bimodal_samples(TOTAL_SAMPLES_1D, 0x1d)
}

/// Run the actual software baseline: stream the dataset through the estimator
/// in the same 512-sample blocks the hardware uses, returning the PDF.
pub fn run_software_baseline(samples: &[f64]) -> Vec<f64> {
    let mut est = StreamingEstimator1d::new(bin_centers(), BANDWIDTH);
    for block in samples.chunks(BLOCK) {
        est.process_block(block);
    }
    est.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rat_core::worksheet::Worksheet;

    #[test]
    fn rat_input_is_table2() {
        let i = rat_input(150.0e6);
        assert_eq!(i.dataset.elements_in, 512);
        assert_eq!(i.dataset.elements_out, 1);
        assert_eq!(i.dataset.bytes_per_element, 4);
        assert_eq!(i.comm.alpha_write, 0.37);
        assert_eq!(i.comm.alpha_read, 0.16);
        assert_eq!(i.comp.ops_per_element, 768.0);
        assert_eq!(i.comp.throughput_proc, 20.0);
        assert_eq!(i.software.iterations, 400);
        assert_eq!(i.software.t_soft, Seconds::new(0.578));
    }

    #[test]
    fn prediction_matches_table3() {
        let r = Worksheet::new(rat_input(150.0e6)).analyze().unwrap();
        assert!((r.speedup - 10.6).abs() < 0.05);
    }

    #[test]
    fn predicted_vs_simulated_shape_holds() {
        // The paper's headline validation: prediction 10.6x, measurement 7.8x —
        // same order of magnitude, prediction optimistic because communication
        // was underestimated. Verify all of that against our simulator.
        let predicted = Worksheet::new(rat_input(150.0e6)).analyze().unwrap();
        let measured = design().simulate(150.0e6);
        let measured_speedup = T_SOFT / measured.total.as_secs_f64();
        assert!(
            predicted.speedup > measured_speedup,
            "prediction should be optimistic"
        );
        assert!(
            predicted.speedup / measured_speedup < 1.6,
            "but within ~40%: {} vs {}",
            predicted.speedup,
            measured_speedup
        );
        // The miss is communication, not computation.
        let comm_err =
            measured.comm_per_iter().as_secs_f64() / predicted.throughput.t_comm.seconds();
        let comp_err =
            measured.comp_per_iter().as_secs_f64() / predicted.throughput.t_comp.seconds();
        assert!(
            comm_err > 3.0,
            "comm underestimated ~4.5x, got {comm_err:.2}x"
        );
        assert!(
            (0.95..1.15).contains(&comp_err),
            "comp accurate to ~6%, got {comp_err:.2}x"
        );
    }

    #[test]
    fn software_baseline_runs_on_a_small_slice() {
        let samples = datagen::bimodal_samples(2048, 0x1d);
        let pdf = run_software_baseline(&samples);
        assert_eq!(pdf.len(), 256);
        let dx = 2.0 / 256.0;
        let integral: f64 = pdf.iter().sum::<f64>() * dx;
        assert!((integral - 1.0).abs() < 0.05, "integral {integral}");
    }

    #[test]
    fn dataset_is_full_size_and_deterministic() {
        let d = dataset();
        assert_eq!(d.len(), TOTAL_SAMPLES_1D);
        assert_eq!(d[0], dataset()[0]);
    }
}
