//! Velocity-Verlet time integration.

use crate::md::forces::{compute_forces_parallel, LjParams};
use crate::md::system::System;

/// Advance `system` one velocity-Verlet step of size `dt` under `params`
/// (unit particle mass). Returns the potential energy after the step.
pub fn step(system: &mut System, params: &LjParams, dt: f64) -> f64 {
    assert!(dt > 0.0, "time step must be positive");
    let n = system.len();
    // Half-kick + drift using current accelerations.
    for i in 0..n {
        let v_half = system.velocities[i] + system.accelerations[i] * (0.5 * dt);
        system.velocities[i] = v_half;
        system.positions[i] += v_half * dt;
    }
    system.wrap_positions();
    // New forces, second half-kick.
    let (forces, potential) = compute_forces_parallel(system, params);
    system.accelerations.copy_from_slice(&forces); // unit mass: a = F
    for (v, f) in system.velocities.iter_mut().zip(&forces) {
        *v += *f * (0.5 * dt);
    }
    potential
}

/// Kinetic energy of the system (unit masses).
pub fn kinetic_energy(system: &System) -> f64 {
    0.5 * system.velocities.iter().map(|v| v.norm2()).sum::<f64>()
}

/// Run `steps` integration steps, returning `(kinetic, potential)` per step.
pub fn run(system: &mut System, params: &LjParams, dt: f64, steps: usize) -> Vec<(f64, f64)> {
    (0..steps)
        .map(|_| {
            let potential = step(system, params, dt);
            (kinetic_energy(system), potential)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::system::{System, Vec3};

    fn quiet_system() -> (System, LjParams) {
        let mut s = System::random(300, 1.0, 301);
        // Small velocities so energy drift stays interpretable.
        for v in &mut s.velocities {
            *v = *v * 0.2;
        }
        let p = LjParams {
            epsilon: 1.0e-5,
            sigma: 0.04,
            cutoff: 0.2,
        };
        // Initialize accelerations consistently.
        let (f, _) = crate::md::forces::compute_forces(&s, &p);
        s.accelerations = f;
        (s, p)
    }

    #[test]
    fn energy_approximately_conserved() {
        let (mut s, p) = quiet_system();
        let dt = 5e-4;
        let trace = run(&mut s, &p, dt, 50);
        let e0 = trace.first().map(|(k, u)| k + u).unwrap();
        let e_end = trace.last().map(|(k, u)| k + u).unwrap();
        let drift = (e_end - e0).abs() / e0.abs().max(1e-12);
        assert!(drift < 0.05, "energy drift {drift:.4} over 50 steps");
    }

    #[test]
    fn positions_stay_in_box() {
        let (mut s, p) = quiet_system();
        run(&mut s, &p, 1e-3, 20);
        for q in &s.positions {
            assert!((0.0..1.0).contains(&q.x));
            assert!((0.0..1.0).contains(&q.y));
            assert!((0.0..1.0).contains(&q.z));
        }
    }

    #[test]
    fn momentum_is_conserved() {
        let (mut s, p) = quiet_system();
        let mom0 = s.velocities.iter().fold(Vec3::ZERO, |a, &v| a + v);
        run(&mut s, &p, 1e-3, 20);
        let mom1 = s.velocities.iter().fold(Vec3::ZERO, |a, &v| a + v);
        assert!(((mom1 - mom0).norm2()).sqrt() < 1e-9);
    }

    #[test]
    fn kinetic_energy_nonnegative_and_matches_velocities() {
        let (s, _) = quiet_system();
        let ke = kinetic_energy(&s);
        assert!(ke >= 0.0);
        let by_hand: f64 = 0.5 * s.velocities.iter().map(|v| v.norm2()).sum::<f64>();
        assert_eq!(ke, by_hand);
    }

    #[test]
    #[should_panic(expected = "time step")]
    fn zero_dt_panics() {
        let (mut s, p) = quiet_system();
        step(&mut s, &p, 0.0);
    }
}
