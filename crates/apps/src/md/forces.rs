//! Lennard-Jones force evaluation with the paper's early-out structure.
//!
//! Every pair is distance-checked; pairs beyond the cutoff cost only that
//! check ("distant molecules are assumed to have negligible interaction and
//! therefore require less computational effort"), pairs within it run the full
//! 12-6 Lennard-Jones force kernel. The same structure drives the hardware
//! op-counting model: [`OPS_PER_DISTANT`] per rejected pair,
//! [`OPS_PER_NEAR`] per computed interaction.

use crate::md::cell_list::CellList;
use crate::md::system::{min_image_vec, System, Vec3};
use rayon::prelude::*;

/// Lennard-Jones parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LjParams {
    /// Well depth.
    pub epsilon: f64,
    /// Zero-crossing distance.
    pub sigma: f64,
    /// Interaction cutoff radius.
    pub cutoff: f64,
}

impl LjParams {
    /// Parameters matching the case study's box-relative scales.
    pub fn paper_scale() -> Self {
        Self {
            epsilon: 1.0e-4,
            sigma: 0.05,
            cutoff: crate::md::CUTOFF,
        }
    }
}

/// Operations charged per pair rejected by the distance check
/// (3 subtractions folded with the compare in hardware).
pub const OPS_PER_DISTANT: u64 = 3;

/// Operations charged per pair inside the cutoff: the full force kernel
/// (distance, reciprocals, 12-6 terms, 3-component accumulate). Together with
/// [`OPS_PER_DISTANT`] and the ~2,444 mean near-neighbors of the paper-scale
/// system, this reproduces Table 8's 164,000 ops/element.
pub const OPS_PER_NEAR: u64 = 47;

/// Force on each particle plus total potential energy. Sequential.
pub fn compute_forces(system: &System, params: &LjParams) -> (Vec<Vec3>, f64) {
    let list = CellList::build(&system.positions, system.box_len, params.cutoff);
    let results: Vec<(Vec3, f64)> = (0..system.len())
        .map(|i| particle_force(system, params, &list, i))
        .collect();
    collect_forces(results)
}

/// Force on each particle plus total potential energy, parallel over
/// particles.
pub fn compute_forces_parallel(system: &System, params: &LjParams) -> (Vec<Vec3>, f64) {
    let list = CellList::build(&system.positions, system.box_len, params.cutoff);
    let results: Vec<(Vec3, f64)> = (0..system.len())
        .into_par_iter()
        .map(|i| particle_force(system, params, &list, i))
        .collect();
    collect_forces(results)
}

fn collect_forces(results: Vec<(Vec3, f64)>) -> (Vec<Vec3>, f64) {
    let mut forces = Vec::with_capacity(results.len());
    let mut potential = 0.0;
    for (f, u) in results {
        forces.push(f);
        potential += u;
    }
    // Each pair's potential was counted from both ends.
    (forces, potential * 0.5)
}

/// Force and (double-counted) potential contribution on particle `i`.
fn particle_force(system: &System, params: &LjParams, list: &CellList, i: usize) -> (Vec3, f64) {
    let c2 = params.cutoff * params.cutoff;
    let p = system.positions[i];
    let mut force = Vec3::ZERO;
    let mut potential = 0.0;
    list.for_each_candidate(&p, |j| {
        let j = j as usize;
        if j == i {
            return;
        }
        let d = min_image_vec(p - system.positions[j], system.box_len);
        let r2 = d.norm2();
        if r2 >= c2 || r2 == 0.0 {
            return; // the early-out the op model charges OPS_PER_DISTANT for
        }
        let sr2 = params.sigma * params.sigma / r2;
        let sr6 = sr2 * sr2 * sr2;
        let sr12 = sr6 * sr6;
        // F = 24 eps (2 (s/r)^12 - (s/r)^6) / r^2 * d
        let f_over_r = 24.0 * params.epsilon * (2.0 * sr12 - sr6) / r2;
        force += d * f_over_r;
        potential += 4.0 * params.epsilon * (sr12 - sr6);
    });
    (force, potential)
}

/// The hardware op-counting model: operations for one molecule with
/// `near` neighbors in an `n`-molecule system.
pub fn ops_for_molecule(near: u32, n: usize) -> u64 {
    OPS_PER_DISTANT * (n as u64 - 1 - near as u64)
        + OPS_PER_NEAR * near as u64
        + OPS_PER_DISTANT * near as u64
    // Near pairs also pay the distance check before the kernel.
}

/// Total hardware operations for a system given its per-molecule near counts.
pub fn total_ops(near_counts: &[u32], n: usize) -> u64 {
    near_counts.iter().map(|&c| ops_for_molecule(c, n)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::system::System;

    fn small_system() -> (System, LjParams) {
        let s = System::random(400, 1.0, 201);
        let p = LjParams {
            epsilon: 1.0e-4,
            sigma: 0.05,
            cutoff: 0.25,
        };
        (s, p)
    }

    #[test]
    fn forces_sum_to_zero() {
        // Newton's third law: internal forces cancel (to rounding, relative to
        // the largest individual force — close pairs make huge LJ forces).
        let (s, p) = small_system();
        let (forces, _) = compute_forces(&s, &p);
        let net = forces.iter().fold(Vec3::ZERO, |a, &f| a + f);
        let scale = forces
            .iter()
            .map(|f| f.norm2().sqrt())
            .fold(0.0f64, f64::max)
            .max(1e-30);
        assert!(
            net.norm2().sqrt() / scale < 1e-9,
            "net force {net:?} vs max |F| {scale:.3e}"
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let (s, p) = small_system();
        let (fs, us) = compute_forces(&s, &p);
        let (fp, up) = compute_forces_parallel(&s, &p);
        assert!((us - up).abs() < 1e-12 * us.abs().max(1.0));
        for (a, b) in fs.iter().zip(&fp) {
            assert!(((*a - *b).norm2()).sqrt() < 1e-12);
        }
    }

    #[test]
    fn two_particles_at_sigma_repel_then_attract() {
        let p = LjParams {
            epsilon: 1.0,
            sigma: 0.05,
            cutoff: 0.4,
        };
        let mk = |r: f64| System {
            positions: vec![Vec3::new(0.3, 0.5, 0.5), Vec3::new(0.3 + r, 0.5, 0.5)],
            velocities: vec![Vec3::ZERO; 2],
            accelerations: vec![Vec3::ZERO; 2],
            box_len: 1.0,
        };
        // Inside the well minimum (r < 2^(1/6) sigma): repulsive.
        let (f, _) = compute_forces(&mk(0.045), &p);
        assert!(f[0].x < 0.0, "should push particle 0 left, got {:?}", f[0]);
        // Outside the minimum: attractive.
        let (f, _) = compute_forces(&mk(0.08), &p);
        assert!(f[0].x > 0.0, "should pull particle 0 right, got {:?}", f[0]);
    }

    #[test]
    fn potential_minimum_at_r_min() {
        let p = LjParams {
            epsilon: 1.0,
            sigma: 0.05,
            cutoff: 0.4,
        };
        let u = |r: f64| {
            let s = System {
                positions: vec![Vec3::new(0.3, 0.5, 0.5), Vec3::new(0.3 + r, 0.5, 0.5)],
                velocities: vec![Vec3::ZERO; 2],
                accelerations: vec![Vec3::ZERO; 2],
                box_len: 1.0,
            };
            compute_forces(&s, &p).1
        };
        let r_min = 0.05 * 2.0f64.powf(1.0 / 6.0);
        assert!(u(r_min) < u(r_min * 0.95));
        assert!(u(r_min) < u(r_min * 1.05));
        assert!(
            (u(r_min) - (-1.0)).abs() < 1e-9,
            "well depth should be -epsilon"
        );
    }

    #[test]
    fn beyond_cutoff_no_interaction() {
        let p = LjParams {
            epsilon: 1.0,
            sigma: 0.05,
            cutoff: 0.1,
        };
        let s = System {
            positions: vec![Vec3::new(0.2, 0.5, 0.5), Vec3::new(0.5, 0.5, 0.5)],
            velocities: vec![Vec3::ZERO; 2],
            accelerations: vec![Vec3::ZERO; 2],
            box_len: 1.0,
        };
        let (f, u) = compute_forces(&s, &p);
        assert_eq!(f[0], Vec3::ZERO);
        assert_eq!(u, 0.0);
    }

    #[test]
    fn op_model_reproduces_paper_estimate_at_scale() {
        // Mean near count at the paper's parameters is ~2444, making
        // ops/molecule ~ 3*16383 + (47+3)*2444 ~ 171k... the model charges the
        // distance check on every pair (near and far) plus the kernel on near:
        // 3*(N-1) + 47*near = 49149 + 114868 = 164017 ~ Table 8's 164000.
        let near = 2444;
        let ops = ops_for_molecule(near, crate::md::N_MOLECULES);
        assert!(
            (ops as f64 - 164_000.0).abs() / 164_000.0 < 0.01,
            "ops/molecule {ops} should be within 1% of the paper's 164,000"
        );
    }

    #[test]
    fn total_ops_sums_per_molecule() {
        let counts = vec![10, 20, 30];
        let total = total_ops(&counts, 100);
        let by_hand: u64 = counts.iter().map(|&c| ops_for_molecule(c, 100)).sum();
        assert_eq!(total, by_hand);
    }
}
