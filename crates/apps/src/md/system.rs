//! Particle system state and 3-vector arithmetic.

use crate::datagen;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A 3-component vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// Construct from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Vec3 = Vec3::new(0.0, 0.0, 0.0);

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Squared Euclidean norm.
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

/// Minimum-image displacement component for a periodic box of edge `l`.
#[inline]
pub fn min_image(d: f64, l: f64) -> f64 {
    // One wrap suffices: displacements between in-box positions lie in (-l, l).
    if d > l * 0.5 {
        d - l
    } else if d < -l * 0.5 {
        d + l
    } else {
        d
    }
}

/// Minimum-image displacement vector.
#[inline]
pub fn min_image_vec(d: Vec3, l: f64) -> Vec3 {
    Vec3::new(min_image(d.x, l), min_image(d.y, l), min_image(d.z, l))
}

/// A molecular system: positions, velocities, accelerations in a periodic box.
///
/// Each molecule carries 9 transported scalars (position, velocity,
/// acceleration x 3 components) at 4 bytes each — the paper's 36 bytes per
/// element.
#[derive(Debug, Clone)]
pub struct System {
    /// Particle positions, each component in `[0, box_len)`.
    pub positions: Vec<Vec3>,
    /// Particle velocities.
    pub velocities: Vec<Vec3>,
    /// Particle accelerations.
    pub accelerations: Vec<Vec3>,
    /// Periodic box edge length.
    pub box_len: f64,
}

/// Bytes transferred per molecule (Table 8): "4 bytes each for position,
/// velocity and acceleration in each of the X, Y, and Z spatial directions".
pub const BYTES_PER_MOLECULE: u64 = 36;

impl System {
    /// A random system: uniform positions in the box, small random velocities,
    /// zero accelerations. Deterministic in `tag`.
    pub fn random(n: usize, box_len: f64, tag: u64) -> Self {
        assert!(n > 0 && box_len > 0.0);
        let positions = datagen::uniform_positions(n, tag)
            .into_iter()
            .map(|p| Vec3::new(p[0] * box_len, p[1] * box_len, p[2] * box_len))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(datagen::BASE_SEED ^ tag ^ 0xfeed);
        let velocities = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-0.05..0.05),
                    rng.gen_range(-0.05..0.05),
                    rng.gen_range(-0.05..0.05),
                )
            })
            .collect();
        Self {
            positions,
            velocities,
            accelerations: vec![Vec3::ZERO; n],
            box_len,
        }
    }

    /// Number of molecules.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the system is empty (never true for constructed systems).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Total bytes one full-system transfer moves.
    pub fn transfer_bytes(&self) -> u64 {
        self.len() as u64 * BYTES_PER_MOLECULE
    }

    /// Wrap all positions back into the box (after integration).
    pub fn wrap_positions(&mut self) {
        let l = self.box_len;
        for p in &mut self.positions {
            p.x = p.x.rem_euclid(l);
            p.y = p.y.rem_euclid(l);
            p.z = p.z.rem_euclid(l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec3_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(0.5, -1.0, 2.0);
        assert_eq!(a + b, Vec3::new(1.5, 1.0, 5.0));
        assert_eq!(a - b, Vec3::new(0.5, 3.0, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a.dot(b), 0.5 - 2.0 + 6.0);
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).norm2(), 25.0);
    }

    #[test]
    fn min_image_folds_across_boundary() {
        let l = 1.0;
        assert_eq!(min_image(0.4, l), 0.4);
        assert!((min_image(0.9, l) - (-0.1)).abs() < 1e-12);
        assert!((min_image(-0.8, l) - 0.2).abs() < 1e-12);
        assert_eq!(min_image(0.5, l), 0.5); // boundary stays
    }

    #[test]
    fn min_image_distance_is_symmetric_across_the_wall() {
        // Particles at 0.05 and 0.95 are 0.1 apart through the boundary.
        let d = min_image(0.95 - 0.05, 1.0);
        assert!((d.abs() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn random_system_is_in_box_and_deterministic() {
        let s = System::random(500, 1.0, 42);
        assert_eq!(s.len(), 500);
        for p in &s.positions {
            assert!((0.0..1.0).contains(&p.x));
            assert!((0.0..1.0).contains(&p.y));
            assert!((0.0..1.0).contains(&p.z));
        }
        let s2 = System::random(500, 1.0, 42);
        assert_eq!(s.positions[17], s2.positions[17]);
        assert_eq!(s.velocities[17], s2.velocities[17]);
    }

    #[test]
    fn transfer_bytes_match_table8() {
        let s = System::random(crate::md::N_MOLECULES, 1.0, 1);
        assert_eq!(s.transfer_bytes(), 16_384 * 36);
    }

    #[test]
    fn wrap_positions_restores_the_box() {
        let mut s = System::random(10, 1.0, 3);
        s.positions[0] = Vec3::new(1.3, -0.2, 0.5);
        s.wrap_positions();
        let p = s.positions[0];
        assert!((p.x - 0.3).abs() < 1e-12);
        assert!((p.y - 0.8).abs() < 1e-12);
        assert_eq!(p.z, 0.5);
    }
}
