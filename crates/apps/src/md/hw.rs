//! The MD hardware design model — data-dependent cycle counts.
//!
//! Unlike the PDF pipelines, the MD kernel's work is a function of the
//! dataset: each molecule's cycle cost depends on how many neighbors fall
//! inside the cutoff. The design model therefore takes an actual [`System`],
//! counts neighbors with the cell list, converts them to operations with the
//! force kernel's op model, and runs those operations through a pipeline whose
//! structural peak is the paper's tuned 50 ops/cycle — derated by the
//! data-dependent hazards (variable-length neighbor runs, force-accumulation
//! conflicts) that kept the real Impulse-C design at ~61% of that peak
//! (Table 9: measured t_comp 8.79e-1 s vs the 5.37e-1 s the tuned estimate
//! promised at 100 MHz).

use fpga_sim::cache::{SimCache, SimSummary};
use fpga_sim::catalog;
use fpga_sim::kernel::TabulatedKernel;
use fpga_sim::pipeline::{PipelineSpec, StallModel};
use fpga_sim::platform::{AppRun, BufferMode, ExecError, Measurement, Platform};
use rat_core::quantity::Freq;
use rat_core::resources::{device, ResourceEstimate, ResourceReport};

use crate::md::cell_list::neighbor_counts;
use crate::md::forces::total_ops;
use crate::md::system::{System, BYTES_PER_MOLECULE};

/// Structural peak of the force pipeline: the paper's tuned
/// `throughput_proc = 50` ops/cycle, which the RAT inverse solve said a ~10x
/// speedup requires.
pub const PEAK_OPS_PER_CYCLE: u32 = 50;

/// Fraction of the structural peak the design sustains on real data,
/// calibrated to Table 9's measured computation time (8.79e-1 s at 100 MHz
/// over ~2.69e9 operations).
pub const EFFICIENCY: f64 = 0.611;

/// The MD design instantiated over a concrete dataset.
#[derive(Debug, Clone)]
pub struct MdDesign {
    n: usize,
    total_ops: u64,
    mean_near: f64,
}

impl MdDesign {
    /// Build the design model from a system snapshot: counts each molecule's
    /// near neighbors and totals the hardware operations.
    pub fn from_system(system: &System, cutoff: f64) -> Self {
        let counts = neighbor_counts(&system.positions, system.box_len, cutoff);
        let n = system.len();
        let total = total_ops(&counts, n);
        let mean_near = counts.iter().map(|&c| c as f64).sum::<f64>() / n as f64;
        Self {
            n,
            total_ops: total,
            mean_near,
        }
    }

    /// Build the paper-scale design: 16,384 molecules at the standard cutoff.
    /// Costs one full neighbor count (~2.7e8 distance checks); intended for
    /// release-mode table regeneration.
    pub fn paper_scale() -> Self {
        let system = System::random(crate::md::N_MOLECULES, crate::md::BOX_LEN, 0x3d);
        Self::from_system(&system, crate::md::CUTOFF)
    }

    /// Build the paper-scale design analytically: instead of counting
    /// neighbors over the 16,384-particle system, use the uniform-density
    /// expectation `(N-1) * (4/3) pi r_c^3 / V` for the mean near count. Fast
    /// (no O(N^2) pass) and within a fraction of a percent of
    /// [`MdDesign::paper_scale`] — useful for debug builds and quick checks.
    pub fn paper_scale_analytic() -> Self {
        let n = crate::md::N_MOLECULES;
        let rc = crate::md::CUTOFF;
        let vol_frac = (4.0 / 3.0) * std::f64::consts::PI * rc.powi(3) / crate::md::BOX_LEN.powi(3);
        let mean_near = (n as f64 - 1.0) * vol_frac;
        let ops_per_molecule = crate::md::forces::OPS_PER_DISTANT as f64 * (n as f64 - 1.0)
            + crate::md::forces::OPS_PER_NEAR as f64 * mean_near;
        Self {
            n,
            total_ops: (ops_per_molecule * n as f64).round() as u64,
            mean_near,
        }
    }

    /// Molecules in the dataset.
    pub fn molecules(&self) -> usize {
        self.n
    }

    /// Total hardware operations the dataset demands.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Mean near-neighbor count (the data-dependent driver of the workload).
    pub fn mean_near_neighbors(&self) -> f64 {
        self.mean_near
    }

    /// Actual operations per molecule — what the worksheet's 164,000 estimate
    /// is trying to predict.
    pub fn ops_per_element(&self) -> f64 {
        self.total_ops as f64 / self.n as f64
    }

    /// The pipeline's cycle model.
    pub fn pipeline_spec(&self) -> PipelineSpec {
        PipelineSpec {
            lanes: PEAK_OPS_PER_CYCLE,
            ops_per_lane_cycle: 1,
            fill_latency: 64,
            drain_latency: 32,
            stall: StallModel::Efficiency {
                efficiency: EFFICIENCY,
            },
        }
    }

    /// The design as a simulator kernel (single batch covering the whole
    /// system — Table 8's `N_iter = 1`).
    pub fn kernel(&self) -> TabulatedKernel {
        let cycles = self.pipeline_spec().cycles(self.total_ops, self.n as u64);
        TabulatedKernel::new("md-force", vec![cycles.get()])
    }

    /// The platform run: one iteration, full-system transfer in, results
    /// streamed back during computation (the XD1000 design writes forces back
    /// over HyperTransport as they emerge, so the visible communication time
    /// is the input transfer only — Table 9's measured 1.39e-3 s).
    pub fn app_run(&self) -> AppRun {
        AppRun::builder()
            .iterations(1)
            .elements_per_iter(self.n as u64)
            .input_bytes_per_iter(self.n as u64 * BYTES_PER_MOLECULE)
            .output_bytes_per_iter(self.n as u64 * BYTES_PER_MOLECULE)
            .streamed_output(true)
            .buffer_mode(BufferMode::Single)
            .build()
    }

    /// Resource estimate on the EP2S180 (Table 10: the paper reports "a large
    /// percentage of the combinatorial logic and dedicated
    /// multiply-accumulators (DSPs) were required" and that parallelism "was
    /// ultimately limited by the availability of multiplier resources"):
    /// - 96 wide multipliers (36-bit paths through the 12-6 kernel), each
    ///   consuming a full DSP block = 8 nine-bit elements: 768/768 = 100%;
    /// - neighbor/position staging in ~420 M4K blocks (55%);
    /// - ~122,000 ALUTs (85%) of pipeline control and accumulation trees.
    pub fn resource_estimate(&self) -> ResourceEstimate {
        ResourceEstimate {
            dsp: 768,
            bram: 420,
            logic: 122_000,
        }
    }

    /// The resource test against the EP2S180.
    pub fn resource_report(&self) -> ResourceReport {
        rat_core::solve::stages::resource_report(
            &device::stratix2_ep2s180(),
            self.resource_estimate(),
        )
    }

    /// Execute on the simulated XD1000 at `fclock_hz` ("actual" column of
    /// Table 9).
    pub fn simulate(&self, fclock_hz: f64) -> Measurement {
        self.try_simulate(fclock_hz)
            .expect("valid run by construction")
    }

    /// [`Self::simulate`], surfacing execution errors (e.g. a non-positive
    /// clock from a user-supplied `--mhz`) instead of panicking.
    pub fn try_simulate(&self, fclock_hz: f64) -> Result<Measurement, ExecError> {
        let platform = Platform::new(catalog::xd1000());
        platform.execute(&self.kernel(), &self.app_run(), Freq::from_hz(fclock_hz))
    }

    /// [`Self::simulate`] memoized through `cache`, returning the scalar
    /// summary.
    pub fn simulate_summary(&self, fclock_hz: f64, cache: Option<&SimCache>) -> SimSummary {
        let platform = Platform::new(catalog::xd1000());
        platform
            .execute_summary(
                &self.kernel(),
                &self.app_run(),
                Freq::from_hz(fclock_hz),
                cache,
            )
            .expect("valid run by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down system with the same near-neighbor *density* as the
    /// paper-scale one: N/8 molecules with the cutoff shrunk to keep
    /// mean-near/(N-1) proportionate. Keeps debug-mode tests fast.
    fn small_design() -> MdDesign {
        let system = System::random(2048, 1.0, 0x3d);
        MdDesign::from_system(&system, 0.329)
    }

    #[test]
    fn ops_scale_with_neighbor_counts() {
        let d = small_design();
        // Mean near at N=2048, rc=0.329: (N-1)*4/3 pi rc^3 ~ 305.
        assert!(
            (d.mean_near_neighbors() - 305.0).abs() < 20.0,
            "mean near {}",
            d.mean_near_neighbors()
        );
        // ops/element = 3*2047 + 47*near ~ 20.5k.
        let expect = 3.0 * 2047.0 + 47.0 * d.mean_near_neighbors();
        assert!((d.ops_per_element() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn denser_cutoff_means_more_ops() {
        let system = System::random(1024, 1.0, 0x77);
        let small = MdDesign::from_system(&system, 0.15);
        let large = MdDesign::from_system(&system, 0.35);
        assert!(large.total_ops() > small.total_ops());
        assert_eq!(small.molecules(), 1024);
    }

    #[test]
    fn kernel_cycles_follow_the_efficiency_derate() {
        let d = small_design();
        let cycles = d
            .pipeline_spec()
            .cycles(d.total_ops(), d.molecules() as u64);
        let ideal = d.total_ops() as f64 / PEAK_OPS_PER_CYCLE as f64;
        let ratio = cycles.as_f64() / ideal;
        assert!(
            (ratio - 1.0 / EFFICIENCY).abs() < 0.01,
            "cycle inflation {ratio:.3} should be ~{:.3}",
            1.0 / EFFICIENCY
        );
    }

    #[test]
    fn simulation_is_compute_dominated_with_streamed_writeback() {
        let d = small_design();
        let m = d.simulate(100.0e6);
        assert!(m.compute_busy.as_secs_f64() > 10.0 * m.comm_busy.as_secs_f64());
        assert!(m.streamed_comm > fpga_sim::SimTime::ZERO);
        // Visible comm is the input transfer only.
        let input_s = m.comm_busy.as_secs_f64();
        let expect = 2048.0 * 36.0 / (0.9 * 500.0e6);
        assert!(
            (input_s - expect).abs() / expect < 0.2,
            "input {input_s:.3e} vs {expect:.3e}"
        );
    }

    #[test]
    fn resource_report_shows_dsp_saturation() {
        let d = small_design();
        let r = d.resource_report();
        assert!(r.fits);
        assert_eq!(r.dsp_util, 1.0, "Table 10: DSPs are the wall");
        assert_eq!(r.limiting_resource(), "DSP blocks");
        assert!(r.routing_strain, "85% ALUTs should flag routing strain");
        assert!(r.replication_headroom() <= 1.0 + 1e-12);
    }

    #[test]
    fn app_run_matches_table8_structure() {
        let d = small_design();
        let run = d.app_run();
        assert_eq!(run.iterations, 1);
        assert_eq!(run.input_bytes_per_iter, 2048 * 36);
        assert!(run.streamed_output);
    }

    // The full paper-scale validation (16,384 molecules) lives in the
    // integration suite and the Table-9 reproduction binary, where it runs in
    // release mode.
}
