//! Cell-list spatial partitioning for neighbor search.
//!
//! Divides the periodic box into a grid of cells at least one cutoff wide, so
//! all interactions within the cutoff lie in the 27 surrounding cells. At the
//! paper's parameters (cutoff one third of the box) the pruning is modest, but
//! the structure keeps neighbor counting exact and scales properly for the
//! denser/shorter-cutoff configurations the benchmark ablations explore.

use crate::md::system::{min_image_vec, Vec3};

/// A cell list over a set of positions in a periodic cubic box.
#[derive(Debug, Clone)]
pub struct CellList {
    cells: Vec<Vec<u32>>,
    n_side: usize,
    box_len: f64,
}

impl CellList {
    /// Build a cell list with cells at least `cutoff` wide.
    ///
    /// Panics if the cutoff is not in `(0, box_len]` or positions are empty.
    pub fn build(positions: &[Vec3], box_len: f64, cutoff: f64) -> Self {
        assert!(
            !positions.is_empty(),
            "cell list needs at least one particle"
        );
        assert!(
            cutoff > 0.0 && cutoff <= box_len,
            "cutoff must be in (0, box_len], got {cutoff} for box {box_len}"
        );
        let n_side = ((box_len / cutoff).floor() as usize).max(1);
        let mut cells = vec![Vec::new(); n_side * n_side * n_side];
        for (i, p) in positions.iter().enumerate() {
            cells[Self::cell_index_of(p, box_len, n_side)].push(i as u32);
        }
        Self {
            cells,
            n_side,
            box_len,
        }
    }

    fn cell_index_of(p: &Vec3, box_len: f64, n_side: usize) -> usize {
        let coord = |v: f64| -> usize {
            let c = (v.rem_euclid(box_len) / box_len * n_side as f64) as usize;
            c.min(n_side - 1)
        };
        (coord(p.x) * n_side + coord(p.y)) * n_side + coord(p.z)
    }

    /// Cells per box edge.
    pub fn cells_per_side(&self) -> usize {
        self.n_side
    }

    /// Visit every particle index in the 27-cell neighborhood of particle
    /// `i`'s cell (including `i` itself; callers skip it).
    pub fn for_each_candidate<F: FnMut(u32)>(&self, p: &Vec3, mut f: F) {
        let n = self.n_side as isize;
        let coord = |v: f64| -> isize {
            let c = (v.rem_euclid(self.box_len) / self.box_len * self.n_side as f64) as isize;
            c.min(n - 1)
        };
        let (cx, cy, cz) = (coord(p.x), coord(p.y), coord(p.z));
        // With fewer than 3 cells per side, offsets alias the same cell; visit
        // each distinct cell once.
        let span: Vec<isize> = if n >= 3 {
            vec![-1, 0, 1]
        } else {
            (0..n).collect()
        };
        for &dx in &span {
            for &dy in &span {
                for &dz in &span {
                    let (x, y, z) = if n >= 3 {
                        (
                            (cx + dx).rem_euclid(n),
                            (cy + dy).rem_euclid(n),
                            (cz + dz).rem_euclid(n),
                        )
                    } else {
                        (dx, dy, dz)
                    };
                    let idx = ((x * n + y) * n + z) as usize;
                    for &j in &self.cells[idx] {
                        f(j);
                    }
                }
            }
        }
    }
}

/// Exact near-neighbor count for each particle: how many others lie within
/// `cutoff` (minimum-image metric). This is the data-dependent quantity the MD
/// hardware kernel's cycle count hinges on.
pub fn neighbor_counts(positions: &[Vec3], box_len: f64, cutoff: f64) -> Vec<u32> {
    let list = CellList::build(positions, box_len, cutoff);
    let c2 = cutoff * cutoff;
    positions
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut count = 0u32;
            list.for_each_candidate(p, |j| {
                if j as usize != i {
                    let d = min_image_vec(*p - positions[j as usize], box_len);
                    if d.norm2() < c2 {
                        count += 1;
                    }
                }
            });
            count
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference count.
    fn brute_counts(positions: &[Vec3], box_len: f64, cutoff: f64) -> Vec<u32> {
        let c2 = cutoff * cutoff;
        positions
            .iter()
            .enumerate()
            .map(|(i, p)| {
                positions
                    .iter()
                    .enumerate()
                    .filter(|&(j, q)| j != i && min_image_vec(*p - *q, box_len).norm2() < c2)
                    .count() as u32
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_small_cutoff() {
        let s = crate::md::system::System::random(400, 1.0, 101);
        let cl = neighbor_counts(&s.positions, 1.0, 0.12);
        let bf = brute_counts(&s.positions, 1.0, 0.12);
        assert_eq!(cl, bf);
    }

    #[test]
    fn matches_brute_force_paper_cutoff() {
        // Cutoff one third of the box: only 3 cells per side.
        let s = crate::md::system::System::random(300, 1.0, 102);
        let cl = neighbor_counts(&s.positions, 1.0, 0.329);
        let bf = brute_counts(&s.positions, 1.0, 0.329);
        assert_eq!(cl, bf);
    }

    #[test]
    fn matches_brute_force_huge_cutoff() {
        // Cutoff over half the box collapses to one or two cells per side.
        let s = crate::md::system::System::random(150, 1.0, 103);
        let cl = neighbor_counts(&s.positions, 1.0, 0.8);
        let bf = brute_counts(&s.positions, 1.0, 0.8);
        assert_eq!(cl, bf);
    }

    #[test]
    fn mean_count_tracks_cutoff_volume() {
        // For uniform density, mean near count ~ (N-1) * (4/3) pi r^3 / V.
        let n = 4000;
        let s = crate::md::system::System::random(n, 1.0, 104);
        let counts = neighbor_counts(&s.positions, 1.0, 0.2);
        let mean: f64 = counts.iter().map(|&c| c as f64).sum::<f64>() / n as f64;
        let expect = (n - 1) as f64 * (4.0 / 3.0) * std::f64::consts::PI * 0.2f64.powi(3);
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean:.1} vs expectation {expect:.1}"
        );
    }

    #[test]
    fn two_particles_across_the_boundary_see_each_other() {
        let positions = vec![Vec3::new(0.02, 0.5, 0.5), Vec3::new(0.98, 0.5, 0.5)];
        let counts = neighbor_counts(&positions, 1.0, 0.1);
        assert_eq!(counts, vec![1, 1]);
    }

    #[test]
    fn cells_per_side_scales_inverse_to_cutoff() {
        let s = crate::md::system::System::random(100, 1.0, 105);
        assert_eq!(CellList::build(&s.positions, 1.0, 0.1).cells_per_side(), 10);
        assert_eq!(
            CellList::build(&s.positions, 1.0, 0.329).cells_per_side(),
            3
        );
        assert_eq!(CellList::build(&s.positions, 1.0, 0.9).cells_per_side(), 1);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn oversized_cutoff_panics() {
        let s = crate::md::system::System::random(10, 1.0, 106);
        CellList::build(&s.positions, 1.0, 1.5);
    }
}
