//! The molecular-dynamics case study (paper §5.2).
//!
//! MD is the paper's stress test for RAT: the computation per molecule depends
//! on the *data* (how many other molecules sit within interaction range), so
//! `ops_per_element` can only be estimated, and `throughput_proc` is used as a
//! tuning knob — "50 is the quantitative value computed by the equations to
//! achieve the desired overall speedup of approximately 10x".
//!
//! This module implements the substrate for real: a Lennard-Jones particle
//! system with periodic boundaries ([`system`]), cell-list neighbor search
//! ([`cell_list`]), force evaluation with the paper's early-out structure
//! ([`forces`]), velocity-Verlet integration ([`integrate`]), the
//! data-dependent hardware kernel model ([`hw`]), and the Table-8 worksheet
//! input ([`rat`]).

pub mod cell_list;
pub mod forces;
pub mod hw;
pub mod integrate;
pub mod rat;
pub mod system;

/// Molecules in the paper's dataset: "small but still scientifically
/// interesting".
pub const N_MOLECULES: usize = 16_384;

/// Interaction cutoff radius (box units). Chosen so the mean near-neighbor
/// count over a uniform unit box (~2,444) reproduces the paper's estimated
/// 164,000 operations per molecule under the op-counting model in [`forces`].
pub const CUTOFF: f64 = 0.329;

/// Simulation box edge length (periodic cube).
pub const BOX_LEN: f64 = 1.0;
