//! The MD worksheet input (paper Table 8).

use rat_core::params::{
    Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
};
use rat_core::quantity::{Freq, Seconds, Throughput};

use crate::md::N_MOLECULES;

/// The software baseline time. The paper's Table 8 prints it illegibly in the
/// available scan, but it is pinned by Table 9's predicted speedups
/// (8.0x at t_RC 7.19e-1, 10.7x at 5.40e-1, 16.0x at 3.61e-1), all of which
/// give t_soft = 5.78 s on the 2.2 GHz Opteron.
pub const T_SOFT: f64 = 5.78;

/// The paper's Table 8: RAT input parameters for the MD design.
pub fn rat_input(fclock_hz: f64) -> RatInput {
    RatInput {
        name: "Molecular Dynamics".into(),
        dataset: DatasetParams {
            elements_in: N_MOLECULES as u64,
            elements_out: N_MOLECULES as u64,
            bytes_per_element: 36,
        },
        comm: CommParams {
            ideal_bandwidth: Throughput::from_bytes_per_sec(500.0e6),
            alpha_write: 0.9,
            alpha_read: 0.9,
        },
        comp: CompParams {
            // Estimated from the algorithm structure; the actual value is
            // data-dependent (MdDesign::ops_per_element measures it).
            ops_per_element: 164_000.0,
            // The tuned value: what the inverse solve says a ~10x goal needs.
            throughput_proc: 50.0,
            fclock: Freq::from_hz(fclock_hz),
        },
        software: SoftwareParams {
            t_soft: Seconds::new(T_SOFT),
            iterations: 1,
        },
        buffering: Buffering::Single,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rat_core::solve;
    use rat_core::worksheet::Worksheet;

    #[test]
    fn rat_input_is_table8() {
        let i = rat_input(100.0e6);
        assert_eq!(i.dataset.elements_in, 16_384);
        assert_eq!(i.dataset.elements_out, 16_384);
        assert_eq!(i.dataset.bytes_per_element, 36);
        assert_eq!(
            i.comm.ideal_bandwidth,
            Throughput::from_bytes_per_sec(500.0e6)
        );
        assert_eq!(i.comp.ops_per_element, 164_000.0);
        assert_eq!(i.software.iterations, 1);
    }

    #[test]
    fn predictions_match_table9_columns() {
        // (fclock, t_comp, t_RC, speedup): 75 MHz (7.17e-1, 7.19e-1, 8.0),
        // 100 MHz (5.37e-1, 5.40e-1, 10.7), 150 MHz (3.58e-1, 3.61e-1, 16.0).
        for (f, tc, trc, sp) in [
            (75.0e6, 7.17e-1, 7.19e-1, 8.0),
            (100.0e6, 5.37e-1, 5.40e-1, 10.7),
            (150.0e6, 3.58e-1, 3.61e-1, 16.0),
        ] {
            let r = Worksheet::new(rat_input(f)).analyze().unwrap();
            assert!(
                (r.throughput.t_comp.seconds() - tc).abs() / tc < 0.005,
                "t_comp at {f}"
            );
            assert!(
                (r.throughput.t_rc.seconds() - trc).abs() / trc < 0.005,
                "t_RC at {f}"
            );
            assert!(
                (r.speedup - sp).abs() < 0.06,
                "speedup {} vs {sp}",
                r.speedup
            );
            // Comm is trivially small: t_comm = 2.62e-3 at all clocks.
            assert!((r.throughput.t_comm.seconds() - 2.62e-3).abs() / 2.62e-3 < 0.005);
        }
    }

    #[test]
    fn table9_utilizations_at_150mhz() {
        let r = Worksheet::new(rat_input(150.0e6)).analyze().unwrap();
        // Table 9: util_comm 0.7%, util_comp 99.3%.
        assert!((r.throughput.util_comm - 0.007).abs() < 0.001);
        assert!((r.throughput.util_comp - 0.993).abs() < 0.001);
    }

    #[test]
    fn fifty_ops_per_cycle_is_the_tuned_value_for_10x() {
        // Reproduce §5.2's tuning: treat throughput_proc as the unknown and
        // solve for the ~10.7x target; the answer is the Table-8 value, 50.
        let req = solve::required_throughput_proc(&rat_input(100.0e6), 10.7).unwrap();
        assert!(
            (req - 50.0).abs() < 0.5,
            "required throughput_proc {req:.2}"
        );
    }
}
