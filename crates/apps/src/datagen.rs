//! Deterministic workload generators.
//!
//! Every case study consumes randomized data (PDF samples, particle
//! positions); all of it is produced here from seeded ChaCha8 streams so a
//! table regenerated today matches one regenerated next year, on any platform.

use rand::distributions::Distribution;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The workspace-wide base seed. Individual generators offset it so different
/// datasets are decorrelated but still reproducible.
pub const BASE_SEED: u64 = 0x5241_545f_3230_3037; // "RAT_2007"

/// A seeded RNG for dataset `tag`.
pub fn rng_for(tag: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(BASE_SEED ^ tag)
}

/// Samples from a mixture of two Gaussians clipped to `(-1, 1)` — a bimodal
/// population whose density is worth estimating (a flat or single-mode dataset
/// would make the PDF case studies trivial).
pub fn bimodal_samples(n: usize, tag: u64) -> Vec<f64> {
    let mut rng = rng_for(tag);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let (mean, std) = if rng.gen_bool(0.6) {
            (-0.4, 0.15)
        } else {
            (0.45, 0.2)
        };
        let v = mean + std * standard_normal(&mut rng);
        if v > -1.0 && v < 1.0 {
            out.push(v);
        }
    }
    out
}

/// Pairs of samples for the 2-D PDF study: the bimodal marginal in x, a
/// correlated second coordinate in y, both clipped to `(-1, 1)`.
pub fn bimodal_samples_2d(n: usize, tag: u64) -> Vec<(f64, f64)> {
    let mut rng = rng_for(tag);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let (mean, std) = if rng.gen_bool(0.6) {
            (-0.4, 0.15)
        } else {
            (0.45, 0.2)
        };
        let x = mean + std * standard_normal(&mut rng);
        let y = 0.5 * x + 0.25 * standard_normal(&mut rng);
        if x > -1.0 && x < 1.0 && y > -1.0 && y < 1.0 {
            out.push((x, y));
        }
    }
    out
}

/// Uniformly random positions in the unit box, for the MD study.
pub fn uniform_positions(n: usize, tag: u64) -> Vec<[f64; 3]> {
    let mut rng = rng_for(tag);
    let dist = rand::distributions::Uniform::new(0.0, 1.0);
    (0..n)
        .map(|_| {
            [
                dist.sample(&mut rng),
                dist.sample(&mut rng),
                dist.sample(&mut rng),
            ]
        })
        .collect()
}

/// One standard-normal draw via Box–Muller (avoids a rand_distr dependency).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(bimodal_samples(100, 1), bimodal_samples(100, 1));
        assert_ne!(bimodal_samples(100, 1), bimodal_samples(100, 2));
        assert_eq!(uniform_positions(50, 3), uniform_positions(50, 3));
        assert_eq!(bimodal_samples_2d(50, 4), bimodal_samples_2d(50, 4));
    }

    #[test]
    fn bimodal_samples_live_in_open_unit_interval() {
        for v in bimodal_samples(5000, 7) {
            assert!(v > -1.0 && v < 1.0, "sample {v} out of range");
        }
    }

    #[test]
    fn bimodal_really_has_two_modes() {
        let samples = bimodal_samples(20000, 11);
        let near = |c: f64| samples.iter().filter(|&&v| (v - c).abs() < 0.1).count();
        let left = near(-0.4);
        let right = near(0.45);
        let trough = near(0.0);
        assert!(
            left > trough && right > trough,
            "modes {left}/{right} vs trough {trough}"
        );
    }

    #[test]
    fn positions_fill_the_unit_box() {
        let pos = uniform_positions(10000, 13);
        for p in &pos {
            for &c in p {
                assert!((0.0..1.0).contains(&c));
            }
        }
        // Mean near the box center.
        let mean_x: f64 = pos.iter().map(|p| p[0]).sum::<f64>() / pos.len() as f64;
        assert!((mean_x - 0.5).abs() < 0.02);
    }

    #[test]
    fn samples_2d_are_correlated() {
        let s = bimodal_samples_2d(20000, 17);
        let (mx, my): (f64, f64) = (
            s.iter().map(|p| p.0).sum::<f64>() / s.len() as f64,
            s.iter().map(|p| p.1).sum::<f64>() / s.len() as f64,
        );
        let cov: f64 = s.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / s.len() as f64;
        assert!(cov > 0.01, "x and y should correlate, cov = {cov}");
    }
}
