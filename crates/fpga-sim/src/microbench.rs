//! Interconnect microbenchmarks: deriving the paper's `alpha` parameters.
//!
//! §4.2 of the paper: *"The alpha parameters were computed using a
//! microbenchmark consisting of a read and write for a data size comparable to
//! one used by the algorithm. … In general, the microbenchmark is performed on
//! an FPGA over a wide range of possible data sizes. The resulting alpha values
//! can be tabulated and used in future RAT analyses for that FPGA platform."*
//!
//! This module performs exactly that procedure against a simulated
//! [`Interconnect`]: time a transfer, divide the achieved rate by the
//! documented ideal. Crucially, an alpha derived at one size can badly
//! mispredict another size — the mechanism behind the 2-D PDF case study's 6x
//! communication underestimate, and reproducible here by deriving alpha at
//! 2 KB and then transferring 256 KB.
//!
//! ```
//! use fpga_sim::{catalog, microbench};
//!
//! let ic = catalog::nallatech_h101().interconnect;
//! let probe = microbench::measure_alpha(&ic, 2048);
//! // The paper's Table-2 values fall straight out of the procedure.
//! assert!((probe.alpha_write - 0.37).abs() < 0.02);
//! assert!((probe.alpha_read - 0.16).abs() < 0.02);
//! ```

use crate::interconnect::{Direction, Interconnect};
use serde::{Deserialize, Serialize};

/// Result of one microbenchmark probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaSample {
    /// Probed transfer size in bytes.
    pub bytes: u64,
    /// Measured end-to-end alpha for host→FPGA transfers at this size.
    pub alpha_write: f64,
    /// Measured end-to-end alpha for FPGA→host transfers at this size.
    pub alpha_read: f64,
}

/// Measure the sustained fraction of ideal bandwidth at one transfer size,
/// the way the paper does: `alpha = bytes / (t_measured * throughput_ideal)`.
///
/// The measurement times the bus transfer itself (setup + payload), not the
/// host API call — mirroring a microbenchmark that wraps timers around the DMA.
pub fn measure_alpha(ic: &Interconnect, bytes: u64) -> AlphaSample {
    assert!(bytes > 0, "cannot microbenchmark a zero-byte transfer");
    let alpha_of = |dir| {
        // Effective over ideal rate: a dimensionless Throughput ratio.
        (ic.effective_bandwidth(bytes, dir) / ic.ideal_bw).min(1.0)
    };
    AlphaSample {
        bytes,
        alpha_write: alpha_of(Direction::Write),
        alpha_read: alpha_of(Direction::Read),
    }
}

/// Run the microbenchmark across a size sweep, producing the tabulated alpha
/// values the paper recommends keeping per platform.
pub fn alpha_table(ic: &Interconnect, sizes: &[u64]) -> Vec<AlphaSample> {
    sizes.iter().map(|&s| measure_alpha(ic, s)).collect()
}

/// Standard power-of-two probe sizes from 256 B to 4 MiB.
pub fn standard_sizes() -> Vec<u64> {
    (8..=22).map(|p| 1u64 << p).collect()
}

/// Render an alpha table as aligned text (one row per size).
pub fn render_alpha_table(samples: &[AlphaSample]) -> String {
    let mut out = String::from("  bytes      alpha_write  alpha_read\n");
    for s in samples {
        out.push_str(&format!(
            "  {:<10} {:<12.4} {:<12.4}\n",
            s.bytes, s.alpha_write, s.alpha_read
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn nallatech_write_alpha_matches_paper_at_2kb() {
        // Table 2: alpha_write = 0.37, alpha_read = 0.16, probed "for a data
        // size comparable to one used by the 1-D PDF algorithm" (2 KB).
        let ic = catalog::nallatech_h101().interconnect;
        let s = measure_alpha(&ic, 2048);
        assert!(
            (s.alpha_write - 0.37).abs() < 0.02,
            "alpha_write {:.3} should be ~0.37",
            s.alpha_write
        );
        assert!(
            (s.alpha_read - 0.16).abs() < 0.02,
            "alpha_read {:.3} should be ~0.16",
            s.alpha_read
        );
    }

    #[test]
    fn nallatech_read_alpha_collapses_at_256kb() {
        // The 2-D PDF mechanism: alpha derived at 2 KB is ~6x optimistic for
        // the 256 KB result block.
        let ic = catalog::nallatech_h101().interconnect;
        let small = measure_alpha(&ic, 2048).alpha_read;
        let large = measure_alpha(&ic, 262144).alpha_read;
        let ratio = small / large;
        assert!(
            (4.5..8.0).contains(&ratio),
            "expected ~6x alpha collapse at 256 KB, got {ratio:.2}x"
        );
    }

    #[test]
    fn alpha_never_exceeds_one() {
        for spec in [
            catalog::nallatech_h101(),
            catalog::xd1000(),
            catalog::generic_pcie_gen2_x8(),
        ] {
            for s in alpha_table(&spec.interconnect, &standard_sizes()) {
                assert!(s.alpha_write <= 1.0 && s.alpha_write > 0.0);
                assert!(s.alpha_read <= 1.0 && s.alpha_read > 0.0);
            }
        }
    }

    #[test]
    fn alpha_grows_with_size_until_sustained_limit() {
        // On a setup-latency-dominated bus, bigger transfers amortize better —
        // up to the payload-efficiency ceiling.
        let ic = catalog::xd1000().interconnect;
        let a1 = measure_alpha(&ic, 1024).alpha_write;
        let a2 = measure_alpha(&ic, 65536).alpha_write;
        assert!(
            a2 > a1,
            "alpha at 64 KB ({a2:.3}) should exceed alpha at 1 KB ({a1:.3})"
        );
    }

    #[test]
    fn table_covers_requested_sizes() {
        let ic = catalog::xd1000().interconnect;
        let t = alpha_table(&ic, &[1024, 4096]);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].bytes, 1024);
        assert_eq!(t[1].bytes, 4096);
    }

    #[test]
    fn render_is_one_row_per_sample_plus_header() {
        let ic = catalog::xd1000().interconnect;
        let t = alpha_table(&ic, &[1024, 4096, 16384]);
        let s = render_alpha_table(&t);
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_byte_probe_panics() {
        let ic = catalog::xd1000().interconnect;
        measure_alpha(&ic, 0);
    }
}
