//! Execution traces and Gantt rendering.
//!
//! Every platform execution records which resource (interconnect channel,
//! compute fabric, host) was busy when, and with what. Rendering the trace as
//! an ASCII Gantt chart reproduces the paper's Figure 2 (single- vs
//! double-buffered overlap scenarios) from *simulated* schedules rather than a
//! hand-drawn idealization.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The resource a trace span occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// The CPU–FPGA interconnect channel (a single, serialized resource).
    Comm,
    /// The FPGA compute fabric.
    Comp,
    /// Host-side overhead (API calls, kernel synchronization).
    Host,
}

impl Resource {
    fn row_label(self) -> &'static str {
        match self {
            Resource::Comm => "Comm",
            Resource::Comp => "Comp",
            Resource::Host => "Host",
        }
    }
}

/// One busy interval on a resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Which resource was busy.
    pub resource: Resource,
    /// Short label, e.g. `R1`, `W1`, `C1` (the paper's Figure-2 notation).
    pub label: String,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
}

impl Span {
    /// Duration of the span.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// A complete execution trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    spans: Vec<Span>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a busy interval. Zero-length spans are kept (they mark events).
    pub fn record(
        &mut self,
        resource: Resource,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        assert!(end >= start, "span must not end before it starts");
        self.spans.push(Span {
            resource,
            label: label.into(),
            start,
            end,
        });
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans on one resource, in recording order.
    pub fn spans_on(&self, resource: Resource) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.resource == resource)
    }

    /// Total busy time on a resource (spans on one resource never overlap,
    /// since each resource is exclusive).
    pub fn busy(&self, resource: Resource) -> SimTime {
        self.spans_on(resource).map(Span::duration).sum()
    }

    /// The end of the latest span (the makespan), or zero for an empty trace.
    pub fn end(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Whether any `Comm` span overlaps any `Comp` span — i.e. whether the
    /// schedule actually achieved communication/computation overlap.
    pub fn has_overlap(&self) -> bool {
        self.spans_on(Resource::Comm).any(|c| {
            self.spans_on(Resource::Comp)
                .any(|p| c.start < p.end && p.start < c.end)
        })
    }

    /// Busy fraction of `resource` in each of `windows` equal slices of the
    /// makespan — a utilization timeline for spotting warm-up, steady-state,
    /// and drain phases. Returns an empty vector for an empty trace.
    pub fn utilization_profile(&self, resource: Resource, windows: usize) -> Vec<f64> {
        let end = self.end();
        if end == SimTime::ZERO || windows == 0 {
            return Vec::new();
        }
        let total_ps = end.as_ps();
        (0..windows)
            .map(|w| {
                let w_start = total_ps * w as u64 / windows as u64;
                let w_end = total_ps * (w as u64 + 1) / windows as u64;
                if w_end == w_start {
                    return 0.0;
                }
                let busy: u64 = self
                    .spans_on(resource)
                    .map(|s| {
                        let a = s.start.as_ps().max(w_start);
                        let b = s.end.as_ps().min(w_end);
                        b.saturating_sub(a)
                    })
                    .sum();
                busy as f64 / (w_end - w_start) as f64
            })
            .collect()
    }

    /// Export the trace as CSV (`resource,label,start_ps,end_ps,duration_ps`)
    /// for external plotting tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("resource,label,start_ps,end_ps,duration_ps\n");
        for s in &self.spans {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                s.resource.row_label(),
                s.label,
                s.start.as_ps(),
                s.end.as_ps(),
                s.duration().as_ps()
            ));
        }
        out
    }

    /// Export the trace as Chrome `trace_event` JSON, loadable in
    /// `chrome://tracing` / Perfetto alongside host-side profiles: simulated
    /// spans appear on `pid` [`rat_core::telemetry::chrome::PID_SIM`] with one `tid` lane per
    /// resource (Comm = 1, Comp = 2, Host = 3), timestamps converted from
    /// simulated picoseconds to the format's microseconds. Spans keep
    /// recording order within each lane, so output is deterministic.
    pub fn to_chrome_json(&self) -> String {
        use rat_core::telemetry::chrome::{self, ChromeEvent};
        use rat_core::telemetry::ArgValue;
        let tid = |r: Resource| match r {
            Resource::Comm => 1,
            Resource::Comp => 2,
            Resource::Host => 3,
        };
        let mut events: Vec<(u64, usize, ChromeEvent)> = self
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let lane = tid(s.resource);
                (
                    lane,
                    i,
                    ChromeEvent {
                        name: if s.label.is_empty() {
                            s.resource.row_label().to_string()
                        } else {
                            s.label.clone()
                        },
                        cat: "sim".to_string(),
                        pid: chrome::PID_SIM,
                        tid: lane,
                        ts_us: s.start.as_ps() as f64 / 1e6,
                        dur_us: s.duration().as_ps() as f64 / 1e6,
                        args: vec![(
                            "resource".to_string(),
                            ArgValue::Str(s.resource.row_label().to_string()),
                        )],
                    },
                )
            })
            .collect();
        events.sort_by_key(|a| (a.0, a.1));
        let events: Vec<ChromeEvent> = events.into_iter().map(|(_, _, e)| e).collect();
        chrome::render_events(&events, &[])
    }

    /// Channel-idle gaps between consecutive `Comm` spans longer than
    /// `threshold` — the "bubbles" a designer hunts when communication
    /// underperforms. Returns `(gap_start, gap_end)` pairs.
    pub fn comm_gaps(&self, threshold: SimTime) -> Vec<(SimTime, SimTime)> {
        let mut spans: Vec<&Span> = self.spans_on(Resource::Comm).collect();
        spans.sort_by_key(|s| s.start);
        spans
            .windows(2)
            .filter_map(|w| {
                let gap_start = w[0].end;
                let gap_end = w[1].start;
                (gap_end > gap_start && gap_end - gap_start > threshold)
                    .then_some((gap_start, gap_end))
            })
            .collect()
    }

    /// Render an ASCII Gantt chart `width` characters wide, in the style of the
    /// paper's Figure 2: one row per resource, labelled segments.
    ///
    /// ```text
    /// Comm |R1··|W1|R2··|W2|
    /// Comp |    |C1····|C2····|
    /// ```
    pub fn render_gantt(&self, width: usize) -> String {
        let width = width.max(20);
        let end = self.end();
        if end == SimTime::ZERO {
            return String::from("(empty trace)\n");
        }
        let scale = |t: SimTime| -> usize {
            ((u128::from(t.as_ps()) * width as u128) / u128::from(end.as_ps())) as usize
        };
        let mut out = String::new();
        for res in [Resource::Comm, Resource::Comp, Resource::Host] {
            let spans: Vec<&Span> = self.spans_on(res).collect();
            if spans.is_empty() {
                continue;
            }
            let mut row = vec![b' '; width + 1];
            for s in &spans {
                let (a, b) = (scale(s.start), scale(s.end).max(scale(s.start) + 1));
                let b = b.min(width);
                for c in row.iter_mut().take(b).skip(a) {
                    *c = b'-';
                }
                // Stamp the label at the segment start.
                for (i, ch) in s.label.bytes().enumerate() {
                    if a + i < b {
                        row[a + i] = ch;
                    }
                }
                if a < row.len() && s.label.is_empty() {
                    row[a] = b'#';
                }
            }
            let line = String::from_utf8(row).expect("ASCII by construction");
            writeln!(out, "{:>4} |{}|", res.row_label(), line.trim_end())
                .expect("writing to a String cannot fail");
        }
        writeln!(out, "     0{:>w$}", end.to_string(), w = width - 1)
            .expect("writing to a String cannot fail");
        out
    }
}

/// Destination for the busy intervals a simulation produces.
///
/// The simulator is generic over its sink so summary runs pay nothing for
/// trace detail they will discard: [`FullTrace`] materializes every span
/// (labels included), [`SummarySink`] counts spans and accumulates busy time
/// without allocating, and [`NullSink`] drops everything.
///
/// `label` is a closure, not a string: sinks that keep no labels never invoke
/// it, so the hot path skips the `format!` entirely.
pub trait TraceSink {
    /// Whether this sink needs to observe every individual span. Non-recording
    /// sinks (`RECORDS == false`) permit steady-state fast-forward — skipped
    /// periods record nothing — while recording sinks force the exhaustive
    /// event-by-event schedule so their view stays complete.
    const RECORDS: bool;

    /// Record one busy interval on `resource`. Implementations that keep no
    /// labels must not call `label`.
    fn record(
        &mut self,
        resource: Resource,
        label: impl FnOnce() -> String,
        start: SimTime,
        end: SimTime,
    );
}

/// A [`TraceSink`] that materializes the full [`Trace`], labels and all.
#[derive(Debug, Clone, Default)]
pub struct FullTrace {
    trace: Trace,
}

impl FullTrace {
    /// An empty full-trace sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl TraceSink for FullTrace {
    const RECORDS: bool = true;

    fn record(
        &mut self,
        resource: Resource,
        label: impl FnOnce() -> String,
        start: SimTime,
        end: SimTime,
    ) {
        self.trace.record(resource, label(), start, end);
    }
}

/// A [`TraceSink`] that drops every span. The cheapest sink, and the one
/// summary runs use: with no recording requirement, the simulator may also
/// fast-forward through steady-state periods.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const RECORDS: bool = false;

    fn record(
        &mut self,
        _resource: Resource,
        _label: impl FnOnce() -> String,
        _start: SimTime,
        _end: SimTime,
    ) {
    }
}

/// A counting [`TraceSink`]: per-resource span counts and busy totals, no
/// labels, no allocation. Declares `RECORDS = true` because its counts must
/// cover every span, so runs through it stay exhaustive (no fast-forward) —
/// use it when exact event counts matter but the trace itself does not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummarySink {
    /// Number of spans recorded per resource, indexed Comm/Comp/Host.
    counts: [u64; 3],
    /// Total busy time per resource, indexed Comm/Comp/Host.
    busy: [SimTime; 3],
}

impl SummarySink {
    /// An empty counting sink.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(resource: Resource) -> usize {
        match resource {
            Resource::Comm => 0,
            Resource::Comp => 1,
            Resource::Host => 2,
        }
    }

    /// Number of spans recorded on `resource`.
    pub fn count(&self, resource: Resource) -> u64 {
        self.counts[Self::slot(resource)]
    }

    /// Total spans recorded across all resources.
    pub fn total_spans(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Accumulated busy time on `resource` (spans may overlap for streamed
    /// output, so this is occupancy, not elapsed time).
    pub fn busy(&self, resource: Resource) -> SimTime {
        self.busy[Self::slot(resource)]
    }
}

impl TraceSink for SummarySink {
    const RECORDS: bool = true;

    fn record(
        &mut self,
        resource: Resource,
        _label: impl FnOnce() -> String,
        start: SimTime,
        end: SimTime,
    ) {
        let slot = Self::slot(resource);
        self.counts[slot] += 1;
        self.busy[slot] += end - start;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_us(n)
    }

    #[test]
    fn busy_sums_spans() {
        let mut t = Trace::new();
        t.record(Resource::Comm, "R1", us(0), us(5));
        t.record(Resource::Comm, "W1", us(10), us(12));
        t.record(Resource::Comp, "C1", us(5), us(10));
        assert_eq!(t.busy(Resource::Comm), us(7));
        assert_eq!(t.busy(Resource::Comp), us(5));
        assert_eq!(t.busy(Resource::Host), SimTime::ZERO);
        assert_eq!(t.end(), us(12));
    }

    #[test]
    fn overlap_detection() {
        let mut serial = Trace::new();
        serial.record(Resource::Comm, "R1", us(0), us(5));
        serial.record(Resource::Comp, "C1", us(5), us(10));
        assert!(!serial.has_overlap());

        let mut overlapped = Trace::new();
        overlapped.record(Resource::Comm, "R2", us(3), us(8));
        overlapped.record(Resource::Comp, "C1", us(0), us(6));
        assert!(overlapped.has_overlap());
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert_eq!(Trace::new().render_gantt(40), "(empty trace)\n");
    }

    #[test]
    fn gantt_contains_rows_and_labels() {
        let mut t = Trace::new();
        t.record(Resource::Comm, "R1", us(0), us(50));
        t.record(Resource::Comp, "C1", us(50), us(100));
        let g = t.render_gantt(40);
        assert!(g.contains("Comm |"), "missing Comm row:\n{g}");
        assert!(g.contains("Comp |"), "missing Comp row:\n{g}");
        assert!(g.contains("R1"), "missing R1 label:\n{g}");
        assert!(g.contains("C1"), "missing C1 label:\n{g}");
    }

    #[test]
    fn gantt_rows_scale_to_width() {
        let mut t = Trace::new();
        t.record(Resource::Comm, "R1", us(0), us(100));
        let g = t.render_gantt(60);
        let comm_line = g.lines().find(|l| l.contains("Comm")).unwrap();
        // The busy run should span roughly the full width.
        let dashes = comm_line
            .chars()
            .filter(|&c| c == '-' || c == 'R' || c == '1')
            .count();
        assert!(
            dashes >= 55,
            "expected near-full row, got {dashes} in {comm_line:?}"
        );
    }

    #[test]
    #[should_panic(expected = "end before it starts")]
    fn backwards_span_panics() {
        let mut t = Trace::new();
        t.record(Resource::Comm, "X", us(5), us(1));
    }

    #[test]
    fn utilization_profile_localizes_busy_periods() {
        let mut t = Trace::new();
        // Comp busy only in the first half of a 100 us trace.
        t.record(Resource::Comp, "C1", us(0), us(50));
        t.record(Resource::Comm, "W1", us(50), us(100));
        let comp = t.utilization_profile(Resource::Comp, 4);
        assert_eq!(comp.len(), 4);
        assert!((comp[0] - 1.0).abs() < 1e-9);
        assert!((comp[1] - 1.0).abs() < 1e-9);
        assert_eq!(comp[2], 0.0);
        assert_eq!(comp[3], 0.0);
        let comm = t.utilization_profile(Resource::Comm, 4);
        assert_eq!(comm, vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn utilization_profile_partial_windows() {
        let mut t = Trace::new();
        t.record(Resource::Comp, "C1", us(25), us(75));
        t.record(Resource::Comm, "pad", us(0), us(100)); // sets the makespan
        let p = t.utilization_profile(Resource::Comp, 2);
        assert!((p[0] - 0.5).abs() < 1e-9);
        assert!((p[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn utilization_profile_edge_cases() {
        assert!(Trace::new()
            .utilization_profile(Resource::Comp, 8)
            .is_empty());
        let mut t = Trace::new();
        t.record(Resource::Comp, "C1", us(0), us(10));
        assert!(t.utilization_profile(Resource::Comp, 0).is_empty());
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let mut t = Trace::new();
        t.record(Resource::Comm, "R1", us(0), us(5));
        t.record(Resource::Comp, "C1", us(5), us(10));
        let csv = t.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "resource,label,start_ps,end_ps,duration_ps");
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "Comm,R1,0,5000000,5000000");
        assert!(lines[2].starts_with("Comp,C1,"));
    }

    #[test]
    fn chrome_export_lanes_spans_by_resource() {
        let mut t = Trace::new();
        t.record(Resource::Comp, "C1", us(5), us(10));
        t.record(Resource::Comm, "R1", us(0), us(5));
        let json = t.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.contains("\"name\": \"R1\""), "{json}");
        assert!(json.contains("\"name\": \"C1\""), "{json}");
        assert!(json.contains("\"pid\": 2"), "{json}");
        // Comm lane (tid 1) sorts before Comp lane (tid 2).
        let r1 = json.find("\"R1\"").expect("R1");
        let c1 = json.find("\"C1\"").expect("C1");
        assert!(r1 < c1, "{json}");
        // 5 us span → ts/dur in microseconds.
        assert!(json.contains("\"ts\": 0.000, \"dur\": 5.000"), "{json}");
    }

    #[test]
    fn comm_gaps_finds_bubbles() {
        let mut t = Trace::new();
        t.record(Resource::Comm, "R1", us(0), us(5));
        t.record(Resource::Comm, "W1", us(20), us(25)); // 15 us bubble
        t.record(Resource::Comm, "R2", us(25), us(30)); // back-to-back
        let gaps = t.comm_gaps(us(1));
        assert_eq!(gaps, vec![(us(5), us(20))]);
        assert!(t.comm_gaps(us(20)).is_empty());
    }

    #[test]
    fn full_trace_sink_materializes_spans() {
        let mut sink = FullTrace::new();
        sink.record(Resource::Comm, || "R1".into(), us(0), us(5));
        sink.record(Resource::Comp, || "C1".into(), us(5), us(9));
        let trace = sink.into_trace();
        assert_eq!(trace.spans().len(), 2);
        assert_eq!(trace.spans()[0].label, "R1");
        assert_eq!(trace.end(), us(9));
    }

    #[test]
    fn null_sink_drops_everything_without_building_labels() {
        let mut sink = NullSink;
        // The label closure must never run on a label-free sink.
        sink.record(
            Resource::Comm,
            || panic!("NullSink must not build labels"),
            us(0),
            us(5),
        );
        const { assert!(!NullSink::RECORDS) };
    }

    #[test]
    fn summary_sink_counts_without_labels() {
        let mut sink = SummarySink::new();
        sink.record(
            Resource::Comm,
            || panic!("SummarySink must not build labels"),
            us(0),
            us(5),
        );
        sink.record(Resource::Comm, || unreachable!(), us(7), us(9));
        sink.record(Resource::Comp, || unreachable!(), us(0), us(4));
        assert_eq!(sink.count(Resource::Comm), 2);
        assert_eq!(sink.count(Resource::Comp), 1);
        assert_eq!(sink.count(Resource::Host), 0);
        assert_eq!(sink.total_spans(), 3);
        assert_eq!(sink.busy(Resource::Comm), us(7));
        assert_eq!(sink.busy(Resource::Comp), us(4));
        const { assert!(SummarySink::RECORDS, "counts must cover every span") };
    }

    #[test]
    fn spans_on_filters_resource() {
        let mut t = Trace::new();
        t.record(Resource::Comm, "R1", us(0), us(1));
        t.record(Resource::Comp, "C1", us(1), us(2));
        t.record(Resource::Comm, "W1", us(2), us(3));
        let labels: Vec<_> = t
            .spans_on(Resource::Comm)
            .map(|s| s.label.as_str())
            .collect();
        assert_eq!(labels, vec!["R1", "W1"]);
    }
}
