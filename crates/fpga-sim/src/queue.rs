//! Deterministic discrete-event queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event: fires at `time`, carrying a payload `T`.
struct Scheduled<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest event.
// Ties break by insertion order (seq), making the simulation deterministic.
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

/// A discrete-event queue with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same instant pop in the order they were scheduled,
/// so a simulation run is a pure function of its inputs.
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
    now: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time (the fire time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Panics if `at` is in the past — an event scheduled before `now` would
    /// violate causality.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        assert!(
            at >= self.now,
            "cannot schedule an event at {at} before current time {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            payload,
        });
    }

    /// Schedule `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, payload: T) {
        self.schedule(self.now + delay, payload);
    }

    /// Pop the earliest event, advancing the simulation clock to its fire time.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let ev = self.heap.pop()?;
        debug_assert!(
            ev.time >= self.now,
            "event queue produced a time regression"
        );
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Whether any events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(7));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 1);
        q.pop();
        q.schedule_after(SimTime::from_ns(5), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ns(15));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_ns(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
