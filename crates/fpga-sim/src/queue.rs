//! Deterministic discrete-event queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event: fires at `time`, carrying a payload `T`.
struct Scheduled<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest event.
// Ties break by insertion order (seq), making the simulation deterministic.
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

/// A discrete-event queue with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same instant pop in the order they were scheduled,
/// so a simulation run is a pure function of its inputs.
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
    now: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// An empty queue at time zero with storage pre-sized for `n` pending
    /// events. A simulation that knows its peak event population (e.g.
    /// [`crate::platform::AppRun::peak_pending_events`]) allocates once
    /// instead of regrowing the heap mid-run.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(n),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Number of pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// The current simulation time (the fire time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Panics if `at` is in the past — an event scheduled before `now` would
    /// violate causality.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        assert!(
            at >= self.now,
            "cannot schedule an event at {at} before current time {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            payload,
        });
    }

    /// Schedule `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, payload: T) {
        self.schedule(self.now + delay, payload);
    }

    /// Pop the earliest event, advancing the simulation clock to its fire time.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let ev = self.heap.pop()?;
        debug_assert!(
            ev.time >= self.now,
            "event queue produced a time regression"
        );
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Pop every event firing at or before `t`, in pop order (time, then FIFO
    /// sequence), advancing the clock to the last popped event's fire time.
    /// The clock does not advance past the last event: if nothing fires by
    /// `t`, the result is empty and the clock is untouched. Draining a batch
    /// in one call cuts per-pop heap rebalancing when many simultaneous
    /// events land (e.g. wide parallel-kernel completion waves).
    pub fn pop_batch_until(&mut self, t: SimTime) -> Vec<(SimTime, T)> {
        let mut out = Vec::new();
        while let Some(head) = self.heap.peek() {
            if head.time > t {
                break;
            }
            let ev = self.heap.pop().expect("peek proved non-empty");
            debug_assert!(
                ev.time >= self.now,
                "event queue produced a time regression"
            );
            self.now = ev.time;
            out.push((ev.time, ev.payload));
        }
        out
    }

    /// Advance the clock by `offset` and shift every pending event by the same
    /// amount, mapping each payload through `f`. Relative fire times and the
    /// FIFO tie-break order are preserved exactly (the shift is uniform and
    /// sequence numbers are kept), so the future of the simulation is the
    /// same schedule translated by `offset`. This is the primitive behind
    /// steady-state fast-forward.
    pub fn jump(&mut self, offset: SimTime, mut f: impl FnMut(T) -> T) {
        self.now += offset;
        let heap = std::mem::take(&mut self.heap);
        self.heap = heap
            .into_iter()
            .map(|s| Scheduled {
                time: s.time + offset,
                seq: s.seq,
                payload: f(s.payload),
            })
            .collect();
    }

    /// Pending events as `(fire_time, &payload)` in pop order (time, then FIFO
    /// sequence), without disturbing the queue. O(n log n); used to fingerprint
    /// the scheduler state when hunting a steady-state period.
    pub fn pending_in_order(&self) -> Vec<(SimTime, &T)> {
        let mut pending: Vec<&Scheduled<T>> = self.heap.iter().collect();
        pending.sort_by(|a, b| a.time.cmp(&b.time).then(a.seq.cmp(&b.seq)));
        pending.into_iter().map(|s| (s.time, &s.payload)).collect()
    }

    /// Whether any events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(7));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 1);
        q.pop();
        q.schedule_after(SimTime::from_ns(5), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ns(15));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn pop_batch_until_drains_in_order_and_respects_cutoff() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "late");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(10), "b");
        q.schedule(SimTime::from_ns(20), "c");
        let batch = q.pop_batch_until(SimTime::from_ns(20));
        let popped: Vec<_> = batch.iter().map(|(_, p)| *p).collect();
        assert_eq!(popped, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_ns(20));
        assert_eq!(q.len(), 1);
        assert!(q.pop_batch_until(SimTime::from_ns(25)).is_empty());
        assert_eq!(q.now(), SimTime::from_ns(20));
    }

    #[test]
    fn jump_shifts_times_and_preserves_fifo_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..4 {
            q.schedule(t, i);
        }
        q.schedule(SimTime::from_ns(3), 99);
        q.jump(SimTime::from_ns(100), |p| p);
        assert_eq!(q.now(), SimTime::from_ns(100));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (SimTime::from_ns(103), 99),
                (SimTime::from_ns(105), 0),
                (SimTime::from_ns(105), 1),
                (SimTime::from_ns(105), 2),
                (SimTime::from_ns(105), 3),
            ]
        );
    }

    #[test]
    fn jump_maps_payloads() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(1), 10);
        q.schedule(SimTime::from_ns(2), 20);
        q.jump(SimTime::from_ns(10), |p| p + 1);
        let payloads: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(payloads, vec![11, 21]);
    }

    #[test]
    fn pending_in_order_is_non_destructive_and_sorted() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(9), "z");
        q.schedule(SimTime::from_ns(4), "x");
        q.schedule(SimTime::from_ns(4), "y");
        let view: Vec<_> = q
            .pending_in_order()
            .into_iter()
            .map(|(t, p)| (t, *p))
            .collect();
        assert_eq!(
            view,
            vec![
                (SimTime::from_ns(4), "x"),
                (SimTime::from_ns(4), "y"),
                (SimTime::from_ns(9), "z"),
            ]
        );
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn with_capacity_presizes_storage() {
        let q: EventQueue<()> = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        assert!(q.is_empty());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_ns(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
