//! Hardware kernels: the FPGA-side compute model.
//!
//! A kernel consumes one buffered batch of input per invocation and takes some
//! number of FPGA clock cycles to do so. How many is the kernel's whole story:
//! deterministic pipelines compute it from structure
//! ([`crate::pipeline::PipelinedKernel`]), data-dependent designs look it up
//! from per-batch workload measurements ([`TabulatedKernel`], fed by an actual
//! dataset — how the molecular-dynamics case study is modelled).

use rat_core::quantity::Cycles;

/// One iteration's worth of buffered input, as seen by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batch {
    /// Zero-based iteration index.
    pub index: u64,
    /// Number of elements in this batch.
    pub elements: u64,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// FPGA-side compute behaviour: cycles needed per batch.
///
/// Implementations must be deterministic in `batch` (the platform may re-run
/// batches when comparing buffering modes). The `Send + Sync` bound makes
/// every kernel shareable across the analysis engine's worker threads, and
/// [`HardwareKernel::spec_digest`] makes its behaviour content-addressable so
/// simulator runs can be memoized.
pub trait HardwareKernel: Send + Sync {
    /// Kernel name for traces and reports.
    fn name(&self) -> &str;

    /// Clock cycles to process `batch`, including pipeline fill/drain and stalls.
    fn batch_cycles(&self, batch: &Batch) -> Cycles;

    /// Content digest of the kernel's full cycle behaviour: two kernels with
    /// equal digests must return equal `batch_cycles` for every batch. Feeds
    /// the simulator's memoization key ([`crate::digest::run_key`]).
    fn spec_digest(&self) -> u128;

    /// If `Some(i)`, the kernel promises that `batch_cycles` no longer depends
    /// on `batch.index` once `index >= i` (for fixed `elements`/`bytes`). This
    /// is the precondition for steady-state fast-forward: past batch `i` the
    /// schedule's dynamics are translation-invariant, so a repeated resource
    /// state implies a periodic schedule. `None` (the default) means the cycle
    /// profile is irregular and the simulator must run every batch.
    fn uniform_from(&self) -> Option<u64> {
        None
    }
}

/// A kernel whose per-batch cycle counts were measured or precomputed.
///
/// Batches beyond the table reuse the last entry, so a uniform kernel can be
/// described by a single-entry table.
#[derive(Debug, Clone)]
pub struct TabulatedKernel {
    name: String,
    cycles: Vec<u64>,
    /// First index from which the (clamped) table is constant — computed once
    /// here because `uniform_from` is consulted on *every* simulator run, and
    /// an O(table) rescan per run dominated the fast-forwarded summary path.
    uniform_from: u64,
}

impl TabulatedKernel {
    /// A kernel taking `cycles[i]` cycles on batch `i`.
    ///
    /// Panics on an empty table: a kernel must cost something.
    pub fn new(name: impl Into<String>, cycles: Vec<u64>) -> Self {
        assert!(
            !cycles.is_empty(),
            "TabulatedKernel needs at least one cycle count"
        );
        // The table clamps past its end, so the maximal constant suffix
        // (including the implicit repetition of the last entry) starts where
        // the entries stop varying. A fully uniform table reports batch 0.
        let last = *cycles.last().expect("table is never empty");
        let uniform_from = cycles
            .iter()
            .rposition(|&c| c != last)
            .map_or(0, |i| (i + 1) as u64);
        Self {
            name: name.into(),
            cycles,
            uniform_from,
        }
    }

    /// A kernel taking the same `cycles` on each of `batches` batches.
    pub fn uniform(name: impl Into<String>, cycles: u64, batches: usize) -> Self {
        Self::new(name, vec![cycles; batches.max(1)])
    }

    /// Total cycles across the whole table.
    pub fn total_cycles(&self) -> Cycles {
        Cycles::new(self.cycles.iter().sum())
    }
}

impl HardwareKernel for TabulatedKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn batch_cycles(&self, batch: &Batch) -> Cycles {
        let i = (batch.index as usize).min(self.cycles.len() - 1);
        Cycles::new(self.cycles[i])
    }

    fn spec_digest(&self) -> u128 {
        let mut d = crate::digest::SpecDigest::new();
        d.write_str("tabulated");
        d.write_str(&self.name);
        d.write_u64(self.cycles.len() as u64);
        for &c in &self.cycles {
            d.write_u64(c);
        }
        d.finish()
    }

    fn uniform_from(&self) -> Option<u64> {
        Some(self.uniform_from)
    }
}

impl<K: HardwareKernel + ?Sized> HardwareKernel for &K {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn batch_cycles(&self, batch: &Batch) -> Cycles {
        (**self).batch_cycles(batch)
    }

    fn spec_digest(&self) -> u128 {
        (**self).spec_digest()
    }

    fn uniform_from(&self) -> Option<u64> {
        (**self).uniform_from()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(index: u64) -> Batch {
        Batch {
            index,
            elements: 512,
            bytes: 2048,
        }
    }

    #[test]
    fn tabulated_kernel_indexes_by_batch() {
        let k = TabulatedKernel::new("k", vec![10, 20, 30]);
        assert_eq!(k.batch_cycles(&batch(0)), Cycles::new(10));
        assert_eq!(k.batch_cycles(&batch(2)), Cycles::new(30));
    }

    #[test]
    fn tabulated_kernel_clamps_past_table_end() {
        let k = TabulatedKernel::new("k", vec![10, 20]);
        assert_eq!(k.batch_cycles(&batch(7)), Cycles::new(20));
    }

    #[test]
    fn uniform_kernel() {
        let k = TabulatedKernel::uniform("k", 100, 5);
        assert_eq!(k.total_cycles(), Cycles::new(500));
        assert_eq!(k.batch_cycles(&batch(3)), Cycles::new(100));
    }

    #[test]
    #[should_panic(expected = "at least one cycle count")]
    fn empty_table_panics() {
        TabulatedKernel::new("k", vec![]);
    }

    #[test]
    fn uniform_from_finds_constant_suffix() {
        assert_eq!(
            TabulatedKernel::uniform("k", 9, 10_000).uniform_from(),
            Some(0)
        );
        assert_eq!(TabulatedKernel::new("k", vec![5]).uniform_from(), Some(0));
        assert_eq!(
            TabulatedKernel::new("k", vec![10, 20, 30, 30, 30]).uniform_from(),
            Some(2)
        );
        assert_eq!(
            TabulatedKernel::new("k", vec![10, 20, 30]).uniform_from(),
            Some(2)
        );
    }

    #[test]
    fn uniform_from_forwards_through_references() {
        let k = TabulatedKernel::uniform("k", 7, 3);
        let r: &dyn HardwareKernel = &k;
        assert_eq!(r.uniform_from(), Some(0));
        assert_eq!((&r).uniform_from(), Some(0));
    }

    #[test]
    fn kernel_trait_object_via_reference() {
        let k = TabulatedKernel::uniform("k", 7, 1);
        let r: &dyn HardwareKernel = &k;
        assert_eq!(r.batch_cycles(&batch(0)), Cycles::new(7));
        assert_eq!((&r).name(), "k");
    }
}
