//! Memoization of platform executions.
//!
//! The analysis engine re-simulates the same `(platform, kernel, workload,
//! clock)` point constantly: a sweep and a sensitivity probe share their
//! baseline, a Monte-Carlo draw can repeat a degenerate range, and
//! `reproduce all` renders several tables off one case-study design. A
//! [`SimCache`] keyed by [`crate::digest::run_key`] makes each distinct run
//! cost one simulation.
//!
//! The cached value is a [`SimSummary`] — the scalar measurements every
//! analysis consumes — not a full [`Measurement`]: the execution
//! [`crate::trace::Trace`] is per-event and only wanted when a caller
//! explicitly asks to see a schedule, which goes through
//! [`crate::platform::Platform::execute`] uncached.
//!
//! The store is sharded [`SHARD_COUNT`] ways: a key selects its shard from
//! the low bits of the 128-bit run key (uniform by construction — the key is
//! a BLAKE-style digest), and each shard has its own `RwLock`. Concurrent
//! lookups of distinct keys proceed without serializing on one global mutex,
//! and the [`CacheStats::shard_contention`] counter records how often a
//! try-lock still collided.
//!
//! By default the cache lives in memory only, so tests stay hermetic and a
//! simulator change can never be masked by stale results on disk. The CLI
//! opts into persistence with [`SimCache::persist_at`] (or the
//! `RAT_SIM_CACHE` environment variable). Persistence is write-behind: a
//! dirty counter batches inserts and snapshots the cache to a TSV file every
//! [`FLUSH_INTERVAL`] inserts, on [`SimCache::flush`], and on drop — always
//! via an atomic temp-file rename, so a concurrent reader never sees a torn
//! file.

use crate::platform::Measurement;
use crate::time::SimTime;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

/// The scalar results of one platform execution — [`Measurement`] minus the
/// per-event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSummary {
    /// End-to-end execution time (makespan), the paper's measured `t_RC`.
    pub total: SimTime,
    /// Blocking channel occupancy (the paper's "actual" `t_comm`).
    pub comm_busy: SimTime,
    /// Channel occupancy of streamed (compute-overlapped) outputs.
    pub streamed_comm: SimTime,
    /// FPGA kernel occupancy (the paper's "actual" `t_comp`).
    pub compute_busy: SimTime,
    /// Host overhead not attributed to comm or comp.
    pub host_overhead: SimTime,
    /// Iterations executed.
    pub iterations: u64,
}

impl SimSummary {
    /// Mean blocking communication time per iteration.
    pub fn comm_per_iter(&self) -> SimTime {
        SimTime::from_ps(self.comm_busy.as_ps() / self.iterations)
    }

    /// Mean computation time per iteration.
    pub fn comp_per_iter(&self) -> SimTime {
        SimTime::from_ps(self.compute_busy.as_ps() / self.iterations)
    }

    /// Fraction of the makespan the channel was (blockingly) busy.
    pub fn channel_utilization(&self) -> f64 {
        self.comm_busy.as_secs_f64() / self.total.as_secs_f64()
    }

    /// Fraction of the makespan the compute fabric was busy.
    pub fn compute_utilization(&self) -> f64 {
        self.compute_busy.as_secs_f64() / self.total.as_secs_f64()
    }
}

impl From<&Measurement> for SimSummary {
    fn from(m: &Measurement) -> Self {
        SimSummary {
            total: m.total,
            comm_busy: m.comm_busy,
            streamed_comm: m.streamed_comm,
            compute_busy: m.compute_busy,
            host_overhead: m.host_overhead,
            iterations: m.iterations,
        }
    }
}

/// Cache hit/miss counters at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a simulation.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: u64,
    /// Times a shard try-lock collided with a concurrent holder and had to
    /// fall back to a blocking acquire.
    pub shard_contention: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// Number of independently locked shards in a [`SimCache`]. Sixteen is wide
/// enough that even an 8-worker engine rarely collides on a shard (the
/// birthday bound at 8 simultaneous lookups over 16 shards is ~87% of *some*
/// collision, but each is transient), while keeping the per-cache footprint
/// at 16 empty `HashMap`s. Must be a power of two so the shard index is a
/// mask of the key's low bits.
pub const SHARD_COUNT: usize = 16;

/// Inserts between write-behind snapshots of a persistent cache. A large
/// sweep previously rewrote the whole TSV once per insert — O(n²) bytes for n
/// entries; batching bounds the rewrite count at `n / FLUSH_INTERVAL` plus
/// the final flush on drop.
pub const FLUSH_INTERVAL: u64 = 64;

/// The shard a key belongs to: low bits of the 128-bit digest, which are
/// uniformly distributed by construction.
fn shard_of(key: u128) -> usize {
    (key as usize) & (SHARD_COUNT - 1)
}

/// A concurrent, content-addressed store of simulation results, sharded
/// [`SHARD_COUNT`] ways.
pub struct SimCache {
    shards: [RwLock<HashMap<u128, SimSummary>>; SHARD_COUNT],
    hits: AtomicU64,
    misses: AtomicU64,
    shard_contention: AtomicU64,
    /// Inserts not yet reflected in the on-disk snapshot.
    dirty: AtomicU64,
    enabled: AtomicBool,
    disk: Mutex<Option<PathBuf>>,
}

impl SimCache {
    /// An empty, enabled, in-memory cache.
    pub fn new() -> Self {
        SimCache {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            shard_contention: AtomicU64::new(0),
            dirty: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            disk: Mutex::new(None),
        }
    }

    /// The process-wide cache.
    ///
    /// Honors `RAT_SIM_CACHE` on first access: `off`/`0` disables the cache,
    /// any other non-empty value is a path to persist it at.
    pub fn global() -> &'static SimCache {
        static GLOBAL: OnceLock<SimCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cache = SimCache::new();
            match std::env::var("RAT_SIM_CACHE") {
                Ok(v) if v == "off" || v == "0" => cache.set_enabled(false),
                Ok(v) if !v.is_empty() => cache.persist_at(PathBuf::from(v)),
                _ => {}
            }
            cache
        })
    }

    /// Turn lookups and inserts on or off. Disabling does not drop stored
    /// entries; re-enabling sees them again.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the cache currently answers lookups.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Persist the cache at `path`: load any entries a previous process left
    /// there, and write-behind snapshot the cache back every
    /// [`FLUSH_INTERVAL`] inserts and on [`flush`](Self::flush)/drop (atomic
    /// temp-file + rename, so a concurrent reader never sees a torn file).
    /// Unreadable or malformed existing files are ignored — the cache is an
    /// accelerator, never a correctness dependency.
    pub fn persist_at(&self, path: PathBuf) {
        if let Some(loaded) = read_tsv(&path) {
            for (k, v) in loaded {
                self.write_shard(k).entry(k).or_insert(v);
            }
        }
        *self.disk.lock().expect("cache mutex poisoned") = Some(path);
    }

    /// Read-lock a key's shard, counting a contended try-lock.
    fn read_shard(&self, key: u128) -> std::sync::RwLockReadGuard<'_, HashMap<u128, SimSummary>> {
        let shard = &self.shards[shard_of(key)];
        match shard.try_read() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.shard_contention.fetch_add(1, Ordering::Relaxed);
                shard.read().expect("cache shard poisoned")
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("cache shard poisoned"),
        }
    }

    /// Write-lock a key's shard, counting a contended try-lock.
    fn write_shard(&self, key: u128) -> std::sync::RwLockWriteGuard<'_, HashMap<u128, SimSummary>> {
        let shard = &self.shards[shard_of(key)];
        match shard.try_write() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.shard_contention.fetch_add(1, Ordering::Relaxed);
                shard.write().expect("cache shard poisoned")
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("cache shard poisoned"),
        }
    }

    /// Look up a run key, counting the outcome. Disabled caches miss silently
    /// without counting.
    pub fn lookup(&self, key: u128) -> Option<SimSummary> {
        if !self.is_enabled() {
            return None;
        }
        let found = self.read_shard(key).get(&key).copied();
        match found {
            Some(s) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(s)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a result. No-op when disabled. Persistent caches batch the disk
    /// write: the snapshot happens every [`FLUSH_INTERVAL`] inserts, not per
    /// insert.
    pub fn insert(&self, key: u128, summary: SimSummary) {
        if !self.is_enabled() {
            return;
        }
        self.write_shard(key).insert(key, summary);
        // One increment per insert; the flusher swaps the counter back to
        // zero, so racing inserts at most flush once each past the threshold.
        if self.dirty.fetch_add(1, Ordering::Relaxed) + 1 >= FLUSH_INTERVAL {
            self.flush();
        }
    }

    /// Write any batched inserts of a persistent cache to disk now. A no-op
    /// for in-memory caches or when nothing is dirty. Failure to write is a
    /// lost optimization, not an error.
    pub fn flush(&self) {
        // The disk mutex serializes concurrent flushers; dirty is swapped to
        // zero under it so each batch is written exactly once.
        let disk = self.disk.lock().expect("cache mutex poisoned");
        let Some(path) = disk.as_ref() else {
            return;
        };
        if self.dirty.swap(0, Ordering::Relaxed) == 0 {
            return;
        }
        let mut rows: Vec<(u128, SimSummary)> = Vec::new();
        for shard in &self.shards {
            let map = shard.read().expect("cache shard poisoned");
            rows.extend(map.iter().map(|(k, v)| (*k, *v)));
        }
        let _ = write_tsv(path, &rows);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len() as u64)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            shard_contention: self.shard_contention.load(Ordering::Relaxed),
        }
    }

    /// Zero the hit/miss/contention counters (entries are kept). Lets a
    /// caller measure one analysis pass in isolation.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.shard_contention.store(0, Ordering::Relaxed);
    }

    /// Drop all stored entries and zero the counters. Pending (unflushed)
    /// inserts are discarded along with the entries.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().expect("cache shard poisoned").clear();
        }
        self.dirty.store(0, Ordering::Relaxed);
        self.reset_stats();
    }
}

impl Default for SimCache {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for SimCache {
    /// Flush batched inserts so a persistent cache never loses the tail of a
    /// run. The process-global cache is never dropped — the CLI flushes it
    /// explicitly before exit.
    fn drop(&mut self) {
        self.flush();
    }
}

// Disk format: one `key_hex \t total \t comm \t streamed \t comp \t host \t
// iters` row per entry, all times in integer picoseconds. Human-greppable and
// trivially versioned by the schema salt already folded into every key.
fn write_tsv(path: &Path, rows: &[(u128, SimSummary)]) -> std::io::Result<()> {
    let mut body = String::with_capacity(rows.len() * 64);
    for (k, s) in rows {
        body.push_str(&format!(
            "{:032x}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            k,
            s.total.as_ps(),
            s.comm_busy.as_ps(),
            s.streamed_comm.as_ps(),
            s.compute_busy.as_ps(),
            s.host_overhead.as_ps(),
            s.iterations,
        ));
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path)
}

fn read_tsv(path: &Path) -> Option<Vec<(u128, SimSummary)>> {
    let body = std::fs::read_to_string(path).ok()?;
    let mut rows = Vec::new();
    for line in body.lines() {
        let mut f = line.split('\t');
        let key = u128::from_str_radix(f.next()?, 16).ok()?;
        let mut ps = || f.next()?.parse::<u64>().ok();
        let summary = SimSummary {
            total: SimTime::from_ps(ps()?),
            comm_busy: SimTime::from_ps(ps()?),
            streamed_comm: SimTime::from_ps(ps()?),
            compute_busy: SimTime::from_ps(ps()?),
            host_overhead: SimTime::from_ps(ps()?),
            iterations: ps()?,
        };
        rows.push((key, summary));
    }
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::digest::run_key;
    use crate::kernel::TabulatedKernel;
    use crate::platform::{AppRun, Platform};
    use rat_core::quantity::Freq;

    const F150: Freq = Freq::from_hz(150.0e6);

    fn sample_run() -> AppRun {
        AppRun::builder()
            .iterations(8)
            .elements_per_iter(512)
            .input_bytes_per_iter(2048)
            .output_bytes_per_iter(1024)
            .build()
    }

    fn sample_summary(ps: u64) -> SimSummary {
        SimSummary {
            total: SimTime::from_ps(ps),
            comm_busy: SimTime::from_ps(ps / 2),
            streamed_comm: SimTime::ZERO,
            compute_busy: SimTime::from_ps(ps / 3),
            host_overhead: SimTime::ZERO,
            iterations: 4,
        }
    }

    #[test]
    fn identical_specs_share_a_key_and_hit() {
        let cache = SimCache::new();
        let kernel = TabulatedKernel::uniform("k", 100, 8);
        let a = run_key(&catalog::nallatech_h101(), &kernel, &sample_run(), F150);
        let b = run_key(&catalog::nallatech_h101(), &kernel, &sample_run(), F150);
        assert_eq!(a, b);

        assert_eq!(cache.lookup(a), None);
        cache.insert(a, sample_summary(1000));
        assert_eq!(cache.lookup(b), Some(sample_summary(1000)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn one_calibration_constant_separates_keys() {
        // Satellite requirement: PCI-X setup latency +1 ns must produce a
        // different key — a stale result for a perturbed platform would
        // silently corrupt every downstream analysis.
        let cache = SimCache::new();
        let kernel = TabulatedKernel::uniform("k", 100, 8);
        let base = catalog::nallatech_h101();
        let mut bumped = catalog::nallatech_h101();
        bumped.interconnect.setup_write += SimTime::from_ns(1);

        let kb = run_key(&base, &kernel, &sample_run(), F150);
        let kp = run_key(&bumped, &kernel, &sample_run(), F150);
        assert_ne!(kb, kp);

        cache.insert(kb, sample_summary(1000));
        assert_eq!(cache.lookup(kp), None, "perturbed platform must miss");
        assert_eq!(cache.lookup(kb), Some(sample_summary(1000)));
    }

    #[test]
    fn disabled_cache_neither_hits_nor_counts() {
        let cache = SimCache::new();
        cache.insert(1, sample_summary(10));
        cache.set_enabled(false);
        assert_eq!(cache.lookup(1), None);
        cache.insert(2, sample_summary(20));
        assert_eq!(cache.stats().hits + cache.stats().misses, 0);
        // Entries survive a disable/enable cycle.
        cache.set_enabled(true);
        assert_eq!(cache.lookup(1), Some(sample_summary(10)));
        assert_eq!(cache.lookup(2), None);
    }

    #[test]
    fn cached_summary_matches_direct_execution() {
        let platform = Platform::new(catalog::nallatech_h101());
        let kernel = TabulatedKernel::uniform("k", 20_000, 8);
        let run = sample_run();
        let cache = SimCache::new();

        let cold = platform
            .execute_summary(&kernel, &run, F150, Some(&cache))
            .unwrap();
        let warm = platform
            .execute_summary(&kernel, &run, F150, Some(&cache))
            .unwrap();
        let direct = SimSummary::from(&platform.execute(&kernel, &run, F150).unwrap());
        assert_eq!(cold, direct);
        assert_eq!(warm, direct);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn persistence_round_trips_through_tsv() {
        let dir = std::env::temp_dir().join(format!("rat-sim-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.tsv");
        let _ = std::fs::remove_file(&path);

        let first = SimCache::new();
        first.persist_at(path.clone());
        first.insert(0xABCD, sample_summary(777));
        first.insert(0x1234, sample_summary(888));
        // Writes are batched now: nothing reaches disk until a flush.
        assert!(!path.exists(), "write-behind must not write per insert");
        first.flush();

        let second = SimCache::new();
        second.persist_at(path.clone());
        assert_eq!(second.lookup(0xABCD), Some(sample_summary(777)));
        assert_eq!(second.lookup(0x1234), Some(sample_summary(888)));

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn drop_flushes_pending_inserts() {
        let dir = std::env::temp_dir().join(format!("rat-sim-cache-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.tsv");
        let _ = std::fs::remove_file(&path);

        {
            let cache = SimCache::new();
            cache.persist_at(path.clone());
            cache.insert(0xFEED, sample_summary(111));
            assert!(!path.exists());
        } // drop flushes

        let reader = SimCache::new();
        reader.persist_at(path.clone());
        assert_eq!(reader.lookup(0xFEED), Some(sample_summary(111)));

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn interval_flush_bounds_write_amplification() {
        let dir = std::env::temp_dir().join(format!("rat-sim-cache-amp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.tsv");
        let _ = std::fs::remove_file(&path);

        let cache = SimCache::new();
        cache.persist_at(path.clone());
        for k in 0..FLUSH_INTERVAL - 1 {
            cache.insert(u128::from(k), sample_summary(k + 1));
        }
        assert!(!path.exists(), "below the interval nothing is written");
        cache.insert(
            u128::from(FLUSH_INTERVAL - 1),
            sample_summary(FLUSH_INTERVAL),
        );
        assert!(
            path.exists(),
            "the interval-th insert triggers the snapshot"
        );
        let rows = std::fs::read_to_string(&path).unwrap();
        assert_eq!(rows.lines().count() as u64, FLUSH_INTERVAL);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn keys_spread_across_shards_and_uncontended_locks_count_nothing() {
        let cache = SimCache::new();
        for k in 0..(SHARD_COUNT as u128 * 4) {
            cache.insert(k, sample_summary(1 + k as u64));
            assert_eq!(cache.lookup(k), Some(sample_summary(1 + k as u64)));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, SHARD_COUNT as u64 * 4);
        assert_eq!(stats.shard_contention, 0, "single-thread never contends");
        // Consecutive digests land in consecutive shards (low-bit mask), so
        // every shard holds exactly 4 of the 64 keys.
        for s in 0..SHARD_COUNT {
            let held = (0..SHARD_COUNT as u128 * 4)
                .filter(|k| super::shard_of(*k) == s)
                .count();
            assert_eq!(held, 4);
        }
    }

    #[test]
    fn sharded_cache_survives_concurrent_hammering() {
        let cache = std::sync::Arc::new(SimCache::new());
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let key = u128::from(t * 1000 + i);
                        cache.insert(key, sample_summary(i + 1));
                        assert_eq!(cache.lookup(key), Some(sample_summary(i + 1)));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(cache.stats().entries, 8 * 200);
        assert_eq!(cache.stats().hits, 8 * 200);
    }

    #[test]
    fn malformed_cache_file_is_ignored() {
        let dir = std::env::temp_dir().join(format!("rat-sim-cache-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.tsv");
        std::fs::write(&path, "not\ta\tcache\n").unwrap();

        let cache = SimCache::new();
        cache.persist_at(path.clone());
        assert_eq!(cache.stats().entries, 0);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn summary_helpers_match_measurement_semantics() {
        let s = SimSummary {
            total: SimTime::from_ns(450),
            comm_busy: SimTime::from_ns(150),
            streamed_comm: SimTime::ZERO,
            compute_busy: SimTime::from_ns(300),
            host_overhead: SimTime::ZERO,
            iterations: 3,
        };
        assert_eq!(s.comm_per_iter(), SimTime::from_ns(50));
        assert_eq!(s.comp_per_iter(), SimTime::from_ns(100));
        assert!((s.channel_utilization() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.compute_utilization() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clear_and_reset() {
        let cache = SimCache::new();
        cache.insert(1, sample_summary(10));
        cache.lookup(1);
        cache.lookup(2);
        cache.reset_stats();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 1));
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }
}
