//! Memoization of platform executions.
//!
//! The analysis engine re-simulates the same `(platform, kernel, workload,
//! clock)` point constantly: a sweep and a sensitivity probe share their
//! baseline, a Monte-Carlo draw can repeat a degenerate range, and
//! `reproduce all` renders several tables off one case-study design. A
//! [`SimCache`] keyed by [`crate::digest::run_key`] makes each distinct run
//! cost one simulation.
//!
//! The cached value is a [`SimSummary`] — the scalar measurements every
//! analysis consumes — not a full [`Measurement`]: the execution
//! [`crate::trace::Trace`] is per-event and only wanted when a caller
//! explicitly asks to see a schedule, which goes through
//! [`crate::platform::Platform::execute`] uncached.
//!
//! By default the cache lives in memory only, so tests stay hermetic and a
//! simulator change can never be masked by stale results on disk. The CLI
//! opts into persistence with [`SimCache::persist_at`] (or the
//! `RAT_SIM_CACHE` environment variable), which snapshots the cache to a TSV
//! file after each insert via an atomic temp-file rename.

use crate::platform::Measurement;
use crate::time::SimTime;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// The scalar results of one platform execution — [`Measurement`] minus the
/// per-event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSummary {
    /// End-to-end execution time (makespan), the paper's measured `t_RC`.
    pub total: SimTime,
    /// Blocking channel occupancy (the paper's "actual" `t_comm`).
    pub comm_busy: SimTime,
    /// Channel occupancy of streamed (compute-overlapped) outputs.
    pub streamed_comm: SimTime,
    /// FPGA kernel occupancy (the paper's "actual" `t_comp`).
    pub compute_busy: SimTime,
    /// Host overhead not attributed to comm or comp.
    pub host_overhead: SimTime,
    /// Iterations executed.
    pub iterations: u64,
}

impl SimSummary {
    /// Mean blocking communication time per iteration.
    pub fn comm_per_iter(&self) -> SimTime {
        SimTime::from_ps(self.comm_busy.as_ps() / self.iterations)
    }

    /// Mean computation time per iteration.
    pub fn comp_per_iter(&self) -> SimTime {
        SimTime::from_ps(self.compute_busy.as_ps() / self.iterations)
    }

    /// Fraction of the makespan the channel was (blockingly) busy.
    pub fn channel_utilization(&self) -> f64 {
        self.comm_busy.as_secs_f64() / self.total.as_secs_f64()
    }

    /// Fraction of the makespan the compute fabric was busy.
    pub fn compute_utilization(&self) -> f64 {
        self.compute_busy.as_secs_f64() / self.total.as_secs_f64()
    }
}

impl From<&Measurement> for SimSummary {
    fn from(m: &Measurement) -> Self {
        SimSummary {
            total: m.total,
            comm_busy: m.comm_busy,
            streamed_comm: m.streamed_comm,
            compute_busy: m.compute_busy,
            host_overhead: m.host_overhead,
            iterations: m.iterations,
        }
    }
}

/// Cache hit/miss counters at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a simulation.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// A concurrent, content-addressed store of simulation results.
pub struct SimCache {
    map: Mutex<HashMap<u128, SimSummary>>,
    hits: AtomicU64,
    misses: AtomicU64,
    enabled: AtomicBool,
    disk: Mutex<Option<PathBuf>>,
}

impl SimCache {
    /// An empty, enabled, in-memory cache.
    pub fn new() -> Self {
        SimCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            disk: Mutex::new(None),
        }
    }

    /// The process-wide cache.
    ///
    /// Honors `RAT_SIM_CACHE` on first access: `off`/`0` disables the cache,
    /// any other non-empty value is a path to persist it at.
    pub fn global() -> &'static SimCache {
        static GLOBAL: OnceLock<SimCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cache = SimCache::new();
            match std::env::var("RAT_SIM_CACHE") {
                Ok(v) if v == "off" || v == "0" => cache.set_enabled(false),
                Ok(v) if !v.is_empty() => cache.persist_at(PathBuf::from(v)),
                _ => {}
            }
            cache
        })
    }

    /// Turn lookups and inserts on or off. Disabling does not drop stored
    /// entries; re-enabling sees them again.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the cache currently answers lookups.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Persist the cache at `path`: load any entries a previous process left
    /// there, and snapshot the full cache back after each insert (atomic
    /// temp-file + rename, so a concurrent reader never sees a torn file).
    /// Unreadable or malformed existing files are ignored — the cache is an
    /// accelerator, never a correctness dependency.
    pub fn persist_at(&self, path: PathBuf) {
        if let Some(loaded) = read_tsv(&path) {
            let mut map = self.map.lock().expect("cache mutex poisoned");
            for (k, v) in loaded {
                map.entry(k).or_insert(v);
            }
        }
        *self.disk.lock().expect("cache mutex poisoned") = Some(path);
    }

    /// Look up a run key, counting the outcome. Disabled caches miss silently
    /// without counting.
    pub fn lookup(&self, key: u128) -> Option<SimSummary> {
        if !self.is_enabled() {
            return None;
        }
        let found = self
            .map
            .lock()
            .expect("cache mutex poisoned")
            .get(&key)
            .copied();
        match found {
            Some(s) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(s)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a result. No-op when disabled.
    pub fn insert(&self, key: u128, summary: SimSummary) {
        if !self.is_enabled() {
            return;
        }
        let snapshot = {
            let mut map = self.map.lock().expect("cache mutex poisoned");
            map.insert(key, summary);
            let disk = self.disk.lock().expect("cache mutex poisoned");
            disk.as_ref().map(|path| {
                let rows: Vec<(u128, SimSummary)> = map.iter().map(|(k, v)| (*k, *v)).collect();
                (path.clone(), rows)
            })
        };
        if let Some((path, rows)) = snapshot {
            // Failure to write is a lost optimization, not an error.
            let _ = write_tsv(&path, &rows);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("cache mutex poisoned").len() as u64,
        }
    }

    /// Zero the hit/miss counters (entries are kept). Lets a caller measure
    /// one analysis pass in isolation.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Drop all stored entries and zero the counters.
    pub fn clear(&self) {
        self.map.lock().expect("cache mutex poisoned").clear();
        self.reset_stats();
    }
}

impl Default for SimCache {
    fn default() -> Self {
        Self::new()
    }
}

// Disk format: one `key_hex \t total \t comm \t streamed \t comp \t host \t
// iters` row per entry, all times in integer picoseconds. Human-greppable and
// trivially versioned by the schema salt already folded into every key.
fn write_tsv(path: &Path, rows: &[(u128, SimSummary)]) -> std::io::Result<()> {
    let mut body = String::with_capacity(rows.len() * 64);
    for (k, s) in rows {
        body.push_str(&format!(
            "{:032x}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            k,
            s.total.as_ps(),
            s.comm_busy.as_ps(),
            s.streamed_comm.as_ps(),
            s.compute_busy.as_ps(),
            s.host_overhead.as_ps(),
            s.iterations,
        ));
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path)
}

fn read_tsv(path: &Path) -> Option<Vec<(u128, SimSummary)>> {
    let body = std::fs::read_to_string(path).ok()?;
    let mut rows = Vec::new();
    for line in body.lines() {
        let mut f = line.split('\t');
        let key = u128::from_str_radix(f.next()?, 16).ok()?;
        let mut ps = || f.next()?.parse::<u64>().ok();
        let summary = SimSummary {
            total: SimTime::from_ps(ps()?),
            comm_busy: SimTime::from_ps(ps()?),
            streamed_comm: SimTime::from_ps(ps()?),
            compute_busy: SimTime::from_ps(ps()?),
            host_overhead: SimTime::from_ps(ps()?),
            iterations: ps()?,
        };
        rows.push((key, summary));
    }
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::digest::run_key;
    use crate::kernel::TabulatedKernel;
    use crate::platform::{AppRun, Platform};
    use rat_core::quantity::Freq;

    const F150: Freq = Freq::from_hz(150.0e6);

    fn sample_run() -> AppRun {
        AppRun::builder()
            .iterations(8)
            .elements_per_iter(512)
            .input_bytes_per_iter(2048)
            .output_bytes_per_iter(1024)
            .build()
    }

    fn sample_summary(ps: u64) -> SimSummary {
        SimSummary {
            total: SimTime::from_ps(ps),
            comm_busy: SimTime::from_ps(ps / 2),
            streamed_comm: SimTime::ZERO,
            compute_busy: SimTime::from_ps(ps / 3),
            host_overhead: SimTime::ZERO,
            iterations: 4,
        }
    }

    #[test]
    fn identical_specs_share_a_key_and_hit() {
        let cache = SimCache::new();
        let kernel = TabulatedKernel::uniform("k", 100, 8);
        let a = run_key(&catalog::nallatech_h101(), &kernel, &sample_run(), F150);
        let b = run_key(&catalog::nallatech_h101(), &kernel, &sample_run(), F150);
        assert_eq!(a, b);

        assert_eq!(cache.lookup(a), None);
        cache.insert(a, sample_summary(1000));
        assert_eq!(cache.lookup(b), Some(sample_summary(1000)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn one_calibration_constant_separates_keys() {
        // Satellite requirement: PCI-X setup latency +1 ns must produce a
        // different key — a stale result for a perturbed platform would
        // silently corrupt every downstream analysis.
        let cache = SimCache::new();
        let kernel = TabulatedKernel::uniform("k", 100, 8);
        let base = catalog::nallatech_h101();
        let mut bumped = catalog::nallatech_h101();
        bumped.interconnect.setup_write += SimTime::from_ns(1);

        let kb = run_key(&base, &kernel, &sample_run(), F150);
        let kp = run_key(&bumped, &kernel, &sample_run(), F150);
        assert_ne!(kb, kp);

        cache.insert(kb, sample_summary(1000));
        assert_eq!(cache.lookup(kp), None, "perturbed platform must miss");
        assert_eq!(cache.lookup(kb), Some(sample_summary(1000)));
    }

    #[test]
    fn disabled_cache_neither_hits_nor_counts() {
        let cache = SimCache::new();
        cache.insert(1, sample_summary(10));
        cache.set_enabled(false);
        assert_eq!(cache.lookup(1), None);
        cache.insert(2, sample_summary(20));
        assert_eq!(cache.stats().hits + cache.stats().misses, 0);
        // Entries survive a disable/enable cycle.
        cache.set_enabled(true);
        assert_eq!(cache.lookup(1), Some(sample_summary(10)));
        assert_eq!(cache.lookup(2), None);
    }

    #[test]
    fn cached_summary_matches_direct_execution() {
        let platform = Platform::new(catalog::nallatech_h101());
        let kernel = TabulatedKernel::uniform("k", 20_000, 8);
        let run = sample_run();
        let cache = SimCache::new();

        let cold = platform
            .execute_summary(&kernel, &run, F150, Some(&cache))
            .unwrap();
        let warm = platform
            .execute_summary(&kernel, &run, F150, Some(&cache))
            .unwrap();
        let direct = SimSummary::from(&platform.execute(&kernel, &run, F150).unwrap());
        assert_eq!(cold, direct);
        assert_eq!(warm, direct);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn persistence_round_trips_through_tsv() {
        let dir = std::env::temp_dir().join(format!("rat-sim-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.tsv");
        let _ = std::fs::remove_file(&path);

        let first = SimCache::new();
        first.persist_at(path.clone());
        first.insert(0xABCD, sample_summary(777));
        first.insert(0x1234, sample_summary(888));

        let second = SimCache::new();
        second.persist_at(path.clone());
        assert_eq!(second.lookup(0xABCD), Some(sample_summary(777)));
        assert_eq!(second.lookup(0x1234), Some(sample_summary(888)));

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn malformed_cache_file_is_ignored() {
        let dir = std::env::temp_dir().join(format!("rat-sim-cache-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.tsv");
        std::fs::write(&path, "not\ta\tcache\n").unwrap();

        let cache = SimCache::new();
        cache.persist_at(path.clone());
        assert_eq!(cache.stats().entries, 0);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn summary_helpers_match_measurement_semantics() {
        let s = SimSummary {
            total: SimTime::from_ns(450),
            comm_busy: SimTime::from_ns(150),
            streamed_comm: SimTime::ZERO,
            compute_busy: SimTime::from_ns(300),
            host_overhead: SimTime::ZERO,
            iterations: 3,
        };
        assert_eq!(s.comm_per_iter(), SimTime::from_ns(50));
        assert_eq!(s.comp_per_iter(), SimTime::from_ns(100));
        assert!((s.channel_utilization() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.compute_utilization() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clear_and_reset() {
        let cache = SimCache::new();
        cache.insert(1, sample_summary(10));
        cache.lookup(1);
        cache.lookup(2);
        cache.reset_stats();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 1));
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }
}
