//! CPU–FPGA interconnect models.
//!
//! A transfer of `n` bytes costs `setup_latency + n / (efficiency(n) · ideal_bw)`.
//! The *efficiency curve* captures what a documented peak bandwidth never tells
//! you: protocol framing, DMA descriptor overheads, driver bounce-buffer limits.
//! The paper derives its `alpha` parameters by microbenchmarking one transfer
//! size; [`crate::microbench`] reproduces that procedure against these models —
//! including the failure mode where the probed size is unrepresentative
//! (the 2-D PDF case study's 6x communication underestimate).

use crate::time::SimTime;
use rat_core::quantity::{Bytes, Seconds, Throughput};
use rat_core::throughput::transfer_seconds;
use serde::{Deserialize, Serialize};

/// Transfer direction, named from the host's perspective (matching the paper:
/// "write" moves input data host→FPGA, "read" returns results FPGA→host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Host → FPGA (input data).
    Write,
    /// FPGA → host (results).
    Read,
}

/// Piecewise-linear sustained-efficiency curve over transfer size.
///
/// Points are `(payload_bytes, efficiency)` with `0 < efficiency <= 1`; sizes
/// between points interpolate linearly in `log2(size)`, sizes outside the table
/// clamp to the nearest endpoint. Curves need not be monotone — real driver
/// stacks have cliffs (e.g. when a transfer exceeds a pinned bounce buffer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlphaCurve {
    points: Vec<(u64, f64)>,
}

impl AlphaCurve {
    /// A size-independent efficiency.
    pub fn flat(efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1], got {efficiency}"
        );
        Self {
            points: vec![(1, efficiency)],
        }
    }

    /// Build from `(payload_bytes, efficiency)` breakpoints.
    ///
    /// Panics if empty, not strictly increasing in size, or with any efficiency
    /// outside `(0, 1]`.
    pub fn from_points(points: Vec<(u64, f64)>) -> Self {
        assert!(!points.is_empty(), "AlphaCurve needs at least one point");
        for w in points.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "AlphaCurve sizes must be strictly increasing"
            );
        }
        for &(size, eff) in &points {
            assert!(size > 0, "AlphaCurve sizes must be positive");
            assert!(
                eff > 0.0 && eff <= 1.0,
                "efficiency must be in (0, 1], got {eff}"
            );
        }
        Self { points }
    }

    /// The `(payload_bytes, efficiency)` breakpoints defining this curve.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Sustained efficiency for a transfer of `bytes`.
    pub fn efficiency(&self, bytes: u64) -> f64 {
        let bytes = bytes.max(1);
        let first = self.points[0];
        let last = *self.points.last().expect("non-empty by construction");
        if bytes <= first.0 {
            return first.1;
        }
        if bytes >= last.0 {
            return last.1;
        }
        // Find the bracketing pair and interpolate in log2(size).
        for w in self.points.windows(2) {
            let (s0, e0) = w[0];
            let (s1, e1) = w[1];
            if bytes >= s0 && bytes <= s1 {
                let x = ((bytes as f64).log2() - (s0 as f64).log2())
                    / ((s1 as f64).log2() - (s0 as f64).log2());
                return e0 + x * (e1 - e0);
            }
        }
        unreachable!("bytes within table range must bracket")
    }
}

/// A CPU–FPGA interconnect: peak bandwidth, per-transfer setup latency, and
/// direction-specific efficiency curves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Interconnect {
    /// Human-readable name (e.g. "133MHz 64-bit PCI-X").
    pub name: String,
    /// Documented peak bandwidth (the paper's `throughput_ideal`).
    pub ideal_bw: Throughput,
    /// Fixed cost to start a host→FPGA transfer (DMA descriptor setup, doorbell).
    pub setup_write: SimTime,
    /// Fixed cost to start an FPGA→host transfer.
    pub setup_read: SimTime,
    /// Sustained-efficiency curve for host→FPGA payload movement.
    pub alpha_write: AlphaCurve,
    /// Sustained-efficiency curve for FPGA→host payload movement.
    pub alpha_read: AlphaCurve,
    /// Largest single DMA the driver programs. Payloads beyond this split into
    /// chunks, each paying the setup latency — the mechanism behind many real
    /// drivers' large-transfer throughput plateaus. `None` disables splitting.
    #[serde(default)]
    pub max_dma_bytes: Option<u64>,
}

impl Interconnect {
    /// Time for one transfer of `bytes` in `dir`: setup latency plus payload time
    /// at the sustained rate for that size, chunked by [`Self::max_dma_bytes`].
    /// Zero-byte transfers take zero time.
    pub fn transfer_time(&self, bytes: u64, dir: Direction) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        let (setup, curve) = match dir {
            Direction::Write => (self.setup_write, &self.alpha_write),
            Direction::Read => (self.setup_read, &self.alpha_read),
        };
        // All payload durations flow through the shared Eq. (1)–(3) kernel in
        // `rat_core::throughput` — the analytic model and this simulator can
        // never disagree on what a byte costs on the wire.
        let payload = |n: u64| transfer_seconds(Bytes::new(n), curve.efficiency(n), self.ideal_bw);
        match self.max_dma_bytes {
            Some(max) if bytes > max => {
                assert!(max > 0, "max_dma_bytes must be positive");
                let full_chunks = bytes / max;
                let tail = bytes % max;
                let mut total = SimTime::from_seconds(payload(max) * full_chunks as f64);
                for _ in 0..full_chunks {
                    total += setup;
                }
                if tail > 0 {
                    total += setup + SimTime::from_seconds(payload(tail));
                }
                total
            }
            _ => setup + SimTime::from_seconds(payload(bytes)),
        }
    }

    /// Effective end-to-end bandwidth for a transfer of `bytes`, setup latency
    /// included. This is what a microbenchmark observes.
    pub fn effective_bandwidth(&self, bytes: u64, dir: Direction) -> Throughput {
        let t = self.transfer_time(bytes, dir).as_seconds();
        if t == Seconds::ZERO {
            Throughput::from_bytes_per_sec(0.0)
        } else {
            Bytes::new(bytes) / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_bus() -> Interconnect {
        Interconnect {
            name: "test".into(),
            ideal_bw: Throughput::from_bytes_per_sec(1.0e9),
            setup_write: SimTime::from_us(2),
            setup_read: SimTime::from_us(10),
            alpha_write: AlphaCurve::flat(0.8),
            alpha_read: AlphaCurve::flat(0.8),
            max_dma_bytes: None,
        }
    }

    #[test]
    fn flat_curve_is_size_independent() {
        let c = AlphaCurve::flat(0.5);
        assert_eq!(c.efficiency(1), 0.5);
        assert_eq!(c.efficiency(1 << 30), 0.5);
    }

    #[test]
    fn curve_interpolates_in_log_size() {
        let c = AlphaCurve::from_points(vec![(1024, 0.2), (4096, 0.6)]);
        assert_eq!(c.efficiency(1024), 0.2);
        assert_eq!(c.efficiency(4096), 0.6);
        // 2048 is the log-midpoint of 1024..4096.
        assert!((c.efficiency(2048) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn curve_clamps_outside_table() {
        let c = AlphaCurve::from_points(vec![(1024, 0.2), (4096, 0.6)]);
        assert_eq!(c.efficiency(1), 0.2);
        assert_eq!(c.efficiency(1 << 20), 0.6);
    }

    #[test]
    fn non_monotone_curves_allowed() {
        // Bounce-buffer cliff: efficiency collapses for large transfers.
        let c = AlphaCurve::from_points(vec![(2048, 0.16), (16384, 0.35), (262144, 0.027)]);
        assert!(c.efficiency(16384) > c.efficiency(2048));
        assert!(c.efficiency(262144) < c.efficiency(2048));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_points_panic() {
        AlphaCurve::from_points(vec![(4096, 0.5), (1024, 0.2)]);
    }

    #[test]
    #[should_panic(expected = "in (0, 1]")]
    fn zero_efficiency_panics() {
        AlphaCurve::flat(0.0);
    }

    #[test]
    fn transfer_time_includes_setup() {
        let bus = test_bus();
        // 8000 bytes at 0.8 * 1 GB/s = 10 us payload + 2 us setup.
        let t = bus.transfer_time(8000, Direction::Write);
        assert_eq!(t, SimTime::from_us(12));
    }

    #[test]
    fn zero_bytes_is_free() {
        let bus = test_bus();
        assert_eq!(bus.transfer_time(0, Direction::Read), SimTime::ZERO);
    }

    #[test]
    fn setup_dominates_small_reads() {
        let bus = test_bus();
        let t = bus.transfer_time(4, Direction::Read);
        // 4 bytes payload is ~5 ns; setup is 10 us.
        assert!(t > SimTime::from_us(10));
        assert!(t < SimTime::from_us(11));
    }

    #[test]
    fn dma_chunking_pays_setup_per_chunk() {
        let mut bus = test_bus();
        bus.max_dma_bytes = Some(4000);
        // 12,000 bytes = 3 full chunks: 3 setups (2 us each) + 15 us payload.
        let t = bus.transfer_time(12_000, Direction::Write);
        assert_eq!(t, SimTime::from_us(3 * 2 + 15));
        // With a tail: 10,000 bytes = 2 full + 2000 tail = 3 setups (6 us)
        // + 12.5 us payload = 18.5 us.
        let t = bus.transfer_time(10_000, Direction::Write);
        assert_eq!(t, SimTime::from_ps(18_500_000));
    }

    #[test]
    fn chunking_never_speeds_a_transfer_up() {
        let mut chunked = test_bus();
        chunked.max_dma_bytes = Some(4096);
        let whole = test_bus();
        for bytes in [100u64, 4096, 5000, 100_000, 1 << 20] {
            let tc = chunked.transfer_time(bytes, Direction::Read);
            let tw = whole.transfer_time(bytes, Direction::Read);
            assert!(tc >= tw, "{bytes} bytes: chunked {tc} < whole {tw}");
        }
    }

    #[test]
    fn transfers_within_the_dma_limit_are_unaffected() {
        let mut bus = test_bus();
        bus.max_dma_bytes = Some(8192);
        let whole = test_bus();
        assert_eq!(
            bus.transfer_time(8192, Direction::Write),
            whole.transfer_time(8192, Direction::Write)
        );
    }

    #[test]
    fn effective_bandwidth_below_ideal_and_grows_with_size() {
        let bus = test_bus();
        let small = bus.effective_bandwidth(2048, Direction::Write);
        let large = bus.effective_bandwidth(1 << 22, Direction::Write);
        assert!(small < large);
        assert!(large < bus.ideal_bw);
        // Large transfers approach the sustained (alpha-limited) rate.
        assert!(large.bytes_per_sec() > 0.79e9);
    }
}
