//! Content hashing of simulation run specifications.
//!
//! The analysis engine memoizes platform executions: two runs with the same
//! platform spec, kernel spec, workload, and clock are the same simulation and
//! must return the same [`crate::platform::Measurement`] summary. The cache
//! key is therefore a *content* digest over every input that influences the
//! schedule — not an object identity — so equal specs built independently
//! (e.g. two `catalog::nallatech_h101()` calls) collide on purpose, and a
//! one-picosecond change to a calibration constant separates them.
//!
//! The digest is 128-bit FNV-1a. It is not cryptographic; it only needs to
//! make accidental collisions between the handful of distinct run specs a
//! workspace ever simulates astronomically unlikely, while staying
//! dependency-free and byte-stable across platforms and runs.

use crate::host::HostModel;
use crate::interconnect::{AlphaCurve, Interconnect};
use crate::kernel::HardwareKernel;
use crate::platform::{AppRun, BufferMode, PlatformSpec};
use crate::time::SimTime;
use rat_core::quantity::Freq;

/// Version tag folded into every run key. Bump when the simulator's semantics
/// change in a way that invalidates previously cached measurements.
const SCHEMA: &str = "fpga-sim-run-v1";

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Incremental 128-bit FNV-1a hasher over spec content.
///
/// Field writes are framed (length-prefixed for variable-size data, tagged for
/// enums) so that adjacent fields cannot alias: `("ab", "c")` and
/// `("a", "bc")` digest differently.
#[derive(Debug, Clone)]
pub struct SpecDigest {
    state: u128,
}

impl SpecDigest {
    /// A fresh hasher seeded with the schema version.
    pub fn new() -> Self {
        let mut d = SpecDigest { state: FNV_OFFSET };
        d.write_str(SCHEMA);
        d
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb an `f64` by bit pattern (so `-0.0` and `0.0` differ, and NaN
    /// payloads are preserved — bit-identity is the contract).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a string, length-framed.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Absorb a small enum discriminant.
    pub fn write_tag(&mut self, tag: u8) {
        self.write_bytes(&[tag]);
    }

    /// The accumulated digest.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for SpecDigest {
    fn default() -> Self {
        Self::new()
    }
}

/// Types whose content participates in a run key.
pub trait Digestible {
    /// Absorb this value's content into `d`.
    fn digest_into(&self, d: &mut SpecDigest);
}

impl Digestible for SimTime {
    fn digest_into(&self, d: &mut SpecDigest) {
        d.write_u64(self.as_ps());
    }
}

impl Digestible for AlphaCurve {
    fn digest_into(&self, d: &mut SpecDigest) {
        let points = self.points();
        d.write_u64(points.len() as u64);
        for &(size, eff) in points {
            d.write_u64(size);
            d.write_f64(eff);
        }
    }
}

impl Digestible for Interconnect {
    fn digest_into(&self, d: &mut SpecDigest) {
        d.write_str(&self.name);
        // Digested as the raw bytes/second bit pattern — the same bits the
        // pre-typed field held, so existing persisted cache keys stay valid.
        d.write_f64(self.ideal_bw.bytes_per_sec());
        self.setup_write.digest_into(d);
        self.setup_read.digest_into(d);
        self.alpha_write.digest_into(d);
        self.alpha_read.digest_into(d);
        match self.max_dma_bytes {
            None => d.write_tag(0),
            Some(max) => {
                d.write_tag(1);
                d.write_u64(max);
            }
        }
    }
}

impl Digestible for HostModel {
    fn digest_into(&self, d: &mut SpecDigest) {
        self.api_call_overhead.digest_into(d);
        self.kernel_sync_overhead.digest_into(d);
    }
}

impl Digestible for PlatformSpec {
    fn digest_into(&self, d: &mut SpecDigest) {
        d.write_str(&self.name);
        self.interconnect.digest_into(d);
        self.host.digest_into(d);
        self.reconfiguration.digest_into(d);
    }
}

impl Digestible for BufferMode {
    fn digest_into(&self, d: &mut SpecDigest) {
        d.write_tag(match self {
            BufferMode::Single => 0,
            BufferMode::Double => 1,
        });
    }
}

impl Digestible for AppRun {
    fn digest_into(&self, d: &mut SpecDigest) {
        d.write_u64(self.iterations);
        d.write_u64(self.elements_per_iter);
        d.write_u64(self.input_bytes_per_iter);
        d.write_u64(self.output_bytes_per_iter);
        d.write_u64(self.final_output_bytes);
        self.buffer_mode.digest_into(d);
        d.write_tag(u8::from(self.streamed_output));
        d.write_u64(u64::from(self.parallel_kernels));
    }
}

/// The memoization key for one platform execution: platform spec + kernel
/// spec + workload + clock, under the current schema-version salt.
pub fn run_key<K: HardwareKernel + ?Sized>(
    spec: &PlatformSpec,
    kernel: &K,
    run: &AppRun,
    fclock: Freq,
) -> u128 {
    let mut d = SpecDigest::new();
    spec.digest_into(&mut d);
    let kd = kernel.spec_digest();
    d.write_u64(kd as u64);
    d.write_u64((kd >> 64) as u64);
    run.digest_into(&mut d);
    d.write_f64(fclock.hz());
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::kernel::TabulatedKernel;

    const F150: Freq = Freq::from_hz(150.0e6);
    const F100: Freq = Freq::from_hz(100.0e6);

    fn run() -> AppRun {
        AppRun::builder()
            .iterations(4)
            .elements_per_iter(512)
            .input_bytes_per_iter(2048)
            .output_bytes_per_iter(1024)
            .build()
    }

    #[test]
    fn equal_content_equal_key() {
        let k = TabulatedKernel::uniform("k", 100, 4);
        let a = run_key(&catalog::nallatech_h101(), &k, &run(), F150);
        let b = run_key(&catalog::nallatech_h101(), &k, &run(), F150);
        assert_eq!(a, b, "independently built equal specs must collide");
    }

    #[test]
    fn every_field_separates_keys() {
        let k = TabulatedKernel::uniform("k", 100, 4);
        let base = run_key(&catalog::nallatech_h101(), &k, &run(), F150);

        // Platform calibration constant.
        let mut spec = catalog::nallatech_h101();
        spec.interconnect.setup_write += SimTime::from_ps(1);
        assert_ne!(run_key(&spec, &k, &run(), F150), base);

        // Kernel spec.
        let k2 = TabulatedKernel::uniform("k", 101, 4);
        assert_ne!(run_key(&catalog::nallatech_h101(), &k2, &run(), F150), base);

        // Workload.
        let mut r = run();
        r.iterations = 5;
        assert_ne!(run_key(&catalog::nallatech_h101(), &k, &r, F150), base);

        // Clock.
        assert_ne!(run_key(&catalog::nallatech_h101(), &k, &run(), F100), base);
    }

    #[test]
    fn framing_prevents_field_aliasing() {
        let mut a = SpecDigest::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = SpecDigest::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn platforms_in_catalog_are_distinct() {
        let k = TabulatedKernel::uniform("k", 100, 4);
        let keys: Vec<u128> = [
            catalog::nallatech_h101(),
            catalog::xd1000(),
            catalog::generic_pcie_gen2_x8(),
        ]
        .iter()
        .map(|p| run_key(p, &k, &run(), F100))
        .collect();
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[1], keys[2]);
        assert_ne!(keys[0], keys[2]);
    }
}
