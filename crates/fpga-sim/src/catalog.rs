//! Platform catalog: the two systems the paper evaluates, plus a generic
//! modern profile.
//!
//! The constants here are *calibrated* against the paper's published
//! measurements, then frozen (see DESIGN.md §5). The calibration inputs:
//!
//! - **Nallatech H101-PCIXM** (§4.2): a 2 KB microbenchmark yields
//!   `alpha_write = 0.37`, `alpha_read = 0.16` against the 1 GB/s PCI-X peak.
//!   The measured 1-D PDF application saw ~25 us of communication per
//!   iteration (vs 5.56 us predicted) from per-transfer setup plus API-call
//!   overhead over 800 small transfers, and its total runtime implies ~21 us
//!   of kernel-synchronization overhead per iteration. The 2-D PDF saw its
//!   256 KB result read-backs run ~6x slower than the 2 KB-derived alpha
//!   predicts — modelled as a read-efficiency cliff beyond the driver's
//!   pinned-buffer size ("communication protocols used by Nallatech atop
//!   PCI-X", §4.2).
//! - **XtremeData XD1000** (§5.2): HyperTransport with low per-transfer cost;
//!   the paper's round `alpha = 0.9` estimate sits slightly above the 0.85
//!   the measured MD input transfer implies at 576 KB.

use crate::host::HostModel;
use crate::interconnect::{AlphaCurve, Interconnect};
use crate::platform::PlatformSpec;
use crate::time::SimTime;
use rat_core::quantity::Throughput;

/// Nallatech H101-PCIXM card (Xilinx Virtex-4 LX100) on 133 MHz 64-bit PCI-X:
/// the platform of the 1-D and 2-D PDF case studies.
pub fn nallatech_h101() -> PlatformSpec {
    PlatformSpec {
        name: "Nallatech H101-PCIXM (Virtex-4 LX100, 133MHz PCI-X)".into(),
        interconnect: Interconnect {
            name: "133MHz 64-bit PCI-X via Nallatech API".into(),
            ideal_bw: Throughput::from_bytes_per_sec(1.0e9),
            setup_write: SimTime::from_ns(3_000),
            setup_read: SimTime::from_ns(10_000),
            // Payload efficiency (excludes setup). Write path sustains ~0.81.
            alpha_write: AlphaCurve::from_points(vec![
                (512, 0.78),
                (2_048, 0.808),
                (65_536, 0.82),
                (4_194_304, 0.82),
            ]),
            // Read path: decent for small DMAs, collapses past the driver's
            // pinned bounce buffer (~16 KB) to ~26 MB/s sustained.
            alpha_read: AlphaCurve::from_points(vec![
                (512, 0.55),
                (2_048, 0.731),
                (16_384, 0.62),
                (65_536, 0.10),
                (262_144, 0.0265),
                (4_194_304, 0.0265),
            ]),
            max_dma_bytes: None,
        },
        host: HostModel {
            api_call_overhead: SimTime::from_ns(4_000),
            kernel_sync_overhead: SimTime::from_ns(21_000),
        },
        reconfiguration: SimTime::ZERO,
    }
}

/// XtremeData XD1000 (Altera Stratix-II EP2S180) on HyperTransport: the
/// platform of the molecular-dynamics case study.
pub fn xd1000() -> PlatformSpec {
    PlatformSpec {
        name: "XtremeData XD1000 (Stratix-II EP2S180, HyperTransport)".into(),
        interconnect: Interconnect {
            name: "HyperTransport (Opteron socket)".into(),
            ideal_bw: Throughput::from_bytes_per_sec(500.0e6),
            setup_write: SimTime::from_ns(1_000),
            setup_read: SimTime::from_ns(1_000),
            alpha_write: AlphaCurve::from_points(vec![
                (4_096, 0.92),
                (65_536, 0.90),
                (589_824, 0.855),
                (4_194_304, 0.855),
            ]),
            alpha_read: AlphaCurve::from_points(vec![
                (4_096, 0.92),
                (65_536, 0.90),
                (589_824, 0.855),
                (4_194_304, 0.855),
            ]),
            max_dma_bytes: None,
        },
        host: HostModel {
            api_call_overhead: SimTime::from_ns(1_000),
            kernel_sync_overhead: SimTime::from_ns(5_000),
        },
        reconfiguration: SimTime::ZERO,
    }
}

/// A generic PCIe Gen2 x8 profile (4 GB/s peak) for design-space studies beyond
/// the paper's 2007-era hardware.
pub fn generic_pcie_gen2_x8() -> PlatformSpec {
    PlatformSpec {
        name: "Generic PCIe Gen2 x8 FPGA card".into(),
        interconnect: Interconnect {
            name: "PCIe Gen2 x8".into(),
            ideal_bw: Throughput::from_bytes_per_sec(4.0e9),
            setup_write: SimTime::from_ns(1_500),
            setup_read: SimTime::from_ns(1_500),
            alpha_write: AlphaCurve::from_points(vec![
                (512, 0.60),
                (4_096, 0.78),
                (65_536, 0.85),
                (4_194_304, 0.87),
            ]),
            alpha_read: AlphaCurve::from_points(vec![
                (512, 0.55),
                (4_096, 0.75),
                (65_536, 0.84),
                (4_194_304, 0.86),
            ]),
            // Typical driver scatter-gather limit: transfers split at 4 MiB.
            max_dma_bytes: Some(4 << 20),
        },
        host: HostModel {
            api_call_overhead: SimTime::from_ns(1_500),
            kernel_sync_overhead: SimTime::from_ns(6_000),
        },
        reconfiguration: SimTime::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::Direction;

    #[test]
    fn nallatech_2kb_write_matches_measured_alpha() {
        let ic = nallatech_h101().interconnect;
        // Documented microbenchmark result: 2048 B write at alpha 0.37 of
        // 1 GB/s = 5.54 us end to end.
        let t = ic.transfer_time(2048, Direction::Write).as_secs_f64();
        assert!(
            (t - 5.54e-6).abs() / 5.54e-6 < 0.02,
            "write time {t:.3e} not ~5.54 us"
        );
    }

    #[test]
    fn nallatech_2kb_read_matches_measured_alpha() {
        let ic = nallatech_h101().interconnect;
        let t = ic.transfer_time(2048, Direction::Read).as_secs_f64();
        assert!(
            (t - 12.8e-6).abs() / 12.8e-6 < 0.02,
            "read time {t:.3e} not ~12.8 us"
        );
    }

    #[test]
    fn nallatech_256kb_read_is_about_six_times_the_alpha_model() {
        let ic = nallatech_h101().interconnect;
        let t = ic.transfer_time(262_144, Direction::Read).as_secs_f64();
        let alpha_model = 262_144.0 / (0.16 * 1.0e9); // what RAT predicts from the 2 KB alpha
        let ratio = t / alpha_model;
        assert!(
            (5.0..7.0).contains(&ratio),
            "256 KB read ratio {ratio:.2} not ~6x"
        );
    }

    #[test]
    fn xd1000_md_input_transfer_near_paper_measurement() {
        let ic = xd1000().interconnect;
        // Table 9 actual: 1.39e-3 s for the 16384-molecule, 36 B/elt input.
        let t = ic
            .transfer_time(16_384 * 36, Direction::Write)
            .as_secs_f64();
        assert!(
            (t - 1.39e-3).abs() / 1.39e-3 < 0.02,
            "MD input transfer {t:.3e} not ~1.39 ms"
        );
    }

    #[test]
    fn platform_names_are_descriptive() {
        assert!(nallatech_h101().name.contains("LX100"));
        assert!(xd1000().name.contains("EP2S180"));
        assert!(generic_pcie_gen2_x8().name.contains("PCIe"));
    }

    #[test]
    fn generic_pcie_is_faster_than_2007_buses() {
        let pcie = generic_pcie_gen2_x8().interconnect;
        let pcix = nallatech_h101().interconnect;
        let size = 1 << 20;
        assert!(
            pcie.transfer_time(size, Direction::Write) < pcix.transfer_time(size, Direction::Write)
        );
    }
}
