//! Host-side overhead model.
//!
//! The RAT equations model only bus time and FPGA cycles. Real co-processor
//! loops also pay host costs the analytical model ignores: each vendor-API
//! transfer call crosses the driver, and each kernel invocation writes control
//! registers and then discovers completion with some latency (interrupt or
//! polling quantization). These costs are what pushed the measured 1-D PDF
//! execution time past even its measured communication + computation sum
//! (Table 3: 7.45e-2 s total vs 400 x (2.50e-5 + 1.39e-4) = 6.56e-2 s).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Host overheads charged by the platform simulator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HostModel {
    /// Cost of one vendor-API transfer call (driver entry, descriptor build),
    /// charged per transfer *in application loops*. Microbenchmarks time the
    /// bus transfer itself (timers around the DMA), so this cost is invisible
    /// to the alpha-derivation procedure — one of the reasons app communication
    /// exceeds microbenchmark-based predictions.
    pub api_call_overhead: SimTime,
    /// Cost of launching a kernel and detecting its completion (control-register
    /// writes + interrupt latency or polling quantization), charged per
    /// compute invocation.
    pub kernel_sync_overhead: SimTime,
}

impl HostModel {
    /// A host with no overheads (useful for isolating bus/kernel behaviour).
    pub const IDEAL: HostModel = HostModel {
        api_call_overhead: SimTime::ZERO,
        kernel_sync_overhead: SimTime::ZERO,
    };
}

impl Default for HostModel {
    fn default() -> Self {
        Self::IDEAL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_host_is_free() {
        assert_eq!(HostModel::IDEAL.api_call_overhead, SimTime::ZERO);
        assert_eq!(HostModel::IDEAL.kernel_sync_overhead, SimTime::ZERO);
        assert_eq!(HostModel::default().api_call_overhead, SimTime::ZERO);
    }
}
