//! The co-processor platform: host + interconnect + FPGA, executing an
//! application run under single- or double-buffered scheduling.
//!
//! This is a discrete-event simulation over two exclusive resources — the
//! interconnect channel and the compute fabric — plus host overheads that
//! serialize the control loop. Single buffering reproduces the paper's
//! Figure-2 `R1 C1 W1 R2 C2 W2 …` schedule; double buffering provides two
//! input buffers so transfers overlap computation, reproducing both the
//! compute-bound and communication-bound overlap scenarios.
//!
//! Buffered schedules settle into a short repeating period, so trace-free
//! runs (the analysis hot path) do not need to simulate every iteration:
//! once the same relative resource state recurs, the simulator advances
//! whole periods arithmetically and only plays out the warm-up and the
//! drain event by event ([`FastForward`]). The skipped region is provably
//! identical to what event simulation would produce, so every scalar result
//! is bit-identical to the exhaustive path.

use crate::cache::SimSummary;
use crate::host::HostModel;
use crate::interconnect::{Direction, Interconnect};
use crate::kernel::{Batch, HardwareKernel};
use crate::queue::EventQueue;
use crate::time::SimTime;
use crate::trace::{FullTrace, NullSink, Resource, Trace, TraceSink};
use rat_core::quantity::Freq;
use rat_core::telemetry::{self, ArgValue, Metric};
use rat_core::RatError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Buffering discipline for the input side of the co-processor loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BufferMode {
    /// One buffer: communication and computation fully serialize
    /// (paper Eq. 5: `t_RC = N_iter * (t_comm + t_comp)`).
    Single,
    /// Two buffers: the next input transfer overlaps the current computation
    /// (paper Eq. 6: `t_RC ~= N_iter * max(t_comm, t_comp)` at steady state).
    Double,
}

/// A platform definition: its interconnect and host-overhead model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Human-readable platform name (e.g. "Nallatech H101-PCIXM / V4 LX100").
    pub name: String,
    /// The CPU–FPGA interconnect.
    pub interconnect: Interconnect,
    /// Host-side overheads.
    pub host: HostModel,
    /// One-time FPGA configuration (bitstream load) cost, charged before the
    /// first transfer. The RAT equations ignore it by design
    /// ("Reconfiguration and other setup times are ignored", §3.1); modeling
    /// it here lets the simulator show *when that assumption breaks* — short
    /// runs on platforms with ~100 ms configuration times.
    #[serde(default)]
    pub reconfiguration: SimTime,
}

/// One application execution: how much data moves per iteration and how the
/// loop is buffered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRun {
    /// Number of communication+computation iterations (`N_iter`).
    pub iterations: u64,
    /// Elements per buffered batch (drives kernel cycle counts).
    pub elements_per_iter: u64,
    /// Bytes written host→FPGA per iteration.
    pub input_bytes_per_iter: u64,
    /// Bytes read FPGA→host per iteration (0 if results accumulate on-chip).
    pub output_bytes_per_iter: u64,
    /// Bytes read once after the last iteration (e.g. the 1-D PDF's final
    /// 256-bin block).
    pub final_output_bytes: u64,
    /// Buffering discipline.
    pub buffer_mode: BufferMode,
    /// If true, per-iteration output streams back *during* computation (DMA
    /// bursts interleaved with compute), hiding its latency. The streamed
    /// occupancy is recorded in the trace but does not block other transfers —
    /// an approximation valid while streamed traffic is far below channel
    /// capacity, as in the MD case study.
    pub streamed_output: bool,
    /// Number of parallel kernel instances batches may be dispatched to:
    /// replicated kernels on one FPGA, or multiple FPGAs sharing the host
    /// interconnect (the paper's §6 future-work scenario). The channel remains
    /// a single serialized resource; under double buffering, input buffering
    /// scales to `parallel_kernels + 1` so every instance can stay fed.
    pub parallel_kernels: u32,
}

impl AppRun {
    /// Start building an [`AppRun`].
    pub fn builder() -> AppRunBuilder {
        AppRunBuilder::default()
    }

    /// Upper bound on simultaneously pending scheduler events: one in-flight
    /// channel transfer, one compute-or-sync completion per kernel instance,
    /// and the one-time reconfiguration event. Lets the event queue allocate
    /// its storage once ([`crate::queue::EventQueue::with_capacity`]).
    pub fn peak_pending_events(&self) -> usize {
        self.parallel_kernels as usize + 2
    }
}

/// Builder for [`AppRun`].
#[derive(Debug, Clone)]
pub struct AppRunBuilder {
    run: AppRun,
}

impl Default for AppRunBuilder {
    fn default() -> Self {
        Self {
            run: AppRun {
                iterations: 1,
                elements_per_iter: 1,
                input_bytes_per_iter: 0,
                output_bytes_per_iter: 0,
                final_output_bytes: 0,
                buffer_mode: BufferMode::Single,
                streamed_output: false,
                parallel_kernels: 1,
            },
        }
    }
}

impl AppRunBuilder {
    /// Set the number of iterations (`N_iter`). Must be at least 1.
    pub fn iterations(mut self, n: u64) -> Self {
        self.run.iterations = n;
        self
    }

    /// Set elements per batch.
    pub fn elements_per_iter(mut self, n: u64) -> Self {
        self.run.elements_per_iter = n;
        self
    }

    /// Set bytes written host→FPGA per iteration.
    pub fn input_bytes_per_iter(mut self, n: u64) -> Self {
        self.run.input_bytes_per_iter = n;
        self
    }

    /// Set bytes read FPGA→host per iteration.
    pub fn output_bytes_per_iter(mut self, n: u64) -> Self {
        self.run.output_bytes_per_iter = n;
        self
    }

    /// Set bytes read once after the final iteration.
    pub fn final_output_bytes(mut self, n: u64) -> Self {
        self.run.final_output_bytes = n;
        self
    }

    /// Set the buffering discipline.
    pub fn buffer_mode(mut self, mode: BufferMode) -> Self {
        self.run.buffer_mode = mode;
        self
    }

    /// Enable streamed (compute-overlapped) output.
    pub fn streamed_output(mut self, on: bool) -> Self {
        self.run.streamed_output = on;
        self
    }

    /// Set the number of parallel kernel instances (default 1).
    pub fn parallel_kernels(mut self, n: u32) -> Self {
        self.run.parallel_kernels = n;
        self
    }

    /// Finish building.
    pub fn build(self) -> AppRun {
        self.run
    }
}

/// Execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// `iterations` was zero.
    NoIterations,
    /// The clock frequency was not a positive finite number.
    BadClock,
    /// `parallel_kernels` was zero.
    NoKernels,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NoIterations => write!(f, "application run needs at least one iteration"),
            ExecError::BadClock => write!(f, "clock frequency must be positive and finite"),
            ExecError::NoKernels => write!(f, "application run needs at least one kernel instance"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ExecError> for RatError {
    fn from(e: ExecError) -> Self {
        RatError::simulation(e.to_string())
    }
}

/// What the simulated platform measured.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// End-to-end execution time (makespan), the paper's measured `t_RC`.
    pub total: SimTime,
    /// Blocking channel occupancy: input transfers, non-streamed output
    /// transfers, and the final read, including host API call overhead. This is
    /// what timing the transfer calls measures — the paper's "actual" `t_comm`.
    pub comm_busy: SimTime,
    /// Channel occupancy of streamed (compute-overlapped) outputs.
    pub streamed_comm: SimTime,
    /// FPGA kernel occupancy — the paper's "actual" `t_comp`.
    pub compute_busy: SimTime,
    /// Host kernel-synchronization time not attributed to comm or comp.
    pub host_overhead: SimTime,
    /// Iterations executed.
    pub iterations: u64,
    /// Full execution trace.
    pub trace: Trace,
}

impl Measurement {
    /// Mean blocking communication time per iteration (final read excluded
    /// proportionally — it is amortized into the mean, matching how the paper
    /// folds the 1-D PDF's single final read into per-iteration figures).
    pub fn comm_per_iter(&self) -> SimTime {
        SimTime::from_ps(self.comm_busy.as_ps() / self.iterations)
    }

    /// Mean computation time per iteration.
    pub fn comp_per_iter(&self) -> SimTime {
        SimTime::from_ps(self.compute_busy.as_ps() / self.iterations)
    }

    /// Fraction of the makespan the channel was (blockingly) busy.
    pub fn channel_utilization(&self) -> f64 {
        self.comm_busy.as_secs_f64() / self.total.as_secs_f64()
    }

    /// Fraction of the makespan the compute fabric was busy.
    pub fn compute_utilization(&self) -> f64 {
        self.compute_busy.as_secs_f64() / self.total.as_secs_f64()
    }

    /// Render a one-screen summary of the measurement.
    pub fn render(&self) -> String {
        format!(
            "measured over {} iterations:\n\
             \x20 total (t_RC)     {}\n\
             \x20 comm busy        {}  ({:.1}% of makespan; {} per iteration)\n\
             \x20 compute busy     {}  ({:.1}% of makespan; {} per iteration)\n\
             \x20 streamed output  {}\n\
             \x20 host overhead    {}\n",
            self.iterations,
            self.total,
            self.comm_busy,
            self.channel_utilization() * 100.0,
            self.comm_per_iter(),
            self.compute_busy,
            self.compute_utilization() * 100.0,
            self.comp_per_iter(),
            self.streamed_comm,
            self.host_overhead,
        )
    }
}

/// Whether the simulator may arithmetically skip steady-state periods.
///
/// Fast-forward only ever engages where it is invisible: on sinks that do not
/// record spans ([`TraceSink::RECORDS`] is false) under kernels that declare
/// an index-uniform tail ([`HardwareKernel::uniform_from`]). Skipped periods
/// are extrapolated exactly, so the resulting
/// [`SimSummary`] is bit-identical to an exhaustive
/// run — `Off` exists for differential testing and for timing the exhaustive
/// path, not because the answers differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FastForward {
    /// Skip steady-state periods when provably safe (the default).
    #[default]
    Auto,
    /// Simulate every event.
    Off,
}

/// A simulated co-processor platform.
#[derive(Debug, Clone)]
pub struct Platform {
    spec: PlatformSpec,
    fast_forward: FastForward,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // the Done suffix is the point: completions drive the DES
enum Ev {
    ReconfigDone,
    InputDone { iter: u64, dur: SimTime },
    ComputeDone { iter: u64, start: SimTime },
    SyncDone { iter: u64, start: SimTime },
    OutputDone { dur: SimTime },
    FinalReadDone { dur: SimTime },
}

impl Platform {
    /// Create a platform from its spec. Fast-forward defaults to
    /// [`FastForward::Auto`].
    pub fn new(spec: PlatformSpec) -> Self {
        Self {
            spec,
            fast_forward: FastForward::Auto,
        }
    }

    /// Set the fast-forward policy (builder style).
    pub fn with_fast_forward(mut self, mode: FastForward) -> Self {
        self.fast_forward = mode;
        self
    }

    /// The platform definition.
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }

    /// The current fast-forward policy.
    pub fn fast_forward(&self) -> FastForward {
        self.fast_forward
    }

    /// Execute `run` with `kernel` clocked at `fclock`, returning the
    /// measurement. Deterministic: same inputs, same schedule. The trace is
    /// fully materialized, so this path always simulates every event.
    pub fn execute<K: HardwareKernel + ?Sized>(
        &self,
        kernel: &K,
        run: &AppRun,
        fclock: Freq,
    ) -> Result<Measurement, ExecError> {
        let (summary, sink) = self.execute_with(kernel, run, fclock, FullTrace::new())?;
        let trace = sink.into_trace();
        debug_assert_eq!(
            summary.total,
            trace.end(),
            "makespan tracking diverged from the trace"
        );
        Ok(Measurement {
            total: summary.total,
            comm_busy: summary.comm_busy,
            streamed_comm: summary.streamed_comm,
            compute_busy: summary.compute_busy,
            host_overhead: summary.host_overhead,
            iterations: summary.iterations,
            trace,
        })
    }

    /// Execute `run`, feeding every scheduled span to `sink` and returning
    /// the scalar [`SimSummary`] together with the
    /// sink. This is the engine under both [`Platform::execute`] (a
    /// [`FullTrace`] sink) and [`Platform::execute_summary`] (a
    /// [`NullSink`]). Steady-state fast-forward engages only when the policy
    /// is [`FastForward::Auto`], the sink does not record, and the kernel
    /// declares an index-uniform tail; results are bit-identical either way.
    pub fn execute_with<K: HardwareKernel + ?Sized, S: TraceSink>(
        &self,
        kernel: &K,
        run: &AppRun,
        fclock: Freq,
        sink: S,
    ) -> Result<(SimSummary, S), ExecError> {
        self.execute_inner(kernel, run, fclock, sink)
            .map(|(summary, sink, _)| (summary, sink))
    }

    /// [`Platform::execute_with`] plus the number of events actually popped —
    /// the observable that pins fast-forward engagement in tests.
    fn execute_inner<K: HardwareKernel + ?Sized, S: TraceSink>(
        &self,
        kernel: &K,
        run: &AppRun,
        fclock: Freq,
        sink: S,
    ) -> Result<(SimSummary, S, u64), ExecError> {
        if run.iterations == 0 {
            return Err(ExecError::NoIterations);
        }
        if !(fclock.hz().is_finite() && fclock.hz() > 0.0) {
            return Err(ExecError::BadClock);
        }
        if run.parallel_kernels == 0 {
            return Err(ExecError::NoKernels);
        }
        // The enabled flag is read once per run, then monomorphized away:
        // with `TEL = false` every span guard below constant-folds to `None`,
        // so the disabled path carries no drop glue or landing pads in the
        // hot loop — measurably free, not just branch-predicted free.
        if telemetry::enabled() {
            self.execute_phases::<K, S, true>(kernel, run, fclock, sink)
        } else {
            self.execute_phases::<K, S, false>(kernel, run, fclock, sink)
        }
    }

    /// The simulation body shared by the instrumented (`TEL = true`) and
    /// bare (`TEL = false`) paths; results are bit-identical between the two.
    fn execute_phases<K: HardwareKernel + ?Sized, S: TraceSink, const TEL: bool>(
        &self,
        kernel: &K,
        run: &AppRun,
        fclock: Freq,
        sink: S,
    ) -> Result<(SimSummary, S, u64), ExecError> {
        let run_span = if TEL {
            Some(telemetry::span_args(
                "sim.run",
                vec![("iterations", ArgValue::U64(run.iterations))],
            ))
        } else {
            None
        };
        let setup_span = if TEL {
            Some(telemetry::span("sim.setup"))
        } else {
            None
        };
        let ff_from = match self.fast_forward {
            FastForward::Auto if !S::RECORDS => kernel.uniform_from(),
            _ => None,
        };
        let mut sim = Sim::new(&self.spec, kernel, run, fclock, sink, ff_from);
        sim.start();
        drop(setup_span);
        let loop_span = if TEL {
            Some(telemetry::span("sim.event_loop"))
        } else {
            None
        };
        let mut events = 0u64;
        let mut queue_high_water = 0usize;
        while let Some((_, ev)) = sim.q.pop() {
            events += 1;
            if TEL {
                queue_high_water = queue_high_water.max(sim.q.len());
            }
            // Sync completions are the periodicity anchor: every schedule has
            // exactly one per iteration, so probing there sees each candidate
            // period exactly once.
            let at_anchor = sim.ff_active() && matches!(ev, Ev::SyncDone { .. });
            sim.handle(ev);
            if at_anchor {
                // Probe count is bounded (MAX_FF_CHECKPOINTS, then ff_done),
                // so a span per probe stays cheap even on long runs.
                let ff_span = if TEL {
                    Some(telemetry::span("sim.fast_forward"))
                } else {
                    None
                };
                sim.try_fast_forward();
                drop(ff_span);
            }
        }
        drop(loop_span);
        let teardown_span = if TEL {
            Some(telemetry::span("sim.teardown"))
        } else {
            None
        };
        let (summary, sink) = sim.finish();
        drop(teardown_span);
        if TEL {
            telemetry::add(Metric::SimRuns, 1);
            telemetry::add(Metric::SimEvents, events);
            telemetry::gauge_max(Metric::QueueHighWater, queue_high_water as u64);
        }
        drop(run_span);
        Ok((summary, sink, events))
    }

    /// Execute `run`, memoized through `cache` when one is given: a content
    /// hash of `(platform spec, kernel spec, run, fclock)` keys the lookup,
    /// so a repeated point costs a hash instead of a simulation. A cache hit
    /// skips input validation too — the hit proves an identical run already
    /// validated and executed. Returns the scalar
    /// [`SimSummary`] — the full
    /// trace is only produced by [`Platform::execute`]).
    pub fn execute_summary<K: HardwareKernel + ?Sized>(
        &self,
        kernel: &K,
        run: &AppRun,
        fclock: Freq,
        cache: Option<&crate::cache::SimCache>,
    ) -> Result<crate::cache::SimSummary, ExecError> {
        let key = cache.map(|c| (c, crate::digest::run_key(&self.spec, kernel, run, fclock)));
        if let Some((c, k)) = key {
            if let Some(hit) = c.lookup(k) {
                return Ok(hit);
            }
        }
        let summary = self.execute_with(kernel, run, fclock, NullSink)?.0;
        if let Some((c, k)) = key {
            c.insert(k, summary);
        }
        Ok(summary)
    }
}

/// Cap on steady-state probes per run: schedules whose period exceeds this
/// many sync anchors are simulated exhaustively rather than probed forever.
const MAX_FF_CHECKPOINTS: usize = 64;

/// One steady-state probe: the relative resource-state signature plus the
/// absolute clock and counter values needed to extrapolate whole periods if
/// a later probe matches.
struct Checkpoint {
    sig: Vec<u64>,
    now: SimTime,
    next_input: u64,
    inputs_done: u64,
    next_compute: u64,
    computes_done: u64,
    outputs_done: u64,
    comm_busy: SimTime,
    streamed_comm: SimTime,
    compute_busy: SimTime,
    host_overhead: SimTime,
}

/// Scheduler state for one execution.
struct Sim<'a, K: ?Sized, S> {
    spec: &'a PlatformSpec,
    kernel: &'a K,
    run: &'a AppRun,
    fclock: Freq,
    q: EventQueue<Ev>,
    sink: S,
    /// Latest span end seen so far; equals `Trace::end()` of a full trace.
    end_max: SimTime,
    // Resource state.
    channel_free: bool,
    compute_units_free: u32,
    input_buffers_free: u32,
    // Progress counters.
    next_input: u64,
    inputs_done: u64,
    next_compute: u64,
    computes_done: u64,
    pending_outputs: VecDeque<u64>,
    outputs_done: u64,
    expected_outputs: u64,
    final_read_issued: bool,
    configured: bool,
    // Accounting.
    comm_busy: SimTime,
    streamed_comm: SimTime,
    compute_busy: SimTime,
    host_overhead: SimTime,
    // Steady-state fast-forward. `ff_from` is the batch index from which the
    // kernel is index-uniform (`None` disables detection entirely).
    ff_from: Option<u64>,
    ff_done: bool,
    ff_checkpoints: Vec<Checkpoint>,
}

impl<'a, K: HardwareKernel + ?Sized, S: TraceSink> Sim<'a, K, S> {
    fn new(
        spec: &'a PlatformSpec,
        kernel: &'a K,
        run: &'a AppRun,
        fclock: Freq,
        sink: S,
        ff_from: Option<u64>,
    ) -> Self {
        // Single buffering serializes everything through one buffer, so extra
        // kernel instances sit idle; double buffering scales buffering with
        // the instance count to keep every instance fed.
        let buffers = match run.buffer_mode {
            BufferMode::Single => 1,
            BufferMode::Double => run.parallel_kernels + 1,
        };
        let expected_outputs = if run.output_bytes_per_iter > 0 && !run.streamed_output {
            run.iterations
        } else {
            0
        };
        Self {
            spec,
            kernel,
            run,
            fclock,
            q: EventQueue::with_capacity(run.peak_pending_events()),
            sink,
            end_max: SimTime::ZERO,
            channel_free: true,
            compute_units_free: run.parallel_kernels,
            input_buffers_free: buffers,
            next_input: 0,
            inputs_done: 0,
            next_compute: 0,
            computes_done: 0,
            pending_outputs: VecDeque::new(),
            outputs_done: 0,
            expected_outputs,
            final_read_issued: false,
            configured: spec.reconfiguration == SimTime::ZERO,
            comm_busy: SimTime::ZERO,
            streamed_comm: SimTime::ZERO,
            compute_busy: SimTime::ZERO,
            host_overhead: SimTime::ZERO,
            ff_from,
            ff_done: false,
            ff_checkpoints: Vec::new(),
        }
    }

    /// Record a span: track the makespan and forward to the sink. The label
    /// is a closure so non-recording sinks never pay for `format!`.
    fn record(
        &mut self,
        resource: Resource,
        label: impl FnOnce() -> String,
        start: SimTime,
        end: SimTime,
    ) {
        self.end_max = self.end_max.max(end);
        self.sink.record(resource, label, start, end);
    }

    fn start(&mut self) {
        if !self.configured {
            let cfg = self.spec.reconfiguration;
            self.record(Resource::Host, || "CFG".into(), SimTime::ZERO, cfg);
            self.q.schedule(cfg, Ev::ReconfigDone);
            return;
        }
        self.try_issue();
        // An app with no input data still computes: handle in try_issue.
    }

    /// Duration of one transfer as the host experiences it: API call plus bus time.
    fn xfer(&self, bytes: u64, dir: Direction) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        self.spec.host.api_call_overhead + self.spec.interconnect.transfer_time(bytes, dir)
    }

    fn try_issue(&mut self) {
        loop {
            let mut progressed = false;

            // Channel arbitration: outputs normally drain before new inputs
            // load (keeping the single-buffer schedule R1 C1 W1 R2 … and
            // Figure 2's double-buffered interleaving R1 R2 W1 R3 W2 …), but a
            // *starving* compute engine — idle with no landed batch to run —
            // takes precedence: for output-heavy workloads, strict
            // output-first arbitration would serialize input behind output
            // every iteration and forfeit the Eq.-(6) steady state.
            if self.channel_free {
                let can_input = self.next_input < self.run.iterations
                    && self.input_buffers_free > 0
                    && self.run.input_bytes_per_iter > 0;
                let compute_starving =
                    self.compute_units_free > 0 && self.next_compute == self.inputs_done;
                if can_input && (compute_starving || self.pending_outputs.is_empty()) {
                    let iter = self.next_input;
                    self.next_input += 1;
                    self.input_buffers_free -= 1;
                    let dur = self.xfer(self.run.input_bytes_per_iter, Direction::Write);
                    self.channel_free = false;
                    let now = self.q.now();
                    self.record(Resource::Comm, || format!("R{}", iter + 1), now, now + dur);
                    self.q.schedule_after(dur, Ev::InputDone { iter, dur });
                    progressed = true;
                } else if let Some(iter) = self.pending_outputs.pop_front() {
                    let dur = self.xfer(self.run.output_bytes_per_iter, Direction::Read);
                    self.channel_free = false;
                    let now = self.q.now();
                    self.record(Resource::Comm, || format!("W{}", iter + 1), now, now + dur);
                    self.q.schedule_after(dur, Ev::OutputDone { dur });
                    progressed = true;
                } else if self.ready_for_final_read() {
                    self.final_read_issued = true;
                    let dur = self.xfer(self.run.final_output_bytes, Direction::Read);
                    self.channel_free = false;
                    let now = self.q.now();
                    self.record(Resource::Comm, || "WF".into(), now, now + dur);
                    self.q.schedule_after(dur, Ev::FinalReadDone { dur });
                    progressed = true;
                }
            }

            // Inputless apps: mark iterations' input as implicitly done.
            if self.run.input_bytes_per_iter == 0 && self.next_input < self.run.iterations {
                self.next_input = self.run.iterations;
                self.inputs_done = self.run.iterations;
                progressed = true;
            }

            // Compute: dispatch every landed batch a free kernel instance can
            // take (in order — batches are independent, so ordering is just
            // determinism).
            while self.compute_units_free > 0 && self.next_compute < self.inputs_done {
                let iter = self.next_compute;
                self.next_compute += 1;
                self.compute_units_free -= 1;
                let batch = Batch {
                    index: iter,
                    elements: self.run.elements_per_iter,
                    bytes: self.run.input_bytes_per_iter,
                };
                let cycles = self.kernel.batch_cycles(&batch);
                let dur = SimTime::from_cycles(cycles, self.fclock);
                let now = self.q.now();
                self.record(Resource::Comp, || format!("C{}", iter + 1), now, now + dur);
                self.compute_busy += dur;
                self.q
                    .schedule_after(dur, Ev::ComputeDone { iter, start: now });
                progressed = true;
            }

            if !progressed {
                break;
            }
        }
    }

    fn ready_for_final_read(&self) -> bool {
        self.run.final_output_bytes > 0
            && !self.final_read_issued
            && self.computes_done == self.run.iterations
            && self.outputs_done == self.expected_outputs
            && self.pending_outputs.is_empty()
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::ReconfigDone => {
                self.configured = true;
                self.host_overhead += self.spec.reconfiguration;
            }
            Ev::InputDone { iter: _, dur } => {
                self.channel_free = true;
                self.inputs_done += 1;
                self.comm_busy += dur;
            }
            Ev::ComputeDone { iter, start } => {
                self.computes_done += 1;
                let sync = self.spec.host.kernel_sync_overhead;
                if sync > SimTime::ZERO {
                    let now = self.q.now();
                    self.record(Resource::Host, || format!("S{}", iter + 1), now, now + sync);
                }
                self.q.schedule_after(sync, Ev::SyncDone { iter, start });
            }
            Ev::SyncDone { iter, start } => {
                self.compute_units_free += 1;
                self.host_overhead += self.spec.host.kernel_sync_overhead;
                if self.run.output_bytes_per_iter > 0 {
                    if self.run.streamed_output {
                        // The output streamed back during the computation; record
                        // its (overlapped) channel occupancy retroactively.
                        let dur = self
                            .spec
                            .interconnect
                            .transfer_time(self.run.output_bytes_per_iter, Direction::Read);
                        self.record(
                            Resource::Comm,
                            || format!("W{}~", iter + 1),
                            start,
                            start + dur,
                        );
                        self.streamed_comm += dur;
                    } else {
                        self.pending_outputs.push_back(iter);
                    }
                }
                // Double buffering frees the input buffer once computation has
                // consumed it; single buffering must also drain the output
                // (the lone buffer holds the results until the read completes).
                let frees_now = match self.run.buffer_mode {
                    BufferMode::Double => true,
                    BufferMode::Single => {
                        self.run.output_bytes_per_iter == 0 || self.run.streamed_output
                    }
                };
                if frees_now {
                    self.input_buffers_free += 1;
                }
            }
            Ev::OutputDone { dur } => {
                self.channel_free = true;
                self.outputs_done += 1;
                self.comm_busy += dur;
                if self.run.buffer_mode == BufferMode::Single {
                    self.input_buffers_free += 1;
                }
            }
            Ev::FinalReadDone { dur } => {
                self.channel_free = true;
                self.comm_busy += dur;
            }
        }
        self.try_issue();
    }

    fn finish(self) -> (SimSummary, S) {
        debug_assert_eq!(
            self.computes_done, self.run.iterations,
            "not all batches computed"
        );
        debug_assert_eq!(
            self.outputs_done, self.expected_outputs,
            "not all outputs drained"
        );
        (
            SimSummary {
                total: self.end_max,
                comm_busy: self.comm_busy,
                streamed_comm: self.streamed_comm,
                compute_busy: self.compute_busy,
                host_overhead: self.host_overhead,
                iterations: self.run.iterations,
            },
            self.sink,
        )
    }

    /// Whether fast-forward detection is still live for this run.
    fn ff_active(&self) -> bool {
        self.ff_from.is_some() && !self.ff_done
    }

    /// The run's relative resource-state signature: everything the
    /// scheduler's future decisions depend on, expressed modulo batch index
    /// (offsets to `computes_done`) and absolute time (offsets to `now`).
    /// Counters pinned at their terminal value encode as a sentinel — their
    /// offset to the moving base would otherwise never repeat (inputless runs
    /// pin `next_input`/`inputs_done` at `iterations` from the start).
    /// Equality is exact, never hashed, so a match can never be a collision.
    fn signature(&self) -> Vec<u64> {
        const PINNED: u64 = u64::MAX;
        let base = self.computes_done;
        let rel = |x: u64, limit: u64| {
            if x >= limit {
                PINNED
            } else {
                x.wrapping_sub(base)
            }
        };
        let mut sig = Vec::with_capacity(10 + self.pending_outputs.len() + 4 * self.q.len());
        sig.push(u64::from(self.channel_free));
        sig.push(u64::from(self.configured));
        sig.push(u64::from(self.final_read_issued));
        sig.push(u64::from(self.compute_units_free));
        sig.push(u64::from(self.input_buffers_free));
        sig.push(rel(self.next_input, self.run.iterations));
        sig.push(rel(self.inputs_done, self.run.iterations));
        sig.push(rel(self.next_compute, self.run.iterations));
        sig.push(rel(self.outputs_done, self.expected_outputs));
        sig.push(self.pending_outputs.len() as u64);
        for &o in &self.pending_outputs {
            sig.push(o.wrapping_sub(base));
        }
        let now = self.q.now();
        for (t, ev) in self.q.pending_in_order() {
            sig.push((t - now).as_ps());
            match *ev {
                Ev::ReconfigDone => sig.push(0),
                Ev::InputDone { iter, dur } => {
                    sig.push(1);
                    sig.push(iter.wrapping_sub(base));
                    sig.push(dur.as_ps());
                }
                Ev::ComputeDone { iter, start } => {
                    sig.push(2);
                    sig.push(iter.wrapping_sub(base));
                    sig.push((now - start).as_ps());
                }
                Ev::SyncDone { iter, start } => {
                    sig.push(3);
                    sig.push(iter.wrapping_sub(base));
                    sig.push((now - start).as_ps());
                }
                Ev::OutputDone { dur } => {
                    sig.push(4);
                    sig.push(dur.as_ps());
                }
                Ev::FinalReadDone { dur } => {
                    sig.push(5);
                    sig.push(dur.as_ps());
                }
            }
        }
        sig
    }

    /// Steady-state detection and jump, probed after each handled `SyncDone`.
    ///
    /// Two probes with equal signatures prove the schedule is periodic: every
    /// scheduler decision depends only on the signature-visible relative
    /// state plus run constants (the kernel being index-uniform past
    /// `ff_from`), so from a repeated state the future replays translated in
    /// time and batch index. We advance `k` whole periods arithmetically —
    /// clock and pending events shifted by `k·period`, each counter by `k`
    /// times its per-period delta — capped strictly below every counter's
    /// terminal value so no equality guard (`next_input < iterations`,
    /// final-read readiness) flips inside the skipped region, then resume
    /// event simulation for the drain.
    fn try_fast_forward(&mut self) {
        let Some(from) = self.ff_from else { return };
        if self.ff_done {
            return;
        }
        // Wait until dispatch has reached the kernel's uniform tail; stop
        // probing once the run is in its drain phase.
        if self.next_compute < from || self.computes_done >= self.run.iterations {
            return;
        }
        let sig = self.signature();
        let now = self.q.now();
        let Some(hit) = self.ff_checkpoints.iter().position(|c| c.sig == sig) else {
            if self.ff_checkpoints.len() >= MAX_FF_CHECKPOINTS {
                // No period inside the probe window: stop paying for probes.
                self.ff_done = true;
                self.ff_checkpoints.clear();
            } else {
                self.ff_checkpoints.push(Checkpoint {
                    sig,
                    now,
                    next_input: self.next_input,
                    inputs_done: self.inputs_done,
                    next_compute: self.next_compute,
                    computes_done: self.computes_done,
                    outputs_done: self.outputs_done,
                    comm_busy: self.comm_busy,
                    streamed_comm: self.streamed_comm,
                    compute_busy: self.compute_busy,
                    host_overhead: self.host_overhead,
                });
            }
            return;
        };
        let prev = self.ff_checkpoints.swap_remove(hit);

        let dt = now - prev.now;
        // Per-period progress. Pinned counters have delta 0; every advancing
        // counter moves by the same base delta (their signature offsets to
        // `computes_done` matched across the period).
        let d_ni = self.next_input - prev.next_input;
        let d_id = self.inputs_done - prev.inputs_done;
        let d_nc = self.next_compute - prev.next_compute;
        let d_cd = self.computes_done - prev.computes_done;
        let d_od = self.outputs_done - prev.outputs_done;
        // Whole periods to skip, strictly below every terminal value.
        let caps = [
            (self.next_input, d_ni, self.run.iterations),
            (self.inputs_done, d_id, self.run.iterations),
            (self.next_compute, d_nc, self.run.iterations),
            (self.computes_done, d_cd, self.run.iterations),
            (self.outputs_done, d_od, self.expected_outputs),
        ];
        let k = caps
            .iter()
            .filter(|&&(_, d, _)| d > 0)
            .map(|&(x, d, limit)| (limit - 1 - x) / d)
            .min()
            .unwrap_or(0);
        // One jump per run: after it only the drain remains.
        self.ff_done = true;
        self.ff_checkpoints.clear();
        if dt == SimTime::ZERO || k == 0 {
            return;
        }
        let scaled = |t: SimTime| -> Option<SimTime> {
            u64::try_from(u128::from(t.as_ps()) * u128::from(k))
                .ok()
                .map(SimTime::from_ps)
        };
        let (Some(offset), Some(j_comm), Some(j_streamed), Some(j_compute), Some(j_host)) = (
            scaled(dt),
            scaled(self.comm_busy - prev.comm_busy),
            scaled(self.streamed_comm - prev.streamed_comm),
            scaled(self.compute_busy - prev.compute_busy),
            scaled(self.host_overhead - prev.host_overhead),
        ) else {
            return; // would overflow the clock: simulate instead
        };
        let iter_shift = k * d_cd;
        telemetry::add(Metric::FfJumps, 1);
        telemetry::add(Metric::FfPeriodsSkipped, k);
        self.q.jump(offset, |ev| match ev {
            Ev::InputDone { iter, dur } => Ev::InputDone {
                iter: iter + iter_shift,
                dur,
            },
            Ev::ComputeDone { iter, start } => Ev::ComputeDone {
                iter: iter + iter_shift,
                start: start + offset,
            },
            Ev::SyncDone { iter, start } => Ev::SyncDone {
                iter: iter + iter_shift,
                start: start + offset,
            },
            other => other,
        });
        self.next_input += k * d_ni;
        self.inputs_done += k * d_id;
        self.next_compute += k * d_nc;
        self.computes_done += k * d_cd;
        self.outputs_done += k * d_od;
        for o in &mut self.pending_outputs {
            *o += iter_shift;
        }
        self.comm_busy += j_comm;
        self.streamed_comm += j_streamed;
        self.compute_busy += j_compute;
        self.host_overhead += j_host;
        // `end_max` is deliberately not shifted: every span end in the
        // skipped region is dominated by its final-period counterpart, which
        // the post-jump simulation records at the same absolute time the
        // exhaustive run would.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::AlphaCurve;
    use crate::kernel::TabulatedKernel;
    use rat_core::quantity::Throughput;

    /// A 1 GHz kernel clock: cycle counts read directly as nanoseconds.
    const GHZ: Freq = Freq::from_hz(1.0e9);

    /// A bus moving 1 byte per nanosecond with no setup cost: transfer time in
    /// ns equals the byte count, making schedules easy to reason about.
    fn unit_bus() -> PlatformSpec {
        PlatformSpec {
            name: "unit".into(),
            interconnect: Interconnect {
                name: "unit-bus".into(),
                ideal_bw: Throughput::from_bytes_per_sec(1.0e9),
                setup_write: SimTime::ZERO,
                setup_read: SimTime::ZERO,
                alpha_write: AlphaCurve::flat(1.0),
                alpha_read: AlphaCurve::flat(1.0),
                max_dma_bytes: None,
            },
            host: HostModel::IDEAL,
            reconfiguration: SimTime::ZERO,
        }
    }

    /// Kernel taking `cycles` per batch at 1 GHz: duration in ns equals cycles.
    fn run_case(
        mode: BufferMode,
        in_bytes: u64,
        out_bytes: u64,
        comp_cycles: u64,
        iters: u64,
    ) -> Measurement {
        let platform = Platform::new(unit_bus());
        let kernel = TabulatedKernel::uniform("k", comp_cycles, iters as usize);
        let run = AppRun::builder()
            .iterations(iters)
            .elements_per_iter(1)
            .input_bytes_per_iter(in_bytes)
            .output_bytes_per_iter(out_bytes)
            .buffer_mode(mode)
            .build();
        platform.execute(&kernel, &run, GHZ).unwrap()
    }

    #[test]
    fn single_buffer_is_fully_serial() {
        // Per iteration: 100 ns in + 300 ns compute + 50 ns out = 450 ns.
        let m = run_case(BufferMode::Single, 100, 50, 300, 4);
        assert_eq!(m.total, SimTime::from_ns(4 * 450));
        assert_eq!(m.comm_busy, SimTime::from_ns(4 * 150));
        assert_eq!(m.compute_busy, SimTime::from_ns(4 * 300));
        assert!(!m.trace.has_overlap());
    }

    #[test]
    fn double_buffer_compute_bound_hides_comm() {
        // Compute (300) > comm (100 + 50): steady state is compute-limited.
        let m = run_case(BufferMode::Double, 100, 50, 300, 10);
        // First input (100) + 10 computes back-to-back (3000) + final drain (50).
        assert_eq!(m.total, SimTime::from_ns(100 + 10 * 300 + 50));
        assert!(m.trace.has_overlap());
    }

    #[test]
    fn double_buffer_comm_bound_saturates_channel() {
        // Comm (200 + 150 = 350) > compute (100): channel is the bottleneck.
        let m = run_case(BufferMode::Double, 200, 150, 100, 10);
        // Channel busy continuously after the first input; makespan ≈
        // N*(in+out) + first fill + last compute tail.
        let lower = SimTime::from_ns(10 * 350);
        assert!(
            m.total >= lower,
            "makespan {} below channel bound {lower}",
            m.total
        );
        // Within one iteration's slack of the bound.
        assert!(m.total <= lower + SimTime::from_ns(350 + 100));
        assert!(m.trace.has_overlap());
    }

    #[test]
    fn double_buffer_never_slower_than_single() {
        for (inb, outb, comp) in [(100, 50, 300), (200, 150, 100), (64, 64, 64), (10, 0, 500)] {
            let sb = run_case(BufferMode::Single, inb, outb, comp, 8);
            let db = run_case(BufferMode::Double, inb, outb, comp, 8);
            assert!(
                db.total <= sb.total,
                "DB ({}) slower than SB ({}) for in={inb} out={outb} comp={comp}",
                db.total,
                sb.total
            );
        }
    }

    #[test]
    fn makespan_at_least_each_resource_bound() {
        let m = run_case(BufferMode::Double, 128, 128, 200, 16);
        assert!(m.total >= m.comm_busy.max(m.compute_busy));
    }

    #[test]
    fn no_output_means_no_write_spans() {
        let m = run_case(BufferMode::Single, 100, 0, 100, 3);
        assert!(m.trace.spans().iter().all(|s| !s.label.starts_with('W')));
        assert_eq!(m.comm_busy, SimTime::from_ns(300));
    }

    #[test]
    fn final_read_happens_after_everything() {
        let platform = Platform::new(unit_bus());
        let kernel = TabulatedKernel::uniform("k", 100, 3);
        let run = AppRun::builder()
            .iterations(3)
            .input_bytes_per_iter(50)
            .final_output_bytes(400)
            .build();
        let m = platform.execute(&kernel, &run, GHZ).unwrap();
        // 3*(50+100) serial + 400 final read.
        assert_eq!(m.total, SimTime::from_ns(3 * 150 + 400));
        let final_span = m.trace.spans().iter().find(|s| s.label == "WF").unwrap();
        assert_eq!(final_span.end, m.total);
    }

    #[test]
    fn streamed_output_hides_behind_compute() {
        let platform = Platform::new(unit_bus());
        let kernel = TabulatedKernel::uniform("k", 1000, 1);
        let run = AppRun::builder()
            .iterations(1)
            .input_bytes_per_iter(200)
            .output_bytes_per_iter(500)
            .streamed_output(true)
            .build();
        let m = platform.execute(&kernel, &run, GHZ).unwrap();
        // Output (500 ns) streams during compute (1000 ns): total = 200 + 1000.
        assert_eq!(m.total, SimTime::from_ns(1200));
        assert_eq!(m.comm_busy, SimTime::from_ns(200));
        assert_eq!(m.streamed_comm, SimTime::from_ns(500));
    }

    #[test]
    fn host_overheads_serialize_the_loop() {
        let mut spec = unit_bus();
        spec.host = HostModel {
            api_call_overhead: SimTime::from_ns(10),
            kernel_sync_overhead: SimTime::from_ns(20),
        };
        let platform = Platform::new(spec);
        let kernel = TabulatedKernel::uniform("k", 100, 2);
        let run = AppRun::builder()
            .iterations(2)
            .input_bytes_per_iter(50)
            .output_bytes_per_iter(30)
            .build();
        let m = platform.execute(&kernel, &run, GHZ).unwrap();
        // Per iter: (10+50) in + 100 comp + 20 sync + (10+30) out = 220.
        assert_eq!(m.total, SimTime::from_ns(440));
        assert_eq!(m.host_overhead, SimTime::from_ns(40));
        // API overhead is folded into measured comm, as a host-side timer would.
        assert_eq!(m.comm_busy, SimTime::from_ns(2 * (60 + 40)));
    }

    #[test]
    fn zero_iterations_rejected() {
        let platform = Platform::new(unit_bus());
        let kernel = TabulatedKernel::uniform("k", 1, 1);
        let run = AppRun::builder().iterations(0).build();
        assert_eq!(
            platform.execute(&kernel, &run, GHZ).unwrap_err(),
            ExecError::NoIterations
        );
    }

    #[test]
    fn bad_clock_rejected() {
        let platform = Platform::new(unit_bus());
        let kernel = TabulatedKernel::uniform("k", 1, 1);
        let run = AppRun::builder()
            .iterations(1)
            .input_bytes_per_iter(1)
            .build();
        assert_eq!(
            platform
                .execute(&kernel, &run, Freq::from_hz(0.0))
                .unwrap_err(),
            ExecError::BadClock
        );
        assert_eq!(
            platform
                .execute(&kernel, &run, Freq::from_hz(f64::NAN))
                .unwrap_err(),
            ExecError::BadClock
        );
    }

    #[test]
    fn inputless_app_still_computes() {
        let m = run_case(BufferMode::Single, 0, 0, 500, 4);
        assert_eq!(m.total, SimTime::from_ns(2000));
        assert_eq!(m.comm_busy, SimTime::ZERO);
    }

    #[test]
    fn per_iteration_means() {
        let m = run_case(BufferMode::Single, 100, 0, 300, 4);
        assert_eq!(m.comm_per_iter(), SimTime::from_ns(100));
        assert_eq!(m.comp_per_iter(), SimTime::from_ns(300));
    }

    #[test]
    fn utilizations_sum_to_one_when_serial_and_overhead_free() {
        let m = run_case(BufferMode::Single, 100, 50, 300, 5);
        let sum = m.channel_utilization() + m.compute_utilization();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "serial schedule should split the makespan, got {sum}"
        );
    }

    #[test]
    fn measurement_eq_error_types() {
        assert_eq!(
            ExecError::NoIterations.to_string(),
            "application run needs at least one iteration"
        );
        assert!(ExecError::BadClock.to_string().contains("positive"));
    }

    #[test]
    fn trace_labels_match_figure2_notation() {
        let m = run_case(BufferMode::Single, 10, 10, 10, 2);
        let labels: Vec<_> = m.trace.spans().iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["R1", "C1", "W1", "R2", "C2", "W2"]);
    }

    #[test]
    fn partial_eq_ne_exec_error() {
        assert_ne!(ExecError::NoIterations, ExecError::BadClock);
    }

    fn run_parallel(kernels: u32, in_bytes: u64, comp_cycles: u64, iters: u64) -> Measurement {
        let platform = Platform::new(unit_bus());
        let kernel = TabulatedKernel::uniform("k", comp_cycles, iters as usize);
        let run = AppRun::builder()
            .iterations(iters)
            .elements_per_iter(1)
            .input_bytes_per_iter(in_bytes)
            .buffer_mode(BufferMode::Double)
            .parallel_kernels(kernels)
            .build();
        platform.execute(&kernel, &run, GHZ).unwrap()
    }

    #[test]
    fn parallel_kernels_overlap_compute() {
        // Compute-bound single instance: 100 ns in, 1000 ns compute, 8 iters.
        let one = run_parallel(1, 100, 1000, 8);
        let two = run_parallel(2, 100, 1000, 8);
        let four = run_parallel(4, 100, 1000, 8);
        // One instance: makespan ~ 100 + 8*1000.
        assert_eq!(one.total, SimTime::from_ns(100 + 8 * 1000));
        // Two instances: compute halves (channel feeds both easily).
        assert!(two.total < one.total);
        assert!(four.total < two.total);
        // Aggregate kernel occupancy is schedule-independent.
        assert_eq!(one.compute_busy, four.compute_busy);
    }

    #[test]
    fn parallel_kernels_hit_the_channel_wall() {
        // Channel time per iteration (500 ns in) exceeds compute/4 (250 ns):
        // beyond 4 instances the channel is the bottleneck and more kernels
        // cannot help — the paper's "the channel is only a single resource".
        let m4 = run_parallel(4, 500, 1000, 16);
        let m8 = run_parallel(8, 500, 1000, 16);
        let channel_bound = SimTime::from_ns(16 * 500);
        assert!(m4.total >= channel_bound);
        // No meaningful gain past the wall (within one iteration's slack).
        assert!(m8.total + SimTime::from_ns(1) >= channel_bound);
        assert!(m4.total.saturating_sub(m8.total) <= SimTime::from_ns(1500));
    }

    #[test]
    fn single_buffering_wastes_extra_kernels() {
        let platform = Platform::new(unit_bus());
        let kernel = TabulatedKernel::uniform("k", 1000, 4);
        let mk = |kernels: u32| {
            let run = AppRun::builder()
                .iterations(4)
                .elements_per_iter(1)
                .input_bytes_per_iter(100)
                .buffer_mode(BufferMode::Single)
                .parallel_kernels(kernels)
                .build();
            platform.execute(&kernel, &run, GHZ).unwrap().total
        };
        assert_eq!(
            mk(1),
            mk(8),
            "one buffer serializes regardless of kernel count"
        );
    }

    #[test]
    fn zero_kernels_rejected() {
        let platform = Platform::new(unit_bus());
        let kernel = TabulatedKernel::uniform("k", 1, 1);
        let run = AppRun::builder().iterations(1).parallel_kernels(0).build();
        assert_eq!(
            platform.execute(&kernel, &run, GHZ).unwrap_err(),
            ExecError::NoKernels
        );
    }

    #[test]
    fn parallel_compute_spans_overlap_in_trace() {
        let m = run_parallel(2, 10, 1000, 4);
        let comps: Vec<_> = m.trace.spans_on(Resource::Comp).collect();
        assert_eq!(comps.len(), 4);
        // C1 and C2 overlap in time.
        assert!(comps[0].start < comps[1].end && comps[1].start < comps[0].end);
    }

    #[test]
    fn measurement_render_summarizes() {
        let m = run_case(BufferMode::Single, 100, 50, 300, 4);
        let s = m.render();
        assert!(s.contains("4 iterations"));
        assert!(s.contains("total (t_RC)"));
        assert!(s.contains("comm busy"));
        assert!(s.contains("compute busy"));
    }

    #[test]
    fn reconfiguration_delays_everything_once() {
        let mut spec = unit_bus();
        spec.reconfiguration = SimTime::from_us(100);
        let platform = Platform::new(spec);
        let kernel = TabulatedKernel::uniform("k", 100, 3);
        let run = AppRun::builder()
            .iterations(3)
            .elements_per_iter(1)
            .input_bytes_per_iter(50)
            .build();
        let m = platform.execute(&kernel, &run, GHZ).unwrap();
        // 100 us configuration + 3 * (50 + 100) ns of work.
        assert_eq!(m.total, SimTime::from_us(100) + SimTime::from_ns(450));
        assert_eq!(m.host_overhead, SimTime::from_us(100));
        // The configuration span appears in the trace before any transfer.
        let cfg = m.trace.spans().iter().find(|s| s.label == "CFG").unwrap();
        assert_eq!(cfg.start, SimTime::ZERO);
        let first_xfer = m.trace.spans_on(Resource::Comm).next().unwrap();
        assert!(first_xfer.start >= cfg.end);
    }

    #[test]
    fn reconfiguration_breaks_rat_assumption_only_for_short_runs() {
        // A long run amortizes the bitstream load; a short one is dominated
        // by it — quantifying when the paper's "reconfiguration ... ignored"
        // assumption is safe.
        let mut spec = unit_bus();
        spec.reconfiguration = SimTime::from_us(100);
        let platform = Platform::new(spec.clone());
        let kernel_short = TabulatedKernel::uniform("k", 1000, 1);
        let run_short = AppRun::builder()
            .iterations(1)
            .input_bytes_per_iter(100)
            .build();
        let short = platform.execute(&kernel_short, &run_short, GHZ).unwrap();
        let cfg_share_short = spec.reconfiguration.as_secs_f64() / short.total.as_secs_f64();
        assert!(
            cfg_share_short > 0.9,
            "short run is configuration-dominated"
        );

        let kernel_long = TabulatedKernel::uniform("k", 1000, 10_000);
        let run_long = AppRun::builder()
            .iterations(10_000)
            .input_bytes_per_iter(100)
            .build();
        let long = platform.execute(&kernel_long, &run_long, GHZ).unwrap();
        let cfg_share_long = spec.reconfiguration.as_secs_f64() / long.total.as_secs_f64();
        assert!(cfg_share_long < 0.01, "long run amortizes configuration");
    }

    use crate::cache::SimSummary;
    use crate::trace::{FullTrace, NullSink, SummarySink};

    /// Fast-forwarded and exhaustive trace-free summaries of the same run.
    fn ff_vs_exhaustive<K: HardwareKernel>(
        spec: &PlatformSpec,
        kernel: &K,
        run: &AppRun,
    ) -> (SimSummary, SimSummary) {
        let fast = Platform::new(spec.clone())
            .execute_summary(kernel, run, GHZ, None)
            .unwrap();
        let slow = Platform::new(spec.clone())
            .with_fast_forward(FastForward::Off)
            .execute_summary(kernel, run, GHZ, None)
            .unwrap();
        (fast, slow)
    }

    #[test]
    fn fast_forward_matches_exhaustive_matrix() {
        for mode in [BufferMode::Single, BufferMode::Double] {
            for (inb, outb, comp) in [
                (100, 50, 300),
                (200, 150, 100),
                (64, 64, 64),
                (10, 0, 500),
                (0, 0, 250),
            ] {
                for sync_ns in [0, 20] {
                    let mut spec = unit_bus();
                    spec.host = HostModel {
                        api_call_overhead: SimTime::from_ns(5),
                        kernel_sync_overhead: SimTime::from_ns(sync_ns),
                    };
                    let kernel = TabulatedKernel::uniform("k", comp, 1);
                    let run = AppRun::builder()
                        .iterations(193)
                        .elements_per_iter(1)
                        .input_bytes_per_iter(inb)
                        .output_bytes_per_iter(outb)
                        .buffer_mode(mode)
                        .build();
                    let (fast, slow) = ff_vs_exhaustive(&spec, &kernel, &run);
                    assert_eq!(
                        fast, slow,
                        "mode={mode:?} in={inb} out={outb} comp={comp} sync={sync_ns}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_forward_matches_with_streaming_and_final_read() {
        let spec = unit_bus();
        let kernel = TabulatedKernel::uniform("k", 400, 1);
        let streamed = AppRun::builder()
            .iterations(300)
            .input_bytes_per_iter(100)
            .output_bytes_per_iter(80)
            .streamed_output(true)
            .buffer_mode(BufferMode::Double)
            .build();
        let (fast, slow) = ff_vs_exhaustive(&spec, &kernel, &streamed);
        assert_eq!(fast, slow);

        let with_final = AppRun::builder()
            .iterations(300)
            .input_bytes_per_iter(100)
            .final_output_bytes(4096)
            .buffer_mode(BufferMode::Double)
            .build();
        let (fast, slow) = ff_vs_exhaustive(&spec, &kernel, &with_final);
        assert_eq!(fast, slow);
    }

    #[test]
    fn fast_forward_matches_with_parallel_kernels() {
        for kernels in [1, 2, 3, 4] {
            let spec = unit_bus();
            let kernel = TabulatedKernel::uniform("k", 1000, 1);
            let run = AppRun::builder()
                .iterations(257)
                .input_bytes_per_iter(100)
                .buffer_mode(BufferMode::Double)
                .parallel_kernels(kernels)
                .build();
            let (fast, slow) = ff_vs_exhaustive(&spec, &kernel, &run);
            assert_eq!(fast, slow, "parallel_kernels={kernels}");
        }
    }

    #[test]
    fn fast_forward_matches_inputless_run() {
        let spec = unit_bus();
        let kernel = TabulatedKernel::uniform("k", 500, 1);
        let run = AppRun::builder().iterations(400).build();
        let (fast, slow) = ff_vs_exhaustive(&spec, &kernel, &run);
        assert_eq!(fast, slow);
        assert_eq!(fast.total, SimTime::from_ns(400 * 500));
    }

    #[test]
    fn fast_forward_matches_with_reconfiguration() {
        let mut spec = unit_bus();
        spec.reconfiguration = SimTime::from_us(100);
        let kernel = TabulatedKernel::uniform("k", 100, 1);
        let run = AppRun::builder()
            .iterations(300)
            .input_bytes_per_iter(50)
            .build();
        let (fast, slow) = ff_vs_exhaustive(&spec, &kernel, &run);
        assert_eq!(fast, slow);
    }

    #[test]
    fn fast_forward_waits_out_a_nonuniform_prefix() {
        // The first 20 batches vary; the tail is constant. Fast-forward may
        // only engage once dispatch reaches the tail — and must still agree.
        let mut cycles: Vec<u64> = (0..20).map(|i| 100 + 13 * i).collect();
        cycles.push(300);
        let kernel = TabulatedKernel::new("k", cycles);
        assert_eq!(kernel.uniform_from(), Some(20));
        let spec = unit_bus();
        let run = AppRun::builder()
            .iterations(300)
            .input_bytes_per_iter(100)
            .output_bytes_per_iter(50)
            .buffer_mode(BufferMode::Double)
            .build();
        let (fast, slow) = ff_vs_exhaustive(&spec, &kernel, &run);
        assert_eq!(fast, slow);
    }

    #[test]
    fn fast_forward_skips_most_events() {
        let kernel = TabulatedKernel::uniform("k", 300, 1);
        let run = AppRun::builder()
            .iterations(10_000)
            .elements_per_iter(1)
            .input_bytes_per_iter(100)
            .output_bytes_per_iter(50)
            .buffer_mode(BufferMode::Double)
            .build();
        let (fast, _, fast_events) = Platform::new(unit_bus())
            .execute_inner(&kernel, &run, GHZ, NullSink)
            .unwrap();
        let (slow, _, slow_events) = Platform::new(unit_bus())
            .with_fast_forward(FastForward::Off)
            .execute_inner(&kernel, &run, GHZ, NullSink)
            .unwrap();
        assert_eq!(fast, slow);
        assert!(slow_events >= 40_000, "slow path popped {slow_events}");
        assert!(
            fast_events < 1_000,
            "fast-forward did not engage: {fast_events} events popped"
        );
    }

    #[test]
    fn recording_sinks_never_fast_forward() {
        // A full trace must show every iteration, so Auto may not skip when
        // the sink records.
        let kernel = TabulatedKernel::uniform("k", 300, 1);
        let run = AppRun::builder()
            .iterations(500)
            .input_bytes_per_iter(100)
            .buffer_mode(BufferMode::Double)
            .build();
        let (_, sink, events) = Platform::new(unit_bus())
            .execute_inner(&kernel, &run, GHZ, FullTrace::new())
            .unwrap();
        assert!(events >= 1_000, "recording run popped only {events} events");
        assert_eq!(sink.into_trace().spans_on(Resource::Comp).count(), 500);
    }

    #[test]
    fn uniform_from_none_disables_fast_forward() {
        struct OpaqueKernel(TabulatedKernel);
        impl HardwareKernel for OpaqueKernel {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn batch_cycles(&self, b: &Batch) -> rat_core::quantity::Cycles {
                self.0.batch_cycles(b)
            }
            fn spec_digest(&self) -> u128 {
                self.0.spec_digest()
            }
            // uniform_from: default None — behaviour is uniform but undeclared.
        }
        let kernel = OpaqueKernel(TabulatedKernel::uniform("k", 300, 1));
        let run = AppRun::builder()
            .iterations(500)
            .input_bytes_per_iter(100)
            .buffer_mode(BufferMode::Double)
            .build();
        let (summary, _, events) = Platform::new(unit_bus())
            .execute_inner(&kernel, &run, GHZ, NullSink)
            .unwrap();
        assert!(events >= 1_000, "undeclared kernel still fast-forwarded");
        let reference = Platform::new(unit_bus())
            .execute_summary(&kernel.0, &run, GHZ, None)
            .unwrap();
        assert_eq!(summary, reference);
    }

    #[test]
    fn null_sink_summary_matches_full_trace_scalars() {
        let platform = Platform::new(unit_bus()).with_fast_forward(FastForward::Off);
        let kernel = TabulatedKernel::uniform("k", 300, 1);
        let run = AppRun::builder()
            .iterations(50)
            .input_bytes_per_iter(100)
            .output_bytes_per_iter(50)
            .buffer_mode(BufferMode::Double)
            .build();
        let (summary, _) = platform.execute_with(&kernel, &run, GHZ, NullSink).unwrap();
        let m = platform.execute(&kernel, &run, GHZ).unwrap();
        assert_eq!(summary, SimSummary::from(&m));
    }

    #[test]
    fn summary_sink_counts_match_the_trace() {
        let platform = Platform::new(unit_bus());
        let kernel = TabulatedKernel::uniform("k", 300, 1);
        let run = AppRun::builder()
            .iterations(40)
            .input_bytes_per_iter(100)
            .output_bytes_per_iter(50)
            .buffer_mode(BufferMode::Double)
            .build();
        let (_, counter) = platform
            .execute_with(&kernel, &run, GHZ, SummarySink::new())
            .unwrap();
        let m = platform.execute(&kernel, &run, GHZ).unwrap();
        assert_eq!(
            counter.count(Resource::Comm) as usize,
            m.trace.spans_on(Resource::Comm).count()
        );
        assert_eq!(counter.count(Resource::Comp), 40);
        assert_eq!(counter.busy(Resource::Comp), m.compute_busy);
        assert_eq!(counter.total_spans() as usize, m.trace.spans().len());
    }

    #[test]
    fn peak_pending_events_bounds_the_queue() {
        let run = AppRun::builder().parallel_kernels(4).build();
        assert_eq!(run.peak_pending_events(), 6);
    }
}
