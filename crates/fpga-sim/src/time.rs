//! Simulation time.

use rat_core::quantity::{Cycles, Freq, Seconds};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// Simulation time with picosecond resolution.
///
/// Picoseconds in a `u64` cover about 213 days of simulated time — far beyond any
/// RAT workload — while resolving a single cycle at multi-GHz clock rates without
/// accumulating floating-point drift in the event queue.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

const PS_PER_SEC: f64 = 1e12;

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Construct from a typed duration, rounding to the nearest picosecond.
    ///
    /// Panics on negative or non-finite input: durations in the simulator are
    /// always physical.
    pub fn from_seconds(secs: Seconds) -> Self {
        let secs = secs.seconds();
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be a finite non-negative duration, got {secs}"
        );
        SimTime((secs * PS_PER_SEC).round() as u64)
    }

    /// Duration of `cycles` clock cycles at `freq`, rounded to the nearest
    /// picosecond.
    pub fn from_cycles(cycles: Cycles, freq: Freq) -> Self {
        assert!(
            freq.hz() > 0.0,
            "clock frequency must be positive, got {} Hz",
            freq.hz()
        );
        Self::from_seconds(cycles / freq)
    }

    /// Raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time in seconds, as a raw float (for statistics and formatting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC
    }

    /// Time as a typed duration.
    pub fn as_seconds(self) -> Seconds {
        Seconds::new(self.as_secs_f64())
    }

    /// Number of whole clock cycles this duration spans at `freq`.
    pub fn as_cycles(self, freq: Freq) -> Cycles {
        Cycles::new((freq * self.as_seconds()).round() as u64)
    }

    /// Saturating subtraction (zero if `rhs` is later than `self`).
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The later of two instants.
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: rhs later than lhs"),
        )
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.as_secs_f64();
        if secs >= 1.0 {
            write!(f, "{secs:.4} s")
        } else if secs >= 1e-3 {
            write!(f, "{:.3} ms", secs * 1e3)
        } else if secs >= 1e-6 {
            write!(f, "{:.3} us", secs * 1e6)
        } else {
            write!(f, "{:.3} ns", secs * 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::from_ns(5), SimTime::from_ps(5_000));
        assert_eq!(SimTime::from_us(2), SimTime::from_ns(2_000));
        assert_eq!(
            SimTime::from_seconds(Seconds::new(1e-6)),
            SimTime::from_us(1)
        );
    }

    #[test]
    fn cycles_round_trip() {
        let f = Freq::from_mhz(150.0);
        let t = SimTime::from_cycles(Cycles::new(20850), f);
        assert_eq!(t.as_cycles(f), Cycles::new(20850));
        assert!((t.as_secs_f64() - 1.39e-4).abs() < 1e-6);
    }

    #[test]
    fn cycle_duration_at_150mhz() {
        let t = SimTime::from_cycles(Cycles::new(1), Freq::from_mhz(150.0));
        // 1/150 MHz = 6.667 ns = 6667 ps (rounded).
        assert_eq!(t.as_ps(), 6667);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(10);
        let b = SimTime::from_us(4);
        assert_eq!((a + b).as_ps(), 14_000_000);
        assert_eq!((a - b).as_ps(), 6_000_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_us(1) - SimTime::from_us(2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panics() {
        let _ = SimTime::from_seconds(Seconds::new(-1.0));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(SimTime::from_us).sum();
        assert_eq!(total, SimTime::from_us(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(
            SimTime::from_seconds(Seconds::new(2.5)).to_string(),
            "2.5000 s"
        );
        assert_eq!(SimTime::from_us(1500).to_string(), "1.500 ms");
        assert_eq!(SimTime::from_ns(250).to_string(), "250.000 ns");
    }
}
