//! Pipelined-kernel cycle models.
//!
//! The paper's throughput test reduces a design to "operations per cycle"
//! (`throughput_proc`). A real pipelined design delivers less than its
//! structural peak: the pipeline must fill before the first result, drain after
//! the last, and stalls (memory-bank conflicts, accumulation hazards, control
//! bubbles) insert dead cycles. The 1-D PDF case study's designers cut their
//! estimate from the structural 24 ops/cycle to 20 for exactly these reasons
//! (§4.2), and the measured design achieved ~18.9. [`PipelineSpec`] models that
//! gap explicitly.

use crate::kernel::{Batch, HardwareKernel};
use rat_core::quantity::Cycles;
use serde::{Deserialize, Serialize};

/// Stall behaviour of a pipelined design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StallModel {
    /// A perfectly scheduled pipeline with no stalls.
    None,
    /// A fixed average number of dead cycles per element (e.g. per-element
    /// bank-conflict or accumulator read-modify-write penalties). Fractional
    /// values model stalls that occur on a fraction of elements; totals are
    /// rounded once per batch, not per element.
    PerElement {
        /// Mean dead cycles added per element.
        cycles: f64,
    },
    /// A global efficiency derate: the pipeline delivers `efficiency` of its
    /// structural throughput (bubbles uniformly distributed). Models
    /// data-dependent designs where stall placement is irregular but the
    /// aggregate rate is stable.
    Efficiency {
        /// Fraction of peak throughput actually delivered, in `(0, 1]`.
        efficiency: f64,
    },
}

impl StallModel {
    fn validate(&self) {
        match *self {
            StallModel::None => {}
            StallModel::PerElement { cycles } => {
                assert!(
                    cycles >= 0.0 && cycles.is_finite(),
                    "stall cycles must be >= 0"
                );
            }
            StallModel::Efficiency { efficiency } => {
                assert!(
                    efficiency > 0.0 && efficiency <= 1.0,
                    "efficiency must be in (0, 1], got {efficiency}"
                );
            }
        }
    }
}

/// Structural description of a pipelined design, sufficient to compute cycle
/// counts for a batch of work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineSpec {
    /// Number of parallel pipelines (the Figure-3 PDF design instantiates 8).
    pub lanes: u32,
    /// Operations each lane retires per cycle at steady state.
    pub ops_per_lane_cycle: u32,
    /// Cycles from first input to first result (pipeline depth).
    pub fill_latency: u64,
    /// Cycles to flush results after the last input.
    pub drain_latency: u64,
    /// Stall behaviour.
    pub stall: StallModel,
}

impl PipelineSpec {
    /// Structural peak throughput: `lanes * ops_per_lane_cycle`, the number the
    /// paper calls `throughput_proc` for a fully pipelined design.
    pub fn peak_ops_per_cycle(&self) -> u32 {
        self.lanes * self.ops_per_lane_cycle
    }

    /// Cycles to execute `total_ops` operations over `elements` elements,
    /// including fill, drain, and stalls.
    pub fn cycles(&self, total_ops: u64, elements: u64) -> Cycles {
        self.stall.validate();
        let peak = u64::from(self.peak_ops_per_cycle());
        assert!(
            peak > 0,
            "pipeline must have at least one lane and one op/cycle"
        );
        let steady = total_ops.div_ceil(peak);
        let stalled = match self.stall {
            StallModel::None => steady,
            StallModel::PerElement { cycles } => steady + (cycles * elements as f64).round() as u64,
            StallModel::Efficiency { efficiency } => (steady as f64 / efficiency).ceil() as u64,
        };
        Cycles::new(self.fill_latency + stalled + self.drain_latency)
    }

    /// Effective operations per cycle actually delivered for a given workload —
    /// what a hardware counter would report, and the number RAT's
    /// `throughput_proc` tries to predict.
    pub fn effective_ops_per_cycle(&self, total_ops: u64, elements: u64) -> f64 {
        let c = self.cycles(total_ops, elements);
        if c == Cycles::ZERO {
            0.0
        } else {
            total_ops as f64 / c.as_f64()
        }
    }
}

/// A [`HardwareKernel`] built from a [`PipelineSpec`] plus a per-batch workload
/// description (total operations and element count per batch).
#[derive(Debug, Clone)]
pub struct PipelinedKernel {
    name: String,
    spec: PipelineSpec,
    ops_per_element: u64,
}

impl PipelinedKernel {
    /// A kernel executing `ops_per_element` operations for each element of a
    /// batch on the pipeline described by `spec`.
    pub fn new(name: impl Into<String>, spec: PipelineSpec, ops_per_element: u64) -> Self {
        spec.stall.validate();
        assert!(ops_per_element > 0, "ops_per_element must be positive");
        Self {
            name: name.into(),
            spec,
            ops_per_element,
        }
    }

    /// The underlying pipeline description.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Operations executed per element.
    pub fn ops_per_element(&self) -> u64 {
        self.ops_per_element
    }
}

impl HardwareKernel for PipelinedKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn batch_cycles(&self, batch: &Batch) -> Cycles {
        self.spec
            .cycles(self.ops_per_element * batch.elements, batch.elements)
    }

    // Cost depends only on the batch's element count, never its index, so the
    // whole run is index-uniform from the first batch.
    fn uniform_from(&self) -> Option<u64> {
        Some(0)
    }

    fn spec_digest(&self) -> u128 {
        let mut d = crate::digest::SpecDigest::new();
        d.write_str("pipelined");
        d.write_str(&self.name);
        d.write_u64(u64::from(self.spec.lanes));
        d.write_u64(u64::from(self.spec.ops_per_lane_cycle));
        d.write_u64(self.spec.fill_latency);
        d.write_u64(self.spec.drain_latency);
        match self.spec.stall {
            StallModel::None => d.write_tag(0),
            StallModel::PerElement { cycles } => {
                d.write_tag(1);
                d.write_f64(cycles);
            }
            StallModel::Efficiency { efficiency } => {
                d.write_tag(2);
                d.write_f64(efficiency);
            }
        }
        d.write_u64(self.ops_per_element);
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pdf1d_spec() -> PipelineSpec {
        // The Figure-3 design: 8 pipelines, each retiring 3 ops (sub, mul, add)
        // per cycle; stalls calibrated so the effective rate lands near the
        // measured ~18.9 ops/cycle.
        PipelineSpec {
            lanes: 8,
            ops_per_lane_cycle: 3,
            fill_latency: 18,
            drain_latency: 4,
            stall: StallModel::PerElement { cycles: 8.7 },
        }
    }

    #[test]
    fn peak_is_lanes_times_ops() {
        assert_eq!(pdf1d_spec().peak_ops_per_cycle(), 24);
    }

    #[test]
    fn no_stall_cycles_is_ops_over_peak_plus_latency() {
        let spec = PipelineSpec {
            lanes: 4,
            ops_per_lane_cycle: 2,
            fill_latency: 10,
            drain_latency: 5,
            stall: StallModel::None,
        };
        // 800 ops at 8/cycle = 100 cycles + 15 latency.
        assert_eq!(spec.cycles(800, 100), Cycles::new(115));
        // Non-divisible op counts round up.
        assert_eq!(spec.cycles(801, 100), Cycles::new(116));
    }

    #[test]
    fn per_element_stalls_accumulate() {
        let spec = PipelineSpec {
            lanes: 1,
            ops_per_lane_cycle: 1,
            fill_latency: 0,
            drain_latency: 0,
            stall: StallModel::PerElement { cycles: 2.5 },
        };
        // 100 ops over 10 elements: 100 steady + 25 stall.
        assert_eq!(spec.cycles(100, 10), Cycles::new(125));
    }

    #[test]
    fn efficiency_derate_scales_cycles() {
        let spec = PipelineSpec {
            lanes: 10,
            ops_per_lane_cycle: 5,
            fill_latency: 0,
            drain_latency: 0,
            stall: StallModel::Efficiency { efficiency: 0.5 },
        };
        assert_eq!(spec.cycles(5000, 1), Cycles::new(200)); // 100 steady / 0.5
    }

    #[test]
    fn pdf1d_batch_matches_measured_magnitude() {
        // One 512-element batch, 768 ops/element: the paper measured 1.39e-4 s
        // at 150 MHz = 20850 cycles. The calibrated model must land within 2%.
        let spec = pdf1d_spec();
        let cycles = spec.cycles(512 * 768, 512);
        let measured = 20850.0;
        assert!(
            (cycles.as_f64() - measured).abs() / measured < 0.02,
            "calibrated cycles {cycles} drifted from the paper's 20850"
        );
        let eff = spec.effective_ops_per_cycle(512 * 768, 512);
        assert!(
            eff > 18.0 && eff < 20.0,
            "effective ops/cycle {eff} out of band"
        );
    }

    #[test]
    fn pipelined_kernel_uses_batch_elements() {
        let k = PipelinedKernel::new("k", pdf1d_spec(), 768);
        let small = k.batch_cycles(&Batch {
            index: 0,
            elements: 256,
            bytes: 1024,
        });
        let large = k.batch_cycles(&Batch {
            index: 0,
            elements: 512,
            bytes: 2048,
        });
        assert!(large > small);
        assert_eq!(k.ops_per_element(), 768);
        assert_eq!(k.spec().lanes, 8);
    }

    #[test]
    #[should_panic(expected = "in (0, 1]")]
    fn invalid_efficiency_panics() {
        let spec = PipelineSpec {
            lanes: 1,
            ops_per_lane_cycle: 1,
            fill_latency: 0,
            drain_latency: 0,
            stall: StallModel::Efficiency { efficiency: 1.5 },
        };
        spec.cycles(10, 1);
    }

    #[test]
    fn effective_rate_below_peak_with_stalls() {
        let spec = pdf1d_spec();
        let eff = spec.effective_ops_per_cycle(512 * 768, 512);
        assert!(eff < spec.peak_ops_per_cycle() as f64);
    }
}
