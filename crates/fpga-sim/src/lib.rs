//! Discrete-event FPGA co-processor platform simulator.
//!
//! The RAT paper validates its analytical predictions against wall-clock
//! measurements of real FPGA platforms (a Nallatech H101-PCIXM card on PCI-X and
//! an XtremeData XD1000 on HyperTransport). This crate is the reproduction's
//! stand-in for that hardware: a simulator detailed enough to exhibit the
//! *mechanisms* that made the paper's predictions err —
//!
//! - per-transfer interconnect setup latency that dominates small transfers
//!   (1-D PDF's communication came in 4.5x over prediction),
//! - sustained-bandwidth curves that differ by transfer size from what a
//!   single-size microbenchmark suggests (2-D PDF's 6x communication miss),
//! - pipeline fill/drain and stall cycles that shave ~15–40% off ideal
//!   operations-per-cycle,
//! - data-dependent computation whose cycle count is a function of the actual
//!   dataset (molecular dynamics),
//! - host API call and kernel-synchronization overheads invisible to the
//!   analytical model.
//!
//! # Architecture
//!
//! - [`time::SimTime`]: picosecond-resolution simulation time.
//! - [`queue::EventQueue`]: deterministic discrete-event queue.
//! - [`interconnect::Interconnect`]: bus models with setup latency and a
//!   size-dependent sustained-efficiency curve ([`interconnect::AlphaCurve`]).
//! - [`kernel`]: the [`kernel::HardwareKernel`] trait and stock implementations
//!   ([`pipeline::PipelinedKernel`], [`kernel::TabulatedKernel`]).
//! - [`platform::Platform`]: a host + interconnect + FPGA assembly that executes
//!   an [`platform::AppRun`] under single- or double-buffered scheduling and
//!   returns a [`platform::Measurement`] with a full [`trace::Trace`].
//! - [`trace::TraceSink`]: where spans go during execution — a materialized
//!   [`trace::FullTrace`], a counting [`trace::SummarySink`], or a
//!   [`trace::NullSink`] for trace-free summary runs, which additionally
//!   unlock steady-state fast-forward ([`platform::FastForward`]): periodic
//!   schedules are detected and skipped arithmetically, bit-identically to
//!   exhaustive simulation.
//! - [`microbench`]: derive the "alpha" sustained-fraction parameters the same
//!   way the paper does — by timing simulated transfers.
//! - [`catalog`]: the two platforms the paper evaluates, plus a generic PCIe-like
//!   profile.
//!
//! # Example
//!
//! ```
//! use fpga_sim::catalog;
//! use fpga_sim::kernel::TabulatedKernel;
//! use fpga_sim::platform::{AppRun, BufferMode, Platform};
//! use rat_core::quantity::Freq;
//!
//! let platform = Platform::new(catalog::nallatech_h101());
//! let kernel = TabulatedKernel::uniform("demo", 1000, 4); // 4 batches, 1000 cycles each
//! let run = AppRun::builder()
//!     .iterations(4)
//!     .input_bytes_per_iter(2048)
//!     .output_bytes_per_iter(2048)
//!     .buffer_mode(BufferMode::Double)
//!     .build();
//! let m = platform.execute(&kernel, &run, Freq::from_mhz(100.0)).unwrap();
//! assert!(m.total.as_secs_f64() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod digest;
pub mod host;
pub mod interconnect;
pub mod kernel;
pub mod microbench;
pub mod pipeline;
pub mod platform;
pub mod queue;
pub mod time;
pub mod trace;

pub use cache::{CacheStats, SimCache, SimSummary};
pub use digest::{run_key, SpecDigest};
pub use interconnect::{AlphaCurve, Direction, Interconnect};
pub use kernel::{Batch, HardwareKernel, TabulatedKernel};
pub use pipeline::{PipelineSpec, PipelinedKernel, StallModel};
pub use platform::{AppRun, BufferMode, FastForward, Measurement, Platform, PlatformSpec};
pub use time::SimTime;
pub use trace::{FullTrace, NullSink, SummarySink, Trace, TraceSink};
