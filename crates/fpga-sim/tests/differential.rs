//! Differential tests for the simulator's fast paths.
//!
//! The fast-forward optimizer and the trace-free sinks exist only to make the
//! exhaustive simulation cheaper — never to change its answers. Each property
//! here drives both the fast and the slow path over randomly generated
//! platforms, kernels, and runs, and requires bit-identical results:
//!
//! * [`FastForward::Auto`] vs [`FastForward::Off`] on `execute_summary`
//!   (the path that actually jumps) and on `execute` (where recording sinks
//!   must keep fast-forward disabled);
//! * [`NullSink`] summaries vs scalars derived from a [`FullTrace`] run.

use fpga_sim::host::HostModel;
use fpga_sim::pipeline::{PipelineSpec, PipelinedKernel, StallModel};
use fpga_sim::trace::Resource;
use fpga_sim::{
    AlphaCurve, AppRun, BufferMode, FastForward, FullTrace, Interconnect, NullSink, Platform,
    PlatformSpec, SimTime, TabulatedKernel,
};
use proptest::prelude::*;
use rat_core::quantity::{Freq, Throughput};

fn spec(alpha_w: f64, alpha_r: f64, setup_ns: u64, api_ns: u64, sync_ns: u64) -> PlatformSpec {
    PlatformSpec {
        name: "diff".into(),
        interconnect: Interconnect {
            name: "diff-bus".into(),
            ideal_bw: Throughput::from_bytes_per_sec(1.0e9),
            setup_write: SimTime::from_ns(setup_ns),
            setup_read: SimTime::from_ns(setup_ns),
            alpha_write: AlphaCurve::flat(alpha_w),
            alpha_read: AlphaCurve::flat(alpha_r),
            max_dma_bytes: None,
        },
        host: HostModel {
            api_call_overhead: SimTime::from_ns(api_ns),
            kernel_sync_overhead: SimTime::from_ns(sync_ns),
        },
        reconfiguration: SimTime::ZERO,
    }
}

/// A run shape drawn from the full option space the scheduler supports.
#[derive(Debug, Clone)]
struct RunShape {
    iters: u64,
    in_bytes: u64,
    out_bytes: u64,
    final_bytes: u64,
    mode: BufferMode,
    streamed: bool,
    kernels: u32,
}

impl RunShape {
    fn build(&self) -> AppRun {
        AppRun::builder()
            .iterations(self.iters)
            .elements_per_iter(8)
            .input_bytes_per_iter(self.in_bytes)
            .output_bytes_per_iter(self.out_bytes)
            .final_output_bytes(self.final_bytes)
            .buffer_mode(self.mode)
            .streamed_output(self.streamed)
            .parallel_kernels(self.kernels)
            .build()
    }
}

fn run_shape() -> impl Strategy<Value = RunShape> {
    (
        1u64..600,
        0u64..50_000,
        0u64..50_000,
        0u64..50_000,
        prop_oneof![Just(BufferMode::Single), Just(BufferMode::Double)],
        any::<bool>(),
        1u32..5,
    )
        .prop_map(
            |(iters, in_bytes, out_bytes, final_bytes, mode, streamed, kernels)| RunShape {
                iters,
                in_bytes: in_bytes.max(1),
                out_bytes,
                final_bytes,
                mode,
                streamed,
                kernels,
            },
        )
}

/// A tabulated kernel with a random varying prefix and a uniform tail — the
/// shape `uniform_from` is built to exploit. `prefix` may be empty (a fully
/// uniform table) and may also cover the whole table (nothing to exploit).
fn prefixed_kernel(iters: u64) -> impl Strategy<Value = TabulatedKernel> {
    (prop::collection::vec(1u64..200_000, 0..6), 1u64..200_000).prop_map(move |(prefix, tail)| {
        let mut cycles = prefix;
        cycles.truncate(iters as usize);
        cycles.resize(iters as usize, tail);
        TabulatedKernel::new("diff-k", cycles)
    })
}

proptest! {
    /// Fast-forward is invisible on the summary path: with and without it,
    /// `execute_summary` produces the same `SimSummary`, bit for bit, over
    /// arbitrary platform/kernel/run shapes.
    #[test]
    fn fast_forward_summary_matches_exhaustive(
        shape in run_shape().prop_flat_map(|s| {
            let iters = s.iters;
            (Just(s), prefixed_kernel(iters))
        }),
        alpha_w in 0.05f64..1.0,
        alpha_r in 0.05f64..1.0,
        setup_ns in 0u64..10_000,
        api_ns in 0u64..10_000,
        sync_ns in 0u64..10_000,
        mhz in 1u64..1_000,
    ) {
        let (shape, kernel) = shape;
        let run = shape.build();
        let fclock = Freq::from_hz(mhz as f64 * 1e6);
        let s = spec(alpha_w, alpha_r, setup_ns, api_ns, sync_ns);
        let fast = Platform::new(s.clone())
            .execute_summary(&kernel, &run, fclock, None)
            .unwrap();
        let slow = Platform::new(s)
            .with_fast_forward(FastForward::Off)
            .execute_summary(&kernel, &run, fclock, None)
            .unwrap();
        prop_assert_eq!(fast, slow);
    }

    /// The full-trace path is identical with fast-forward enabled or not
    /// (recording sinks keep fast-forward disabled, so `Auto` must be a
    /// no-op there): Measurements — totals, busy accounting, and every
    /// trace span — agree exactly.
    #[test]
    fn fast_forward_never_perturbs_traced_runs(
        shape in run_shape().prop_flat_map(|s| {
            let iters = s.iters;
            (Just(s), prefixed_kernel(iters))
        }),
        alpha_w in 0.05f64..1.0,
        alpha_r in 0.05f64..1.0,
        setup_ns in 0u64..10_000,
        mhz in 1u64..1_000,
    ) {
        let (shape, kernel) = shape;
        let run = shape.build();
        let fclock = Freq::from_hz(mhz as f64 * 1e6);
        let s = spec(alpha_w, alpha_r, setup_ns, 100, 100);
        let auto = Platform::new(s.clone()).execute(&kernel, &run, fclock).unwrap();
        let off = Platform::new(s)
            .with_fast_forward(FastForward::Off)
            .execute(&kernel, &run, fclock)
            .unwrap();
        prop_assert_eq!(auto.total, off.total);
        prop_assert_eq!(auto.comm_busy, off.comm_busy);
        prop_assert_eq!(auto.compute_busy, off.compute_busy);
        prop_assert_eq!(auto.host_overhead, off.host_overhead);
        prop_assert_eq!(auto.trace.spans(), off.trace.spans());
    }

    /// A trace-free run reports exactly the scalars a full trace would:
    /// the `NullSink` summary equals the `FullTrace` summary, and the
    /// trace's own busy/end accounting confirms both.
    #[test]
    fn null_sink_matches_full_trace_scalars(
        shape in run_shape().prop_flat_map(|s| {
            let iters = s.iters;
            (Just(s), prefixed_kernel(iters))
        }),
        alpha_w in 0.05f64..1.0,
        alpha_r in 0.05f64..1.0,
        setup_ns in 0u64..10_000,
        mhz in 1u64..1_000,
    ) {
        let (shape, kernel) = shape;
        let run = shape.build();
        let fclock = Freq::from_hz(mhz as f64 * 1e6);
        // Fast-forward off on both sides so this property isolates the sink:
        // trace-free accounting vs trace-derived accounting on the very same
        // event sequence.
        let platform = Platform::new(spec(alpha_w, alpha_r, setup_ns, 250, 250))
            .with_fast_forward(FastForward::Off);
        let (bare, _) = platform.execute_with(&kernel, &run, fclock, NullSink).unwrap();
        let (traced, sink) = platform
            .execute_with(&kernel, &run, fclock, FullTrace::new())
            .unwrap();
        prop_assert_eq!(bare, traced);
        let trace = sink.into_trace();
        prop_assert_eq!(trace.end(), bare.total);
        // Streamed (overlapped) output spans land on the Comm resource in the
        // trace but are accounted separately from blocking channel time.
        prop_assert_eq!(trace.busy(Resource::Comm), bare.comm_busy + bare.streamed_comm);
        prop_assert_eq!(trace.busy(Resource::Comp), bare.compute_busy);
    }

    /// Pipelined kernels (index-uniform by construction) fast-forward to the
    /// same summary the exhaustive simulation produces.
    #[test]
    fn pipelined_kernel_fast_forward_matches(
        shape in run_shape(),
        lanes in 1u32..8,
        fill in 0u64..64,
        drain in 0u64..64,
        ops_per_element in 1u64..64,
        mhz in 1u64..1_000,
    ) {
        let kernel = PipelinedKernel::new(
            "diff-pipe",
            PipelineSpec {
                lanes,
                ops_per_lane_cycle: 1,
                fill_latency: fill,
                drain_latency: drain,
                stall: StallModel::None,
            },
            ops_per_element,
        );
        let run = shape.build();
        let fclock = Freq::from_hz(mhz as f64 * 1e6);
        let s = spec(0.8, 0.6, 500, 1_000, 1_000);
        let fast = Platform::new(s.clone())
            .execute_summary(&kernel, &run, fclock, None)
            .unwrap();
        let slow = Platform::new(s)
            .with_fast_forward(FastForward::Off)
            .execute_summary(&kernel, &run, fclock, None)
            .unwrap();
        prop_assert_eq!(fast, slow);
    }
}
