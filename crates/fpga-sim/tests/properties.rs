//! Property-based tests for the platform simulator: time arithmetic, event
//! ordering, interconnect physics, and schedule invariants.

use fpga_sim::host::HostModel;
use fpga_sim::interconnect::Direction;
use fpga_sim::queue::EventQueue;
use fpga_sim::trace::Resource;
use fpga_sim::{
    AlphaCurve, AppRun, BufferMode, Interconnect, Platform, PlatformSpec, SimTime, TabulatedKernel,
};
use proptest::prelude::*;
use rat_core::quantity::{Cycles, Freq, Throughput};

fn bus(alpha_w: f64, alpha_r: f64, setup_ns: u64) -> Interconnect {
    Interconnect {
        name: "prop-bus".into(),
        ideal_bw: Throughput::from_bytes_per_sec(1.0e9),
        setup_write: SimTime::from_ns(setup_ns),
        setup_read: SimTime::from_ns(setup_ns),
        alpha_write: AlphaCurve::flat(alpha_w),
        alpha_read: AlphaCurve::flat(alpha_r),
        max_dma_bytes: None,
    }
}

/// Body of `schedule_invariants`, shared between the property and the named
/// regression test so a replayed corpus case runs exactly the code the
/// property does.
fn check_schedule_invariants(
    in_bytes: u64,
    out_bytes: u64,
    cycles: u64,
    iters: u64,
    kernels: u32,
    api_ns: u64,
    sync_ns: u64,
) {
    let spec = PlatformSpec {
        name: "prop".into(),
        interconnect: bus(0.8, 0.6, 500),
        host: HostModel {
            api_call_overhead: SimTime::from_ns(api_ns),
            kernel_sync_overhead: SimTime::from_ns(sync_ns),
        },
        reconfiguration: SimTime::ZERO,
    };
    let platform = Platform::new(spec);
    let kernel = TabulatedKernel::uniform("k", cycles, iters as usize);
    let mk = |mode: BufferMode, k: u32| {
        AppRun::builder()
            .iterations(iters)
            .elements_per_iter(1)
            .input_bytes_per_iter(in_bytes)
            .output_bytes_per_iter(out_bytes)
            .buffer_mode(mode)
            .parallel_kernels(k)
            .build()
    };
    let sb = platform
        .execute(&kernel, &mk(BufferMode::Single, 1), Freq::from_hz(1.0e8))
        .unwrap();
    let db = platform
        .execute(&kernel, &mk(BufferMode::Double, 1), Freq::from_hz(1.0e8))
        .unwrap();
    let dbk = platform
        .execute(
            &kernel,
            &mk(BufferMode::Double, kernels),
            Freq::from_hz(1.0e8),
        )
        .unwrap();
    assert!(db.total <= sb.total);
    assert!(dbk.total <= db.total + SimTime::from_ns(1));
    for m in [&sb, &db] {
        assert!(m.total >= m.comm_busy);
        assert!(m.total >= m.compute_busy);
    }
    for m in [&sb, &db, &dbk] {
        assert!(m.total >= m.comm_busy);
        assert_eq!(m.iterations, iters);
    }
    // With K parallel kernels the aggregate occupancy can exceed the
    // makespan, but never by more than the unit count.
    assert!(dbk.total.as_ps() as u128 * kernels as u128 >= dbk.compute_busy.as_ps() as u128);
    assert_eq!(sb.comm_busy, db.comm_busy);
    assert_eq!(sb.compute_busy, dbk.compute_busy);
    // Trace accounting agrees with the measurement.
    assert_eq!(sb.trace.busy(Resource::Comp), sb.compute_busy);
    assert_eq!(sb.trace.busy(Resource::Comm), sb.comm_busy);
}

/// Body of `microbench_recovers_flat_alpha` (shared with the named
/// regression test).
fn check_microbench_recovers_flat_alpha(alpha: f64, setup: u64) {
    let ic = bus(alpha, alpha, setup);
    let large = fpga_sim::microbench::measure_alpha(&ic, 1 << 26);
    assert!(large.alpha_write <= 1.0);
    assert!(
        (large.alpha_write - alpha).abs() / alpha < 0.01,
        "derived {} vs true {alpha}",
        large.alpha_write
    );
    // Picosecond rounding of tiny payload times can perturb the derived
    // alpha by a few ppm; allow that noise.
    let small = fpga_sim::microbench::measure_alpha(&ic, 64);
    assert!(
        small.alpha_write <= large.alpha_write * (1.0 + 1e-4),
        "setup latency must not make small transfers look faster"
    );
}

/// Replays the shrunken case formerly recorded as `properties.proptest-regressions`
/// seed `a2ba50e2…`: a one-byte input with no output, two parallel kernels,
/// and a zero-overhead host — the `dbk.total <= db.total + 1ns` bound once
/// fired here. The corpus file is gone; this named test keeps the case
/// reviewable.
#[test]
fn regression_schedule_invariants_two_kernels_one_byte_input() {
    check_schedule_invariants(1, 0, 784, 6, 2, 0, 0);
}

/// Replays the shrunken case formerly recorded as `properties.proptest-regressions`
/// seed `9dc7c729…`: a low-efficiency bus (alpha ≈ 0.134) with zero setup
/// latency, where picosecond rounding once made a 64-byte transfer look
/// faster than the asymptotic rate.
#[test]
fn regression_microbench_alpha_low_efficiency_zero_setup() {
    check_microbench_recovers_flat_alpha(0.134_400_872_107_994_26, 0);
}

proptest! {
    /// SimTime cycle conversions round-trip.
    #[test]
    fn cycles_round_trip(cycles in 1u64..1_000_000, mhz in 1u64..2_000) {
        let f = Freq::from_hz(mhz as f64 * 1e6);
        let t = SimTime::from_cycles(Cycles::new(cycles), f);
        prop_assert_eq!(t.as_cycles(f), Cycles::new(cycles));
    }

    /// SimTime addition is commutative/associative and Display never panics.
    #[test]
    fn simtime_arithmetic(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40, c in 0u64..1u64 << 40) {
        let (ta, tb, tc) = (SimTime::from_ps(a), SimTime::from_ps(b), SimTime::from_ps(c));
        prop_assert_eq!(ta + tb, tb + ta);
        prop_assert_eq!((ta + tb) + tc, ta + (tb + tc));
        let _ = format!("{ta}");
        prop_assert_eq!((ta + tb).saturating_sub(tb), ta);
    }

    /// Events pop in nondecreasing time order with FIFO tie-break.
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, SimTime::from_ns(t));
            if let Some((lt, li)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(i > li, "FIFO tie-break violated");
                }
            }
            last = Some((at, i));
        }
    }

    /// Transfer time is monotone in payload size and always at least the
    /// setup latency.
    #[test]
    fn transfer_time_monotone(
        alpha in 0.05f64..1.0,
        setup in 0u64..100_000,
        a in 1u64..1u64 << 24,
        b in 1u64..1u64 << 24,
    ) {
        let ic = bus(alpha, alpha, setup);
        let (small, large) = (a.min(b), a.max(b));
        for dir in [Direction::Write, Direction::Read] {
            let ts = ic.transfer_time(small, dir);
            let tl = ic.transfer_time(large, dir);
            prop_assert!(tl >= ts);
            prop_assert!(ts >= SimTime::from_ns(setup));
        }
    }

    /// AlphaCurve interpolation stays within the envelope of its points.
    #[test]
    fn alpha_curve_within_envelope(
        e1 in 0.01f64..1.0,
        e2 in 0.01f64..1.0,
        e3 in 0.01f64..1.0,
        probe in 1u64..1u64 << 26,
    ) {
        let c = AlphaCurve::from_points(vec![(1024, e1), (65536, e2), (1 << 24, e3)]);
        let lo = e1.min(e2).min(e3);
        let hi = e1.max(e2).max(e3);
        let got = c.efficiency(probe);
        prop_assert!(got >= lo - 1e-12 && got <= hi + 1e-12, "{got} outside [{lo}, {hi}]");
    }

    /// Simulated schedules respect fundamental bounds for arbitrary workloads
    /// and host overheads: makespan >= each resource's busy time, DB <= SB,
    /// busy totals schedule-independent, kernel count never hurts.
    #[test]
    fn schedule_invariants(
        in_bytes in 1u64..100_000,
        out_bytes in 0u64..100_000,
        cycles in 1u64..1_000_000,
        iters in 1u64..12,
        kernels in 1u32..6,
        api_ns in 0u64..10_000,
        sync_ns in 0u64..10_000,
    ) {
        check_schedule_invariants(in_bytes, out_bytes, cycles, iters, kernels, api_ns, sync_ns);
    }

    /// Microbenchmark-derived alpha reproduces a flat curve's efficiency in
    /// the large-transfer limit and never exceeds 1.
    #[test]
    fn microbench_recovers_flat_alpha(alpha in 0.05f64..1.0, setup in 0u64..10_000) {
        check_microbench_recovers_flat_alpha(alpha, setup);
    }

    /// The memoized execute path is transparent: a cold run (miss), a warm
    /// run (hit), and an uncached direct execution all agree bit-for-bit,
    /// over arbitrary platform/run shapes.
    #[test]
    fn cache_warm_equals_cold_equals_direct(
        in_bytes in 1u64..100_000,
        out_bytes in 0u64..100_000,
        cycles in 1u64..1_000_000,
        iters in 1u64..12,
        setup_ns in 0u64..10_000,
        mhz in 1u64..1_000,
    ) {
        use fpga_sim::cache::{SimCache, SimSummary};
        let platform = Platform::new(PlatformSpec {
            name: "prop".into(),
            interconnect: bus(0.8, 0.6, setup_ns),
            host: HostModel::default(),
            reconfiguration: SimTime::ZERO,
        });
        let kernel = TabulatedKernel::uniform("k", cycles, iters as usize);
        let run = AppRun::builder()
            .iterations(iters)
            .elements_per_iter(1)
            .input_bytes_per_iter(in_bytes)
            .output_bytes_per_iter(out_bytes)
            .build();
        let f = Freq::from_hz(mhz as f64 * 1e6);

        let cache = SimCache::new();
        let cold = platform.execute_summary(&kernel, &run, f, Some(&cache)).unwrap();
        let warm = platform.execute_summary(&kernel, &run, f, Some(&cache)).unwrap();
        let direct = SimSummary::from(&platform.execute(&kernel, &run, f).unwrap());
        prop_assert_eq!(cold, warm);
        prop_assert_eq!(cold, direct);
        let stats = cache.stats();
        prop_assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}
