//! The paper's reported numbers, with provenance notes.
//!
//! Values come from Holland et al., HPRCTA'07, Tables 3/4/6/7/9/10. The only
//! available scan is OCR-damaged in places; entries marked *reconstructed*
//! are derived from the paper's prose as documented on each constant, and
//! should be read as "consistent with the paper" rather than "printed in the
//! paper".

/// One column of a performance table: predicted or measured values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfColumn {
    /// Clock frequency in Hz.
    pub fclock: f64,
    /// Per-iteration communication time (s).
    pub t_comm: f64,
    /// Per-iteration computation time (s).
    pub t_comp: f64,
    /// Communication utilization (single-buffered), if reported.
    pub util_comm: Option<f64>,
    /// Total RC execution time (s).
    pub t_rc: f64,
    /// Speedup over the software baseline.
    pub speedup: f64,
}

/// Table 3, predicted columns (75/100/150 MHz), printed in the paper.
pub const TABLE3_PREDICTED: [PerfColumn; 3] = [
    PerfColumn {
        fclock: 75.0e6,
        t_comm: 5.56e-6,
        t_comp: 2.62e-4,
        util_comm: Some(0.02),
        t_rc: 1.07e-1,
        speedup: 5.4,
    },
    PerfColumn {
        fclock: 100.0e6,
        t_comm: 5.56e-6,
        t_comp: 1.97e-4,
        util_comm: Some(0.03),
        t_rc: 8.09e-2,
        speedup: 7.2,
    },
    PerfColumn {
        fclock: 150.0e6,
        t_comm: 5.56e-6,
        t_comp: 1.31e-4,
        util_comm: Some(0.04),
        t_rc: 5.46e-2,
        speedup: 10.6,
    },
];

/// Table 3, the measured (actual) column at 150 MHz, printed in the paper.
pub const TABLE3_ACTUAL: PerfColumn = PerfColumn {
    fclock: 150.0e6,
    t_comm: 2.50e-5,
    t_comp: 1.39e-4,
    util_comm: Some(0.15),
    t_rc: 7.45e-2,
    speedup: 7.8,
};

/// Table 4 (1-D PDF resource usage on the LX100). The BRAM row (15%) is
/// legible; the DSP and slice rows are OCR-damaged, so only BRAM is compared
/// quantitatively.
pub const TABLE4_BRAM_UTIL: f64 = 0.15;

/// Table 6, predicted columns, printed in the paper.
pub const TABLE6_PREDICTED: [PerfColumn; 3] = [
    PerfColumn {
        fclock: 75.0e6,
        t_comm: 1.65e-3,
        t_comp: 1.12e-1,
        util_comm: Some(0.01),
        t_rc: 4.54e1,
        speedup: 3.5,
    },
    PerfColumn {
        fclock: 100.0e6,
        t_comm: 1.65e-3,
        t_comp: 8.39e-2,
        util_comm: Some(0.02),
        t_rc: 3.42e1,
        speedup: 4.6,
    },
    PerfColumn {
        fclock: 150.0e6,
        t_comm: 1.65e-3,
        t_comp: 5.59e-2,
        util_comm: Some(0.03),
        t_rc: 2.30e1,
        speedup: 6.9,
    },
];

/// Table 6's actual column is OCR-destroyed. *Reconstructed* from §5.1 prose:
/// communication came in "six times larger than predicted, comprising 19% of
/// the total execution instead of the originally estimated 3%", computation
/// was overestimated, and the 150 MHz prediction error was smaller than the
/// 1-D case's. Solving those constraints: t_comm = 6 x 1.65e-3 = 9.9e-3;
/// 19% utilization gives a 5.21e-2 s iteration, hence t_comp = 4.22e-2 and
/// t_RC = 2.08e1 (speedup 7.6).
pub const TABLE6_ACTUAL_RECONSTRUCTED: PerfColumn = PerfColumn {
    fclock: 150.0e6,
    t_comm: 9.9e-3,
    t_comp: 4.22e-2,
    util_comm: Some(0.19),
    t_rc: 2.08e1,
    speedup: 7.6,
};

/// Table 7 (2-D PDF resources): the slice row (21%) is the one legible value.
pub const TABLE7_SLICE_UTIL: f64 = 0.21;

/// Table 9, predicted columns, printed in the paper.
pub const TABLE9_PREDICTED: [PerfColumn; 3] = [
    PerfColumn {
        fclock: 75.0e6,
        t_comm: 2.62e-3,
        t_comp: 7.17e-1,
        util_comm: Some(0.004),
        t_rc: 7.19e-1,
        speedup: 8.0,
    },
    PerfColumn {
        fclock: 100.0e6,
        t_comm: 2.62e-3,
        t_comp: 5.37e-1,
        util_comm: None,
        t_rc: 5.40e-1,
        speedup: 10.7,
    },
    PerfColumn {
        fclock: 150.0e6,
        t_comm: 2.62e-3,
        t_comp: 3.58e-1,
        util_comm: Some(0.007),
        t_rc: 3.61e-1,
        speedup: 16.0,
    },
];

/// Table 9, the measured column at 100 MHz, printed in the paper.
pub const TABLE9_ACTUAL: PerfColumn = PerfColumn {
    fclock: 100.0e6,
    t_comm: 1.39e-3,
    t_comp: 8.79e-1,
    util_comm: None,
    t_rc: 8.80e-1,
    speedup: 6.6,
};

/// Table 10 (MD resources on the EP2S180): the printed percentages are
/// OCR-damaged; §5.2's prose reports "a large percentage of the combinatorial
/// logic and dedicated multiply-accumulators (DSPs) were required" and that
/// parallelism was "ultimately limited by the availability of multiplier
/// resources" — i.e. DSP utilization at (or effectively at) 100%.
pub const TABLE10_DSP_SATURATED: bool = true;

/// Software baselines: 1-D PDF (printed), 2-D PDF (printed), MD
/// (*reconstructed*: Table 8's t_soft is illegible but pinned by Table 9's
/// three predicted speedup/t_RC pairs, all of which give 5.78 s).
pub const T_SOFT_PDF1D: f64 = 0.578;
/// 2-D PDF software baseline (printed in Table 5).
pub const T_SOFT_PDF2D: f64 = 158.8;
/// MD software baseline (reconstructed; see [`T_SOFT_PDF1D`] docs).
pub const T_SOFT_MD: f64 = 5.78;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reported_tables_are_internally_consistent() {
        // speedup = t_soft / t_RC must hold for every printed column to ~2%
        // (the paper rounds to 2-3 significant figures).
        for c in TABLE3_PREDICTED {
            assert!((T_SOFT_PDF1D / c.t_rc - c.speedup).abs() / c.speedup < 0.02);
        }
        for c in TABLE6_PREDICTED {
            assert!((T_SOFT_PDF2D / c.t_rc - c.speedup).abs() / c.speedup < 0.02);
        }
        for c in TABLE9_PREDICTED {
            assert!((T_SOFT_MD / c.t_rc - c.speedup).abs() / c.speedup < 0.02);
        }
        assert!((T_SOFT_PDF1D / TABLE3_ACTUAL.t_rc - TABLE3_ACTUAL.speedup).abs() < 0.1);
        assert!((T_SOFT_MD / TABLE9_ACTUAL.t_rc - TABLE9_ACTUAL.speedup).abs() < 0.1);
    }

    #[test]
    fn reconstructed_table6_satisfies_the_prose() {
        let a = TABLE6_ACTUAL_RECONSTRUCTED;
        assert!((a.t_comm / 1.65e-3 - 6.0).abs() < 0.1, "6x communication");
        let util = a.t_comm / (a.t_comm + a.t_comp);
        assert!((util - 0.19).abs() < 0.005, "19% utilization");
        assert!(
            a.t_comp < 5.59e-2,
            "computation overestimated by the prediction"
        );
        let pred_err = (6.9 - a.speedup).abs() / a.speedup;
        let pred_err_1d = (10.6 - 7.8f64).abs() / 7.8;
        assert!(pred_err < pred_err_1d, "2-D prediction closer than 1-D");
    }

    #[test]
    fn rc_times_are_iterations_times_per_iteration_sums() {
        // Single-buffered: t_RC = 400 * (t_comm + t_comp) for the PDF tables.
        for c in TABLE3_PREDICTED {
            let expect = 400.0 * (c.t_comm + c.t_comp);
            assert!((c.t_rc - expect).abs() / expect < 0.02);
        }
        for c in TABLE6_PREDICTED {
            let expect = 400.0 * (c.t_comm + c.t_comp);
            assert!((c.t_rc - expect).abs() / expect < 0.02);
        }
    }
}
