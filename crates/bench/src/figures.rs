//! Renderers for the paper's three figures.

use fpga_sim::kernel::TabulatedKernel;
use fpga_sim::platform::{AppRun, BufferMode, Platform};
use fpga_sim::time::SimTime;
use fpga_sim::trace::Trace;
use rat_apps::pdf::pdf1d;
use rat_core::quantity::{Freq, Throughput};

/// Figure 1: the RAT methodology flow. Rendered from the executable
/// state machine's structure plus a live pass over the 1-D PDF design.
pub fn render_figure1() -> String {
    let flow = [
        "Figure 1: Overview of RAT methodology",
        "=====================================",
        "START: identify kernel, create design on paper",
        "  |",
        "  v",
        "[Throughput Test] --insufficient comm./comp. throughput--> REVISE (new design)",
        "  | desirable performance",
        "  v",
        "[Precision Test] --unrealizable precision requirement--> REVISE (new design)",
        "  | acceptable balance of performance and precision",
        "  v",
        "build in HDL or HLL, simulate design",
        "  |",
        "  v",
        "[Resource Test] --insufficient resources--> REVISE (new design)",
        "  | sufficient",
        "  v",
        "PROCEED: verify on HW platform",
        "",
        "Live pass over the 1-D PDF design (150 MHz, min speedup 10x):",
    ];
    let mut s = flow.join("\n");
    s.push('\n');
    let report = rat_core::methodology::AmenabilityTest::new(
        pdf1d::rat_input(150.0e6),
        rat_core::methodology::Requirements {
            min_speedup: 10.0,
            reject_routing_strain: false,
        },
    )
    .with_resources(pdf1d::design().resource_report())
    .evaluate()
    .expect("valid input");
    s.push_str(&report.render());
    s
}

/// Figure 2: the three overlap scenarios, regenerated from *simulated
/// schedules* rather than hand drawing. A synthetic kernel and unit-speed bus
/// are sized to make each regime visible.
pub fn render_figure2() -> String {
    let spec = fpga_sim::platform::PlatformSpec {
        name: "figure2".into(),
        interconnect: fpga_sim::interconnect::Interconnect {
            name: "unit bus".into(),
            ideal_bw: Throughput::from_bytes_per_sec(1.0e9),
            setup_write: SimTime::ZERO,
            setup_read: SimTime::ZERO,
            alpha_write: fpga_sim::interconnect::AlphaCurve::flat(1.0),
            alpha_read: fpga_sim::interconnect::AlphaCurve::flat(1.0),
            max_dma_bytes: None,
        },
        host: fpga_sim::host::HostModel::IDEAL,
        reconfiguration: SimTime::ZERO,
    };
    let platform = Platform::new(spec);
    let run = |mode: BufferMode, comp_cycles: u64| -> Trace {
        let kernel = TabulatedKernel::uniform("k", comp_cycles, 3);
        let app = AppRun::builder()
            .iterations(3)
            .elements_per_iter(1)
            .input_bytes_per_iter(200)
            .output_bytes_per_iter(120)
            .buffer_mode(mode)
            .build();
        platform
            .execute(&kernel, &app, Freq::from_hz(1.0e9))
            .expect("valid")
            .trace
    };
    let mut s = String::from("Figure 2: Example overlap scenarios (simulated schedules)\n\n");
    s.push_str("Single Buffered\n");
    s.push_str(&run(BufferMode::Single, 400).render_gantt(64));
    s.push_str("\nDouble Buffered, Computation Bound\n");
    s.push_str(&run(BufferMode::Double, 400).render_gantt(64));
    s.push_str("\nDouble Buffered, Communication Bound\n");
    s.push_str(&run(BufferMode::Double, 150).render_gantt(64));
    s.push_str("\nLegend: R=Read(in), W=Write(out), C=Compute\n");
    s
}

/// Figure 3: the 1-D PDF architecture.
pub fn render_figure3() -> String {
    pdf1d::design().render_architecture()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shows_all_three_gates_and_the_live_pass() {
        let s = render_figure1();
        for gate in ["Throughput Test", "Precision Test", "Resource Test"] {
            assert!(s.contains(gate), "missing {gate}");
        }
        assert!(
            s.contains("PROCEED"),
            "1-D PDF at 150 MHz should proceed:\n{s}"
        );
    }

    #[test]
    fn figure2_has_three_scenarios_with_correct_overlap() {
        let s = render_figure2();
        assert!(s.contains("Single Buffered"));
        assert!(s.contains("Computation Bound"));
        assert!(s.contains("Communication Bound"));
        // All three Gantt charts render Comm and Comp rows.
        assert_eq!(s.matches("Comm |").count(), 3);
        assert_eq!(s.matches("Comp |").count(), 3);
    }

    #[test]
    fn figure2_single_buffered_schedule_is_serial_and_double_overlaps() {
        // Re-run the underlying schedules and check the overlap property the
        // figure is supposed to illustrate.
        let s = render_figure2();
        // SB: R1 C1 W1 sequence appears (labels present).
        assert!(s.contains("R1"));
        assert!(s.contains("C1"));
        assert!(s.contains("W1"));
    }

    #[test]
    fn figure3_matches_the_paper_architecture() {
        let s = render_figure3();
        assert!(s.contains("Figure 3"));
        assert!(s.contains("8 pipelines"));
    }
}
