//! Hot-path micro-benchmarks behind `rat bench`.
//!
//! Each scenario times one of the hot paths this workspace optimizes —
//! fast-forwarded summary simulation, trace-free sinks, and the batched SoA
//! sweep/Monte-Carlo kernels — next to the exhaustive, scalar, or cloning
//! baseline it replaced. The baselines reproduce the unoptimized code paths exactly
//! (full event-by-event simulation, one input clone per sample, one full
//! report per corner), so the reported ratios are the real win, not a straw
//! man. `rat bench --json` emits the machine-readable form checked in as
//! `BENCH_<pr>.json` evidence.

use std::time::{Duration, Instant};

use fpga_sim::{catalog, AppRun, BufferMode, FastForward, Platform, TabulatedKernel};
use rand::distributions::{Distribution, Uniform};
use rat_core::engine::{job_rng, Engine, EngineConfig};
use rat_core::explore::{explore, DesignSpace};
use rat_core::optimize::{optimize, OptimizeConfig, OptimizeSpace};
use rat_core::params::{Buffering, RatInput};
use rat_core::quantity::Freq;
use rat_core::resources::device::stratix2_ep2s180;
use rat_core::solve::batch::{speedup_batch, BatchPoints, CHUNK as BATCH_CHUNK};
use rat_core::sweep::SweepParam;
use rat_core::table::TextTable;
use rat_core::uncertainty::{propagate, propagate_with, ParamRange};
use rat_core::worksheet::Worksheet;

/// One timed scenario.
#[derive(Debug, Clone)]
pub struct BenchScenario {
    /// Machine-friendly scenario identifier.
    pub name: &'static str,
    /// Problem size (simulated iterations, Monte-Carlo samples, or corners).
    pub work: u64,
    /// Number of repetitions timed.
    pub reps: u32,
    /// Total wall time across all repetitions.
    pub total: Duration,
}

impl BenchScenario {
    /// Mean wall time per repetition, in nanoseconds.
    pub fn ns_per_rep(&self) -> u128 {
        self.total.as_nanos() / u128::from(self.reps.max(1))
    }
}

/// A fast-path/baseline speedup derived from two scenarios.
#[derive(Debug, Clone)]
pub struct BenchRatio {
    /// What is being compared.
    pub name: &'static str,
    /// Baseline wall time divided by fast-path wall time (per repetition).
    pub speedup: f64,
}

/// Version of the JSON shape emitted by [`BenchReport::to_json`]. Bump when
/// a field is renamed, retyped, or removed, or a required top-level block is
/// added — adding scenarios, ratios, or the optional `serve` block is not a
/// schema change. Checked-in `BENCH_<pr>.json` evidence files carry the
/// version they were produced with and are validated against *that* shape.
///
/// - **v1**: `schema_version`, `quick`, `scenarios[]`, `ratios[]`, optional
///   `serve{}`.
/// - **v2**: adds the required `host{}` provenance block (logical cores,
///   avx2/fma feature flags, rustc version) so perf gates can scale their
///   floors to the machine that produced the evidence.
/// - **v3**: the `serve{}` block grows the keep-alive transport and response
///   cache evidence: `close_requests`, `close_rps`,
///   `keepalive_vs_close_rps`, `reuse_ratio`, `connect_p50_us`,
///   `warm_uncached_p50_us`, `warm_cached_p50_us`, `warm_cached_speedup`.
pub const SCHEMA_VERSION: u64 = 3;

/// Provenance of a benchmark run: the hardware capabilities and compiler
/// that produced the numbers. Evidence without this context is ambiguous —
/// a flat `uncertainty_batch_scaling_8_vs_1` means a regression on an
/// 8-core host and is expected on a 1-core one, and kernel ratios depend on
/// whether the AVX2 path could run at all.
#[derive(Debug, Clone)]
pub struct HostInfo {
    /// Logical CPU count visible to the process.
    pub logical_cores: u64,
    /// Whether AVX2 was detected (the batch kernels' SIMD path).
    pub avx2: bool,
    /// Whether FMA was detected (recorded for provenance; the kernels avoid
    /// FMA contraction for bit-identity, see DESIGN.md §16).
    pub fma: bool,
    /// `rustc --version` of the compiler that built this binary.
    pub rustc: String,
}

impl HostInfo {
    /// Detect the current host.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        let (avx2, fma) = (
            std::arch::is_x86_feature_detected!("avx2"),
            std::arch::is_x86_feature_detected!("fma"),
        );
        #[cfg(not(target_arch = "x86_64"))]
        let (avx2, fma) = (false, false);
        HostInfo {
            logical_cores: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
            avx2,
            fma,
            rustc: env!("RAT_BENCH_RUSTC").to_string(),
        }
    }
}

/// Server-side load-generation results, attached by `rat bench --serve`.
/// Plain data here (the measuring code lives in `rat-serve`, which depends
/// on nothing in this crate) so the report can serialize it without a
/// dependency cycle. All latencies in microseconds.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Mixed-mode keep-alive requests completed against the warm server.
    pub requests: u64,
    /// Mixed-mode keep-alive throughput, requests per second.
    pub rps: f64,
    /// Close-per-request baseline requests (response cache disabled).
    pub close_requests: u64,
    /// Close-per-request baseline throughput, requests per second.
    pub close_rps: f64,
    /// `rps / close_rps` — the serving-path overhaul's throughput ratio,
    /// gated ≥ 3x by the perf gate.
    pub keepalive_vs_close_rps: f64,
    /// Fraction of keep-alive requests that reused an existing connection.
    pub reuse_ratio: f64,
    /// Median `connect()` time across the load phases.
    pub connect_p50_us: f64,
    /// Mixed-mode median latency.
    pub p50_us: f64,
    /// Mixed-mode 99th-percentile latency.
    pub p99_us: f64,
    /// Mixed-mode 99.9th-percentile latency.
    pub p999_us: f64,
    /// p50 of one identical request repeated against the uncached server.
    pub warm_uncached_p50_us: f64,
    /// p50 of the same repeated request served from the response cache.
    pub warm_cached_p50_us: f64,
    /// `warm_uncached_p50_us / warm_cached_p50_us` — gated ≥ 5x.
    pub warm_cached_speedup: f64,
    /// p50 of a cached `solve` against the warm server.
    pub warm_solve_p50_us: f64,
    /// p50 of a cold `rat solve` process invocation.
    pub cold_cli_solve_p50_us: f64,
    /// Cold-CLI p50 over warm-server p50 — the resident-service speedup the
    /// perf gate pins at ≥ 10x.
    pub warm_vs_cold: f64,
}

/// The full benchmark outcome: every scenario plus the derived ratios.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Whether the reduced `--quick` problem sizes were used.
    pub quick: bool,
    /// The machine and compiler that produced these numbers.
    pub host: HostInfo,
    /// All timed scenarios, in execution order.
    pub scenarios: Vec<BenchScenario>,
    /// Fast-vs-baseline ratios, in presentation order.
    pub ratios: Vec<BenchRatio>,
    /// Server load-generation results when `--serve` ran, else `None`.
    pub serve: Option<ServeBench>,
}

impl BenchReport {
    /// Render a human-readable summary table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new()
            .title(if self.quick {
                "Hot-path benchmarks (quick sizes — ratios not meaningful)".to_string()
            } else {
                "Hot-path benchmarks".to_string()
            })
            .header(["Scenario", "work", "reps", "ns/rep"]);
        for s in &self.scenarios {
            t.row([
                s.name.to_string(),
                s.work.to_string(),
                s.reps.to_string(),
                s.ns_per_rep().to_string(),
            ]);
        }
        let mut out = t.render();
        for r in &self.ratios {
            out.push_str(&format!("{}: {:.2}x\n", r.name, r.speedup));
        }
        out.push_str(&format!(
            "host: {} logical cores, avx2={}, fma={}, {}\n",
            self.host.logical_cores, self.host.avx2, self.host.fma, self.host.rustc
        ));
        if let Some(s) = &self.serve {
            out.push_str(&format!(
                "serve: {} keep-alive requests at {:.0} req/s; p50 {:.0} us | p99 {:.0} us | p999 {:.0} us\n\
                 serve_keepalive_vs_close_rps: {:.1}x ({:.0} req/s keep-alive vs {:.0} req/s close, reuse {:.3}, connect p50 {:.0} us)\n\
                 serve_warm_cached_speedup: {:.1}x ({:.0} us uncached vs {:.0} us cached)\n\
                 serve_warm_solve_vs_cold_cli: {:.1}x ({:.0} us warm vs {:.0} us cold)\n",
                s.requests,
                s.rps,
                s.p50_us,
                s.p99_us,
                s.p999_us,
                s.keepalive_vs_close_rps,
                s.rps,
                s.close_rps,
                s.reuse_ratio,
                s.connect_p50_us,
                s.warm_cached_speedup,
                s.warm_uncached_p50_us,
                s.warm_cached_p50_us,
                s.warm_vs_cold,
                s.warm_solve_p50_us,
                s.cold_cli_solve_p50_us,
            ));
        }
        out
    }

    /// Render as JSON (hand-rolled; every field is numeric, boolean, or a
    /// known-safe identifier — the one free-form string, the rustc version,
    /// is sanitized of quotes and backslashes).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        let rustc: String = self
            .host
            .rustc
            .chars()
            .filter(|c| *c != '"' && *c != '\\')
            .collect();
        out.push_str(&format!(
            "  \"host\": {{\"logical_cores\": {}, \"avx2\": {}, \"fma\": {}, \"rustc\": \"{}\"}},\n",
            self.host.logical_cores, self.host.avx2, self.host.fma, rustc
        ));
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            let comma = if i + 1 < self.scenarios.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"work\": {}, \"reps\": {}, \"total_ns\": {}, \"ns_per_rep\": {}}}{comma}\n",
                s.name,
                s.work,
                s.reps,
                s.total.as_nanos(),
                s.ns_per_rep()
            ));
        }
        out.push_str("  ],\n  \"ratios\": [\n");
        for (i, r) in self.ratios.iter().enumerate() {
            let comma = if i + 1 < self.ratios.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"speedup\": {:.2}}}{comma}\n",
                r.name, r.speedup
            ));
        }
        out.push_str("  ]");
        if let Some(s) = &self.serve {
            out.push_str(&format!(
                ",\n  \"serve\": {{\n    \"requests\": {}, \"rps\": {:.1},\n    \
                 \"close_requests\": {}, \"close_rps\": {:.1},\n    \
                 \"keepalive_vs_close_rps\": {:.2},\n    \
                 \"reuse_ratio\": {:.4}, \"connect_p50_us\": {:.1},\n    \
                 \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1},\n    \
                 \"warm_uncached_p50_us\": {:.1}, \"warm_cached_p50_us\": {:.1},\n    \
                 \"warm_cached_speedup\": {:.2},\n    \
                 \"warm_solve_p50_us\": {:.1}, \"cold_cli_solve_p50_us\": {:.1},\n    \
                 \"warm_vs_cold\": {:.2}\n  }}",
                s.requests,
                s.rps,
                s.close_requests,
                s.close_rps,
                s.keepalive_vs_close_rps,
                s.reuse_ratio,
                s.connect_p50_us,
                s.p50_us,
                s.p99_us,
                s.p999_us,
                s.warm_uncached_p50_us,
                s.warm_cached_p50_us,
                s.warm_cached_speedup,
                s.warm_solve_p50_us,
                s.cold_cli_solve_p50_us,
                s.warm_vs_cold,
            ));
        }
        out.push_str("\n}\n");
        out
    }
}

/// Time `reps` calls of `f`, three rounds, keeping the fastest round —
/// min-of-k discards one-off scheduler noise, which on a busy machine can
/// dwarf the effect being measured.
fn time<R>(reps: u32, mut f: impl FnMut() -> R) -> Duration {
    let mut best: Option<Duration> = None;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        best = Some(best.map_or(elapsed, |b| b.min(elapsed)));
    }
    best.expect("at least one round")
}

/// The pre-batching Monte-Carlo pipeline, preserved in full as the scalar
/// baseline: samples evaluated in 1024-sample chunks, each drawing from its
/// own `job_rng(seed, j)` stream, restoring a scratch input, applying the
/// sampled parameters in place, and computing the speedup per point — then
/// the same mean/variance/order-statistic summary `propagate` computes. Its
/// output is bit-identical to `propagate`'s; only the per-point evaluation
/// strategy (scalar loop vs SoA batch kernel) differs.
fn uncertainty_scalar_chunked_baseline(
    engine: &Engine,
    input: &RatInput,
    ranges: &[ParamRange],
    samples: usize,
    seed: u64,
) -> (f64, f64) {
    const CHUNK: usize = 1024;
    let dists: Vec<(SweepParam, Uniform<f64>)> = ranges
        .iter()
        .map(|r| (r.param, Uniform::new_inclusive(r.lo, r.hi)))
        .collect();
    let chunks = samples.div_ceil(CHUNK);
    let per_chunk = engine
        .try_run(chunks, |c| {
            let lo = c * CHUNK;
            let hi = (lo + CHUNK).min(samples);
            let mut scratch = input.clone();
            let mut out = Vec::with_capacity(hi - lo);
            for j in lo..hi {
                let mut rng = job_rng(seed, j as u64);
                scratch.copy_params_from(input);
                for (param, dist) in &dists {
                    param.apply_into(&mut scratch, dist.sample(&mut rng));
                }
                out.push(rat_core::solve::speedup_only(&scratch)?);
            }
            Ok::<_, rat_core::RatError>(out)
        })
        .expect("bench ranges are valid");
    let mut speedups: Vec<f64> = Vec::with_capacity(samples);
    for chunk in &per_chunk {
        speedups.extend_from_slice(chunk);
    }
    let n = speedups.len();
    let mean = speedups.iter().sum::<f64>() / n as f64;
    let var = speedups.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
    let mut pick = |q: f64| {
        let k = (((n - 1) as f64) * q).round() as usize;
        *speedups.select_nth_unstable_by(k, f64::total_cmp).1
    };
    let (_p5, _p50, _p95) = (pick(0.05), pick(0.50), pick(0.95));
    (mean, var.sqrt())
}

/// The unoptimized Monte-Carlo pipeline, preserved in full as a baseline:
/// one engine job per sample, one input clone per parameter application,
/// full validation per draw, then the same sort and summary statistics
/// `propagate` computes. Its output is bit-identical to `propagate`'s — only
/// the cost differs.
fn uncertainty_cloning_baseline(
    engine: &Engine,
    input: &RatInput,
    ranges: &[ParamRange],
    samples: usize,
    seed: u64,
) -> (f64, f64) {
    let dists: Vec<(SweepParam, Uniform<f64>)> = ranges
        .iter()
        .map(|r| (r.param, Uniform::new_inclusive(r.lo, r.hi)))
        .collect();
    let mut speedups = engine
        .try_run(samples, |j| {
            let mut rng = job_rng(seed, j as u64);
            let mut candidate = input.clone();
            for (param, dist) in &dists {
                candidate = param.apply(&candidate, dist.sample(&mut rng));
            }
            rat_core::solve::speedup_only(&candidate)
        })
        .expect("bench ranges are valid");
    speedups.sort_by(f64::total_cmp);
    let n = speedups.len();
    let mean = speedups.iter().sum::<f64>() / n as f64;
    let var = speedups.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
    (mean, var.sqrt())
}

/// The unoptimized exploration loop, preserved as a baseline: every corner
/// gets a cloned, name-formatted input and a full report, pass or fail.
fn explore_eager_baseline(space: &DesignSpace, min_speedup: f64) -> usize {
    let mut passing = 0usize;
    for corner in space.corners() {
        let report = Worksheet::new(corner).analyze().expect("valid corner");
        if report.speedup >= min_speedup {
            passing += 1;
        }
    }
    passing
}

/// Run every scenario and compute the ratios. `quick` shrinks problem sizes
/// and repetition counts so debug-mode test runs stay fast; quick ratios are
/// reported but not meaningful.
pub fn run(quick: bool) -> BenchReport {
    let (iters, samples, reps_sim, reps_mc, reps_explore) = if quick {
        (300u64, 100usize, 2u32, 1u32, 5u32)
    } else {
        (10_000u64, 10_000usize, 30u32, 5u32, 200u32)
    };
    // The fast-forwarded summary finishes in microseconds, so it (and its
    // telemetry-enabled twin) need far more repetitions than the
    // millisecond-scale scenarios for a stable per-rep figure.
    let reps_sim_fast = if quick { 20u32 } else { 3_000u32 };

    // Scenario family 1: the 10k-iteration double-buffered summary run the
    // acceptance criteria name — fast-forward + NullSink vs the exhaustive
    // event-by-event simulation vs the full-trace measurement.
    let spec = catalog::nallatech_h101();
    let kernel = TabulatedKernel::uniform("bench-k", 20_000, iters as usize);
    let run = AppRun::builder()
        .iterations(iters)
        .elements_per_iter(512)
        .input_bytes_per_iter(2048)
        .output_bytes_per_iter(1024)
        .buffer_mode(BufferMode::Double)
        .build();
    let fclock = Freq::from_mhz(150.0);
    let fast = Platform::new(spec.clone());
    let slow = Platform::new(spec.clone()).with_fast_forward(FastForward::Off);

    // The summary path finishes in microseconds, so the very first timed
    // scenario would otherwise absorb process cold-start (page faults,
    // frequency ramp) that dwarfs the effect measured. Warm it untimed.
    for _ in 0..5 {
        std::hint::black_box(fast.execute_summary(&kernel, &run, fclock, None).unwrap());
    }
    let t_summary_ff = time(reps_sim_fast, || {
        fast.execute_summary(&kernel, &run, fclock, None).unwrap()
    });
    let t_summary_exh = time(reps_sim, || {
        slow.execute_summary(&kernel, &run, fclock, None).unwrap()
    });
    let t_full_trace = time(reps_sim.div_ceil(4), || {
        fast.execute(&kernel, &run, fclock).unwrap()
    });

    // Scenario family 2: the 10k-sample Monte-Carlo run — the batched SoA
    // path inside `propagate` vs the pre-batching chunked scalar loop and
    // the clone-per-sample baseline, all on the sequential engine, then the
    // batched path again across a 1/2/4/8-worker ladder. All variants
    // produce bit-identical reports; only the evaluation strategy differs.
    let input = rat_apps::pdf::pdf1d::rat_input(150.0e6);
    let ranges = [
        ParamRange::new(SweepParam::Fclock, 75.0e6, 150.0e6),
        ParamRange::new(SweepParam::ThroughputProc, 16.0, 24.0),
    ];
    let sequential = Engine::sequential();
    let t_mc_scalar = time(reps_mc, || {
        uncertainty_scalar_chunked_baseline(&sequential, &input, &ranges, samples, 7)
    });
    let t_mc_cloning = time(reps_mc, || {
        uncertainty_cloning_baseline(&sequential, &input, &ranges, samples, 7)
    });
    let t_mc_batch = time(reps_mc, || propagate(&input, &ranges, samples, 7).unwrap());
    let jobs_ladder = [1usize, 2, 4, 8];
    let t_mc_batch_jobs: Vec<Duration> = jobs_ladder
        .iter()
        .map(|&jobs| {
            let engine = Engine::new(EngineConfig::default().with_jobs(jobs));
            time(reps_mc, || {
                propagate_with(&engine, &input, &ranges, samples, 7).unwrap()
            })
        })
        .collect();

    // Scenario family 2a: the SoA kernel in isolation — one CHUNK-point
    // batch through `speedup_batch` vs the same points through the scalar
    // scratch-and-apply loop. This is the pure per-point win, free of RNG
    // draws and statistics.
    let kernel_points: Vec<f64> = (0..BATCH_CHUNK)
        .map(|i| 75.0e6 + 75.0e6 * (i as f64 / BATCH_CHUNK as f64))
        .collect();
    let reps_kernel = if quick { 20u32 } else { 2_000u32 };
    let t_kernel_batch = time(reps_kernel, || {
        // Borrow the column, as every chunked driver does — cloning here
        // would charge an 8 KiB alloc+memcpy to a kernel that no caller
        // pays for.
        let mut batch = BatchPoints::new(&input, kernel_points.len());
        batch.push_column(SweepParam::Fclock, kernel_points.as_slice());
        speedup_batch(&batch).unwrap()
    });
    let t_kernel_scalar = time(reps_kernel, || {
        let mut scratch = input.clone();
        let mut acc = 0.0;
        for &v in &kernel_points {
            scratch.copy_params_from(&input);
            SweepParam::Fclock.apply_into(&mut scratch, v);
            acc += rat_core::solve::speedup_only(&scratch).unwrap();
        }
        acc
    });

    // Scenario family 2c: the staged sweep kernel. A single-axis fclock
    // sweep's stage plan proves the communication terms uniform, so the
    // kernel hoists both comm divides out of the point loop (the batched
    // face of the comm-stage skip). The baseline is the pre-stage-graph
    // eager kernel — forced here by adding a broadcast `alpha_write` column
    // at the base value, which marks the comm stage varied and sends the
    // same `speedup_batch` call down the general per-point loop exactly as
    // every sweep ran before the stage plan existed. Outputs are
    // bit-identical; only the per-point arithmetic differs.
    let sweep_points: Vec<f64> = (0..BATCH_CHUNK)
        .map(|i| 75.0e6 + 75.0e6 * (i as f64 / BATCH_CHUNK as f64))
        .collect();
    let alpha_broadcast = vec![input.comm.alpha_write; BATCH_CHUNK];
    let t_sweep_staged = time(reps_kernel, || {
        let mut batch = BatchPoints::new(&input, sweep_points.len());
        batch.push_column(SweepParam::Fclock, sweep_points.as_slice());
        speedup_batch(&batch).unwrap()
    });
    let t_sweep_eager = time(reps_kernel, || {
        let mut batch = BatchPoints::new(&input, sweep_points.len());
        batch.push_column(SweepParam::Fclock, sweep_points.as_slice());
        batch.push_column(SweepParam::AlphaWrite, alpha_broadcast.as_slice());
        speedup_batch(&batch).unwrap()
    });

    // Scenario family 2b: the observability layer's cost on the same summary
    // run — identical work with the collector enabled (spans and counters
    // recorded) next to `execute_summary_fast_forward`, whose path is the
    // disabled one (a single relaxed atomic load per run). The *disabled*
    // path's overhead vs pre-instrumentation builds is tracked across the
    // checked-in BENCH_*.json files on that same scenario; see DESIGN.md §12.
    let tel = rat_core::telemetry::global();
    let was_enabled = tel.is_enabled();
    if !was_enabled {
        tel.enable();
    }
    let t_summary_tel = time(reps_sim_fast, || {
        fast.execute_summary(&kernel, &run, fclock, None).unwrap()
    });
    if !was_enabled {
        // Discard the spans this scenario recorded so a later `--metrics`
        // drain in the same process doesn't include bench noise.
        tel.disable();
        let _ = tel.drain();
    }

    // Scenario family 3: design-space exploration — two-phase gating with the
    // scalar speedup vs a full named report per corner.
    let space = DesignSpace {
        base: input.clone(),
        fclocks: vec![75.0e6, 100.0e6, 150.0e6],
        throughput_procs: vec![10.0, 20.0, 24.0],
        bufferings: vec![Buffering::Single, Buffering::Double],
    };
    let corners = space.size() as u64;
    let t_explore_two_phase = time(reps_explore, || explore(&space, 10.0).unwrap());
    let t_explore_eager = time(reps_explore, || explore_eager_baseline(&space, 10.0));

    // Scenario family 4: the guided cross-entropy search vs an exhaustive
    // grid over the same axes — the `rat optimize` acceptance comparison.
    // The space pins an oversized device (Stratix-II EP2S180) so the
    // resource gate never truncates the achievable optimum, making the
    // exhaustive `explore` grid (which has no resource gate) a fair
    // baseline. The derived ratios record search *quality* (guided best /
    // exhaustive best, gated >= 0.99) and the evaluation *budget*
    // (exhaustive grid size / guided evals, gated >= 10) — both read from
    // the checked-in evidence by the non-ignored perf gate.
    let (opt_gens, opt_pop, grid_fclocks, grid_tps) = if quick {
        (4u32, 32usize, 16usize, 40usize)
    } else {
        (12u32, 128usize, 128usize, 64usize)
    };
    let reps_opt = if quick { 2u32 } else { 20u32 };
    let opt_space = OptimizeSpace {
        base: input.clone(),
        fclock_hz: (75.0e6, 150.0e6),
        throughput_proc: (1.0, 20.0),
        bufferings: vec![Buffering::Single, Buffering::Double],
        devices: vec![stratix2_ep2s180()],
        precisions: Vec::new(),
    };
    let opt_config = OptimizeConfig {
        seed: 2007,
        generations: opt_gens,
        population: opt_pop,
    };
    let linspace = |lo: f64, hi: f64, n: usize| -> Vec<f64> {
        (0..n)
            .map(|i| lo + (hi - lo) * (i as f64) / ((n - 1) as f64))
            .collect()
    };
    let grid_space = DesignSpace {
        base: input.clone(),
        fclocks: linspace(75.0e6, 150.0e6, grid_fclocks),
        throughput_procs: linspace(1.0, 20.0, grid_tps),
        bufferings: vec![Buffering::Single, Buffering::Double],
    };
    let guided_evals = u64::from(opt_gens) * opt_pop as u64;
    let grid_evals = grid_space.size() as u64;
    let opt_engine = Engine::new(EngineConfig::default().with_jobs(1));
    let t_opt_guided = time(reps_opt, || {
        optimize(&opt_engine, &opt_space, &opt_config).unwrap()
    });
    let t_opt_grid = time(reps_opt, || explore(&grid_space, 1.0e-6).unwrap());
    let guided_best = optimize(&opt_engine, &opt_space, &opt_config)
        .expect("bench space has a front")
        .best()
        .objectives
        .speedup;
    let grid_best = explore(&grid_space, 1.0e-6)
        .expect("bench grid explores")
        .passing
        .iter()
        .map(|r| r.speedup)
        .fold(f64::NEG_INFINITY, f64::max);

    let scenarios = vec![
        BenchScenario {
            name: "execute_summary_fast_forward",
            work: iters,
            reps: reps_sim_fast,
            total: t_summary_ff,
        },
        BenchScenario {
            name: "execute_summary_exhaustive",
            work: iters,
            reps: reps_sim,
            total: t_summary_exh,
        },
        BenchScenario {
            name: "execute_full_trace",
            work: iters,
            reps: reps_sim.div_ceil(4),
            total: t_full_trace,
        },
        BenchScenario {
            name: "uncertainty_scalar",
            work: samples as u64,
            reps: reps_mc,
            total: t_mc_scalar,
        },
        BenchScenario {
            name: "uncertainty_clone_per_sample",
            work: samples as u64,
            reps: reps_mc,
            total: t_mc_cloning,
        },
        BenchScenario {
            name: "uncertainty_batch",
            work: samples as u64,
            reps: reps_mc,
            total: t_mc_batch,
        },
        BenchScenario {
            name: "uncertainty_batch_jobs1",
            work: samples as u64,
            reps: reps_mc,
            total: t_mc_batch_jobs[0],
        },
        BenchScenario {
            name: "uncertainty_batch_jobs2",
            work: samples as u64,
            reps: reps_mc,
            total: t_mc_batch_jobs[1],
        },
        BenchScenario {
            name: "uncertainty_batch_jobs4",
            work: samples as u64,
            reps: reps_mc,
            total: t_mc_batch_jobs[2],
        },
        BenchScenario {
            name: "uncertainty_batch_jobs8",
            work: samples as u64,
            reps: reps_mc,
            total: t_mc_batch_jobs[3],
        },
        BenchScenario {
            name: "speedup_kernel_batch",
            work: BATCH_CHUNK as u64,
            reps: reps_kernel,
            total: t_kernel_batch,
        },
        BenchScenario {
            name: "speedup_kernel_scalar",
            work: BATCH_CHUNK as u64,
            reps: reps_kernel,
            total: t_kernel_scalar,
        },
        BenchScenario {
            name: "sweep_kernel_staged",
            work: BATCH_CHUNK as u64,
            reps: reps_kernel,
            total: t_sweep_staged,
        },
        BenchScenario {
            name: "sweep_kernel_eager_comm",
            work: BATCH_CHUNK as u64,
            reps: reps_kernel,
            total: t_sweep_eager,
        },
        BenchScenario {
            name: "execute_summary_telemetry_enabled",
            work: iters,
            reps: reps_sim_fast,
            total: t_summary_tel,
        },
        BenchScenario {
            name: "explore_two_phase",
            work: corners,
            reps: reps_explore,
            total: t_explore_two_phase,
        },
        BenchScenario {
            name: "explore_eager",
            work: corners,
            reps: reps_explore,
            total: t_explore_eager,
        },
        BenchScenario {
            name: "optimize_guided",
            work: guided_evals,
            reps: reps_opt,
            total: t_opt_guided,
        },
        BenchScenario {
            name: "optimize_exhaustive_grid",
            work: grid_evals,
            reps: reps_opt,
            total: t_opt_grid,
        },
    ];
    let per_rep = |name: &str| {
        scenarios
            .iter()
            .find(|s| s.name == name)
            .expect("scenario exists")
            .ns_per_rep() as f64
    };
    let ratios = vec![
        BenchRatio {
            name: "execute_summary_fast_forward_vs_exhaustive",
            speedup: per_rep("execute_summary_exhaustive")
                / per_rep("execute_summary_fast_forward"),
        },
        BenchRatio {
            name: "execute_summary_fast_forward_vs_full_trace",
            speedup: per_rep("execute_full_trace") / per_rep("execute_summary_fast_forward"),
        },
        BenchRatio {
            // The batched SoA path vs the pre-batching chunked scalar loop,
            // both serial: the per-point win from bulk RNG draws and the
            // columnar kernel.
            name: "uncertainty_batch_vs_scalar",
            speedup: per_rep("uncertainty_scalar") / per_rep("uncertainty_batch"),
        },
        BenchRatio {
            name: "uncertainty_batch_vs_clone_per_sample",
            speedup: per_rep("uncertainty_clone_per_sample") / per_rep("uncertainty_batch"),
        },
        BenchRatio {
            // The acceptance ratio: the live 8-worker batched path vs the
            // old serial scalar pipeline — what a CLI user on the default
            // engine gains over the pre-batching release.
            name: "uncertainty_parallel_vs_serial_8_jobs",
            speedup: per_rep("uncertainty_scalar") / per_rep("uncertainty_batch_jobs8"),
        },
        BenchRatio {
            // Pure thread scaling of the batched path on this host (bounded
            // by the machine's core count; 1.0 on a single-core runner).
            name: "uncertainty_batch_scaling_8_vs_1",
            speedup: per_rep("uncertainty_batch_jobs1") / per_rep("uncertainty_batch_jobs8"),
        },
        BenchRatio {
            name: "speedup_kernel_batch_vs_scalar",
            speedup: per_rep("speedup_kernel_scalar") / per_rep("speedup_kernel_batch"),
        },
        BenchRatio {
            // The stage-graph acceptance ratio: a single-axis sweep through
            // the staged kernel vs the eager per-point comm recomputation it
            // replaced. The perf gate pins this at >= 1.5x.
            name: "sweep_staged_vs_eager",
            speedup: per_rep("sweep_kernel_eager_comm") / per_rep("sweep_kernel_staged"),
        },
        BenchRatio {
            name: "explore_two_phase_vs_eager",
            speedup: per_rep("explore_eager") / per_rep("explore_two_phase"),
        },
        BenchRatio {
            // >1 means enabling collection costs wall time; near 1 means the
            // spans around the summary run are cheap relative to the work.
            name: "execute_summary_telemetry_enabled_vs_disabled",
            speedup: per_rep("execute_summary_telemetry_enabled")
                / per_rep("execute_summary_fast_forward"),
        },
        BenchRatio {
            // Search quality, not wall time: the guided search's best
            // speedup over the exhaustive grid's. The perf gate pins this
            // at >= 0.99 on the full-size evidence.
            name: "optimize_guided_quality_vs_exhaustive",
            speedup: guided_best / grid_best,
        },
        BenchRatio {
            // Evaluation budget, not wall time: grid evaluations per guided
            // evaluation. The perf gate pins this at >= 10 (the guided
            // search spends at most a tenth of the exhaustive budget).
            name: "optimize_eval_budget_exhaustive_vs_guided",
            speedup: grid_evals as f64 / guided_evals as f64,
        },
    ];
    BenchReport {
        quick,
        host: HostInfo::detect(),
        scenarios,
        ratios,
        serve: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_reports_every_scenario_and_ratio() {
        let r = run(true);
        assert!(r.quick);
        assert_eq!(r.scenarios.len(), 19);
        assert_eq!(r.ratios.len(), 12);
        for s in &r.scenarios {
            assert!(s.reps > 0, "{}", s.name);
        }
        let json = r.to_json();
        assert!(json.contains("\"execute_summary_fast_forward\""), "{json}");
        assert!(json.contains("\"ns_per_rep\""), "{json}");
        assert!(json.contains("\"speedup\""), "{json}");
        // The v2 host provenance block is always present and well-formed.
        assert!(json.contains("\"host\": {\"logical_cores\": "), "{json}");
        assert!(json.contains("\"avx2\": "), "{json}");
        assert!(json.contains("\"fma\": "), "{json}");
        assert!(json.contains("\"rustc\": \"rustc "), "{json}");
        assert!(r.host.logical_cores >= 1);
        let text = r.render();
        assert!(text.contains("uncertainty_scalar"), "{text}");
        assert!(text.contains("logical cores"), "{text}");
        // Without --serve the optional block is absent entirely.
        assert!(!json.contains("\"serve\""), "{json}");
    }

    #[test]
    fn serve_block_serializes_when_attached() {
        let mut r = run(true);
        r.serve = Some(ServeBench {
            requests: 1000,
            rps: 12_000.0,
            close_requests: 1000,
            close_rps: 3_000.0,
            keepalive_vs_close_rps: 4.0,
            reuse_ratio: 0.996,
            connect_p50_us: 45.0,
            p50_us: 80.0,
            p99_us: 400.0,
            p999_us: 900.0,
            warm_uncached_p50_us: 700.0,
            warm_cached_p50_us: 70.0,
            warm_cached_speedup: 10.0,
            warm_solve_p50_us: 60.0,
            cold_cli_solve_p50_us: 9_000.0,
            warm_vs_cold: 150.0,
        });
        let json = r.to_json();
        assert!(json.contains("\"serve\": {"), "{json}");
        assert!(json.contains("\"warm_vs_cold\": 150.00"), "{json}");
        assert!(json.contains("\"p999_us\": 900.0"), "{json}");
        assert!(json.contains("\"keepalive_vs_close_rps\": 4.00"), "{json}");
        assert!(json.contains("\"reuse_ratio\": 0.9960"), "{json}");
        assert!(json.contains("\"connect_p50_us\": 45.0"), "{json}");
        assert!(json.contains("\"warm_cached_speedup\": 10.00"), "{json}");
        let text = r.render();
        assert!(
            text.contains("serve_warm_solve_vs_cold_cli: 150.0x"),
            "{text}"
        );
        assert!(
            text.contains("serve_keepalive_vs_close_rps: 4.0x"),
            "{text}"
        );
        assert!(text.contains("serve_warm_cached_speedup: 10.0x"), "{text}");
    }
}
