//! Reproduction harness for every table and figure in the RAT paper.
//!
//! Each `render_*` function regenerates one published artifact from this
//! workspace's implementations — worksheet predictions from [`rat_core`],
//! "actual" measurements from [`fpga_sim`] runs of the [`rat_apps`] designs —
//! and lays it side by side with the paper's reported numbers
//! (see [`paper`] for provenance, including which of the paper's values are
//! reconstructed from prose because the available scan is OCR-damaged).
//!
//! The [`all_artifacts`] entry point drives the `rat reproduce` CLI and the
//! EXPERIMENTS.md log.

#![warn(missing_docs)]

pub mod figures;
pub mod paper;
pub mod tables;

/// One regenerated artifact.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Identifier, e.g. `table3` or `figure2`.
    pub id: &'static str,
    /// Title matching the paper's caption.
    pub title: &'static str,
    /// Rendered text.
    pub body: String,
}

/// Regenerate every table and figure.
///
/// `fast` skips the paper-scale MD neighbor count (2.7e8 distance checks) in
/// favour of a proportionally scaled system; full-scale reproduction is the
/// default for release binaries.
pub fn all_artifacts(fast: bool) -> Vec<Artifact> {
    vec![
        Artifact { id: "table1", title: "Input parameters for RAT analysis", body: tables::render_table1() },
        Artifact { id: "table2", title: "Input parameters of 1-D PDF", body: tables::render_table2() },
        Artifact { id: "table3", title: "Performance parameters of 1-D PDF", body: tables::render_table3() },
        Artifact { id: "table4", title: "Resource usage of 1-D PDF (LX100)", body: tables::render_table4() },
        Artifact { id: "table5", title: "Input parameters of 2-D PDF (LX100)", body: tables::render_table5() },
        Artifact { id: "table6", title: "Performance parameters of 2-D PDF", body: tables::render_table6() },
        Artifact { id: "table7", title: "Resource usage of 2-D PDF (LX100)", body: tables::render_table7() },
        Artifact { id: "table8", title: "Input parameters of MD", body: tables::render_table8() },
        Artifact { id: "table9", title: "Performance parameters of MD", body: tables::render_table9(fast) },
        Artifact { id: "table10", title: "Resource usage of MD (EP2S180)", body: tables::render_table10() },
        Artifact { id: "figure1", title: "Overview of RAT methodology", body: figures::render_figure1() },
        Artifact { id: "figure2", title: "Example overlap scenarios", body: figures::render_figure2() },
        Artifact { id: "figure3", title: "Architecture of 1-D PDF algorithm", body: figures::render_figure3() },
    ]
}

/// Look up one artifact by id (`table1`..`table10`, `figure1`..`figure3`).
pub fn artifact(id: &str, fast: bool) -> Option<Artifact> {
    all_artifacts(fast).into_iter().find(|a| a.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_thirteen_artifacts_render() {
        let arts = all_artifacts(true);
        assert_eq!(arts.len(), 13);
        for a in &arts {
            assert!(!a.body.trim().is_empty(), "{} rendered empty", a.id);
        }
    }

    #[test]
    fn artifact_lookup() {
        assert!(artifact("table3", true).is_some());
        assert!(artifact("figure2", true).is_some());
        assert!(artifact("table99", true).is_none());
    }
}
