//! Reproduction harness for every table and figure in the RAT paper.
//!
//! Each `render_*` function regenerates one published artifact from this
//! workspace's implementations — worksheet predictions from [`rat_core`],
//! "actual" measurements from [`fpga_sim`] runs of the [`rat_apps`] designs —
//! and lays it side by side with the paper's reported numbers
//! (see [`paper`] for provenance, including which of the paper's values are
//! reconstructed from prose because the available scan is OCR-damaged).
//!
//! The [`all_artifacts`] entry point drives the `rat reproduce` CLI and the
//! EXPERIMENTS.md log. [`all_artifacts_with`] renders the thirteen artifacts
//! as independent jobs on an analysis [`Engine`]; simulator-backed tables
//! share measurements through the [`fpga_sim::cache`] memoization layer, so a
//! second `reproduce all` in the same process (or against a persisted cache)
//! re-simulates nothing.

#![warn(missing_docs)]

pub mod figures;
pub mod hotbench;
pub mod paper;
pub mod tables;

use rat_core::engine::Engine;

/// One regenerated artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Identifier, e.g. `table3` or `figure2`.
    pub id: &'static str,
    /// Title matching the paper's caption.
    pub title: &'static str,
    /// Rendered text.
    pub body: String,
}

/// `(id, title)` of every artifact, in paper order.
const MANIFEST: [(&str, &str); 13] = [
    ("table1", "Input parameters for RAT analysis"),
    ("table2", "Input parameters of 1-D PDF"),
    ("table3", "Performance parameters of 1-D PDF"),
    ("table4", "Resource usage of 1-D PDF (LX100)"),
    ("table5", "Input parameters of 2-D PDF (LX100)"),
    ("table6", "Performance parameters of 2-D PDF"),
    ("table7", "Resource usage of 2-D PDF (LX100)"),
    ("table8", "Input parameters of MD"),
    ("table9", "Performance parameters of MD"),
    ("table10", "Resource usage of MD (EP2S180)"),
    ("figure1", "Overview of RAT methodology"),
    ("figure2", "Example overlap scenarios"),
    ("figure3", "Architecture of 1-D PDF algorithm"),
];

fn render_body(id: &str, fast: bool) -> String {
    match id {
        "table1" => tables::render_table1(),
        "table2" => tables::render_table2(),
        "table3" => tables::render_table3(),
        "table4" => tables::render_table4(),
        "table5" => tables::render_table5(),
        "table6" => tables::render_table6(),
        "table7" => tables::render_table7(),
        "table8" => tables::render_table8(),
        "table9" => tables::render_table9(fast),
        "table10" => tables::render_table10(),
        "figure1" => figures::render_figure1(),
        "figure2" => figures::render_figure2(),
        "figure3" => figures::render_figure3(),
        other => unreachable!("unknown artifact id {other}"),
    }
}

/// Regenerate every table and figure.
///
/// `fast` skips the paper-scale MD neighbor count (2.7e8 distance checks) in
/// favour of a proportionally scaled system; full-scale reproduction is the
/// default for release binaries.
pub fn all_artifacts(fast: bool) -> Vec<Artifact> {
    all_artifacts_with(&Engine::sequential(), fast)
}

/// [`all_artifacts`], with each artifact rendered as an independent job on
/// `engine`. Artifacts come back in paper order regardless of thread count.
pub fn all_artifacts_with(engine: &Engine, fast: bool) -> Vec<Artifact> {
    engine.run(MANIFEST.len(), |i| {
        let (id, title) = MANIFEST[i];
        Artifact {
            id,
            title,
            body: render_body(id, fast),
        }
    })
}

/// Look up one artifact by id (`table1`..`table10`, `figure1`..`figure3`).
pub fn artifact(id: &str, fast: bool) -> Option<Artifact> {
    MANIFEST
        .iter()
        .find(|(known, _)| *known == id)
        .map(|&(id, title)| Artifact {
            id,
            title,
            body: render_body(id, fast),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rat_core::engine::EngineConfig;

    #[test]
    fn all_thirteen_artifacts_render() {
        let arts = all_artifacts(true);
        assert_eq!(arts.len(), 13);
        for a in &arts {
            assert!(!a.body.trim().is_empty(), "{} rendered empty", a.id);
        }
    }

    #[test]
    fn artifact_lookup() {
        assert!(artifact("table3", true).is_some());
        assert!(artifact("figure2", true).is_some());
        assert!(artifact("table99", true).is_none());
    }

    #[test]
    fn lookup_matches_batch_output() {
        let batch = all_artifacts(true);
        let single = artifact("table9", true).unwrap();
        assert_eq!(batch.iter().find(|a| a.id == "table9").unwrap(), &single);
    }

    #[test]
    fn parallel_render_is_identical_to_sequential() {
        let sequential = all_artifacts(true);
        let parallel = all_artifacts_with(&Engine::new(EngineConfig::default().with_jobs(8)), true);
        assert_eq!(sequential, parallel);
    }
}
