//! Renderers for the paper's ten tables.

use fpga_sim::cache::{SimCache, SimSummary};
use rat_apps::md;
use rat_apps::pdf::{pdf1d, pdf2d};
use rat_core::params::RatInput;
use rat_core::table::{pct, sci, TextTable};
use rat_core::utilization;
use rat_core::worksheet::Worksheet;

use crate::paper::{self, PerfColumn};

/// The three clock assumptions every case study is evaluated at.
pub const CLOCKS: [f64; 3] = [75.0e6, 100.0e6, 150.0e6];

/// Table 1: the RAT input-parameter template.
pub fn render_table1() -> String {
    let mut t = TextTable::new()
        .title("Table 1: Input parameters for RAT analysis")
        .header(["Parameter", "Unit"]);
    t.section("Dataset Parameters");
    t.row(["N_elements, input", "elements"]);
    t.row(["N_elements, output", "elements"]);
    t.row(["N_bytes/element", "bytes/element"]);
    t.section("Communication Parameters");
    t.row(["throughput_ideal", "MB/s"]);
    t.row(["alpha_write", "0 < a <= 1"]);
    t.row(["alpha_read", "0 < a <= 1"]);
    t.section("Computation Parameters");
    t.row(["N_ops/element", "ops/element"]);
    t.row(["throughput_proc", "ops/cycle"]);
    t.row(["f_clock", "MHz"]);
    t.section("Software Parameters");
    t.row(["t_soft", "sec"]);
    t.row(["N_iter", "iterations"]);
    t.render()
}

/// Render an input-parameter table (Tables 2/5/8 share the layout).
fn input_table(title: &str, input: &RatInput, clock_note: &str) -> String {
    let mut t = TextTable::new()
        .title(title.to_string())
        .header(["Parameter", "Value"]);
    t.section("Dataset Parameters");
    t.row([
        "N_elements, input".into(),
        input.dataset.elements_in.to_string(),
    ]);
    t.row([
        "N_elements, output".into(),
        input.dataset.elements_out.to_string(),
    ]);
    t.row([
        "N_bytes/element".into(),
        input.dataset.bytes_per_element.to_string(),
    ]);
    t.section("Communication Parameters");
    t.row([
        "throughput_ideal (MB/s)".into(),
        format!("{:.0}", input.comm.ideal_bandwidth.mbytes_per_sec()),
    ]);
    t.row(["alpha_write".into(), format!("{}", input.comm.alpha_write)]);
    t.row(["alpha_read".into(), format!("{}", input.comm.alpha_read)]);
    t.section("Computation Parameters");
    t.row([
        "N_ops/element".into(),
        format!("{}", input.comp.ops_per_element),
    ]);
    t.row([
        "throughput_proc (ops/cycle)".into(),
        format!("{}", input.comp.throughput_proc),
    ]);
    t.row(["f_clock (MHz)".into(), clock_note.to_string()]);
    t.section("Software Parameters");
    t.row([
        "t_soft (sec)".into(),
        format!("{}", input.software.t_soft.seconds()),
    ]);
    t.row([
        "N_iter (iterations)".into(),
        input.software.iterations.to_string(),
    ]);
    t.render()
}

/// Table 2: 1-D PDF inputs.
pub fn render_table2() -> String {
    input_table(
        "Table 2: Input parameters of 1-D PDF",
        &pdf1d::rat_input(150.0e6),
        "75/100/150",
    )
}

/// Table 5: 2-D PDF inputs.
pub fn render_table5() -> String {
    input_table(
        "Table 5: Input parameters of 2-D PDF (LX100)",
        &pdf2d::rat_input(150.0e6),
        "75/100/150",
    )
}

/// Table 8: MD inputs.
pub fn render_table8() -> String {
    let mut s = input_table(
        "Table 8: Input parameters of MD",
        &md::rat::rat_input(100.0e6),
        "75/100/150",
    );
    s.push_str("note: t_soft reconstructed from Table 9's predicted speedups (see paper module)\n");
    s
}

/// Measured utilization computed the way the paper computes it: the
/// single-buffered equations applied to *measured* per-iteration times.
fn measured_util_comm(m: &SimSummary) -> f64 {
    utilization::util_comm_single(
        m.comm_per_iter().as_seconds(),
        m.comp_per_iter().as_seconds(),
    )
}

/// Build a performance table (Tables 3/6/9 share the layout): predicted
/// columns at the three clocks, the simulated actual at `actual_clock`, and
/// the paper's printed/reconstructed values for comparison.
#[allow(clippy::too_many_arguments)] // internal table builder: args mirror the table's columns
fn perf_table(
    title: &str,
    input_at: impl Fn(f64) -> RatInput,
    simulate: impl Fn(f64) -> SimSummary,
    t_soft: f64,
    actual_clock: f64,
    paper_predicted: &[PerfColumn; 3],
    paper_actual: &PerfColumn,
    actual_note: &str,
) -> String {
    let reports: Vec<_> = CLOCKS
        .iter()
        .map(|&f| Worksheet::new(input_at(f)).analyze().expect("valid inputs"))
        .collect();
    let m = simulate(actual_clock);
    let mhz = |f: f64| format!("{:.0}", f / 1e6);

    let mut t = TextTable::new().title(title.to_string()).header([
        "Metric".to_string(),
        format!("Pred {}", mhz(CLOCKS[0])),
        format!("Pred {}", mhz(CLOCKS[1])),
        format!("Pred {}", mhz(CLOCKS[2])),
        format!("Sim actual {}", mhz(actual_clock)),
        format!("Paper actual {}", mhz(paper_actual.fclock)),
    ]);
    let sim_comm = m.comm_per_iter().as_secs_f64();
    let sim_comp = m.comp_per_iter().as_secs_f64();
    let sim_total = m.total.as_secs_f64();
    let row = |label: &str, pred: [f64; 3], sim: f64, pap: f64| {
        [
            label.to_string(),
            sci(pred[0]),
            sci(pred[1]),
            sci(pred[2]),
            sci(sim),
            sci(pap),
        ]
    };
    let p =
        |f: fn(&rat_core::report::Report) -> f64| [f(&reports[0]), f(&reports[1]), f(&reports[2])];
    t.row(row(
        "t_comm (sec)",
        p(|r| r.throughput.t_comm.seconds()),
        sim_comm,
        paper_actual.t_comm,
    ));
    t.row(row(
        "t_comp (sec)",
        p(|r| r.throughput.t_comp.seconds()),
        sim_comp,
        paper_actual.t_comp,
    ));
    t.row([
        "util_comm_SB".to_string(),
        pct(reports[0].throughput.util_comm),
        pct(reports[1].throughput.util_comm),
        pct(reports[2].throughput.util_comm),
        pct(measured_util_comm(&m)),
        paper_actual
            .util_comm
            .map(pct)
            .unwrap_or_else(|| "-".into()),
    ]);
    t.row(row(
        "t_RC_SB (sec)",
        p(|r| r.throughput.t_rc.seconds()),
        sim_total,
        paper_actual.t_rc,
    ));
    t.row([
        "speedup".to_string(),
        format!("{:.1}", reports[0].speedup),
        format!("{:.1}", reports[1].speedup),
        format!("{:.1}", reports[2].speedup),
        format!("{:.1}", t_soft / sim_total),
        format!("{:.1}", paper_actual.speedup),
    ]);
    let mut s = t.render();
    // Predicted-column agreement with the paper, as a one-line audit.
    let max_err = reports
        .iter()
        .zip(paper_predicted)
        .map(|(r, pc)| ((r.speedup - pc.speedup).abs() / pc.speedup * 100.0).ceil())
        .fold(0.0f64, f64::max);
    s.push_str(&format!(
        "predicted columns match the paper's within {max_err:.0}% (rounding); {actual_note}\n"
    ));
    s
}

/// Table 3: 1-D PDF predicted vs actual.
pub fn render_table3() -> String {
    perf_table(
        "Table 3: Performance parameters of 1-D PDF",
        pdf1d::rat_input,
        |f| pdf1d::design().simulate_summary(f, Some(SimCache::global())),
        paper::T_SOFT_PDF1D,
        150.0e6,
        &paper::TABLE3_PREDICTED,
        &paper::TABLE3_ACTUAL,
        "paper actual column printed in the paper",
    )
}

/// Table 6: 2-D PDF predicted vs actual.
pub fn render_table6() -> String {
    perf_table(
        "Table 6: Performance parameters of 2-D PDF",
        pdf2d::rat_input,
        |f| pdf2d::design().simulate_summary(f, Some(SimCache::global())),
        paper::T_SOFT_PDF2D,
        150.0e6,
        &paper::TABLE6_PREDICTED,
        &paper::TABLE6_ACTUAL_RECONSTRUCTED,
        "paper actual column RECONSTRUCTED from $5.1 prose (scan is OCR-damaged)",
    )
}

/// Table 9: MD predicted vs actual. `fast` replaces the 16,384-particle
/// neighbor count with its uniform-density expectation (sub-percent accurate).
pub fn render_table9(fast: bool) -> String {
    let design = if fast {
        md::hw::MdDesign::paper_scale_analytic()
    } else {
        md::hw::MdDesign::paper_scale()
    };
    let mut s = perf_table(
        "Table 9: Performance parameters of MD",
        md::rat::rat_input,
        |f| design.simulate_summary(f, Some(SimCache::global())),
        paper::T_SOFT_MD,
        100.0e6,
        &paper::TABLE9_PREDICTED,
        &paper::TABLE9_ACTUAL,
        "paper actual column printed in the paper",
    );
    s.push_str(&format!(
        "data-dependent workload: measured {:.0} ops/molecule (worksheet estimated 164000), \
         mean {:.0} near neighbors{}\n",
        design.ops_per_element(),
        design.mean_near_neighbors(),
        if fast { " [analytic fast path]" } else { "" },
    ));
    s
}

/// Table 4: 1-D PDF resource usage.
pub fn render_table4() -> String {
    let mut s = format!("Table 4: {}", pdf1d::design().resource_report().render());
    s.push_str(&format!(
        "paper's legible row: BRAMs {} (ours matches within 1 point); DSP/slice rows OCR-damaged\n",
        pct(paper::TABLE4_BRAM_UTIL)
    ));
    s
}

/// Table 7: 2-D PDF resource usage.
pub fn render_table7() -> String {
    let mut s = format!("Table 7: {}", pdf2d::design().resource_report().render());
    s.push_str(&format!(
        "paper's legible row: Slices {} (ours matches); DSP/BRAM rows OCR-damaged\n",
        pct(paper::TABLE7_SLICE_UTIL)
    ));
    s
}

/// Table 10: MD resource usage.
pub fn render_table10() -> String {
    let design = md::hw::MdDesign::paper_scale_analytic();
    let mut s = format!("Table 10: {}", design.resource_report().render());
    s.push_str(
        "paper's percentages OCR-damaged; $5.2 prose: large fractions of logic and DSPs, \
         parallelism limited by multiplier availability (DSPs saturated)\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_eleven_parameters() {
        let s = render_table1();
        assert_eq!(s.matches("Parameters --").count(), 4);
        for p in [
            "N_elements, input",
            "alpha_read",
            "throughput_proc",
            "N_iter",
        ] {
            assert!(s.contains(p), "missing {p}");
        }
    }

    #[test]
    fn table3_has_six_columns_and_correct_speedups() {
        let s = render_table3();
        assert!(s.contains("Pred 75"));
        assert!(s.contains("Sim actual 150"));
        assert!(s.contains("Paper actual 150"));
        assert!(s.contains("10.6"), "predicted 150 MHz speedup:\n{s}");
        assert!(s.contains("7.8"), "paper actual speedup:\n{s}");
    }

    #[test]
    fn table6_marks_reconstruction() {
        let s = render_table6();
        assert!(s.contains("RECONSTRUCTED"));
        assert!(s.contains("6.9"), "predicted speedup missing:\n{s}");
    }

    #[test]
    fn table9_fast_and_full_paths_agree() {
        // The analytic fast path must track the counted path to <1% on the
        // workload statistics that drive the table. Use the small-system
        // counted path scaled analytically as a cross-check instead of the
        // full 2.7e8-check run (kept for release binaries).
        let analytic = md::hw::MdDesign::paper_scale_analytic();
        assert!(
            (analytic.ops_per_element() - 164_000.0).abs() / 164_000.0 < 0.01,
            "analytic ops/molecule {}",
            analytic.ops_per_element()
        );
        let s = render_table9(true);
        assert!(s.contains("analytic fast path"));
        assert!(s.contains("10.7"), "predicted 100 MHz speedup:\n{s}");
        assert!(s.contains("6.6"), "paper actual speedup:\n{s}");
    }

    #[test]
    fn resource_tables_name_their_devices() {
        assert!(render_table4().contains("LX100"));
        assert!(render_table7().contains("LX100"));
        assert!(render_table10().contains("EP2S180"));
    }

    #[test]
    fn table9_sim_actual_lands_near_paper_actual() {
        let s = render_table9(true);
        // The simulated actual speedup at 100 MHz should print 6.5-6.7
        // (paper: 6.6). Look for the speedup row containing both.
        let speedup_row = s.lines().find(|l| l.starts_with("speedup")).unwrap();
        let cols: Vec<&str> = speedup_row.split_whitespace().collect();
        let sim: f64 = cols[cols.len() - 2].parse().unwrap();
        assert!((sim - 6.6).abs() < 0.15, "simulated MD speedup {sim}");
    }
}
