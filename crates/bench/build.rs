//! Capture the compiler's version string at build time so `rat bench --json`
//! can record it as benchmark provenance alongside the host CPU features.

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=RAT_BENCH_RUSTC={version}");
    println!("cargo:rerun-if-changed=build.rs");
}
