//! One benchmark per paper table: the cost of regenerating each artifact
//! (worksheet analysis + platform simulation where the table has an "actual"
//! column). Regeneration itself is the experiment — these benches both time it
//! and, run via `cargo bench`, serve as the reproduction entry point for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_template", |b| {
        b.iter(|| black_box(rat_bench::tables::render_table1()))
    });
    g.bench_function("table2_pdf1d_inputs", |b| {
        b.iter(|| black_box(rat_bench::tables::render_table2()))
    });
    g.bench_function("table3_pdf1d_perf", |b| {
        b.iter(|| black_box(rat_bench::tables::render_table3()))
    });
    g.bench_function("table4_pdf1d_resources", |b| {
        b.iter(|| black_box(rat_bench::tables::render_table4()))
    });
    g.bench_function("table5_pdf2d_inputs", |b| {
        b.iter(|| black_box(rat_bench::tables::render_table5()))
    });
    g.bench_function("table6_pdf2d_perf", |b| {
        b.iter(|| black_box(rat_bench::tables::render_table6()))
    });
    g.bench_function("table7_pdf2d_resources", |b| {
        b.iter(|| black_box(rat_bench::tables::render_table7()))
    });
    g.bench_function("table8_md_inputs", |b| {
        b.iter(|| black_box(rat_bench::tables::render_table8()))
    });
    // The analytic workload path; the counted 16,384-molecule pass is benched
    // separately below with a minimal sample count.
    g.bench_function("table9_md_perf_analytic", |b| {
        b.iter(|| black_box(rat_bench::tables::render_table9(true)))
    });
    g.bench_function("table10_md_resources", |b| {
        b.iter(|| black_box(rat_bench::tables::render_table10()))
    });
    g.finish();

    let mut heavy = c.benchmark_group("tables-full-scale");
    heavy.sample_size(10);
    heavy.bench_function("table9_md_perf_counted", |b| {
        b.iter(|| black_box(rat_bench::tables::render_table9(false)))
    });
    heavy.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
