//! Simulator performance: how cheaply the discrete-event platform model runs.
//!
//! RAT's value proposition is speed ("rapidly analyzing an application's
//! design"); the simulated-validation loop must stay interactive too. These
//! benches time the event queue, interconnect model, and full platform
//! executions across iteration counts and buffering modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fpga_sim::catalog;
use fpga_sim::interconnect::Direction;
use fpga_sim::kernel::TabulatedKernel;
use fpga_sim::platform::{AppRun, BufferMode, Platform};
use fpga_sim::queue::EventQueue;
use fpga_sim::time::SimTime;
use rat_core::quantity::Freq;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-event-queue");
    for &n in &[1_000usize, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                // Interleaved times exercise heap reordering.
                for i in 0..n {
                    let t = ((i * 7919) % n) as u64;
                    q.schedule(SimTime::from_ns(t), i);
                }
                let mut acc = 0usize;
                while let Some((_, p)) = q.pop() {
                    acc = acc.wrapping_add(p);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_interconnect(c: &mut Criterion) {
    let ic = catalog::nallatech_h101().interconnect;
    let mut g = c.benchmark_group("sim-interconnect");
    g.bench_function("transfer_time_lookup", |b| {
        b.iter(|| {
            let mut acc = SimTime::ZERO;
            for shift in 8..22 {
                acc += ic.transfer_time(1u64 << shift, Direction::Read);
                acc += ic.transfer_time(1u64 << shift, Direction::Write);
            }
            black_box(acc)
        })
    });
    g.bench_function("microbench_alpha_sweep", |b| {
        b.iter(|| {
            black_box(fpga_sim::microbench::alpha_table(
                &ic,
                &fpga_sim::microbench::standard_sizes(),
            ))
        })
    });
    g.finish();
}

fn bench_platform_execution(c: &mut Criterion) {
    let platform = Platform::new(catalog::nallatech_h101());
    let mut g = c.benchmark_group("sim-platform");
    for &iters in &[10u64, 400, 10_000] {
        let kernel = TabulatedKernel::uniform("k", 20_000, iters as usize);
        for (label, mode) in [
            ("single", BufferMode::Single),
            ("double", BufferMode::Double),
        ] {
            let run = AppRun::builder()
                .iterations(iters)
                .elements_per_iter(512)
                .input_bytes_per_iter(2048)
                .output_bytes_per_iter(1024)
                .buffer_mode(mode)
                .build();
            g.throughput(Throughput::Elements(iters));
            g.bench_with_input(
                BenchmarkId::new(label, iters),
                &(kernel.clone(), run),
                |b, (k, r)| {
                    b.iter(|| black_box(platform.execute(k, r, Freq::from_hz(150.0e6)).unwrap()))
                },
            );
        }
    }
    g.finish();
}

fn bench_gantt_rendering(c: &mut Criterion) {
    let platform = Platform::new(catalog::nallatech_h101());
    let kernel = TabulatedKernel::uniform("k", 20_000, 100);
    let run = AppRun::builder()
        .iterations(100)
        .elements_per_iter(512)
        .input_bytes_per_iter(2048)
        .output_bytes_per_iter(1024)
        .buffer_mode(BufferMode::Double)
        .build();
    let m = platform
        .execute(&kernel, &run, Freq::from_hz(150.0e6))
        .unwrap();
    c.bench_function("sim-gantt-render", |b| {
        b.iter(|| black_box(m.trace.render_gantt(100)))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_interconnect,
    bench_platform_execution,
    bench_gantt_rendering
);
criterion_main!(benches);
