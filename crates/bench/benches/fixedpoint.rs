//! Fixed-point substrate benchmarks: the cost of the precision test's inner
//! loops — quantization, arithmetic, the bit-accurate PDF datapath, and the
//! minimal-width search.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use fixedpoint::{ErrorStats, Fx, Overflow, QFormat, Rounding};
use rat_apps::datagen;
use rat_apps::pdf::fixed::FixedParzen1d;
use rat_apps::pdf::{bin_centers, BANDWIDTH};

fn bench_fx_ops(c: &mut Criterion) {
    let fmt = QFormat::signed(0, 17).unwrap();
    let values: Vec<Fx> = (0..1024)
        .map(|i| {
            Fx::from_f64(
                (i as f64 / 1024.0) * 1.9 - 0.95,
                fmt,
                Rounding::Nearest,
                Overflow::Saturate,
            )
        })
        .collect();
    let mut g = c.benchmark_group("fixedpoint-ops");
    g.throughput(Throughput::Elements(values.len() as u64));
    g.bench_function("mac_chain", |b| {
        b.iter(|| {
            let mut acc = Fx::zero(fmt);
            for w in values.windows(2) {
                acc = acc.mac(w[0], w[1], Rounding::Nearest, Overflow::Saturate);
            }
            black_box(acc)
        })
    });
    g.bench_function("quantize_from_f64", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for i in 0..1024 {
                let v = (i as f64 / 1024.0) * 1.9 - 0.95;
                acc = acc.wrapping_add(
                    Fx::from_f64(v, fmt, Rounding::Nearest, Overflow::Saturate).raw(),
                );
            }
            black_box(acc)
        })
    });
    g.bench_function("requantize_18_to_12", |b| {
        let narrow = QFormat::signed(0, 11).unwrap();
        b.iter(|| {
            let mut acc = 0i64;
            for &v in &values {
                acc = acc.wrapping_add(
                    v.requantize(narrow, Rounding::Nearest, Overflow::Saturate)
                        .raw(),
                );
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_datapath(c: &mut Criterion) {
    let samples = datagen::bimodal_samples(512, 5001);
    let bins = bin_centers();
    let mut g = c.benchmark_group("fixedpoint-datapath");
    g.sample_size(20);
    g.throughput(Throughput::Elements((samples.len() * bins.len()) as u64));
    g.bench_function("pdf1d_18bit_block", |b| {
        let dp = FixedParzen1d::paper_18bit(BANDWIDTH);
        b.iter(|| black_box(dp.estimate(&samples, &bins)))
    });
    g.bench_function("pdf1d_error_vs_reference", |b| {
        let dp = FixedParzen1d::paper_18bit(BANDWIDTH);
        b.iter(|| black_box(dp.error_vs_reference(&samples, &bins)))
    });
    g.finish();
}

fn bench_width_search(c: &mut Criterion) {
    let data: Vec<f64> = (0..512).map(|i| (i as f64 / 512.0) * 1.9 - 0.95).collect();
    let eval = |fmt: QFormat| {
        let q: Vec<f64> = data
            .iter()
            .map(|&v| Fx::from_f64(v, fmt, Rounding::Nearest, Overflow::Saturate).to_f64())
            .collect();
        ErrorStats::between(&data, &q)
    };
    c.bench_function("fixedpoint-min-width-search", |b| {
        let base = QFormat::signed(0, 17).unwrap();
        b.iter(|| black_box(fixedpoint::search::min_frac_bits(base, 30, 1e-3, eval)))
    });
}

criterion_group!(benches, bench_fx_ops, bench_datapath, bench_width_search);
criterion_main!(benches);
