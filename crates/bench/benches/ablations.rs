//! Ablation studies for the design choices DESIGN.md calls out. Each bench
//! also prints its ablation result once (Criterion benches double as the
//! study's execution harness), so `cargo bench --bench ablations` regenerates
//! the numbers quoted in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

use fpga_sim::catalog;
use fpga_sim::kernel::TabulatedKernel;
use fpga_sim::platform::{AppRun, BufferMode, Platform};
use rat_apps::pdf::pdf1d;
use rat_core::params::Buffering;
use rat_core::quantity::Freq;
use rat_core::sweep::{sweep, SweepParam};
use rat_core::worksheet::Worksheet;

static PRINT_ONCE: Once = Once::new();

/// Ablation 1: single vs double buffering across the comm/comp balance.
/// Where does the buffering choice stop mattering? Sweep the computation
/// weight and find the DB benefit as a function of comm share.
fn ablation_buffering_crossover(c: &mut Criterion) {
    PRINT_ONCE.call_once(|| {
        println!("\n=== ablation: DB benefit vs communication share (1-D PDF skeleton) ===");
        let base = pdf1d::rat_input(150.0e6);
        for ops_scale in [0.05, 0.2, 1.0, 5.0, 20.0] {
            let mut input = base.clone();
            input.comp.ops_per_element *= ops_scale;
            let sb = Worksheet::new(input.clone()).analyze().unwrap();
            let db =
                Worksheet::new(input.with_buffering(Buffering::Double)).analyze().unwrap();
            println!(
                "  ops x{ops_scale:<5} comm share {:>5.1}%  SB {:>6.2}x  DB {:>6.2}x  (DB buys {:>5.1}%)",
                sb.throughput.util_comm * 100.0,
                sb.speedup,
                db.speedup,
                (db.speedup / sb.speedup - 1.0) * 100.0
            );
        }
    });
    c.bench_function("ablation-buffering-crossover", |b| {
        let base = pdf1d::rat_input(150.0e6);
        b.iter(|| {
            let mut acc = 0.0;
            for ops_scale in [0.05, 0.2, 1.0, 5.0, 20.0] {
                let mut input = base.clone();
                input.comp.ops_per_element *= ops_scale;
                let db = Worksheet::new(input.with_buffering(Buffering::Double))
                    .analyze()
                    .unwrap();
                acc += db.speedup;
            }
            black_box(acc)
        })
    });
}

/// Ablation 2: the conservative throughput_proc discount. The 1-D PDF
/// worksheet used 20 of the structural 24 ops/cycle; quantify the prediction
/// error against the simulated measurement for the undiscounted and measured
/// alternatives.
fn ablation_conservatism(c: &mut Criterion) {
    println!("\n=== ablation: throughput_proc conservatism (1-D PDF, 150 MHz) ===");
    let measured = pdf1d::design().simulate(150.0e6);
    let measured_speedup = pdf1d::T_SOFT / measured.total.as_secs_f64();
    for (label, tp) in [
        ("structural 24", 24.0),
        ("worksheet 20", 20.0),
        ("measured 18.9", 18.9),
    ] {
        let mut input = pdf1d::rat_input(150.0e6);
        input.comp.throughput_proc = tp;
        let r = Worksheet::new(input).analyze().unwrap();
        println!(
            "  {label:<14} predicted {:>5.2}x vs simulated {measured_speedup:.2}x ({:+.1}% error)",
            r.speedup,
            (r.speedup / measured_speedup - 1.0) * 100.0
        );
    }
    c.bench_function("ablation-conservatism", |b| {
        b.iter(|| {
            let mut input = pdf1d::rat_input(150.0e6);
            input.comp.throughput_proc = 18.9;
            black_box(Worksheet::new(input).analyze().unwrap())
        })
    });
}

/// Ablation 3: interconnect setup latency. Re-run the 1-D PDF's simulated
/// execution with the per-transfer setup and host API costs zeroed, isolating
/// how much of the paper's comm miss each mechanism explains.
fn ablation_setup_latency(c: &mut Criterion) {
    println!("\n=== ablation: communication overhead mechanisms (1-D PDF, 150 MHz) ===");
    let kernel = pdf1d::design().kernel();
    let run = pdf1d::design().app_run();
    let full = catalog::nallatech_h101();
    let mut no_setup = full.clone();
    no_setup.interconnect.setup_write = fpga_sim::SimTime::ZERO;
    no_setup.interconnect.setup_read = fpga_sim::SimTime::ZERO;
    let mut no_host = full.clone();
    no_host.host = fpga_sim::host::HostModel::IDEAL;
    let mut ideal = no_setup.clone();
    ideal.host = fpga_sim::host::HostModel::IDEAL;
    for (label, spec) in [
        ("full platform model", full),
        ("no DMA setup latency", no_setup),
        ("no host overheads", no_host),
        ("neither (alpha only)", ideal),
    ] {
        let m = Platform::new(spec)
            .execute(&kernel, &run, Freq::from_hz(150.0e6))
            .unwrap();
        println!(
            "  {label:<22} t_comm/iter {:>9.3e} s  total {:>9.3e} s  speedup {:>5.2}x",
            m.comm_per_iter().as_secs_f64(),
            m.total.as_secs_f64(),
            pdf1d::T_SOFT / m.total.as_secs_f64()
        );
    }
    c.bench_function("ablation-setup-latency", |b| {
        let platform = Platform::new(catalog::nallatech_h101());
        b.iter(|| {
            black_box(
                platform
                    .execute(&kernel, &run, Freq::from_hz(150.0e6))
                    .unwrap(),
            )
        })
    });
}

/// Ablation 4: iteration granularity. The paper buffers 512 elements per
/// iteration; what would other block sizes have done? (Smaller blocks pay the
/// per-transfer overhead more often; larger blocks amortize it.)
fn ablation_block_size(c: &mut Criterion) {
    println!("\n=== ablation: block size (1-D PDF on simulated Nallatech, 150 MHz) ===");
    let platform = Platform::new(catalog::nallatech_h101());
    let total_samples = 204_800u64;
    for block in [128u64, 512, 2048, 8192] {
        let iters = total_samples / block;
        let spec = pdf1d::design().pipeline_spec();
        let cycles = spec.cycles(block * 768, block);
        let kernel = TabulatedKernel::uniform("k", cycles.get(), iters as usize);
        let run = AppRun::builder()
            .iterations(iters)
            .elements_per_iter(block)
            .input_bytes_per_iter(block * 4)
            .output_bytes_per_iter(1024)
            .buffer_mode(BufferMode::Single)
            .build();
        let m = platform
            .execute(&kernel, &run, Freq::from_hz(150.0e6))
            .unwrap();
        println!(
            "  block {block:>5} ({iters:>4} iters): total {:>9.3e} s  speedup {:>5.2}x",
            m.total.as_secs_f64(),
            pdf1d::T_SOFT / m.total.as_secs_f64()
        );
    }
    c.bench_function("ablation-block-size", |b| {
        let spec = pdf1d::design().pipeline_spec();
        let kernel = TabulatedKernel::uniform("k", spec.cycles(2048 * 768, 2048).get(), 100);
        let run = AppRun::builder()
            .iterations(100)
            .elements_per_iter(2048)
            .input_bytes_per_iter(8192)
            .output_bytes_per_iter(1024)
            .buffer_mode(BufferMode::Single)
            .build();
        b.iter(|| {
            black_box(
                platform
                    .execute(&kernel, &run, Freq::from_hz(150.0e6))
                    .unwrap(),
            )
        })
    });
}

/// Ablation 5: how sweep cost scales — RAT's "rapid" claim in numbers.
fn ablation_sweep_cost(c: &mut Criterion) {
    c.bench_function("ablation-100-point-clock-sweep", |b| {
        let input = pdf1d::rat_input(150.0e6);
        let clocks: Vec<f64> = (1..=100).map(|i| i as f64 * 3.0e6).collect();
        b.iter(|| black_box(sweep(&input, SweepParam::Fclock, &clocks).unwrap()))
    });
}

/// Ablation 6: multi-FPGA scaling — analytic model vs full platform model.
/// The analytic curve (ideal channel) saturates at t_comp/t_comm devices; the
/// simulated curve saturates earlier because setup and host overheads inflate
/// the real per-iteration channel time.
fn ablation_multifpga(c: &mut Criterion) {
    println!("\n=== ablation: multi-FPGA scaling, analytic vs simulated (1-D PDF, DB) ===");
    let input = pdf1d::rat_input(150.0e6).with_buffering(Buffering::Double);
    let platform = Platform::new(catalog::nallatech_h101());
    let kernel = pdf1d::design().kernel();
    for devices in [1u32, 2, 4, 8, 16, 24, 32] {
        let analytic = rat_core::multifpga::analyze(&input, devices).unwrap();
        let run = AppRun::builder()
            .iterations(400)
            .elements_per_iter(512)
            .input_bytes_per_iter(2048)
            .output_bytes_per_iter(1024)
            .buffer_mode(BufferMode::Double)
            .parallel_kernels(devices)
            .build();
        let m = platform
            .execute(&kernel, &run, Freq::from_hz(150.0e6))
            .unwrap();
        println!(
            "  {devices:>2} devices: analytic {:>6.1}x  simulated {:>6.1}x  (channel busy {:>3.0}%)",
            analytic.speedup,
            pdf1d::T_SOFT / m.total.as_secs_f64(),
            m.channel_utilization() * 100.0
        );
    }
    c.bench_function("ablation-multifpga-curve", |b| {
        b.iter(|| black_box(rat_core::multifpga::scaling_curve(&input, 32).unwrap()))
    });
}

/// Ablation 7: amenability vs dimensionality. §5.1 found 2-D "more amenable"
/// on paper yet slower in practice; extending the design family shows the
/// whole trend — predicted speedup decays with dimension as ops grow 256x per
/// dimension against ~linear parallelism growth, and d >= 3 dies at the
/// resource gate (the 256^3 bin lattice cannot fit the LX100's block RAM).
fn ablation_dimensionality(c: &mut Criterion) {
    use rat_apps::pdf::ndim::PdfNdDesign;
    println!("\n=== ablation: PDF estimation amenability vs dimensionality (LX100, 150 MHz) ===");
    for (dims, pipelines) in [(1u32, 8u32), (2, 12), (3, 16), (4, 20)] {
        let d = PdfNdDesign::new(dims, pipelines);
        let r = Worksheet::new(d.rat_input(150.0e6)).unwrap_or_report();
        let res = d.resource_report();
        println!(
            "  d={dims} ({pipelines:>2} pipes): t_soft {:>9.2e} s  predicted speedup {:>5.2}x  \
             resources: {}",
            d.t_soft(),
            r,
            if res.fits {
                format!("fit ({:.0}% BRAM)", res.bram_util * 100.0)
            } else {
                format!("DO NOT FIT ({:.0}x BRAM)", res.bram_util)
            }
        );
    }
    c.bench_function("ablation-dimensionality-family", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (dims, pipelines) in [(1u32, 8u32), (2, 12), (3, 16), (4, 20)] {
                let d = PdfNdDesign::new(dims, pipelines);
                acc += Worksheet::new(d.rat_input(150.0e6)).unwrap_or_report();
            }
            black_box(acc)
        })
    });
}

/// Helper: speedup or 0.0 (keeps the ablation loop terse).
trait UnwrapOrReport {
    fn unwrap_or_report(&self) -> f64;
}
impl UnwrapOrReport for Worksheet {
    fn unwrap_or_report(&self) -> f64 {
        self.analyze().map(|r| r.speedup).unwrap_or(0.0)
    }
}

criterion_group!(
    benches,
    ablation_buffering_crossover,
    ablation_conservatism,
    ablation_setup_latency,
    ablation_block_size,
    ablation_sweep_cost,
    ablation_multifpga,
    ablation_dimensionality
);
criterion_main!(benches);
