//! Software-baseline benchmarks: the CPU side of every speedup claim.
//!
//! The paper's `t_soft` figures came from C on a 3.2 GHz Xeon (PDF) and a
//! 2.2 GHz Opteron (MD). These benches time this workspace's Rust baselines —
//! sequential and rayon-parallel — so a user can recompute RAT speedups
//! against their own machine instead of 2007 hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rat_apps::datagen;
use rat_apps::md::forces::{compute_forces, compute_forces_parallel, LjParams};
use rat_apps::md::system::System;
use rat_apps::pdf::parzen;
use rat_apps::pdf::{bin_centers, BANDWIDTH};

fn bench_pdf1d(c: &mut Criterion) {
    let bins = bin_centers();
    let mut g = c.benchmark_group("baseline-pdf1d");
    for &n in &[512usize, 4096, 16384] {
        let samples = datagen::bimodal_samples(n, 1000 + n as u64);
        g.throughput(Throughput::Elements((n * bins.len()) as u64));
        g.bench_with_input(BenchmarkId::new("sequential", n), &samples, |b, s| {
            b.iter(|| black_box(parzen::estimate_1d(s, &bins, BANDWIDTH)))
        });
        g.bench_with_input(BenchmarkId::new("parallel", n), &samples, |b, s| {
            b.iter(|| black_box(parzen::estimate_1d_parallel(s, &bins, BANDWIDTH)))
        });
    }
    g.finish();
}

fn bench_pdf1d_fullscale_block(c: &mut Criterion) {
    // One hardware iteration's worth of work: 512 elements x 256 bins.
    let samples = datagen::bimodal_samples(512, 77);
    let bins = bin_centers();
    let mut g = c.benchmark_group("baseline-pdf1d-block");
    g.throughput(Throughput::Elements(512 * 256));
    g.bench_function("one_iteration_block", |b| {
        let mut est = parzen::StreamingEstimator1d::new(bins.clone(), BANDWIDTH);
        b.iter(|| {
            est.process_block(black_box(&samples));
        })
    });
    g.finish();
}

fn bench_pdf2d(c: &mut Criterion) {
    let bins: Vec<f64> = (0..64).map(|i| i as f64 / 32.0 - 1.0).collect();
    let mut g = c.benchmark_group("baseline-pdf2d");
    g.sample_size(20);
    for &n in &[128usize, 1024] {
        let samples = datagen::bimodal_samples_2d(n, 2000 + n as u64);
        g.throughput(Throughput::Elements((n * bins.len() * bins.len()) as u64));
        g.bench_with_input(BenchmarkId::new("sequential", n), &samples, |b, s| {
            b.iter(|| black_box(parzen::estimate_2d(s, &bins, &bins, BANDWIDTH)))
        });
        g.bench_with_input(BenchmarkId::new("parallel", n), &samples, |b, s| {
            b.iter(|| black_box(parzen::estimate_2d_parallel(s, &bins, &bins, BANDWIDTH)))
        });
    }
    g.finish();
}

fn bench_md(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline-md-forces");
    g.sample_size(10);
    for &n in &[1024usize, 4096] {
        let system = System::random(n, 1.0, 3000 + n as u64);
        let params = LjParams {
            epsilon: 1.0e-4,
            sigma: 0.05,
            cutoff: 0.2,
        };
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("sequential", n), &system, |b, s| {
            b.iter(|| black_box(compute_forces(s, &params)))
        });
        g.bench_with_input(BenchmarkId::new("parallel", n), &system, |b, s| {
            b.iter(|| black_box(compute_forces_parallel(s, &params)))
        });
    }
    g.finish();
}

fn bench_md_neighbor_count(c: &mut Criterion) {
    // The data-dependent quantity behind Table 9.
    let mut g = c.benchmark_group("baseline-md-neighbors");
    g.sample_size(10);
    for &n in &[2048usize, 8192] {
        let system = System::random(n, 1.0, 4000 + n as u64);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("cell_list", n), &system, |b, s| {
            b.iter(|| {
                black_box(rat_apps::md::cell_list::neighbor_counts(
                    &s.positions,
                    1.0,
                    rat_apps::md::CUTOFF,
                ))
            })
        });
    }
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    use rand::{Rng, SeedableRng};
    use rat_apps::sort::baseline::{merge_sort, merge_sort_parallel, sort_blocks};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
    let keys: Vec<u32> = (0..262_144).map(|_| rng.gen()).collect();
    let mut g = c.benchmark_group("baseline-sort");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("merge_sort", |b| {
        b.iter(|| {
            let mut v = keys.clone();
            merge_sort(&mut v);
            black_box(v)
        })
    });
    g.bench_function("merge_sort_parallel", |b| {
        b.iter(|| {
            let mut v = keys.clone();
            merge_sort_parallel(&mut v);
            black_box(v)
        })
    });
    g.bench_function("sort_blocks_4096", |b| {
        b.iter(|| {
            let mut v = keys.clone();
            sort_blocks(&mut v, 4096);
            black_box(v)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pdf1d,
    bench_pdf1d_fullscale_block,
    bench_pdf2d,
    bench_md,
    bench_md_neighbor_count,
    bench_sort
);
criterion_main!(benches);
