//! Hot-path benchmarks: the fast paths this workspace ships against the
//! baselines they replaced.
//!
//! Six families, mirroring `rat bench`:
//!
//! * steady-state fast-forward + trace-free sinks on `execute_summary`,
//!   against the exhaustive event-by-event simulation and the full-trace
//!   measurement;
//! * the batched Monte-Carlo pipeline in `uncertainty::propagate`, against
//!   a clone-per-sample baseline;
//! * the SoA `speedup_batch` kernel against a reuse-one-scratch scalar loop
//!   over the same points;
//! * `propagate_with` across 1/2/4/8-job engines (thread-scaling curve);
//! * pure engine dispatch overhead: 64 empty jobs across the same job
//!   ladder, isolating pool wake/claim/collect cost from kernel work;
//! * two-phase design-space exploration, against eager per-corner reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fpga_sim::catalog;
use fpga_sim::kernel::TabulatedKernel;
use fpga_sim::platform::{AppRun, BufferMode, FastForward, Platform};
use rat_core::engine::{Engine, EngineConfig};
use rat_core::explore::{explore, DesignSpace};
use rat_core::params::Buffering;
use rat_core::quantity::Freq;
use rat_core::solve::batch::{speedup_batch, BatchPoints};
use rat_core::sweep::SweepParam;
use rat_core::uncertainty::{propagate, propagate_with, ParamRange};
use rat_core::worksheet::Worksheet;

fn bench_summary_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath-summary");
    for &iters in &[1_000u64, 10_000] {
        let kernel = TabulatedKernel::uniform("k", 20_000, iters as usize);
        let run = AppRun::builder()
            .iterations(iters)
            .elements_per_iter(512)
            .input_bytes_per_iter(2048)
            .output_bytes_per_iter(1024)
            .buffer_mode(BufferMode::Double)
            .build();
        let fclock = Freq::from_mhz(150.0);
        let fast = Platform::new(catalog::nallatech_h101());
        let slow = Platform::new(catalog::nallatech_h101()).with_fast_forward(FastForward::Off);
        g.throughput(Throughput::Elements(iters));
        g.bench_with_input(BenchmarkId::new("fast_forward", iters), &iters, |b, _| {
            b.iter(|| black_box(fast.execute_summary(&kernel, &run, fclock, None).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("exhaustive", iters), &iters, |b, _| {
            b.iter(|| black_box(slow.execute_summary(&kernel, &run, fclock, None).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("full_trace", iters), &iters, |b, _| {
            b.iter(|| black_box(fast.execute(&kernel, &run, fclock).unwrap()))
        });
    }
    g.finish();
}

fn bench_uncertainty_paths(c: &mut Criterion) {
    let input = rat_apps::pdf::pdf1d::rat_input(150.0e6);
    let ranges = [
        ParamRange::new(SweepParam::Fclock, 75.0e6, 150.0e6),
        ParamRange::new(SweepParam::ThroughputProc, 16.0, 24.0),
    ];
    let mut g = c.benchmark_group("hotpath-uncertainty");
    for &samples in &[1_000usize, 10_000] {
        g.throughput(Throughput::Elements(samples as u64));
        g.bench_with_input(BenchmarkId::new("scalar", samples), &samples, |b, &n| {
            b.iter(|| black_box(propagate(&input, &ranges, n, 7).unwrap()))
        });
        g.bench_with_input(
            BenchmarkId::new("clone_per_sample", samples),
            &samples,
            |b, &n| {
                // The pre-optimization pipeline, reproduced in full: one
                // engine job per sample, one input clone per parameter
                // application, then the stable sort and summary statistics
                // the old implementation computed — kept inline so the
                // comparison survives refactors of the library path.
                b.iter(|| {
                    use rand::distributions::{Distribution, Uniform};
                    let dists: Vec<(SweepParam, Uniform<f64>)> = ranges
                        .iter()
                        .map(|r| (r.param, Uniform::new_inclusive(r.lo, r.hi)))
                        .collect();
                    let mut speedups = rat_core::engine::Engine::sequential()
                        .try_run(n, |j| {
                            let mut rng = rat_core::engine::job_rng(7, j as u64);
                            let mut candidate = input.clone();
                            for (param, dist) in &dists {
                                candidate = param.apply(&candidate, dist.sample(&mut rng));
                            }
                            rat_core::solve::speedup_only(&candidate)
                        })
                        .unwrap();
                    speedups.sort_by(f64::total_cmp);
                    let mean = speedups.iter().sum::<f64>() / n as f64;
                    black_box(mean)
                })
            },
        );
    }
    g.finish();
}

fn bench_batch_kernel(c: &mut Criterion) {
    let input = rat_apps::pdf::pdf1d::rat_input(150.0e6);
    let mut g = c.benchmark_group("hotpath-batch-kernel");
    for &n in &[256usize, 1024] {
        let values: Vec<f64> = (0..n)
            .map(|i| 75.0e6 + (150.0e6 - 75.0e6) * (i as f64 / n as f64))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("batch", n), &n, |b, _| {
            b.iter(|| {
                let mut points = BatchPoints::new(&input, values.len());
                points.push_column(SweepParam::Fclock, values.clone());
                black_box(speedup_batch(&points).unwrap())
            })
        });
        g.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| {
                let mut scratch = input.clone();
                let out: Vec<f64> = values
                    .iter()
                    .map(|&v| {
                        scratch.copy_params_from(&input);
                        SweepParam::Fclock.apply_into(&mut scratch, v);
                        rat_core::solve::speedup_only(&scratch).unwrap()
                    })
                    .collect();
                black_box(out)
            })
        });
    }
    g.finish();
}

fn bench_uncertainty_scaling(c: &mut Criterion) {
    let input = rat_apps::pdf::pdf1d::rat_input(150.0e6);
    let ranges = [
        ParamRange::new(SweepParam::Fclock, 75.0e6, 150.0e6),
        ParamRange::new(SweepParam::ThroughputProc, 16.0, 24.0),
    ];
    let samples = 10_000usize;
    let mut g = c.benchmark_group("hotpath-uncertainty-scaling");
    g.throughput(Throughput::Elements(samples as u64));
    for &jobs in &[1usize, 2, 4, 8] {
        let engine = Engine::new(EngineConfig::default().with_jobs(jobs));
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, _| {
            b.iter(|| black_box(propagate_with(&engine, &input, &ranges, samples, 7).unwrap()))
        });
    }
    g.finish();
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    // Pure engine dispatch cost, isolated from kernel work: 64 empty jobs
    // through a warm pool at each job count. With barrier-free indexed
    // collection this should stay flat-ish in the job count; a per-batch
    // spawn or an ordered collection barrier shows up here immediately.
    let mut g = c.benchmark_group("hotpath-dispatch-overhead");
    g.throughput(Throughput::Elements(64));
    for &jobs in &[1usize, 2, 4, 8] {
        let engine = Engine::new(EngineConfig::default().with_jobs(jobs));
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, _| {
            b.iter(|| black_box(engine.run(64, |i| i)))
        });
    }
    g.finish();
}

fn bench_explore_paths(c: &mut Criterion) {
    let space = DesignSpace {
        base: rat_apps::pdf::pdf1d::rat_input(150.0e6),
        fclocks: vec![75.0e6, 100.0e6, 150.0e6],
        throughput_procs: vec![10.0, 20.0, 24.0],
        bufferings: vec![Buffering::Single, Buffering::Double],
    };
    let mut g = c.benchmark_group("hotpath-explore");
    g.throughput(Throughput::Elements(space.size() as u64));
    g.bench_function("two_phase", |b| {
        b.iter(|| black_box(explore(&space, 10.0).unwrap()))
    });
    g.bench_function("eager", |b| {
        b.iter(|| {
            let mut passing = 0usize;
            for corner in space.corners() {
                if Worksheet::new(corner).analyze().unwrap().speedup >= 10.0 {
                    passing += 1;
                }
            }
            black_box(passing)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_summary_paths,
    bench_uncertainty_paths,
    bench_batch_kernel,
    bench_uncertainty_scaling,
    bench_dispatch_overhead,
    bench_explore_paths
);
criterion_main!(benches);
