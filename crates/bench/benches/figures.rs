//! One benchmark per paper figure: regenerating the methodology flow
//! (Figure 1), the simulated overlap schedules (Figure 2), and the 1-D PDF
//! architecture rendering (Figure 3).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.bench_function("figure1_methodology_flow", |b| {
        b.iter(|| black_box(rat_bench::figures::render_figure1()))
    });
    g.bench_function("figure2_overlap_scenarios", |b| {
        b.iter(|| black_box(rat_bench::figures::render_figure2()))
    });
    g.bench_function("figure3_pdf1d_architecture", |b| {
        b.iter(|| black_box(rat_bench::figures::render_figure3()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
