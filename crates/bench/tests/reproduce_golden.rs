//! Golden tests for `rat reproduce table2..table10`.
//!
//! Two kinds of pin:
//!
//! - **Predicted columns** (the RAT worksheet's outputs) must agree with the
//!   paper's printed values to the paper's own precision — 3 significant
//!   figures for the scientific-notation rows, one decimal for the speedup
//!   row — allowing one unit in the last printed digit for rounding skew.
//! - **"Actual" columns** (the cycle simulator's measurements) must land
//!   inside the calibration bands documented in DESIGN.md §5; the simulator
//!   is calibrated to the paper's measurements, not forced to them, so these
//!   are bands rather than exact pins.
//!
//! The warm-cache test covers the acceptance criterion that a second
//! `reproduce all` in the same process re-simulates nothing: >50% cache hits
//! with byte-identical output.

use std::sync::Mutex;

use fpga_sim::SimCache;
use rat_bench::paper;

/// Tests here share the process-global simulator cache; serialize the ones
/// that read or reset its statistics.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn body(id: &str) -> String {
    rat_bench::artifact(id, true)
        .unwrap_or_else(|| panic!("unknown artifact {id}"))
        .body
}

/// Parse the numeric columns of a table row. The label may contain spaces, so
/// scan tokens and keep everything that parses as f64 (percent cells parse
/// after stripping the `%`).
fn row_values(table: &str, label: &str) -> Vec<f64> {
    let line = table
        .lines()
        .find(|l| l.starts_with(label))
        .unwrap_or_else(|| panic!("row '{label}' missing from:\n{table}"));
    line.split_whitespace()
        .filter_map(|tok| tok.trim_end_matches('%').parse::<f64>().ok())
        .collect()
}

/// `ours` agrees with the paper's `printed` value to the paper's precision:
/// within one unit in the last printed digit (`sig_figs` significant
/// figures), with 5% slack on that unit for re-rounding.
fn assert_matches_printed(ours: f64, printed: f64, sig_figs: i32, what: &str) {
    let ulp = 10f64.powi(printed.abs().log10().floor() as i32 - (sig_figs - 1));
    assert!(
        (ours - printed).abs() <= 1.05 * ulp,
        "{what}: ours {ours} vs paper {printed} (allowed ±{ulp:.3e})"
    );
}

/// Check one performance table's predicted columns against the paper's three
/// printed prediction columns.
fn check_predicted(table: &str, predicted: &[paper::PerfColumn; 3]) {
    let t_comm = row_values(table, "t_comm");
    let t_comp = row_values(table, "t_comp");
    let t_rc = row_values(table, "t_RC_SB");
    let speedup = row_values(table, "speedup");
    for (i, col) in predicted.iter().enumerate() {
        let mhz = col.fclock / 1e6;
        assert_matches_printed(t_comm[i], col.t_comm, 3, &format!("t_comm @{mhz} MHz"));
        assert_matches_printed(t_comp[i], col.t_comp, 3, &format!("t_comp @{mhz} MHz"));
        assert_matches_printed(t_rc[i], col.t_rc, 3, &format!("t_RC @{mhz} MHz"));
        // The speedup row prints one decimal place.
        assert!(
            (speedup[i] - col.speedup).abs() <= 0.105,
            "speedup @{mhz} MHz: ours {} vs paper {}",
            speedup[i],
            col.speedup
        );
    }
}

/// The simulated-actual cell sits second from the right in every row.
fn sim_actual(table: &str, label: &str) -> f64 {
    let vals = row_values(table, label);
    vals[vals.len() - 2]
}

#[test]
fn table2_pins_the_1d_pdf_worksheet_inputs() {
    let t = body("table2");
    for (param, value) in [
        ("N_elements, input", "512"),
        ("N_ops/element", "768"),
        ("throughput_proc (ops/cycle)", "20"),
        ("alpha_write", "0.37"),
        ("alpha_read", "0.16"),
        ("t_soft (sec)", "0.578"),
        ("N_iter (iterations)", "400"),
    ] {
        let line = t
            .lines()
            .find(|l| l.starts_with(param))
            .unwrap_or_else(|| panic!("{param}"));
        assert!(line.ends_with(value), "{param}: want {value}, got '{line}'");
    }
}

#[test]
fn table5_pins_the_2d_pdf_worksheet_inputs() {
    let t = body("table5");
    for (param, value) in [
        ("N_elements, input", "1024"),
        ("N_elements, output", "65536"),
        ("throughput_proc (ops/cycle)", "48"),
        ("t_soft (sec)", "158.8"),
        ("N_iter (iterations)", "400"),
    ] {
        let line = t
            .lines()
            .find(|l| l.starts_with(param))
            .unwrap_or_else(|| panic!("{param}"));
        assert!(line.ends_with(value), "{param}: want {value}, got '{line}'");
    }
}

#[test]
fn table8_pins_the_md_worksheet_inputs() {
    let t = body("table8");
    for (param, value) in [
        ("N_elements, input", "16384"),
        ("N_ops/element", "164000"),
        ("throughput_proc (ops/cycle)", "50"),
        ("t_soft (sec)", "5.78"),
        ("N_iter (iterations)", "1"),
    ] {
        let line = t
            .lines()
            .find(|l| l.starts_with(param))
            .unwrap_or_else(|| panic!("{param}"));
        assert!(line.ends_with(value), "{param}: want {value}, got '{line}'");
    }
}

#[test]
fn table3_predicted_matches_paper_and_actual_is_in_band() {
    let _g = CACHE_LOCK.lock().unwrap();
    let t = body("table3");
    check_predicted(&t, &paper::TABLE3_PREDICTED);

    // DESIGN.md §5 bands for the simulated 150 MHz actual column.
    let t_comm = sim_actual(&t, "t_comm");
    let t_comp = sim_actual(&t, "t_comp");
    let t_rc = sim_actual(&t, "t_RC_SB");
    let speedup = sim_actual(&t, "speedup");
    assert!((t_comm - 2.50e-5).abs() / 2.50e-5 < 0.10, "t_comm {t_comm}");
    assert!((t_comp - 1.39e-4).abs() / 1.39e-4 < 0.03, "t_comp {t_comp}");
    assert!((t_rc - 7.45e-2).abs() / 7.45e-2 < 0.05, "t_RC {t_rc}");
    assert!((7.4..=8.2).contains(&speedup), "speedup {speedup}");
}

#[test]
fn table6_predicted_matches_paper_and_actual_reproduces_the_prose() {
    let _g = CACHE_LOCK.lock().unwrap();
    let t = body("table6");
    check_predicted(&t, &paper::TABLE6_PREDICTED);

    // §5.1 prose: measured communication ~6x the 1.65e-3 prediction (band
    // 5.4x-6.6x), ~19% communication utilization (band 17-21%), speedup
    // around 7.6 (band 7.0-8.0).
    let t_comm = sim_actual(&t, "t_comm");
    let util = sim_actual(&t, "util_comm_SB") / 100.0;
    let speedup = sim_actual(&t, "speedup");
    let ratio = t_comm / 1.65e-3;
    assert!((5.4..=6.6).contains(&ratio), "comm inflation {ratio}");
    assert!((0.17..=0.21).contains(&util), "util_comm {util}");
    assert!((7.0..=8.0).contains(&speedup), "speedup {speedup}");
}

#[test]
fn table9_predicted_matches_paper_and_actual_is_in_band() {
    let _g = CACHE_LOCK.lock().unwrap();
    let t = body("table9");
    check_predicted(&t, &paper::TABLE9_PREDICTED);

    // DESIGN.md §5: measured MD speedup 6.6 +/- 0.15; the data-dependent
    // workload lands within 1% of the worksheet's 164,000 ops/molecule.
    let speedup = sim_actual(&t, "speedup");
    assert!((speedup - 6.6).abs() <= 0.15, "speedup {speedup}");
    let ops_line = t
        .lines()
        .find(|l| l.contains("ops/molecule"))
        .expect("workload note");
    let ops: f64 = ops_line
        .split_whitespace()
        .find_map(|tok| tok.parse::<f64>().ok().filter(|v| *v > 1e5))
        .expect("measured ops/molecule");
    assert!(
        (ops - 164_000.0).abs() / 164_000.0 < 0.01,
        "ops/molecule {ops}"
    );
}

#[test]
fn resource_tables_pin_their_legible_paper_rows() {
    let t4 = body("table4");
    assert!(t4.contains("LX100"), "{t4}");
    assert!(t4.contains("BRAMs"), "{t4}");
    let t7 = body("table7");
    assert!(t7.contains("LX100"), "{t7}");
    assert!(t7.contains("21%"), "Table 7's legible slice row:\n{t7}");
    let t10 = body("table10");
    assert!(t10.contains("EP2S180"), "{t10}");
    // paper::TABLE10_DSP_SATURATED documents why 100% is the pin here.
    assert!(t10.contains("100%"), "Table 10's saturated DSP row:\n{t10}");
}

/// Acceptance criterion: a warm second `reproduce all` hits the simulator
/// cache for more than half its lookups and produces identical artifacts.
#[test]
fn warm_reproduce_all_mostly_hits_the_cache_with_identical_output() {
    let _g = CACHE_LOCK.lock().unwrap();
    let cache = SimCache::global();
    let first = rat_bench::all_artifacts(true);
    cache.reset_stats();
    let second = rat_bench::all_artifacts(true);
    let stats = cache.stats();
    assert!(
        stats.hits + stats.misses > 0,
        "reproduce all must consult the simulator cache"
    );
    assert!(
        stats.hit_rate() > 0.5,
        "warm run should mostly hit: {} hits, {} misses",
        stats.hits,
        stats.misses
    );
    assert_eq!(first, second, "warm run must not change any artifact");
}

/// Satellite pin for the typed-quantity refactor: the full `reproduce all`
/// output must be byte-identical to the fixture captured before the refactor.
/// Replicates the CLI's rendering exactly — one `==== id — title ====` banner
/// per artifact plus the final newline `println!` appends.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full-scale MD workload; run with --release"
)]
fn reproduce_all_matches_golden_fixture() {
    let _g = CACHE_LOCK.lock().unwrap();
    let golden = include_str!("golden/reproduce_all.txt");
    let mut out = String::new();
    for a in rat_bench::all_artifacts(false) {
        out.push_str(&format!("==== {} — {} ====\n{}\n", a.id, a.title, a.body));
    }
    out.push('\n');
    if out != golden {
        let diverge = out
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .map(|i| {
                format!(
                    "first divergence at line {}:\n  ours:   {:?}\n  golden: {:?}",
                    i + 1,
                    out.lines().nth(i).unwrap_or(""),
                    golden.lines().nth(i).unwrap_or("")
                )
            })
            .unwrap_or_else(|| {
                format!(
                    "line-identical prefix; lengths differ ({} vs {} bytes)",
                    out.len(),
                    golden.len()
                )
            });
        panic!("reproduce all drifted from the golden fixture; {diverge}");
    }
}
