//! Performance-regression gate over the checked-in bench evidence.
//!
//! CI's release job runs this (`cargo test --release -p rat-bench --test
//! perf_gate -- --ignored`): it produces a live `rat bench --quick --json`
//! report in-process and fails if any ratio that the newest `BENCH_<pr>.json`
//! evidence file also records has collapsed. The gate is deliberately loose —
//! quick sizes on shared CI runners are noisy — so it only catches a fast
//! path actually dying, not ordinary jitter:
//!
//! * size-stable ratios (the scalar-vs-batch uncertainty, kernel, explore,
//!   and telemetry families) must stay above **0.5×** their checked-in value;
//! * size-dependent ratios (listed in [`ABSOLUTE_FLOORS`] with the reason)
//!   sit below their full-size evidence at quick sizes by construction, so
//!   each is gated against an absolute floor chosen between its quick-size
//!   value and what a dead fast path would produce.

use rat_bench::hotbench;
use rat_core::telemetry::json::{self, Json};

/// Ratios whose value scales with problem size, gated by an absolute floor
/// rather than relative to the full-size evidence: fast-forward wins grow
/// with simulated iteration count (quick ~50×, full ~600×; a dead fast path
/// ~1×), and the clone-per-sample comparison amortizes the batch pipeline's
/// fixed cost over the sample count (quick ~2–4×, full ~5×; a dead batch
/// path ~0.3×).
const ABSOLUTE_FLOORS: [(&str, f64); 3] = [
    ("execute_summary_fast_forward_vs_exhaustive", 10.0),
    ("execute_summary_fast_forward_vs_full_trace", 10.0),
    ("uncertainty_batch_vs_clone_per_sample", 1.1),
];

const RELATIVE_FLOOR: f64 = 0.5;

/// The newest `BENCH_<pr>.json` at the repo root (highest PR number), parsed.
fn newest_evidence() -> (String, Json) {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut newest: Option<(u64, String)> = None;
    for entry in std::fs::read_dir(root).expect("repo root readable") {
        let name = entry
            .expect("dir entry")
            .file_name()
            .to_string_lossy()
            .into_owned();
        let Some(pr) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        if newest.as_ref().is_none_or(|(best, _)| pr > *best) {
            newest = Some((pr, name));
        }
    }
    let (_, name) = newest.expect("at least one BENCH_<pr>.json evidence file");
    let text = std::fs::read_to_string(format!("{root}/{name}")).expect("evidence readable");
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("{name}: bad JSON: {e}"));
    (name, doc)
}

/// Ratio name → speedup from a bench report document.
fn ratios_of(doc: &Json) -> Vec<(String, f64)> {
    doc.get("ratios")
        .and_then(Json::as_array)
        .expect("ratios array")
        .iter()
        .map(|r| {
            let name = r.get("name").and_then(Json::as_str).expect("ratio name");
            let speedup = r
                .get("speedup")
                .and_then(Json::as_f64)
                .expect("ratio speedup");
            (name.to_string(), speedup)
        })
        .collect()
}

/// The serve acceptance criterion, pinned against the *checked-in* evidence
/// (no live timing, so this one is not `--ignored`): the newest evidence
/// file that records a serve block must show the warm server answering a
/// cached solve at least 10× faster at p50 than a cold CLI invocation.
#[test]
fn serve_evidence_shows_warm_server_at_least_10x_cold_cli() {
    let (name, doc) = newest_evidence();
    let serve = doc.get("serve").unwrap_or_else(|| {
        panic!("{name}: newest evidence has no serve block — run `rat bench --serve --json`")
    });
    let ratio = serve
        .get("warm_vs_cold")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("{name}: serve block missing warm_vs_cold"));
    assert!(
        ratio >= 10.0,
        "{name}: warm-server cached solve is only {ratio:.1}x a cold CLI run (need >= 10x)"
    );
}

/// The keep-alive transport acceptance criterion, pinned against the
/// checked-in evidence: the full serving path (persistent connections +
/// response cache + coalescing) must sustain at least 3x the throughput of
/// the close-per-request, cache-disabled baseline on the same mixed
/// duplicate-heavy workload.
#[test]
fn serve_evidence_shows_keepalive_at_least_3x_close_per_request() {
    let (name, doc) = newest_evidence();
    let Some(serve) = doc.get("serve") else {
        panic!("{name}: newest evidence has no serve block — run `rat bench --serve --json`")
    };
    let Some(ratio) = serve.get("keepalive_vs_close_rps").and_then(Json::as_f64) else {
        panic!(
            "{name}: serve block predates keepalive_vs_close_rps (schema v3) — \
             regenerate with `rat bench --serve --json`"
        )
    };
    assert!(
        ratio >= 3.0,
        "{name}: keep-alive serving is only {ratio:.2}x the close-per-request \
         baseline (need >= 3x)"
    );
    // The transport claim is only meaningful if connections were actually
    // reused; a broken keep-alive loop shows up here as a near-zero ratio.
    let reuse = serve
        .get("reuse_ratio")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("{name}: serve block missing reuse_ratio"));
    assert!(
        reuse >= 0.9,
        "{name}: keep-alive phase reused only {reuse:.3} of its requests' connections"
    );
}

/// The response-cache acceptance criterion, pinned against the checked-in
/// evidence: a repeated identical request on a warm connection must answer
/// at least 5x faster at p50 from the response cache than the uncached
/// recompute-every-time path.
#[test]
fn serve_evidence_shows_cached_repeats_at_least_5x_uncached() {
    let (name, doc) = newest_evidence();
    let Some(serve) = doc.get("serve") else {
        panic!("{name}: newest evidence has no serve block — run `rat bench --serve --json`")
    };
    let Some(ratio) = serve.get("warm_cached_speedup").and_then(Json::as_f64) else {
        panic!(
            "{name}: serve block predates warm_cached_speedup (schema v3) — \
             regenerate with `rat bench --serve --json`"
        )
    };
    assert!(
        ratio >= 5.0,
        "{name}: cached repeated requests are only {ratio:.2}x the uncached \
         path at p50 (need >= 5x)"
    );
}

/// The stage-graph acceptance criterion, pinned against the checked-in
/// evidence: a single-axis sweep through the staged kernel (comm terms
/// hoisted by the stage plan) must run at least 1.5x the eager per-point
/// comm recomputation it replaced.
#[test]
fn staged_sweep_evidence_shows_at_least_1_5x_over_eager() {
    let (name, doc) = newest_evidence();
    let ratios = ratios_of(&doc);
    let (_, speedup) = ratios
        .iter()
        .find(|(n, _)| n == "sweep_staged_vs_eager")
        .unwrap_or_else(|| {
            panic!(
                "{name}: evidence records no sweep_staged_vs_eager ratio — \
                 regenerate with `rat bench --serve --json`"
            )
        });
    assert!(
        *speedup >= 1.5,
        "{name}: staged sweep kernel is only {speedup:.2}x the eager baseline (need >= 1.5x)"
    );
}

/// The host block of the newest evidence file: (logical_cores, avx2). The
/// scaling and kernel gates are host-aware, so evidence without provenance
/// (schema v1) cannot be gated — regenerate it.
fn evidence_host(name: &str, doc: &Json) -> (u64, bool) {
    let host = doc.get("host").unwrap_or_else(|| {
        panic!("{name}: evidence has no host block — regenerate with `rat bench --serve --json`")
    });
    let cores = host
        .get("logical_cores")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("{name}: host.logical_cores missing")) as u64;
    let avx2 = matches!(host.get("avx2"), Some(Json::Bool(true)));
    (cores, avx2)
}

/// The job-scaling acceptance criterion, pinned against the checked-in
/// evidence: the Monte-Carlo uncertainty pipeline at 8 jobs vs 1 job.
///
/// The floor is tiered by the *recorded* core count, because the ratio is a
/// property of the machine the evidence was measured on, not of the code
/// alone. The issue's 3x target applies on hosts with >= 8 logical cores; on
/// the 1-core container this repo is grown in, true parallel speedup is
/// physically impossible, so the gate instead pins what the engine *can*
/// deliver there: 7 oversubscribed workers on a warm pool must cost almost
/// nothing (>= 0.75x, i.e. at most ~33% dispatch/context-switch overhead).
/// A collapsed dispatch path (per-job spawn, serialized collection) lands
/// well below every tier.
#[test]
fn job_scaling_evidence_meets_the_host_tiered_floor() {
    let (name, doc) = newest_evidence();
    let (cores, _) = evidence_host(&name, &doc);
    let ratios = ratios_of(&doc);
    let (_, speedup) = ratios
        .iter()
        .find(|(n, _)| n == "uncertainty_batch_scaling_8_vs_1")
        .unwrap_or_else(|| panic!("{name}: evidence records no uncertainty_batch_scaling_8_vs_1"));
    let floor = match cores {
        0..=1 => 0.75,
        2..=3 => 1.3,
        4..=7 => 2.0,
        _ => 3.0,
    };
    assert!(
        *speedup >= floor,
        "{name}: 8-job scaling is {speedup:.2}x on a {cores}-core host (floor {floor}x)"
    );
}

/// The SIMD-kernel acceptance criterion, pinned against the checked-in
/// evidence: the batched analytic speedup kernel vs the per-point scalar
/// driver. On an AVX2 host the vector path must carry the ratio to >= 6x;
/// without AVX2 the always-compiled scalar batch path still owes >= 3x from
/// decode hoisting and column reuse alone (BENCH_7 measured 3.74x pre-SIMD).
#[test]
fn kernel_evidence_meets_the_simd_floor() {
    let (name, doc) = newest_evidence();
    let (_, avx2) = evidence_host(&name, &doc);
    let ratios = ratios_of(&doc);
    let (_, speedup) = ratios
        .iter()
        .find(|(n, _)| n == "speedup_kernel_batch_vs_scalar")
        .unwrap_or_else(|| panic!("{name}: evidence records no speedup_kernel_batch_vs_scalar"));
    let floor = if avx2 { 6.0 } else { 3.0 };
    assert!(
        *speedup >= floor,
        "{name}: batch kernel is {speedup:.2}x scalar (avx2={avx2}, floor {floor}x)"
    );
}

/// The guided-search acceptance criterion, pinned against the checked-in
/// evidence (counts and model outputs, not wall time, so this one is not
/// `--ignored`): the cross-entropy `rat optimize` search must land within
/// 1% of the optimum an exhaustive `explore` grid finds over the same axes,
/// while spending at most a tenth of the evaluations.
#[test]
fn guided_search_evidence_matches_exhaustive_within_1pct_at_a_tenth_of_the_evals() {
    let (name, doc) = newest_evidence();
    let ratios = ratios_of(&doc);
    let (_, quality) = ratios
        .iter()
        .find(|(n, _)| n == "optimize_guided_quality_vs_exhaustive")
        .unwrap_or_else(|| {
            panic!(
                "{name}: evidence records no optimize_guided_quality_vs_exhaustive ratio — \
                 regenerate with `rat bench --serve --json`"
            )
        });
    assert!(
        *quality >= 0.99,
        "{name}: guided search reaches only {quality:.4}x the exhaustive optimum (need >= 0.99)"
    );
    // A quality ratio meaningfully above 1 would mean the \"exhaustive\"
    // grid missed the optimum — the baseline itself would be broken.
    assert!(
        *quality <= 1.0 + 1e-9,
        "{name}: guided search beat the exhaustive grid ({quality:.4}x) — grid too coarse"
    );
    let (_, budget) = ratios
        .iter()
        .find(|(n, _)| n == "optimize_eval_budget_exhaustive_vs_guided")
        .unwrap_or_else(|| {
            panic!("{name}: evidence records no optimize_eval_budget_exhaustive_vs_guided ratio")
        });
    assert!(
        *budget >= 10.0,
        "{name}: guided search used more than a tenth of the exhaustive budget \
         ({budget:.2} grid evals per guided eval, need >= 10)"
    );
}

#[test]
#[ignore = "perf gate: timing-sensitive; CI's release job runs it with --ignored"]
fn live_ratios_have_not_collapsed_against_checked_in_evidence() {
    let (evidence_name, evidence) = newest_evidence();
    let reference = ratios_of(&evidence);
    let live_report = hotbench::run(true);
    let live = json::parse(&live_report.to_json()).expect("live report JSON");
    let live = ratios_of(&live);

    let mut failures = Vec::new();
    let mut gated = 0usize;
    for (name, want) in &reference {
        let Some((_, got)) = live.iter().find(|(n, _)| n == name) else {
            // Evidence from an older PR may record ratios the current bench
            // no longer derives; renames are caught by the schema test.
            continue;
        };
        gated += 1;
        let floor = ABSOLUTE_FLOORS
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| *f);
        if let Some(floor) = floor {
            if *got < floor {
                failures.push(format!(
                    "{name}: live {got:.2}x below absolute floor {floor}x"
                ));
            }
        } else if *got < RELATIVE_FLOOR * want {
            failures.push(format!(
                "{name}: live {got:.2}x below {RELATIVE_FLOOR} x checked-in {want:.2}x \
                 ({evidence_name})"
            ));
        }
    }
    assert!(
        gated >= 5,
        "gate compared only {gated} ratios — evidence or bench changed shape"
    );
    assert!(
        failures.is_empty(),
        "performance regression(s) detected:\n{}",
        failures.join("\n")
    );
}
