//! Golden test for the `rat bench --json` shape: the live report and every
//! checked-in `BENCH_<pr>.json` evidence file must satisfy the same schema,
//! versioned by `schema_version`. Adding scenarios or ratios is allowed
//! (evidence files grow PR over PR); renaming, retyping, or removing a field
//! is what the version pin exists to catch.

use rat_bench::hotbench::{self, SCHEMA_VERSION};
use rat_core::telemetry::json::{self, Json};

/// Validate one bench report document against the schema its declared
/// `schema_version` names; returns the scenario names for content checks.
/// v1 evidence (PRs 1..=7) has no `host` block; v2 requires one, recording
/// the CPU features and toolchain the numbers were measured with.
fn assert_bench_schema(doc: &Json, what: &str) -> Vec<String> {
    let version =
        doc.get("schema_version")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{what}: missing numeric schema_version")) as u64;
    assert!(
        (1..=SCHEMA_VERSION).contains(&version),
        "{what}: schema version {version} unknown (current is {SCHEMA_VERSION})"
    );
    assert!(
        matches!(doc.get("quick"), Some(Json::Bool(_))),
        "{what}: quick must be a bool"
    );
    if version >= 2 {
        let host = doc
            .get("host")
            .unwrap_or_else(|| panic!("{what}: v2 requires a host block"));
        let cores = host
            .get("logical_cores")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{what}: host.logical_cores numeric"));
        assert!(cores >= 1.0, "{what}: host.logical_cores >= 1");
        for flag in ["avx2", "fma"] {
            assert!(
                matches!(host.get(flag), Some(Json::Bool(_))),
                "{what}: host.{flag} must be a bool"
            );
        }
        let rustc = host
            .get("rustc")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{what}: host.rustc is a string"));
        assert!(!rustc.is_empty(), "{what}: host.rustc nonempty");
    } else {
        assert!(
            doc.get("host").is_none(),
            "{what}: v1 evidence predates the host block; bump schema_version"
        );
    }

    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{what}: scenarios array"));
    assert!(!scenarios.is_empty(), "{what}: at least one scenario");
    let mut names = Vec::new();
    for s in scenarios {
        let name = s
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{what}: scenario name is a string: {s:?}"));
        for field in ["work", "reps", "total_ns", "ns_per_rep"] {
            let v = s
                .get(field)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{what}: scenario {name} missing numeric {field}"));
            assert!(v >= 0.0, "{what}: {name}.{field} nonnegative");
        }
        // ns_per_rep is derived; it must agree with total_ns / reps.
        let total = s.get("total_ns").and_then(Json::as_f64).unwrap();
        let reps = s.get("reps").and_then(Json::as_f64).unwrap().max(1.0);
        let per_rep = s.get("ns_per_rep").and_then(Json::as_f64).unwrap();
        assert!(
            (per_rep - (total / reps).trunc()).abs() <= 1.0,
            "{what}: {name} ns_per_rep {per_rep} inconsistent with total {total} / reps {reps}"
        );
        names.push(name.to_string());
    }

    let ratios = doc
        .get("ratios")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{what}: ratios array"));
    assert!(!ratios.is_empty(), "{what}: at least one ratio");
    for r in ratios {
        let name = r
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{what}: ratio name is a string: {r:?}"));
        let speedup = r
            .get("speedup")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{what}: ratio {name} missing numeric speedup"));
        assert!(
            speedup.is_finite() && speedup > 0.0,
            "{what}: ratio {name} speedup {speedup} must be finite and positive"
        );
    }
    // The optional serve block (present once `rat bench --serve` evidence is
    // recorded): all-numeric, with the derived warm-vs-cold ratio agreeing
    // with its operands. v3 grows the block with the keep-alive transport
    // and response-cache evidence; older evidence predates those fields.
    if let Some(serve) = doc.get("serve") {
        let mut fields = vec![
            "requests",
            "rps",
            "p50_us",
            "p99_us",
            "p999_us",
            "warm_solve_p50_us",
            "cold_cli_solve_p50_us",
            "warm_vs_cold",
        ];
        if version >= 3 {
            fields.extend([
                "close_requests",
                "close_rps",
                "keepalive_vs_close_rps",
                "reuse_ratio",
                "connect_p50_us",
                "warm_uncached_p50_us",
                "warm_cached_p50_us",
                "warm_cached_speedup",
            ]);
        }
        for field in fields {
            let v = serve
                .get(field)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{what}: serve block missing numeric {field}"));
            assert!(
                v.is_finite() && v >= 0.0,
                "{what}: serve.{field} = {v} must be finite and nonnegative"
            );
        }
        let warm = serve
            .get("warm_solve_p50_us")
            .and_then(Json::as_f64)
            .unwrap();
        let cold = serve
            .get("cold_cli_solve_p50_us")
            .and_then(Json::as_f64)
            .unwrap();
        let ratio = serve.get("warm_vs_cold").and_then(Json::as_f64).unwrap();
        let derived = cold / warm.max(1.0);
        assert!(
            (ratio - derived).abs() <= 0.01 * derived.max(1.0),
            "{what}: serve.warm_vs_cold {ratio} inconsistent with cold {cold} / warm {warm}"
        );
        if version >= 3 {
            // The two new derived ratios must agree with their operands, and
            // the reuse ratio is a fraction by definition.
            let rps = serve.get("rps").and_then(Json::as_f64).unwrap();
            let close_rps = serve.get("close_rps").and_then(Json::as_f64).unwrap();
            let ka = serve
                .get("keepalive_vs_close_rps")
                .and_then(Json::as_f64)
                .unwrap();
            let derived = rps / close_rps.max(1e-9);
            assert!(
                (ka - derived).abs() <= 0.01 * derived.max(1.0),
                "{what}: serve.keepalive_vs_close_rps {ka} inconsistent with \
                 rps {rps} / close_rps {close_rps}"
            );
            let uncached = serve
                .get("warm_uncached_p50_us")
                .and_then(Json::as_f64)
                .unwrap();
            let cached = serve
                .get("warm_cached_p50_us")
                .and_then(Json::as_f64)
                .unwrap();
            let speedup = serve
                .get("warm_cached_speedup")
                .and_then(Json::as_f64)
                .unwrap();
            let derived = uncached / cached.max(1.0);
            assert!(
                (speedup - derived).abs() <= 0.01 * derived.max(1.0),
                "{what}: serve.warm_cached_speedup {speedup} inconsistent with \
                 uncached {uncached} / cached {cached}"
            );
            let reuse = serve.get("reuse_ratio").and_then(Json::as_f64).unwrap();
            assert!(
                (0.0..=1.0).contains(&reuse),
                "{what}: serve.reuse_ratio {reuse} must be a fraction"
            );
        }
    }

    names
}

#[test]
fn live_quick_report_satisfies_the_schema() {
    let report = hotbench::run(true);
    let doc = json::parse(&report.to_json()).expect("to_json emits valid JSON");
    // A freshly generated report always carries the *current* schema version
    // (and therefore, per the validator, the host provenance block).
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_f64),
        Some(SCHEMA_VERSION as f64),
        "live report must declare the current schema version"
    );
    let names = assert_bench_schema(&doc, "live quick report");
    for required in [
        "execute_summary_fast_forward",
        "execute_summary_telemetry_enabled",
        "uncertainty_scalar",
        "explore_two_phase",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "live report missing scenario {required}"
        );
    }
}

/// Every `BENCH_*.json` evidence file at the repo root parses and satisfies
/// the schema its `schema_version` declares.
#[test]
fn checked_in_bench_evidence_satisfies_the_schema() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut found = 0usize;
    for entry in std::fs::read_dir(root).expect("repo root readable") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(entry.path()).expect("evidence file readable");
        let doc = json::parse(&text).unwrap_or_else(|e| panic!("{name}: bad JSON: {e}"));
        let names = assert_bench_schema(&doc, &name);
        assert!(
            names.iter().any(|n| n == "execute_summary_fast_forward"),
            "{name}: evidence must include the acceptance-criteria summary scenario"
        );
        // Serve evidence starts at PR 6; from there every evidence file must
        // carry the serve block (the fields are validated above).
        let pr: u64 = name[6..name.len() - 5].parse().unwrap_or(0);
        if pr >= 6 {
            assert!(
                doc.get("serve").is_some(),
                "{name}: evidence from PR {pr} must include the serve block"
            );
        }
        found += 1;
    }
    assert!(found >= 1, "no BENCH_*.json evidence files found at {root}");
}
