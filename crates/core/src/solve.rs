//! Inverse solvers: work backwards from a target speedup.
//!
//! §3.1 of the paper: *"a better approach would be to treat `throughput_proc`
//! as an independent variable and select a desired speedup value. Then one can
//! solve for the particular `throughput_proc` value required to achieve that
//! desired speedup. This method provides the user with insight into the
//! relative amount of parallelism that must be incorporated for a design to
//! succeed."* The molecular-dynamics case study used exactly this: its
//! `throughput_proc = 50` is the value these equations return for a ~10x goal.
//!
//! Each solver holds every parameter fixed except one, and reports
//! [`RatError::Infeasible`] when no value of that parameter can reach the
//! target (e.g. communication alone exceeds the time budget).
//!
//! ```
//! use rat_core::quantity::{Freq, Seconds, Throughput};
//! use rat_core::solve;
//!
//! // The MD case study's tuning: what ops/cycle does ~10x demand?
//! let input = rat_core::params::RatInput {
//!     name: "MD".into(),
//!     dataset: rat_core::params::DatasetParams {
//!         elements_in: 16384, elements_out: 16384, bytes_per_element: 36,
//!     },
//!     comm: rat_core::params::CommParams {
//!         ideal_bandwidth: Throughput::from_mbytes_per_sec(500.0),
//!         alpha_write: 0.9, alpha_read: 0.9,
//!     },
//!     comp: rat_core::params::CompParams {
//!         ops_per_element: 164_000.0, throughput_proc: 1.0, fclock: Freq::from_mhz(100.0),
//!     },
//!     software: rat_core::params::SoftwareParams { t_soft: Seconds::new(5.78), iterations: 1 },
//!     buffering: rat_core::params::Buffering::Single,
//! };
//! let needed = solve::required_throughput_proc(&input, 10.7).unwrap();
//! assert!((needed - 50.0).abs() < 0.5); // the paper's Table-8 value
//! ```

pub mod batch;
pub mod stages;

use crate::error::RatError;
use crate::params::{Buffering, RatInput};
use crate::quantity::{Freq, Seconds};
use crate::throughput;

/// Per-iteration execution-time budget implied by a target speedup.
fn iter_budget(input: &RatInput, target_speedup: f64) -> Result<Seconds, RatError> {
    if !(target_speedup.is_finite() && target_speedup > 0.0) {
        return Err(RatError::param(format!(
            "target speedup must be positive, got {target_speedup}"
        )));
    }
    Ok(input.software.t_soft / target_speedup / input.software.iterations as f64)
}

/// The computation-time budget left after communication, under the input's
/// buffering discipline.
///
/// `comm` is the per-iteration communication time; the caller supplies it so
/// a batched solve can hoist the one `t_comm` evaluation shared by every
/// target. The arithmetic is pure, so passing a precomputed value is
/// bit-identical to recomputing it inline.
fn comp_budget_with(
    input: &RatInput,
    target_speedup: f64,
    comm: Seconds,
) -> Result<Seconds, RatError> {
    let budget = iter_budget(input, target_speedup)?;
    let available = match input.buffering {
        // Serial: computation gets what communication leaves over.
        Buffering::Single => budget - comm,
        // Overlapped: computation may use the whole budget, but the budget must
        // still cover communication (the channel is the floor).
        Buffering::Double => {
            if comm > budget {
                Seconds::new(-1.0)
            } else {
                budget
            }
        }
    };
    if available <= Seconds::ZERO {
        return Err(RatError::infeasible(format!(
            "communication alone ({:.3e} s/iter) exceeds the per-iteration budget \
             ({:.3e} s) for a {target_speedup}x speedup; no computation rate can help",
            comm.seconds(),
            budget.seconds()
        )));
    }
    Ok(available)
}

fn required_throughput_proc_with(
    input: &RatInput,
    target_speedup: f64,
    comm: Seconds,
) -> Result<f64, RatError> {
    let budget = comp_budget_with(input, target_speedup, comm)?;
    let total_ops = input.dataset.elements_in as f64 * input.comp.ops_per_element;
    Ok(total_ops / (input.comp.fclock * budget))
}

fn required_fclock_with(
    input: &RatInput,
    target_speedup: f64,
    comm: Seconds,
) -> Result<Freq, RatError> {
    let budget = comp_budget_with(input, target_speedup, comm)?;
    let total_ops = input.dataset.elements_in as f64 * input.comp.ops_per_element;
    Ok(Freq::from_hz(
        total_ops / (input.comp.throughput_proc * budget.seconds()),
    ))
}

/// Solve for the `throughput_proc` (ops/cycle) required to reach
/// `target_speedup`, holding everything else fixed.
pub fn required_throughput_proc(input: &RatInput, target_speedup: f64) -> Result<f64, RatError> {
    let _span = crate::telemetry::span("solve.throughput_proc");
    input.validate()?;
    required_throughput_proc_with(input, target_speedup, throughput::t_comm(input))
}

/// Solve for the clock frequency required to reach `target_speedup`, holding
/// everything else fixed.
pub fn required_fclock(input: &RatInput, target_speedup: f64) -> Result<Freq, RatError> {
    let _span = crate::telemetry::span("solve.fclock");
    input.validate()?;
    required_fclock_with(input, target_speedup, throughput::t_comm(input))
}

/// Solve for the common factor by which *both* alphas must improve to reach
/// `target_speedup` (useful when the interconnect, not the kernel, is the
/// bottleneck). Returns the factor `k` such that scaling `alpha_write` and
/// `alpha_read` by `k` meets the target; errors if computation alone already
/// exceeds the budget (no interconnect can help), and notes when `k > 1/alpha`
/// would push an alpha past 1 (physically unreachable).
pub fn required_alpha_scale(input: &RatInput, target_speedup: f64) -> Result<f64, RatError> {
    let _span = crate::telemetry::span("solve.alpha");
    input.validate()?;
    required_alpha_scale_with(
        input,
        target_speedup,
        throughput::t_comm(input),
        throughput::t_comp(input),
    )
}

fn required_alpha_scale_with(
    input: &RatInput,
    target_speedup: f64,
    comm: Seconds,
    comp: Seconds,
) -> Result<f64, RatError> {
    let budget = iter_budget(input, target_speedup)?;
    let comm_budget = match input.buffering {
        Buffering::Single => budget - comp,
        Buffering::Double => {
            if comp > budget {
                Seconds::new(-1.0)
            } else {
                budget
            }
        }
    };
    if comm_budget <= Seconds::ZERO {
        return Err(RatError::infeasible(format!(
            "computation alone ({:.3e} s/iter) exceeds the per-iteration budget \
             ({:.3e} s); improving the interconnect cannot reach {target_speedup}x",
            comp.seconds(),
            budget.seconds()
        )));
    }
    // t_comm scales as 1/k, so k = t_comm / budget.
    let k = comm / comm_budget;
    let max_alpha = input.comm.alpha_write.max(input.comm.alpha_read);
    if k > 1.0 && k * max_alpha > 1.0 {
        return Err(RatError::infeasible(format!(
            "reaching {target_speedup}x needs alphas scaled by {k:.2}, pushing \
             alpha past 1.0 — beyond the interconnect's documented peak"
        )));
    }
    Ok(k.max(0.0))
}

/// The speedup ceiling as computation becomes infinitely fast: the
/// communication-bound limit `t_soft / (N_iter * t_comm)`. The paper's
/// observation that the channel is "only a single resource" makes this the
/// hard wall of any design on the platform.
pub fn max_speedup(input: &RatInput) -> Result<f64, RatError> {
    let _span = crate::telemetry::span("solve.ceiling");
    input.validate()?;
    let comm = throughput::t_comm(input);
    Ok(input.software.t_soft / (input.software.iterations as f64 * comm))
}

/// Validate `input` and return its predicted speedup — nothing else.
///
/// This is the scalar fast path for hot loops (Monte-Carlo sampling, corner
/// enumeration, dense sweeps) that would otherwise build and immediately
/// discard a full `Report` per point: the same `validate()` gate and the same
/// Eq. (7) arithmetic as the report pipeline, with no allocation at all.
pub fn speedup_only(input: &RatInput) -> Result<f64, RatError> {
    input.validate()?;
    Ok(throughput::speedup(input))
}

/// The four inverse answers a `solve` request renders: required
/// `throughput_proc`, required `f_clock`, required alpha scale, and the
/// communication-bound speedup ceiling. Each sub-solve carries its own
/// feasibility verdict so a renderer can show partial infeasibility inline.
#[derive(Debug, Clone)]
pub struct InverseQuad {
    /// `required_throughput_proc` for the target.
    pub throughput_proc: Result<f64, RatError>,
    /// `required_fclock` for the target.
    pub fclock: Result<Freq, RatError>,
    /// `required_alpha_scale` for the target.
    pub alpha_scale: Result<f64, RatError>,
    /// `stages::ceiling` — target-independent, but carried per quad so one
    /// struct is the complete answer.
    pub ceiling: Result<f64, RatError>,
}

/// Evaluate all four inverse solves for one `(input, target)` pair by the
/// scalar public solvers. This is the reference path; [`inverse_quad_batch`]
/// must agree with it bit-for-bit on values and verbatim on error text.
pub fn inverse_quad(input: &RatInput, target_speedup: f64) -> InverseQuad {
    InverseQuad {
        throughput_proc: required_throughput_proc(input, target_speedup),
        fclock: required_fclock(input, target_speedup),
        alpha_scale: required_alpha_scale(input, target_speedup),
        ceiling: stages::ceiling(input),
    }
}

/// Evaluate the inverse quad for many targets against one worksheet,
/// hoisting the work every target shares: one `validate()`, one `t_comm`,
/// one `t_comp`, one memoized ceiling. The per-target arithmetic is the
/// same pure expressions the scalar solvers run, with identical operand
/// order, so each element is bit-identical to `inverse_quad` on the same
/// pair — the contract the serving layer's request coalescer relies on.
pub fn inverse_quad_batch(input: &RatInput, targets: &[f64]) -> Vec<InverseQuad> {
    let _span = crate::telemetry::span("solve.quad_batch");
    crate::telemetry::add(crate::telemetry::Metric::BatchPoints, targets.len() as u64);
    if input.validate().is_err() {
        // Validation failure dominates every sub-solve; fall back to the
        // scalar path per target so error text stays verbatim.
        return targets.iter().map(|t| inverse_quad(input, *t)).collect();
    }
    let comm = throughput::t_comm(input);
    let comp = throughput::t_comp(input);
    let ceiling = stages::ceiling(input);
    targets
        .iter()
        .map(|&t| InverseQuad {
            throughput_proc: required_throughput_proc_with(input, t, comm),
            fclock: required_fclock_with(input, t, comm),
            alpha_scale: required_alpha_scale_with(input, t, comm, comp),
            ceiling: ceiling.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{
        pdf1d_example, Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams,
    };
    use crate::quantity::Throughput;

    /// The MD case study's Table 8 input, with `throughput_proc` as the unknown.
    fn md_input() -> RatInput {
        RatInput {
            name: "MD".into(),
            dataset: DatasetParams {
                elements_in: 16384,
                elements_out: 16384,
                bytes_per_element: 36,
            },
            comm: CommParams {
                ideal_bandwidth: Throughput::from_mbytes_per_sec(500.0),
                alpha_write: 0.9,
                alpha_read: 0.9,
            },
            comp: CompParams {
                ops_per_element: 164000.0,
                throughput_proc: 50.0,
                fclock: Freq::from_mhz(100.0),
            },
            software: SoftwareParams {
                t_soft: Seconds::new(5.78),
                iterations: 1,
            },
            buffering: Buffering::Single,
        }
    }

    #[test]
    fn md_paper_tuning_recovers_50_ops_per_cycle() {
        // §5.2: "50 is the quantitative value computed by the equations to
        // achieve the desired overall speedup of approximately 10x."
        let req = required_throughput_proc(&md_input(), 10.7).unwrap();
        assert!(
            (req - 50.0).abs() < 1.0,
            "required throughput_proc {req:.1} should be ~50 for the ~10x goal"
        );
    }

    #[test]
    fn solver_round_trips_with_forward_equations() {
        let input = pdf1d_example();
        let target = 8.0;
        let req = required_throughput_proc(&input, target).unwrap();
        let mut tuned = input.clone();
        tuned.comp.throughput_proc = req;
        let achieved = throughput::speedup(&tuned);
        assert!(
            (achieved - target).abs() / target < 1e-9,
            "achieved {achieved}, wanted {target}"
        );
    }

    #[test]
    fn fclock_solver_round_trips() {
        let input = pdf1d_example();
        let target = 9.0;
        let req = required_fclock(&input, target).unwrap();
        let mut tuned = input.clone();
        tuned.comp.fclock = req;
        assert!((throughput::speedup(&tuned) - target).abs() / target < 1e-9);
    }

    #[test]
    fn alpha_solver_round_trips() {
        // Make a comm-heavy variant so the alpha budget is the binding one.
        let mut input = pdf1d_example();
        input.dataset.elements_out = 512;
        input.comm.alpha_read = 0.05;
        let target = 6.0;
        let k = required_alpha_scale(&input, target).unwrap();
        let mut tuned = input.clone();
        tuned.comm.alpha_write *= k;
        tuned.comm.alpha_read *= k;
        assert!((throughput::speedup(&tuned) - target).abs() / target < 1e-9);
    }

    #[test]
    fn infeasible_when_comm_exceeds_budget() {
        let input = pdf1d_example();
        // t_comm = 5.56e-6/iter; budget for 300x = 0.578/300/400 = 4.8e-6 < t_comm.
        let err = required_throughput_proc(&input, 300.0).unwrap_err();
        assert!(matches!(err, RatError::Infeasible(_)), "got {err:?}");
    }

    #[test]
    fn max_speedup_is_the_comm_bound_wall() {
        let input = pdf1d_example();
        let wall = max_speedup(&input).unwrap();
        // 0.578 / (400 * 5.56e-6) ~ 260x.
        assert!((255.0..265.0).contains(&wall), "wall = {wall}");
        // Any feasible target below the wall solves; above it, errors.
        assert!(required_throughput_proc(&input, wall * 0.99).is_ok());
        assert!(required_throughput_proc(&input, wall * 1.01).is_err());
    }

    #[test]
    fn double_buffering_gets_the_full_budget() {
        let input = pdf1d_example();
        let sb = required_throughput_proc(&input, 10.0).unwrap();
        let db = required_throughput_proc(&input.with_buffering(Buffering::Double), 10.0).unwrap();
        assert!(
            db < sb,
            "overlap should lower the required compute rate (db {db:.1} vs sb {sb:.1})"
        );
    }

    #[test]
    fn alpha_solver_infeasible_when_compute_dominates() {
        let input = md_input(); // compute >> comm
        let err = required_alpha_scale(&input, 50.0).unwrap_err();
        assert!(matches!(err, RatError::Infeasible(_)));
    }

    #[test]
    fn alpha_solver_rejects_superunity_alpha() {
        // Needs a big comm improvement but alpha_write is already 0.9.
        let mut input = md_input();
        input.comp.throughput_proc = 1e9; // compute ~free
        input.software.t_soft = 2.0 * throughput::t_comm(&input); // budget = half of comm for 2x...
        let err = required_alpha_scale(&input, 4.0).unwrap_err();
        assert!(matches!(err, RatError::Infeasible(_)));
    }

    #[test]
    fn nonpositive_target_rejected() {
        let input = pdf1d_example();
        assert!(required_throughput_proc(&input, 0.0).is_err());
        assert!(required_fclock(&input, -2.0).is_err());
        assert!(required_alpha_scale(&input, f64::NAN).is_err());
    }

    #[test]
    fn speedup_only_matches_the_report_pipeline() {
        let input = pdf1d_example();
        let fast = speedup_only(&input).unwrap();
        let full = crate::worksheet::Worksheet::new(input.clone())
            .analyze()
            .unwrap();
        assert_eq!(fast, full.speedup, "scalar path must be bit-identical");
        // And it validates: an out-of-domain alpha errors, not NaNs.
        let mut bad = input;
        bad.comm.alpha_write = 1.5;
        assert!(speedup_only(&bad).is_err());
    }

    /// Assert a batched quad equals the scalar quad bit-for-bit on values
    /// and verbatim on error display text.
    fn assert_quads_identical(scalar: &InverseQuad, batched: &InverseQuad, ctx: &str) {
        match (&scalar.throughput_proc, &batched.throughput_proc) {
            (Ok(a), Ok(b)) => assert_eq!(a.to_bits(), b.to_bits(), "throughput_proc bits {ctx}"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "throughput_proc {ctx}"),
            (a, b) => panic!("throughput_proc verdicts diverge {ctx}: {a:?} vs {b:?}"),
        }
        match (&scalar.fclock, &batched.fclock) {
            (Ok(a), Ok(b)) => assert_eq!(a.hz().to_bits(), b.hz().to_bits(), "fclock bits {ctx}"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "fclock {ctx}"),
            (a, b) => panic!("fclock verdicts diverge {ctx}: {a:?} vs {b:?}"),
        }
        match (&scalar.alpha_scale, &batched.alpha_scale) {
            (Ok(a), Ok(b)) => assert_eq!(a.to_bits(), b.to_bits(), "alpha bits {ctx}"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "alpha {ctx}"),
            (a, b) => panic!("alpha verdicts diverge {ctx}: {a:?} vs {b:?}"),
        }
        match (&scalar.ceiling, &batched.ceiling) {
            (Ok(a), Ok(b)) => assert_eq!(a.to_bits(), b.to_bits(), "ceiling bits {ctx}"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "ceiling {ctx}"),
            (a, b) => panic!("ceiling verdicts diverge {ctx}: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn quad_batch_matches_scalar_quads_bit_for_bit() {
        // Feasible, comm-bound-infeasible, nonpositive, and NaN targets in
        // one batch: every element must match its solo evaluation exactly.
        for input in [pdf1d_example(), md_input()] {
            let targets = [1.0, 8.0, 10.7, 300.0, 1e9, 0.0, -2.0, f64::NAN, 0.5];
            let batched = inverse_quad_batch(&input, &targets);
            assert_eq!(batched.len(), targets.len());
            for (t, b) in targets.iter().zip(&batched) {
                let solo = inverse_quad(&input, *t);
                assert_quads_identical(&solo, b, &format!("('{}', {t})", input.name));
            }
        }
    }

    #[test]
    fn quad_batch_invalid_worksheet_falls_back_verbatim() {
        let mut input = pdf1d_example();
        input.comm.alpha_write = -0.5; // fails validate()
        let targets = [2.0, 8.0, f64::NAN];
        let batched = inverse_quad_batch(&input, &targets);
        for (t, b) in targets.iter().zip(&batched) {
            let solo = inverse_quad(&input, *t);
            assert_quads_identical(&solo, b, &format!("invalid input, target {t}"));
            assert!(b.throughput_proc.is_err(), "validate error must dominate");
        }
    }

    #[test]
    fn sub_unity_speedup_targets_are_legal() {
        // The embedded community may only want parity (speedup ~1, §1).
        let input = pdf1d_example();
        let req = required_throughput_proc(&input, 1.0).unwrap();
        assert!(req < input.comp.throughput_proc);
    }
}
