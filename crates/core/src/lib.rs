//! # RC Amenability Test (RAT)
//!
//! An implementation of the RAT methodology from *"RAT: A Methodology for
//! Predicting Performance in Application Design Migration to FPGAs"* (Holland,
//! Nagarajan, Conger, Jacobs, George — HPRCTA'07). RAT answers, **before any
//! hardware is written**, whether a specific application design on a specific
//! FPGA platform is likely to meet its performance goals, using three tests:
//!
//! 1. **Throughput** ([`throughput`], [`worksheet`]): closed-form predictions
//!    of communication time (Eqs. 1–3), computation time (Eq. 4), total RC
//!    execution time under single/double buffering (Eqs. 5–6), speedup
//!    (Eq. 7), and utilizations (Eqs. 8–11).
//! 2. **Numerical precision** ([`precision`]): is the chosen number format's
//!    error within tolerance, and is a cheaper format available?
//! 3. **Resources** ([`resources`]): does the design fit the device?
//!
//! Beyond the paper's worksheet, this crate adds the machinery a practicing
//! team needs around it: inverse solvers ([`solve`]) for "what throughput_proc
//! do I need for 10x?", parameter sweeps ([`sweep`]), local sensitivity
//! analysis ([`sensitivity`]), Monte-Carlo uncertainty propagation
//! ([`uncertainty`]), multi-kernel application analysis ([`multistage`]), the
//! Figure-1 methodology flow as an executable state machine ([`methodology`]),
//! and a deterministic parallel job executor ([`engine`]) the batch analyses
//! run on.
//!
//! Every dimensioned model input and output is a typed quantity from
//! [`quantity`] — [`quantity::Bytes`], [`quantity::Freq`],
//! [`quantity::Seconds`], [`quantity::Throughput`] — so unit mistakes (MHz
//! where Hz was meant, Mbps where MB/s was meant) are compile errors rather
//! than silently wrong predictions. See `DESIGN.md` §10 for the conventions.
//!
//! ## Example: the paper's §4.3 worked example
//!
//! ```
//! use rat_core::params::*;
//! use rat_core::quantity::{Freq, Seconds, Throughput};
//! use rat_core::worksheet::Worksheet;
//!
//! // Table 2: 1-D PDF estimation at fclock = 150 MHz.
//! let input = RatInput {
//!     name: "1-D PDF".into(),
//!     dataset: DatasetParams { elements_in: 512, elements_out: 1, bytes_per_element: 4 },
//!     comm: CommParams {
//!         ideal_bandwidth: Throughput::from_mbytes_per_sec(1000.0),
//!         alpha_write: 0.37,
//!         alpha_read: 0.16,
//!     },
//!     comp: CompParams {
//!         ops_per_element: 768.0,
//!         throughput_proc: 20.0,
//!         fclock: Freq::from_mhz(150.0),
//!     },
//!     software: SoftwareParams { t_soft: Seconds::new(0.578), iterations: 400 },
//!     buffering: Buffering::Single,
//! };
//! let report = Worksheet::new(input).analyze().unwrap();
//! assert!((report.throughput.t_comp.seconds() - 1.31e-4).abs() < 1e-6); // §4.3: 1.31E-4 s
//! assert!((report.speedup - 10.6).abs() < 0.1);                         // Table 3: 10.6
//! ```

#![warn(missing_docs)]

pub mod breakeven;
pub mod comparison;
pub mod engine;
pub mod error;
pub mod explore;
pub mod methodology;
pub mod multifpga;
pub mod multistage;
pub mod optimize;
pub mod params;
pub mod precision;
pub mod quantity;
pub mod report;
pub mod resources;
pub mod sensitivity;
pub mod simd;
pub mod solve;
pub mod streaming;
pub mod sweep;
pub mod table;
pub mod telemetry;
pub mod throughput;
pub mod uncertainty;
pub mod utilization;
pub mod validation;
pub mod worksheet;

pub use error::RatError;
pub use params::{Buffering, CommParams, CompParams, DatasetParams, RatInput, SoftwareParams};
pub use quantity::{Bytes, Cycles, Elements, Freq, Seconds, Throughput};
pub use report::Report;
pub use throughput::ThroughputPrediction;
pub use worksheet::Worksheet;
