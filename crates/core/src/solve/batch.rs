//! Batched structure-of-arrays evaluation of the analytic pipeline.
//!
//! Every hot analysis — a dense sweep, a Monte-Carlo uncertainty run, corner
//! enumeration — evaluates Eqs. (1)–(11) at thousands of design points that
//! differ from a shared base input in only a few scalar parameters. The
//! scalar fast path ([`crate::solve::speedup_only`]) already strips the
//! per-point cost to a validate + a handful of float ops, but it still pays
//! per-point call overhead and gives the compiler a single point at a time.
//! [`BatchPoints`] stores the *varied* parameters as columns
//! (structure-of-arrays) over one base [`RatInput`], and [`speedup_batch`] /
//! [`solve_batch`] evaluate all points in tight loops over those columns.
//!
//! ## Bit-identity contract
//!
//! The kernels replicate the scalar expression chain operation for
//! operation — `bytes as f64 / (alpha * bw)`, `t_write + t_read`,
//! `elements as f64 * ops / (hz * tp)`, `iters as f64 * (t_comm + t_comp)`
//! (or `.max`), `t_soft / t_rc` — in the exact order the typed-quantity
//! operators execute them, so `speedup_batch(&points)[i]` is bit-identical
//! to `speedup_only(&points.materialize(i))` (pinned by the differential
//! suite in `tests/batch_differential.rs`). Rust never reassociates float
//! arithmetic, so a straight-line transcription is sufficient; what batching
//! buys is amortized validation, hoisted constants (the buffering `match`,
//! `bytes_per_element`, bandwidth, `t_soft`), and loops the autovectorizer
//! can work with.
//!
//! ## Error contract
//!
//! Invalid points error exactly as the scalar path does: the lowest-indexed
//! invalid point wins, and its error is produced by running the real
//! [`RatInput::validate`] on that materialized point, so messages and field
//! ordering are byte-identical to the per-point pipeline.

use crate::error::RatError;
use crate::params::{Buffering, RatInput};
use crate::quantity::Seconds;
use crate::report::Report;
use crate::sweep::SweepParam;
use crate::telemetry::{self, Metric};
use crate::throughput::ThroughputPrediction;

/// Points per engine job in batched analyses. Chunking bounds per-job memory
/// (a few columns of `CHUNK` floats) while keeping the batch long enough to
/// amortize dispatch and feed the vector units.
pub const CHUNK: usize = 1024;

/// A set of design points in structure-of-arrays form: one shared base input
/// plus a column of values per varied parameter.
///
/// Columns are applied **in push order**, with [`SweepParam::apply_into`]
/// semantics per point — order matters for [`SweepParam::AlphaBoth`], which
/// reads the current `alpha_write` as its scaling reference, exactly as
/// chained scalar applies would.
#[derive(Debug, Clone)]
pub struct BatchPoints<'a> {
    base: &'a RatInput,
    len: usize,
    columns: Vec<(SweepParam, Vec<f64>)>,
}

impl<'a> BatchPoints<'a> {
    /// A batch of `len` points, all initially equal to `base`.
    pub fn new(base: &'a RatInput, len: usize) -> Self {
        BatchPoints {
            base,
            len,
            columns: Vec::new(),
        }
    }

    /// The shared base input.
    pub fn base(&self) -> &RatInput {
        self.base
    }

    /// Number of design points in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add a varied parameter: point `i` applies `values[i]`. Panics if the
    /// column length does not match the batch length.
    pub fn push_column(&mut self, param: SweepParam, values: Vec<f64>) -> &mut Self {
        assert_eq!(
            values.len(),
            self.len,
            "column for {param:?} has {} values, batch has {} points",
            values.len(),
            self.len
        );
        self.columns.push((param, values));
        self
    }

    /// The columns in application order.
    pub fn columns(&self) -> &[(SweepParam, Vec<f64>)] {
        &self.columns
    }

    /// Materialize point `i` as a standalone input: the base, cloned, with
    /// every column applied in order. This is the reference the kernels must
    /// match bit for bit.
    pub fn materialize(&self, i: usize) -> RatInput {
        let mut point = self.base.clone();
        for (param, values) in &self.columns {
            param.apply_into(&mut point, values[i]);
        }
        point
    }
}

/// The mutable parameter fields, decoded to one dense vector each. Fields no
/// column touches stay at the base value for every point, which keeps the
/// kernels branch-free; for `CHUNK`-sized batches the broadcast cost is a few
/// KiB of sequential writes.
struct Decoded {
    elements_in: Vec<u64>,
    alpha_write: Vec<f64>,
    alpha_read: Vec<f64>,
    ops_per_element: Vec<f64>,
    throughput_proc: Vec<f64>,
    fclock_hz: Vec<f64>,
    iterations: Vec<u64>,
}

fn decode(points: &BatchPoints) -> Decoded {
    let base = points.base;
    let n = points.len;
    let mut d = Decoded {
        elements_in: vec![base.dataset.elements_in; n],
        alpha_write: vec![base.comm.alpha_write; n],
        alpha_read: vec![base.comm.alpha_read; n],
        ops_per_element: vec![base.comp.ops_per_element; n],
        throughput_proc: vec![base.comp.throughput_proc; n],
        fclock_hz: vec![base.comp.fclock.hz(); n],
        iterations: vec![base.software.iterations; n],
    };
    for (param, col) in &points.columns {
        match param {
            SweepParam::Fclock => {
                for (dst, &v) in d.fclock_hz.iter_mut().zip(col) {
                    *dst = v;
                }
            }
            SweepParam::AlphaWrite => {
                for (dst, &v) in d.alpha_write.iter_mut().zip(col) {
                    *dst = v;
                }
            }
            SweepParam::AlphaRead => {
                for (dst, &v) in d.alpha_read.iter_mut().zip(col) {
                    *dst = v;
                }
            }
            SweepParam::AlphaBoth => {
                // Same chained semantics as apply_into: the factor reads the
                // *current* per-point alpha_write.
                for (i, &v) in col.iter().enumerate() {
                    let factor = v / d.alpha_write[i];
                    d.alpha_write[i] = v;
                    d.alpha_read[i] *= factor;
                }
            }
            SweepParam::ThroughputProc => {
                for (dst, &v) in d.throughput_proc.iter_mut().zip(col) {
                    *dst = v;
                }
            }
            SweepParam::OpsPerElement => {
                for (dst, &v) in d.ops_per_element.iter_mut().zip(col) {
                    *dst = v;
                }
            }
            SweepParam::ElementsIn => {
                for (dst, &v) in d.elements_in.iter_mut().zip(col) {
                    *dst = v.round().max(1.0) as u64;
                }
            }
            SweepParam::Iterations => {
                for (dst, &v) in d.iterations.iter_mut().zip(col) {
                    *dst = v.round().max(1.0) as u64;
                }
            }
        }
    }
    d
}

/// Find the lowest-indexed point the scalar `validate()` would reject, and
/// return its exact error. The cheap predicate below is the *conjunction* of
/// every validate() check over the decoded fields (fields no sweep parameter
/// can vary are checked once, outside the loop); any flagged point is then
/// re-validated through the real `RatInput::validate` so the error message is
/// byte-identical to the scalar path's.
fn first_error(points: &BatchPoints, d: &Decoded) -> Option<(usize, RatError)> {
    let base = points.base;
    let bw = base.comm.ideal_bandwidth.bytes_per_sec();
    let t_soft = base.software.t_soft.seconds();
    let consts_ok = base.dataset.bytes_per_element >= 1
        && bw.is_finite()
        && bw > 0.0
        && t_soft.is_finite()
        && t_soft > 0.0;
    let alpha_ok = |a: f64| a.is_finite() && a > 0.0 && a <= 1.0;
    let rate_ok = |r: f64| r.is_finite() && r > 0.0;
    for i in 0..points.len {
        let ok = consts_ok
            && d.elements_in[i] >= 1
            && alpha_ok(d.alpha_write[i])
            && alpha_ok(d.alpha_read[i])
            && rate_ok(d.ops_per_element[i])
            && rate_ok(d.throughput_proc[i])
            && rate_ok(d.fclock_hz[i])
            && d.iterations[i] >= 1;
        if !ok {
            if let Err(e) = points.materialize(i).validate() {
                return Some((i, e));
            }
        }
    }
    None
}

/// The per-point per-iteration time terms, in scalar expression order.
#[inline(always)]
fn point_terms(base: &RatInput, d: &Decoded, i: usize, bw: f64, bytes_out: u64) -> (f64, f64, f64) {
    let bytes_in = d.elements_in[i] * base.dataset.bytes_per_element;
    let t_write = bytes_in as f64 / (d.alpha_write[i] * bw);
    let t_read = bytes_out as f64 / (d.alpha_read[i] * bw);
    let t_comp =
        d.elements_in[i] as f64 * d.ops_per_element[i] / (d.fclock_hz[i] * d.throughput_proc[i]);
    (t_write, t_read, t_comp)
}

fn eval_speedups(base: &RatInput, d: &Decoded) -> Vec<f64> {
    let bw = base.comm.ideal_bandwidth.bytes_per_sec();
    let bytes_out = base.dataset.elements_out * base.dataset.bytes_per_element;
    let t_soft = base.software.t_soft.seconds();
    let mut out = vec![0.0_f64; d.elements_in.len()];
    // The buffering discipline is a base property (no SweepParam varies it),
    // so the Eq. (5) / Eq. (6) choice hoists out of the loop entirely.
    match base.buffering {
        Buffering::Single => {
            for (i, s) in out.iter_mut().enumerate() {
                let (t_write, t_read, t_comp) = point_terms(base, d, i, bw, bytes_out);
                let t_comm = t_write + t_read;
                let t_rc = d.iterations[i] as f64 * (t_comm + t_comp);
                *s = t_soft / t_rc;
            }
        }
        Buffering::Double => {
            for (i, s) in out.iter_mut().enumerate() {
                let (t_write, t_read, t_comp) = point_terms(base, d, i, bw, bytes_out);
                let t_comm = t_write + t_read;
                let t_rc = d.iterations[i] as f64 * t_comm.max(t_comp);
                *s = t_soft / t_rc;
            }
        }
    }
    out
}

/// Evaluate Eq. (7) for every point: `out[i]` is bit-identical to
/// `speedup_only(&points.materialize(i))`. On an invalid point, the
/// lowest-indexed point's exact scalar error is returned.
pub fn speedup_batch(points: &BatchPoints) -> Result<Vec<f64>, RatError> {
    speedup_batch_indexed(points).map_err(|(_, e)| e)
}

/// [`speedup_batch`], reporting *which* point failed — callers that map batch
/// indices back to their own domain (corner numbers, sample indices) need the
/// index to keep error attribution deterministic.
pub fn speedup_batch_indexed(points: &BatchPoints) -> Result<Vec<f64>, (usize, RatError)> {
    let d = decode(points);
    if let Some(bad) = first_error(points, &d) {
        return Err(bad);
    }
    telemetry::add(Metric::BatchPoints, points.len as u64);
    Ok(eval_speedups(points.base, &d))
}

/// Evaluate the **full worksheet** for every point: `out[i]` is bit-identical
/// to `Worksheet::new(points.materialize(i)).analyze()` — the prediction at
/// the point's buffering, the alternate-buffering prediction, and the
/// communication-bound ceiling. The numeric pipeline runs as column loops;
/// only the final `Report` assembly materializes per-point inputs.
pub fn solve_batch(points: &BatchPoints) -> Result<Vec<Report>, RatError> {
    let d = decode(points);
    if let Some((_, e)) = first_error(points, &d) {
        return Err(e);
    }
    telemetry::add(Metric::BatchPoints, points.len as u64);
    let base = points.base;
    let bw = base.comm.ideal_bandwidth.bytes_per_sec();
    let bytes_out = base.dataset.elements_out * base.dataset.bytes_per_element;
    let t_soft = base.software.t_soft.seconds();
    let mut reports = Vec::with_capacity(points.len);
    for i in 0..points.len {
        let (t_write, t_read, t_comp) = point_terms(base, &d, i, bw, bytes_out);
        let t_comm = t_write + t_read;
        let iters = d.iterations[i] as f64;
        let single = prediction(
            Buffering::Single,
            t_write,
            t_read,
            t_comm,
            t_comp,
            iters,
            t_soft,
        );
        let double = prediction(
            Buffering::Double,
            t_write,
            t_read,
            t_comm,
            t_comp,
            iters,
            t_soft,
        );
        let (throughput, alternate) = match base.buffering {
            Buffering::Single => (single, double),
            Buffering::Double => (double, single),
        };
        let max_speedup = t_soft / (iters * t_comm);
        reports.push(Report {
            speedup: throughput.speedup,
            throughput,
            alternate,
            max_speedup,
            input: points.materialize(i),
        });
    }
    Ok(reports)
}

/// Assemble one [`ThroughputPrediction`] from the shared per-iteration terms,
/// in the exact expression order of `ThroughputPrediction::analyze`.
fn prediction(
    buffering: Buffering,
    t_write: f64,
    t_read: f64,
    t_comm: f64,
    t_comp: f64,
    iters: f64,
    t_soft: f64,
) -> ThroughputPrediction {
    let (t_rc, util_comp, util_comm) = match buffering {
        Buffering::Single => (
            iters * (t_comm + t_comp),
            t_comp / (t_comm + t_comp),
            t_comm / (t_comm + t_comp),
        ),
        Buffering::Double => (
            iters * t_comm.max(t_comp),
            t_comp / t_comm.max(t_comp),
            t_comm / t_comm.max(t_comp),
        ),
    };
    ThroughputPrediction {
        t_write: Seconds::new(t_write),
        t_read: Seconds::new(t_read),
        t_comm: Seconds::new(t_comm),
        t_comp: Seconds::new(t_comp),
        t_rc: Seconds::new(t_rc),
        speedup: t_soft / t_rc,
        util_comm,
        util_comp,
        buffering,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;
    use crate::solve::speedup_only;
    use crate::worksheet::Worksheet;

    const ALL_PARAMS: [SweepParam; 8] = [
        SweepParam::Fclock,
        SweepParam::AlphaWrite,
        SweepParam::AlphaRead,
        SweepParam::AlphaBoth,
        SweepParam::ThroughputProc,
        SweepParam::OpsPerElement,
        SweepParam::ElementsIn,
        SweepParam::Iterations,
    ];

    #[test]
    fn single_column_batches_match_scalar_bit_for_bit() {
        for buffering in [Buffering::Single, Buffering::Double] {
            let base = pdf1d_example().with_buffering(buffering);
            for param in ALL_PARAMS {
                let center = param.read(&base);
                let values: Vec<f64> = (0..97).map(|k| center * (0.5 + 0.02 * k as f64)).collect();
                let mut points = BatchPoints::new(&base, values.len());
                points.push_column(param, values);
                let batch = speedup_batch(&points).expect("all points valid");
                for (i, &got) in batch.iter().enumerate() {
                    let want = speedup_only(&points.materialize(i)).expect("scalar path agrees");
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{param:?}/{buffering:?} point {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn chained_alpha_columns_match_chained_scalar_applies() {
        let base = pdf1d_example();
        let n = 33;
        let mut points = BatchPoints::new(&base, n);
        points.push_column(
            SweepParam::AlphaWrite,
            (0..n).map(|k| 0.2 + 0.02 * k as f64).collect(),
        );
        points.push_column(
            SweepParam::AlphaBoth,
            (0..n).map(|k| 0.3 + 0.01 * k as f64).collect(),
        );
        let batch = speedup_batch(&points).expect("valid");
        for (i, &got) in batch.iter().enumerate() {
            let want = speedup_only(&points.materialize(i)).expect("valid");
            assert_eq!(got.to_bits(), want.to_bits(), "point {i}");
        }
    }

    #[test]
    fn lowest_indexed_invalid_point_wins_with_the_scalar_error() {
        let base = pdf1d_example();
        let mut points = BatchPoints::new(&base, 5);
        // Points 2 and 4 push alpha_write out of (0, 1].
        points.push_column(SweepParam::AlphaWrite, vec![0.5, 0.6, 1.5, 0.7, -1.0]);
        let (index, err) = speedup_batch_indexed(&points).expect_err("point 2 invalid");
        assert_eq!(index, 2);
        let scalar_err = speedup_only(&points.materialize(2)).expect_err("scalar rejects too");
        assert_eq!(err.to_string(), scalar_err.to_string());
    }

    #[test]
    fn solve_batch_matches_the_worksheet_pipeline() {
        for buffering in [Buffering::Single, Buffering::Double] {
            let base = pdf1d_example().with_buffering(buffering);
            let values = vec![75.0e6, 100.0e6, 150.0e6];
            let mut points = BatchPoints::new(&base, values.len());
            points.push_column(SweepParam::Fclock, values);
            let reports = solve_batch(&points).expect("valid");
            for (i, got) in reports.iter().enumerate() {
                let want = Worksheet::new(points.materialize(i))
                    .analyze()
                    .expect("worksheet agrees");
                assert_eq!(got, &want, "{buffering:?} point {i}");
            }
        }
    }

    #[test]
    fn empty_batch_is_legal() {
        let base = pdf1d_example();
        let points = BatchPoints::new(&base, 0);
        assert!(points.is_empty());
        assert_eq!(speedup_batch(&points).expect("empty ok"), Vec::<f64>::new());
        assert!(solve_batch(&points).expect("empty ok").is_empty());
    }

    #[test]
    fn invalid_base_constant_reports_point_zero() {
        let mut base = pdf1d_example();
        base.dataset.bytes_per_element = 0;
        let mut points = BatchPoints::new(&base, 3);
        points.push_column(SweepParam::Fclock, vec![1.0e8; 3]);
        let (index, err) = speedup_batch_indexed(&points).expect_err("base invalid");
        assert_eq!(index, 0);
        assert!(err.to_string().contains("bytes_per_element"), "{err}");
    }
}
