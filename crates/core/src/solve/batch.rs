//! Batched structure-of-arrays evaluation of the analytic pipeline.
//!
//! Every hot analysis — a dense sweep, a Monte-Carlo uncertainty run, corner
//! enumeration — evaluates Eqs. (1)–(11) at thousands of design points that
//! differ from a shared base input in only a few scalar parameters. The
//! scalar fast path ([`crate::solve::speedup_only`]) already strips the
//! per-point cost to a validate + a handful of float ops, but it still pays
//! per-point call overhead and gives the compiler a single point at a time.
//! [`BatchPoints`] stores the *varied* parameters as columns
//! (structure-of-arrays) over one base [`RatInput`], and [`speedup_batch`] /
//! [`solve_batch`] evaluate all points in tight loops over those columns.
//!
//! ## Bit-identity contract
//!
//! The kernels replicate the scalar expression chain operation for
//! operation — `bytes as f64 / (alpha * bw)`, `t_write + t_read`,
//! `elements as f64 * ops / (hz * tp)`, `iters as f64 * (t_comm + t_comp)`
//! (or `.max`), `t_soft / t_rc` — in the exact order the typed-quantity
//! operators execute them, so `speedup_batch(&points)[i]` is bit-identical
//! to `speedup_only(&points.materialize(i))` (pinned by the differential
//! suite in `tests/batch_differential.rs`). Rust never reassociates float
//! arithmetic, so a straight-line transcription is sufficient; what batching
//! buys is amortized validation, hoisted constants (the buffering `match`,
//! `bytes_per_element`, bandwidth, `t_soft`), and loops the autovectorizer
//! can work with.
//!
//! ## Error contract
//!
//! Invalid points error exactly as the scalar path does: the lowest-indexed
//! invalid point wins, and its error is produced by running the real
//! [`RatInput::validate`] on that materialized point, so messages and field
//! ordering are byte-identical to the per-point pipeline.

use std::borrow::Cow;

use crate::error::RatError;
use crate::params::{Buffering, RatInput};
use crate::quantity::Seconds;
use crate::report::Report;
use crate::solve::stages::{self, BatchStagePlan};
use crate::sweep::SweepParam;
use crate::telemetry::{self, Metric};
use crate::throughput::ThroughputPrediction;

/// Points per engine job in batched analyses. Chunking bounds per-job memory
/// (a few columns of `CHUNK` floats) while keeping the batch long enough to
/// amortize dispatch and feed the vector units.
pub const CHUNK: usize = 1024;

/// A set of design points in structure-of-arrays form: one shared base input
/// plus a column of values per varied parameter.
///
/// Columns are applied **in push order**, with [`SweepParam::apply_into`]
/// semantics per point — order matters for [`SweepParam::AlphaBoth`], which
/// reads the current `alpha_write` as its scaling reference, exactly as
/// chained scalar applies would.
#[derive(Debug, Clone)]
pub struct BatchPoints<'a> {
    base: &'a RatInput,
    len: usize,
    columns: Vec<(SweepParam, Cow<'a, [f64]>)>,
}

impl<'a> BatchPoints<'a> {
    /// A batch of `len` points, all initially equal to `base`.
    pub fn new(base: &'a RatInput, len: usize) -> Self {
        BatchPoints {
            base,
            len,
            columns: Vec::new(),
        }
    }

    /// The shared base input.
    pub fn base(&self) -> &RatInput {
        self.base
    }

    /// Number of design points in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add a varied parameter: point `i` applies `values[i]`. Accepts an
    /// owned `Vec<f64>` or a borrowed `&[f64]` — chunked drivers hand the
    /// kernel a sub-slice of their value array directly, with no per-chunk
    /// copy. Panics if the column length does not match the batch length.
    pub fn push_column(
        &mut self,
        param: SweepParam,
        values: impl Into<Cow<'a, [f64]>>,
    ) -> &mut Self {
        let values = values.into();
        assert_eq!(
            values.len(),
            self.len,
            "column for {param:?} has {} values, batch has {} points",
            values.len(),
            self.len
        );
        self.columns.push((param, values));
        self
    }

    /// The columns in application order.
    pub fn columns(&self) -> &[(SweepParam, Cow<'a, [f64]>)] {
        &self.columns
    }

    /// Materialize point `i` as a standalone input: the base, cloned, with
    /// every column applied in order. This is the reference the kernels must
    /// match bit for bit.
    pub fn materialize(&self, i: usize) -> RatInput {
        let mut point = self.base.clone();
        for (param, values) in &self.columns {
            param.apply_into(&mut point, values[i]);
        }
        point
    }

    /// [`BatchPoints::materialize`] into a caller-owned scratch input:
    /// restores the scratch to the base point (reusing its allocations) and
    /// applies every column in order. Bit-identical to `materialize(i)` for
    /// every parameter field; only the `name` string is left as-is.
    pub fn materialize_into(&self, i: usize, scratch: &mut RatInput) {
        scratch.copy_params_from(self.base);
        for (param, values) in &self.columns {
            param.apply_into(scratch, values[i]);
        }
    }

    /// Which analytic stages vary across this batch, derived structurally
    /// from which fields the columns write (see
    /// [`stages::BatchStagePlan`]). A stage counts as varying when *any*
    /// column writes a field it reads, independent of the column's values.
    pub fn stage_plan(&self) -> BatchStagePlan {
        let mut comm = false;
        let mut comp = false;
        let mut iters = false;
        for (param, _) in &self.columns {
            match param {
                SweepParam::AlphaWrite | SweepParam::AlphaRead | SweepParam::AlphaBoth => {
                    comm = true;
                }
                SweepParam::Fclock | SweepParam::ThroughputProc | SweepParam::OpsPerElement => {
                    comp = true;
                }
                // elements_in feeds both the byte count and the op count.
                SweepParam::ElementsIn => {
                    comm = true;
                    comp = true;
                }
                SweepParam::Iterations => iters = true,
            }
        }
        let overlap = comm || comp || iters;
        BatchStagePlan {
            comm_varies: comm,
            comp_varies: comp,
            overlap_varies: overlap,
            // t_soft is a base constant, so speedup varies exactly when the
            // execution-time terms do.
            speedup_varies: overlap,
        }
    }
}

/// The mutable parameter fields, decoded to one dense view each.
///
/// A field written by exactly the direct-copy columns **borrows** the last
/// such column — a single-axis sweep's swept field costs no copy at all.
/// Fields no column touches broadcast the base value, but only when a kernel
/// will actually index them: the comm-side fields (`elements_in` and the
/// alphas) are skipped outright when the caller's stage plan proves the comm
/// terms uniform, because the comm-uniform kernel hoists them as scalars and
/// the error scan checks unwritten fields once against the base.
struct Decoded<'p> {
    elements_in: Vec<u64>,
    alpha_write: Cow<'p, [f64]>,
    alpha_read: Cow<'p, [f64]>,
    ops_per_element: Cow<'p, [f64]>,
    throughput_proc: Cow<'p, [f64]>,
    fclock_hz: Cow<'p, [f64]>,
    iterations: Vec<u64>,
}

/// Decode the columns. `materialize_comm` must be true whenever a consumer
/// indexes the comm-side fields per point (`solve_batch` always does; the
/// speedup kernel only when the stage plan marks the comm stage varied).
fn decode<'p>(points: &'p BatchPoints<'_>, materialize_comm: bool) -> Decoded<'p> {
    let base = points.base;
    let n = points.len;
    let last_direct = |want: SweepParam| -> Option<&'p [f64]> {
        points
            .columns
            .iter()
            .rev()
            .find(|(p, _)| *p == want)
            .map(|(_, c)| &c[..])
    };
    // A direct-copy column overwrites its field at every point, so the last
    // one *is* the decoded field, borrowed with no copy.
    let direct = |want: SweepParam, base_val: f64| -> Cow<'p, [f64]> {
        match last_direct(want) {
            Some(col) => Cow::Borrowed(col),
            None => Cow::Owned(vec![base_val; n]),
        }
    };
    let fclock_hz = direct(SweepParam::Fclock, base.comp.fclock.hz());
    let ops_per_element = direct(SweepParam::OpsPerElement, base.comp.ops_per_element);
    let throughput_proc = direct(SweepParam::ThroughputProc, base.comp.throughput_proc);
    // `AlphaBoth` chains on the *current* per-point alphas (same semantics
    // as apply_into), so its presence forces a sequential replay of the
    // alpha-writing columns; otherwise the alphas are direct like the comp
    // fields — or skipped entirely when no consumer indexes them.
    let chained = points
        .columns
        .iter()
        .any(|(p, _)| *p == SweepParam::AlphaBoth);
    let (alpha_write, alpha_read) = if chained {
        let mut aw = vec![base.comm.alpha_write; n];
        let mut ar = vec![base.comm.alpha_read; n];
        for (param, col) in &points.columns {
            let col: &[f64] = col;
            match param {
                SweepParam::AlphaWrite => aw.copy_from_slice(col),
                SweepParam::AlphaRead => ar.copy_from_slice(col),
                SweepParam::AlphaBoth => {
                    for (i, &v) in col.iter().enumerate() {
                        let factor = v / aw[i];
                        aw[i] = v;
                        ar[i] *= factor;
                    }
                }
                _ => {}
            }
        }
        (Cow::Owned(aw), Cow::Owned(ar))
    } else if materialize_comm {
        (
            direct(SweepParam::AlphaWrite, base.comm.alpha_write),
            direct(SweepParam::AlphaRead, base.comm.alpha_read),
        )
    } else {
        (Cow::Borrowed(&[][..]), Cow::Borrowed(&[][..]))
    };
    // The u64 fields transform their column values (round, clamp to >= 1),
    // so they materialize whenever written. `elements_in` is comm-side: an
    // ElementsIn column marks the comm stage varied, so when
    // `materialize_comm` is false it is necessarily unwritten and no kernel
    // indexes it.
    let elements_in = if materialize_comm {
        let mut e = vec![base.dataset.elements_in; n];
        for (param, col) in &points.columns {
            if *param == SweepParam::ElementsIn {
                for (dst, &v) in e.iter_mut().zip(&col[..]) {
                    *dst = v.round().max(1.0) as u64;
                }
            }
        }
        e
    } else {
        Vec::new()
    };
    let mut iterations = vec![base.software.iterations; n];
    for (param, col) in &points.columns {
        if *param == SweepParam::Iterations {
            for (dst, &v) in iterations.iter_mut().zip(&col[..]) {
                *dst = v.round().max(1.0) as u64;
            }
        }
    }
    Decoded {
        elements_in,
        alpha_write,
        alpha_read,
        ops_per_element,
        throughput_proc,
        fclock_hz,
        iterations,
    }
}

/// Find the lowest-indexed point the scalar `validate()` would reject, and
/// return its exact error. The cheap predicates below are the *conjunction*
/// of every validate() check: fields no column writes hold the base value at
/// every point and are checked once, and each written field is scanned as a
/// column — so a clean batch costs one pass over the varied columns instead
/// of a seven-way conjunction per point. Any flagged point is re-validated
/// through the real `RatInput::validate` so the error message is
/// byte-identical to the scalar path's.
fn first_error(points: &BatchPoints, d: &Decoded) -> Option<(usize, RatError)> {
    let base = points.base;
    let bw = base.comm.ideal_bandwidth.bytes_per_sec();
    let t_soft = base.software.t_soft.seconds();
    let alpha_ok = |a: f64| a.is_finite() && a > 0.0 && a <= 1.0;
    let rate_ok = |r: f64| r.is_finite() && r > 0.0;
    let (mut w_ein, mut w_aw, mut w_ar, mut w_ops, mut w_tp, mut w_f, mut w_it) =
        (false, false, false, false, false, false, false);
    for (param, _) in &points.columns {
        match param {
            SweepParam::Fclock => w_f = true,
            SweepParam::AlphaWrite => w_aw = true,
            SweepParam::AlphaRead => w_ar = true,
            SweepParam::AlphaBoth => {
                w_aw = true;
                w_ar = true;
            }
            SweepParam::ThroughputProc => w_tp = true,
            SweepParam::OpsPerElement => w_ops = true,
            SweepParam::ElementsIn => w_ein = true,
            SweepParam::Iterations => w_it = true,
        }
    }
    let uniform_ok = base.dataset.bytes_per_element >= 1
        && bw.is_finite()
        && bw > 0.0
        && t_soft.is_finite()
        && t_soft > 0.0
        && (w_ein || base.dataset.elements_in >= 1)
        && (w_aw || alpha_ok(base.comm.alpha_write))
        && (w_ar || alpha_ok(base.comm.alpha_read))
        && (w_ops || rate_ok(base.comp.ops_per_element))
        && (w_tp || rate_ok(base.comp.throughput_proc))
        && (w_f || rate_ok(base.comp.fclock.hz()))
        && (w_it || base.software.iterations >= 1);
    // The first index where any column's check fails is exactly the first
    // index the per-point conjunction would flag.
    let mut first_bad = if uniform_ok { usize::MAX } else { 0 };
    let note = |idx: Option<usize>, first_bad: &mut usize| {
        if let Some(i) = idx {
            *first_bad = (*first_bad).min(i);
        }
    };
    if w_ein {
        note(d.elements_in.iter().position(|&e| e < 1), &mut first_bad);
    }
    if w_aw {
        note(
            d.alpha_write.iter().position(|&a| !alpha_ok(a)),
            &mut first_bad,
        );
    }
    if w_ar {
        note(
            d.alpha_read.iter().position(|&a| !alpha_ok(a)),
            &mut first_bad,
        );
    }
    if w_ops {
        note(
            d.ops_per_element.iter().position(|&r| !rate_ok(r)),
            &mut first_bad,
        );
    }
    if w_tp {
        note(
            d.throughput_proc.iter().position(|&r| !rate_ok(r)),
            &mut first_bad,
        );
    }
    if w_f {
        note(
            d.fclock_hz.iter().position(|&r| !rate_ok(r)),
            &mut first_bad,
        );
    }
    if w_it {
        note(d.iterations.iter().position(|&it| it < 1), &mut first_bad);
    }
    if first_bad == usize::MAX {
        return None;
    }
    // Every point before `first_bad` passes all checks, hence validates.
    // Walk forward from the flag with the real validate() so the error (and
    // the winning index) is byte-identical to the scalar path's, reusing one
    // scratch input across the walk.
    let mut scratch = base.clone();
    for i in first_bad..points.len {
        points.materialize_into(i, &mut scratch);
        if let Err(e) = scratch.validate() {
            return Some((i, e));
        }
    }
    None
}

/// The per-point per-iteration time terms, in scalar expression order.
#[inline(always)]
fn point_terms(base: &RatInput, d: &Decoded, i: usize, bw: f64, bytes_out: u64) -> (f64, f64, f64) {
    let bytes_in = d.elements_in[i] * base.dataset.bytes_per_element;
    let t_write = bytes_in as f64 / (d.alpha_write[i] * bw);
    let t_read = bytes_out as f64 / (d.alpha_read[i] * bw);
    let t_comp =
        d.elements_in[i] as f64 * d.ops_per_element[i] / (d.fclock_hz[i] * d.throughput_proc[i]);
    (t_write, t_read, t_comp)
}

fn eval_speedups(base: &RatInput, d: &Decoded, plan: &BatchStagePlan) -> Vec<f64> {
    let bw = base.comm.ideal_bandwidth.bytes_per_sec();
    let bytes_out = base.dataset.elements_out * base.dataset.bytes_per_element;
    let t_soft = base.software.t_soft.seconds();
    // `iterations` is materialized for every plan; `elements_in` is not.
    let mut out = vec![0.0_f64; d.iterations.len()];
    // When no column writes a communication-stage input, the comm terms are
    // the same at every point: compute them once from the base (the decoded
    // columns hold exactly the broadcast base values, so this is
    // bit-identical to the per-point expressions) and drop two divides from
    // the inner loop. This is the batched face of the comm-stage skip.
    if !plan.comm_varies {
        let bytes_in = base.dataset.elements_in * base.dataset.bytes_per_element;
        let t_write = bytes_in as f64 / (base.comm.alpha_write * bw);
        let t_read = bytes_out as f64 / (base.comm.alpha_read * bw);
        let t_comm = t_write + t_read;
        // A comm-uniform plan means no column writes `elements_in` (it is a
        // comm-stage input), so the per-point factor is one hoisted scalar —
        // bit-identical to indexing the broadcast column.
        let elems = base.dataset.elements_in as f64;
        match base.buffering {
            Buffering::Single => {
                for (i, s) in out.iter_mut().enumerate() {
                    let t_comp =
                        elems * d.ops_per_element[i] / (d.fclock_hz[i] * d.throughput_proc[i]);
                    let t_rc = d.iterations[i] as f64 * (t_comm + t_comp);
                    *s = t_soft / t_rc;
                }
            }
            Buffering::Double => {
                for (i, s) in out.iter_mut().enumerate() {
                    let t_comp =
                        elems * d.ops_per_element[i] / (d.fclock_hz[i] * d.throughput_proc[i]);
                    let t_rc = d.iterations[i] as f64 * t_comm.max(t_comp);
                    *s = t_soft / t_rc;
                }
            }
        }
        return out;
    }
    // The buffering discipline is a base property (no SweepParam varies it),
    // so the Eq. (5) / Eq. (6) choice hoists out of the loop entirely.
    match base.buffering {
        Buffering::Single => {
            for (i, s) in out.iter_mut().enumerate() {
                let (t_write, t_read, t_comp) = point_terms(base, d, i, bw, bytes_out);
                let t_comm = t_write + t_read;
                let t_rc = d.iterations[i] as f64 * (t_comm + t_comp);
                *s = t_soft / t_rc;
            }
        }
        Buffering::Double => {
            for (i, s) in out.iter_mut().enumerate() {
                let (t_write, t_read, t_comp) = point_terms(base, d, i, bw, bytes_out);
                let t_comm = t_write + t_read;
                let t_rc = d.iterations[i] as f64 * t_comm.max(t_comp);
                *s = t_soft / t_rc;
            }
        }
    }
    out
}

/// Evaluate Eq. (7) for every point: `out[i]` is bit-identical to
/// `speedup_only(&points.materialize(i))`. On an invalid point, the
/// lowest-indexed point's exact scalar error is returned.
pub fn speedup_batch(points: &BatchPoints) -> Result<Vec<f64>, RatError> {
    speedup_batch_indexed(points).map_err(|(_, e)| e)
}

/// [`speedup_batch`], reporting *which* point failed — callers that map batch
/// indices back to their own domain (corner numbers, sample indices) need the
/// index to keep error attribution deterministic.
pub fn speedup_batch_indexed(points: &BatchPoints) -> Result<Vec<f64>, (usize, RatError)> {
    let plan = points.stage_plan();
    let d = decode(points, plan.comm_varies);
    if let Some(bad) = first_error(points, &d) {
        return Err(bad);
    }
    telemetry::add(Metric::BatchPoints, points.len as u64);
    stages::record_batch(&plan, points.len as u64);
    Ok(eval_speedups(points.base, &d, &plan))
}

/// Evaluate the **full worksheet** for every point: `out[i]` is bit-identical
/// to `Worksheet::new(points.materialize(i)).analyze()` — the prediction at
/// the point's buffering, the alternate-buffering prediction, and the
/// communication-bound ceiling. The numeric pipeline runs as column loops;
/// only the final `Report` assembly materializes per-point inputs.
pub fn solve_batch(points: &BatchPoints) -> Result<Vec<Report>, RatError> {
    // The report loop indexes every field through `point_terms`, so the
    // comm-side columns always materialize here.
    let d = decode(points, true);
    if let Some((_, e)) = first_error(points, &d) {
        return Err(e);
    }
    telemetry::add(Metric::BatchPoints, points.len as u64);
    stages::record_batch(&points.stage_plan(), points.len as u64);
    let base = points.base;
    let bw = base.comm.ideal_bandwidth.bytes_per_sec();
    let bytes_out = base.dataset.elements_out * base.dataset.bytes_per_element;
    let t_soft = base.software.t_soft.seconds();
    let mut reports = Vec::with_capacity(points.len);
    for i in 0..points.len {
        let (t_write, t_read, t_comp) = point_terms(base, &d, i, bw, bytes_out);
        let t_comm = t_write + t_read;
        let iters = d.iterations[i] as f64;
        let single = prediction(
            Buffering::Single,
            t_write,
            t_read,
            t_comm,
            t_comp,
            iters,
            t_soft,
        );
        let double = prediction(
            Buffering::Double,
            t_write,
            t_read,
            t_comm,
            t_comp,
            iters,
            t_soft,
        );
        let (throughput, alternate) = match base.buffering {
            Buffering::Single => (single, double),
            Buffering::Double => (double, single),
        };
        let max_speedup = t_soft / (iters * t_comm);
        reports.push(Report {
            speedup: throughput.speedup,
            throughput,
            alternate,
            max_speedup,
            input: points.materialize(i),
        });
    }
    Ok(reports)
}

/// Assemble one [`ThroughputPrediction`] from the shared per-iteration terms,
/// in the exact expression order of `ThroughputPrediction::analyze`.
fn prediction(
    buffering: Buffering,
    t_write: f64,
    t_read: f64,
    t_comm: f64,
    t_comp: f64,
    iters: f64,
    t_soft: f64,
) -> ThroughputPrediction {
    let (t_rc, util_comp, util_comm) = match buffering {
        Buffering::Single => (
            iters * (t_comm + t_comp),
            t_comp / (t_comm + t_comp),
            t_comm / (t_comm + t_comp),
        ),
        Buffering::Double => (
            iters * t_comm.max(t_comp),
            t_comp / t_comm.max(t_comp),
            t_comm / t_comm.max(t_comp),
        ),
    };
    ThroughputPrediction {
        t_write: Seconds::new(t_write),
        t_read: Seconds::new(t_read),
        t_comm: Seconds::new(t_comm),
        t_comp: Seconds::new(t_comp),
        t_rc: Seconds::new(t_rc),
        speedup: t_soft / t_rc,
        util_comm,
        util_comp,
        buffering,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;
    use crate::solve::speedup_only;
    use crate::worksheet::Worksheet;

    const ALL_PARAMS: [SweepParam; 8] = [
        SweepParam::Fclock,
        SweepParam::AlphaWrite,
        SweepParam::AlphaRead,
        SweepParam::AlphaBoth,
        SweepParam::ThroughputProc,
        SweepParam::OpsPerElement,
        SweepParam::ElementsIn,
        SweepParam::Iterations,
    ];

    #[test]
    fn single_column_batches_match_scalar_bit_for_bit() {
        for buffering in [Buffering::Single, Buffering::Double] {
            let base = pdf1d_example().with_buffering(buffering);
            for param in ALL_PARAMS {
                let center = param.read(&base);
                let values: Vec<f64> = (0..97).map(|k| center * (0.5 + 0.02 * k as f64)).collect();
                let mut points = BatchPoints::new(&base, values.len());
                points.push_column(param, values);
                let batch = speedup_batch(&points).expect("all points valid");
                for (i, &got) in batch.iter().enumerate() {
                    let want = speedup_only(&points.materialize(i)).expect("scalar path agrees");
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{param:?}/{buffering:?} point {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn chained_alpha_columns_match_chained_scalar_applies() {
        let base = pdf1d_example();
        let n = 33;
        let mut points = BatchPoints::new(&base, n);
        points.push_column(
            SweepParam::AlphaWrite,
            (0..n).map(|k| 0.2 + 0.02 * k as f64).collect::<Vec<f64>>(),
        );
        points.push_column(
            SweepParam::AlphaBoth,
            (0..n).map(|k| 0.3 + 0.01 * k as f64).collect::<Vec<f64>>(),
        );
        let batch = speedup_batch(&points).expect("valid");
        for (i, &got) in batch.iter().enumerate() {
            let want = speedup_only(&points.materialize(i)).expect("valid");
            assert_eq!(got.to_bits(), want.to_bits(), "point {i}");
        }
    }

    #[test]
    fn lowest_indexed_invalid_point_wins_with_the_scalar_error() {
        let base = pdf1d_example();
        let mut points = BatchPoints::new(&base, 5);
        // Points 2 and 4 push alpha_write out of (0, 1].
        points.push_column(SweepParam::AlphaWrite, vec![0.5, 0.6, 1.5, 0.7, -1.0]);
        let (index, err) = speedup_batch_indexed(&points).expect_err("point 2 invalid");
        assert_eq!(index, 2);
        let scalar_err = speedup_only(&points.materialize(2)).expect_err("scalar rejects too");
        assert_eq!(err.to_string(), scalar_err.to_string());
    }

    #[test]
    fn solve_batch_matches_the_worksheet_pipeline() {
        for buffering in [Buffering::Single, Buffering::Double] {
            let base = pdf1d_example().with_buffering(buffering);
            let values = vec![75.0e6, 100.0e6, 150.0e6];
            let mut points = BatchPoints::new(&base, values.len());
            points.push_column(SweepParam::Fclock, values);
            let reports = solve_batch(&points).expect("valid");
            for (i, got) in reports.iter().enumerate() {
                let want = Worksheet::new(points.materialize(i))
                    .analyze()
                    .expect("worksheet agrees");
                assert_eq!(got, &want, "{buffering:?} point {i}");
            }
        }
    }

    #[test]
    fn empty_batch_is_legal() {
        let base = pdf1d_example();
        let points = BatchPoints::new(&base, 0);
        assert!(points.is_empty());
        assert_eq!(speedup_batch(&points).expect("empty ok"), Vec::<f64>::new());
        assert!(solve_batch(&points).expect("empty ok").is_empty());
    }

    #[test]
    fn stage_plan_marks_exactly_the_written_stages() {
        let base = pdf1d_example();
        let mut points = BatchPoints::new(&base, 3);
        points.push_column(SweepParam::Fclock, vec![75.0e6, 100.0e6, 150.0e6]);
        assert_eq!(
            points.stage_plan(),
            BatchStagePlan {
                comm_varies: false,
                comp_varies: true,
                overlap_varies: true,
                speedup_varies: true,
            }
        );
        let mut points = BatchPoints::new(&base, 2);
        points.push_column(SweepParam::AlphaRead, vec![0.5, 0.6]);
        let plan = points.stage_plan();
        assert!(plan.comm_varies && !plan.comp_varies && plan.overlap_varies);
        // elements_in feeds both sides of the model.
        let mut points = BatchPoints::new(&base, 2);
        points.push_column(SweepParam::ElementsIn, vec![256.0, 512.0]);
        let plan = points.stage_plan();
        assert!(plan.comm_varies && plan.comp_varies);
        // iterations alone leaves both per-iteration stages uniform.
        let mut points = BatchPoints::new(&base, 2);
        points.push_column(SweepParam::Iterations, vec![100.0, 200.0]);
        let plan = points.stage_plan();
        assert!(!plan.comm_varies && !plan.comp_varies && plan.overlap_varies);
        // No columns at all: everything uniform.
        let plan = BatchPoints::new(&base, 4).stage_plan();
        assert!(!plan.overlap_varies && !plan.speedup_varies);
    }

    #[test]
    fn borrowed_columns_match_owned_columns() {
        let base = pdf1d_example();
        let values: Vec<f64> = (0..40).map(|k| 60.0e6 + 2.0e6 * k as f64).collect();
        let mut owned = BatchPoints::new(&base, values.len());
        owned.push_column(SweepParam::Fclock, values.clone());
        let mut borrowed = BatchPoints::new(&base, values.len());
        borrowed.push_column(SweepParam::Fclock, &values[..]);
        assert_eq!(
            speedup_batch(&owned).expect("valid"),
            speedup_batch(&borrowed).expect("valid")
        );
        assert_eq!(
            solve_batch(&owned).expect("valid"),
            solve_batch(&borrowed).expect("valid")
        );
    }

    #[test]
    fn materialize_into_matches_materialize() {
        let base = pdf1d_example();
        let mut points = BatchPoints::new(&base, 4);
        points.push_column(SweepParam::AlphaWrite, vec![0.3, 0.5, 0.7, 0.9]);
        points.push_column(SweepParam::AlphaBoth, vec![0.4, 0.5, 0.6, 0.7]);
        let mut scratch = base.clone();
        for i in 0..4 {
            points.materialize_into(i, &mut scratch);
            assert_eq!(scratch, points.materialize(i), "point {i}");
        }
    }

    #[test]
    fn invalid_base_constant_reports_point_zero() {
        let mut base = pdf1d_example();
        base.dataset.bytes_per_element = 0;
        let mut points = BatchPoints::new(&base, 3);
        points.push_column(SweepParam::Fclock, vec![1.0e8; 3]);
        let (index, err) = speedup_batch_indexed(&points).expect_err("base invalid");
        assert_eq!(index, 0);
        assert!(err.to_string().contains("bytes_per_element"), "{err}");
    }
}
