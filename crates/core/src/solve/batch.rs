//! Batched structure-of-arrays evaluation of the analytic pipeline.
//!
//! Every hot analysis — a dense sweep, a Monte-Carlo uncertainty run, corner
//! enumeration — evaluates Eqs. (1)–(11) at thousands of design points that
//! differ from a shared base input in only a few scalar parameters. The
//! scalar fast path ([`crate::solve::speedup_only`]) already strips the
//! per-point cost to a validate + a handful of float ops, but it still pays
//! per-point call overhead and gives the compiler a single point at a time.
//! [`BatchPoints`] stores the *varied* parameters as columns
//! (structure-of-arrays) over one base [`RatInput`], and [`speedup_batch`] /
//! [`solve_batch`] evaluate all points in tight loops over those columns.
//!
//! ## Bit-identity contract
//!
//! The kernels replicate the scalar expression chain operation for
//! operation — `bytes as f64 / (alpha * bw)`, `t_write + t_read`,
//! `elements as f64 * ops / (hz * tp)`, `iters as f64 * (t_comm + t_comp)`
//! (or `.max`), `t_soft / t_rc` — in the exact order the typed-quantity
//! operators execute them, so `speedup_batch(&points)[i]` is bit-identical
//! to `speedup_only(&points.materialize(i))` (pinned by the differential
//! suite in `tests/batch_differential.rs`). Rust never reassociates float
//! arithmetic, so a straight-line transcription is sufficient; what batching
//! buys is amortized validation, hoisted constants (the buffering `match`,
//! `bytes_per_element`, bandwidth, `t_soft`), and loops wide enough for the
//! explicit AVX2 lanes in `batch/simd.rs`, which perform the same IEEE-754
//! operations per lane and are therefore covered by the same contract (the
//! differential suite runs with SIMD forced on and off; `RAT_FORCE_SCALAR=1`
//! pins the scalar fallback at runtime).
//!
//! ## Error contract
//!
//! Invalid points error exactly as the scalar path does: the lowest-indexed
//! invalid point wins, and its error is produced by running the real
//! [`RatInput::validate`] on that materialized point, so messages and field
//! ordering are byte-identical to the per-point pipeline.

use std::borrow::Cow;

#[cfg(target_arch = "x86_64")]
mod simd;

use crate::error::RatError;
use crate::params::{Buffering, RatInput};
use crate::quantity::Seconds;
use crate::report::Report;
use crate::solve::stages::{self, BatchStagePlan};
use crate::sweep::SweepParam;
use crate::telemetry::{self, Metric};
use crate::throughput::ThroughputPrediction;

/// The historical fixed chunk size, kept as the canonical *seam unit*: the
/// differential suites pin bit-identity across `CHUNK`-aligned boundaries,
/// and single-threaded callers that want a fixed granularity still use it.
/// The batch drivers themselves now size chunks adaptively per engine — see
/// [`crate::engine::Engine::chunk_len`] — so a job always carries enough
/// points to amortize dispatch, whatever the point cost.
pub const CHUNK: usize = 1024;

/// A set of design points in structure-of-arrays form: one shared base input
/// plus a column of values per varied parameter.
///
/// Columns are applied **in push order**, with [`SweepParam::apply_into`]
/// semantics per point — order matters for [`SweepParam::AlphaBoth`], which
/// reads the current `alpha_write` as its scaling reference, exactly as
/// chained scalar applies would.
#[derive(Debug, Clone)]
pub struct BatchPoints<'a> {
    base: &'a RatInput,
    len: usize,
    columns: Vec<(SweepParam, Cow<'a, [f64]>)>,
}

impl<'a> BatchPoints<'a> {
    /// A batch of `len` points, all initially equal to `base`.
    pub fn new(base: &'a RatInput, len: usize) -> Self {
        BatchPoints {
            base,
            len,
            columns: Vec::new(),
        }
    }

    /// The shared base input.
    pub fn base(&self) -> &RatInput {
        self.base
    }

    /// Number of design points in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add a varied parameter: point `i` applies `values[i]`. Accepts an
    /// owned `Vec<f64>` or a borrowed `&[f64]` — chunked drivers hand the
    /// kernel a sub-slice of their value array directly, with no per-chunk
    /// copy. Panics if the column length does not match the batch length.
    pub fn push_column(
        &mut self,
        param: SweepParam,
        values: impl Into<Cow<'a, [f64]>>,
    ) -> &mut Self {
        let values = values.into();
        assert_eq!(
            values.len(),
            self.len,
            "column for {param:?} has {} values, batch has {} points",
            values.len(),
            self.len
        );
        self.columns.push((param, values));
        self
    }

    /// The columns in application order.
    pub fn columns(&self) -> &[(SweepParam, Cow<'a, [f64]>)] {
        &self.columns
    }

    /// Materialize point `i` as a standalone input: the base, cloned, with
    /// every column applied in order. This is the reference the kernels must
    /// match bit for bit.
    pub fn materialize(&self, i: usize) -> RatInput {
        let mut point = self.base.clone();
        for (param, values) in &self.columns {
            param.apply_into(&mut point, values[i]);
        }
        point
    }

    /// [`BatchPoints::materialize`] into a caller-owned scratch input:
    /// restores the scratch to the base point (reusing its allocations) and
    /// applies every column in order. Bit-identical to `materialize(i)` for
    /// every parameter field; only the `name` string is left as-is.
    pub fn materialize_into(&self, i: usize, scratch: &mut RatInput) {
        scratch.copy_params_from(self.base);
        for (param, values) in &self.columns {
            param.apply_into(scratch, values[i]);
        }
    }

    /// Which analytic stages vary across this batch, derived structurally
    /// from which fields the columns write (see
    /// [`stages::BatchStagePlan`]). A stage counts as varying when *any*
    /// column writes a field it reads, independent of the column's values.
    pub fn stage_plan(&self) -> BatchStagePlan {
        let mut comm = false;
        let mut comp = false;
        let mut iters = false;
        for (param, _) in &self.columns {
            match param {
                SweepParam::AlphaWrite | SweepParam::AlphaRead | SweepParam::AlphaBoth => {
                    comm = true;
                }
                SweepParam::Fclock | SweepParam::ThroughputProc | SweepParam::OpsPerElement => {
                    comp = true;
                }
                // elements_in feeds both the byte count and the op count.
                SweepParam::ElementsIn => {
                    comm = true;
                    comp = true;
                }
                SweepParam::Iterations => iters = true,
            }
        }
        let overlap = comm || comp || iters;
        BatchStagePlan {
            comm_varies: comm,
            comp_varies: comp,
            overlap_varies: overlap,
            // t_soft is a base constant, so speedup varies exactly when the
            // execution-time terms do.
            speedup_varies: overlap,
        }
    }
}

/// One decoded parameter field: either **uniform** across the batch (no
/// column writes it — the base value stands at every point) or **varied**
/// (a dense column of per-point values).
///
/// The split is what lets both kernels skip broadcast work entirely: the old
/// decoder materialized `vec![base; n]` for every untouched field, and at
/// SIMD speeds those allocations cost more than the math. A uniform field is
/// one scalar (one splat register on the AVX2 path); a varied field written
/// by direct-copy columns **borrows** the last such column with no copy.
enum ColF<'p> {
    Uniform(f64),
    Varied(Cow<'p, [f64]>),
}

impl ColF<'_> {
    /// The value at point `i` — bit-identical to indexing the broadcast
    /// column the old decoder built, since a uniform field held the same
    /// base value at every index.
    #[inline(always)]
    fn at(&self, i: usize) -> f64 {
        match self {
            ColF::Uniform(v) => *v,
            ColF::Varied(vals) => vals[i],
        }
    }

    /// The dense column when the field varies.
    fn varied(&self) -> Option<&[f64]> {
        match self {
            ColF::Uniform(_) => None,
            ColF::Varied(vals) => Some(vals),
        }
    }
}

/// [`ColF`] for the integer fields (`elements_in`, `iterations`), which
/// transform their column values (round, clamp to `>= 1`) and so always own
/// their storage when varied.
enum ColU {
    Uniform(u64),
    Varied(Vec<u64>),
}

impl ColU {
    #[inline(always)]
    fn at(&self, i: usize) -> u64 {
        match self {
            ColU::Uniform(v) => *v,
            ColU::Varied(vals) => vals[i],
        }
    }

    fn varied(&self) -> Option<&[u64]> {
        match self {
            ColU::Uniform(_) => None,
            ColU::Varied(vals) => Some(vals),
        }
    }
}

/// The mutable parameter fields, decoded to one [`ColF`]/[`ColU`] view each.
struct Decoded<'p> {
    n: usize,
    elements_in: ColU,
    alpha_write: ColF<'p>,
    alpha_read: ColF<'p>,
    ops_per_element: ColF<'p>,
    throughput_proc: ColF<'p>,
    fclock_hz: ColF<'p>,
    iterations: ColU,
}

/// Decode the columns: a field is `Varied` exactly when some column writes
/// it, and then holds the fully-applied per-point values.
fn decode<'p>(points: &'p BatchPoints<'_>) -> Decoded<'p> {
    let base = points.base;
    let n = points.len;
    let last_direct = |want: SweepParam| -> Option<&'p [f64]> {
        points
            .columns
            .iter()
            .rev()
            .find(|(p, _)| *p == want)
            .map(|(_, c)| &c[..])
    };
    // A direct-copy column overwrites its field at every point, so the last
    // one *is* the decoded field, borrowed with no copy.
    let direct = |want: SweepParam, base_val: f64| -> ColF<'p> {
        match last_direct(want) {
            Some(col) => ColF::Varied(Cow::Borrowed(col)),
            None => ColF::Uniform(base_val),
        }
    };
    let fclock_hz = direct(SweepParam::Fclock, base.comp.fclock.hz());
    let ops_per_element = direct(SweepParam::OpsPerElement, base.comp.ops_per_element);
    let throughput_proc = direct(SweepParam::ThroughputProc, base.comp.throughput_proc);
    // `AlphaBoth` chains on the *current* per-point alphas (same semantics
    // as apply_into), so its presence forces a sequential replay of the
    // alpha-writing columns; otherwise the alphas are direct like the comp
    // fields.
    let chained = points
        .columns
        .iter()
        .any(|(p, _)| *p == SweepParam::AlphaBoth);
    let (alpha_write, alpha_read) = if chained {
        let mut aw = vec![base.comm.alpha_write; n];
        let mut ar = vec![base.comm.alpha_read; n];
        for (param, col) in &points.columns {
            let col: &[f64] = col;
            match param {
                SweepParam::AlphaWrite => aw.copy_from_slice(col),
                SweepParam::AlphaRead => ar.copy_from_slice(col),
                SweepParam::AlphaBoth => {
                    for (i, &v) in col.iter().enumerate() {
                        let factor = v / aw[i];
                        aw[i] = v;
                        ar[i] *= factor;
                    }
                }
                _ => {}
            }
        }
        (ColF::Varied(Cow::Owned(aw)), ColF::Varied(Cow::Owned(ar)))
    } else {
        (
            direct(SweepParam::AlphaWrite, base.comm.alpha_write),
            direct(SweepParam::AlphaRead, base.comm.alpha_read),
        )
    };
    let decode_u64 = |want: SweepParam, base_val: u64| -> ColU {
        let written = points.columns.iter().any(|(p, _)| *p == want);
        if !written {
            return ColU::Uniform(base_val);
        }
        let mut vals = vec![base_val; n];
        for (param, col) in &points.columns {
            if *param == want {
                for (dst, &v) in vals.iter_mut().zip(&col[..]) {
                    *dst = v.round().max(1.0) as u64;
                }
            }
        }
        ColU::Varied(vals)
    };
    let elements_in = decode_u64(SweepParam::ElementsIn, base.dataset.elements_in);
    let iterations = decode_u64(SweepParam::Iterations, base.software.iterations);
    Decoded {
        n,
        elements_in,
        alpha_write,
        alpha_read,
        ops_per_element,
        throughput_proc,
        fclock_hz,
        iterations,
    }
}

/// Validity-scan block width. The inner pass over a block accumulates a
/// single `bad` flag branchlessly, which the autovectorizer turns into wide
/// compares; only a flagged block pays the exact index scan. 64 points keeps
/// the re-scan negligible while staying several vectors wide.
const SCAN_BLOCK: usize = 64;

/// The lowest index in `vals` where `ok` fails, block-wise: branch-free
/// accumulation per block, exact scan only inside the first bad block.
/// Equivalent to `vals.iter().position(|&v| !ok(v))`.
#[inline]
fn first_invalid<T: Copy>(vals: &[T], ok: impl Fn(T) -> bool) -> Option<usize> {
    for (b, block) in vals.chunks(SCAN_BLOCK).enumerate() {
        let mut any_bad = false;
        for &v in block {
            any_bad |= !ok(v);
        }
        if any_bad {
            for (j, &v) in block.iter().enumerate() {
                if !ok(v) {
                    return Some(b * SCAN_BLOCK + j);
                }
            }
        }
    }
    None
}

/// [`first_invalid`] for a rate column (`is_finite & > 0`), routed through
/// the AVX2 scan when the vector kernels are enabled — validation is on the
/// same hot path as the kernel itself, and the predicate is four ordered
/// compares per vector there.
fn first_invalid_rate(vals: &[f64]) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_enabled() {
        // SAFETY: avx2_enabled() checked the feature at runtime.
        return unsafe { simd::first_invalid_rate(vals) };
    }
    first_invalid(vals, |r| r.is_finite() & (r > 0.0))
}

/// [`first_invalid`] for an alpha column (`is_finite & > 0 & <= 1`), with
/// the same AVX2 routing as [`first_invalid_rate`].
fn first_invalid_alpha(vals: &[f64]) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_enabled() {
        // SAFETY: avx2_enabled() checked the feature at runtime.
        return unsafe { simd::first_invalid_alpha(vals) };
    }
    first_invalid(vals, |a| a.is_finite() & (a > 0.0) & (a <= 1.0))
}

/// Find the lowest-indexed point the scalar `validate()` would reject, and
/// return its exact error. The cheap predicates below are the *conjunction*
/// of every validate() check: uniform fields hold the base value at every
/// point and are checked once, and each varied field is scanned as a column
/// ([`first_invalid`]) — so a clean batch costs one pass over the varied
/// columns instead of a seven-way conjunction per point. Any flagged point
/// is re-validated through the real `RatInput::validate` so the error
/// message is byte-identical to the scalar path's.
fn first_error(points: &BatchPoints, d: &Decoded) -> Option<(usize, RatError)> {
    let base = points.base;
    let bw = base.comm.ideal_bandwidth.bytes_per_sec();
    let t_soft = base.software.t_soft.seconds();
    // Non-short-circuiting `&` so the column scans compile branch-free: the
    // autovectorizer turns the three compares into wide predicates, where
    // `&&` would force a branch per point and serialize the scan.
    let alpha_ok = |a: f64| a.is_finite() & (a > 0.0) & (a <= 1.0);
    let rate_ok = |r: f64| r.is_finite() & (r > 0.0);
    let uniform_f = |col: &ColF, ok: &dyn Fn(f64) -> bool| match col {
        ColF::Uniform(v) => ok(*v),
        ColF::Varied(_) => true, // scanned below
    };
    let uniform_ok = base.dataset.bytes_per_element >= 1
        && bw.is_finite()
        && bw > 0.0
        && t_soft.is_finite()
        && t_soft > 0.0
        && match &d.elements_in {
            ColU::Uniform(e) => *e >= 1,
            ColU::Varied(_) => true,
        }
        && uniform_f(&d.alpha_write, &alpha_ok)
        && uniform_f(&d.alpha_read, &alpha_ok)
        && uniform_f(&d.ops_per_element, &rate_ok)
        && uniform_f(&d.throughput_proc, &rate_ok)
        && uniform_f(&d.fclock_hz, &rate_ok)
        && match &d.iterations {
            ColU::Uniform(it) => *it >= 1,
            ColU::Varied(_) => true,
        };
    // The first index where any column's check fails is exactly the first
    // index the per-point conjunction would flag.
    let mut first_bad = if uniform_ok { usize::MAX } else { 0 };
    let mut note = |idx: Option<usize>| {
        if let Some(i) = idx {
            first_bad = first_bad.min(i);
        }
    };
    if let Some(e) = d.elements_in.varied() {
        note(first_invalid(e, |e| e >= 1));
    }
    if let Some(a) = d.alpha_write.varied() {
        note(first_invalid_alpha(a));
    }
    if let Some(a) = d.alpha_read.varied() {
        note(first_invalid_alpha(a));
    }
    if let Some(r) = d.ops_per_element.varied() {
        note(first_invalid_rate(r));
    }
    if let Some(r) = d.throughput_proc.varied() {
        note(first_invalid_rate(r));
    }
    if let Some(r) = d.fclock_hz.varied() {
        note(first_invalid_rate(r));
    }
    if let Some(it) = d.iterations.varied() {
        note(first_invalid(it, |it| it >= 1));
    }
    if first_bad == usize::MAX {
        return None;
    }
    // Every point before `first_bad` passes all checks, hence validates.
    // Walk forward from the flag with the real validate() so the error (and
    // the winning index) is byte-identical to the scalar path's, reusing one
    // scratch input across the walk.
    let mut scratch = base.clone();
    for i in first_bad..points.len {
        points.materialize_into(i, &mut scratch);
        if let Err(e) = scratch.validate() {
            return Some((i, e));
        }
    }
    None
}

/// The per-point per-iteration time terms, in scalar expression order.
#[inline(always)]
fn point_terms(base: &RatInput, d: &Decoded, i: usize, bw: f64, bytes_out: u64) -> (f64, f64, f64) {
    let bytes_in = d.elements_in.at(i) * base.dataset.bytes_per_element;
    let t_write = bytes_in as f64 / (d.alpha_write.at(i) * bw);
    let t_read = bytes_out as f64 / (d.alpha_read.at(i) * bw);
    let t_comp = d.elements_in.at(i) as f64 * d.ops_per_element.at(i)
        / (d.fclock_hz.at(i) * d.throughput_proc.at(i));
    (t_write, t_read, t_comp)
}

fn eval_speedups(base: &RatInput, d: &Decoded, plan: &BatchStagePlan) -> Vec<f64> {
    let mut out = vec![0.0_f64; d.n];
    // Runtime dispatch, mirroring the ChaCha8 bulk-draw pattern: the AVX2
    // kernel evaluates four lanes per iteration with per-lane IEEE-identical
    // operations (see `batch/simd.rs` for the bit-identity argument), the
    // scalar loop below is the always-compiled fallback and handles the
    // sub-vector tail. `RAT_FORCE_SCALAR=1` pins everything to the scalar
    // path.
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_enabled() && d.n >= 4 {
        // SAFETY: AVX2 support was verified at runtime by `avx2_enabled`.
        let done = unsafe { simd::eval_speedups_avx2(base, d, plan, &mut out) };
        eval_speedups_scalar(base, d, plan, done, &mut out);
        return out;
    }
    eval_speedups_scalar(base, d, plan, 0, &mut out);
    out
}

/// The scalar speedup kernel over points `lo..out.len()`, writing each
/// result at its own index. This is the reference the SIMD lanes must match
/// bit for bit, and the tail loop behind them.
fn eval_speedups_scalar(
    base: &RatInput,
    d: &Decoded,
    plan: &BatchStagePlan,
    lo: usize,
    out: &mut [f64],
) {
    let bw = base.comm.ideal_bandwidth.bytes_per_sec();
    let bytes_out = base.dataset.elements_out * base.dataset.bytes_per_element;
    let t_soft = base.software.t_soft.seconds();
    // When no column writes a communication-stage input, the comm terms are
    // the same at every point: compute them once from the base (a uniform
    // field holds exactly the base value, so this is bit-identical to the
    // per-point expressions) and drop two divides from the inner loop. This
    // is the batched face of the comm-stage skip.
    if !plan.comm_varies {
        let bytes_in = base.dataset.elements_in * base.dataset.bytes_per_element;
        let t_write = bytes_in as f64 / (base.comm.alpha_write * bw);
        let t_read = bytes_out as f64 / (base.comm.alpha_read * bw);
        let t_comm = t_write + t_read;
        // A comm-uniform plan means no column writes `elements_in` (it is a
        // comm-stage input), so the per-point factor is one hoisted scalar.
        let elems = base.dataset.elements_in as f64;
        match base.buffering {
            Buffering::Single => {
                for (i, s) in out.iter_mut().enumerate().skip(lo) {
                    let t_comp = elems * d.ops_per_element.at(i)
                        / (d.fclock_hz.at(i) * d.throughput_proc.at(i));
                    let t_rc = d.iterations.at(i) as f64 * (t_comm + t_comp);
                    *s = t_soft / t_rc;
                }
            }
            Buffering::Double => {
                for (i, s) in out.iter_mut().enumerate().skip(lo) {
                    let t_comp = elems * d.ops_per_element.at(i)
                        / (d.fclock_hz.at(i) * d.throughput_proc.at(i));
                    let t_rc = d.iterations.at(i) as f64 * t_comm.max(t_comp);
                    *s = t_soft / t_rc;
                }
            }
        }
        return;
    }
    // The buffering discipline is a base property (no SweepParam varies it),
    // so the Eq. (5) / Eq. (6) choice hoists out of the loop entirely.
    match base.buffering {
        Buffering::Single => {
            for (i, s) in out.iter_mut().enumerate().skip(lo) {
                let (t_write, t_read, t_comp) = point_terms(base, d, i, bw, bytes_out);
                let t_comm = t_write + t_read;
                let t_rc = d.iterations.at(i) as f64 * (t_comm + t_comp);
                *s = t_soft / t_rc;
            }
        }
        Buffering::Double => {
            for (i, s) in out.iter_mut().enumerate().skip(lo) {
                let (t_write, t_read, t_comp) = point_terms(base, d, i, bw, bytes_out);
                let t_comm = t_write + t_read;
                let t_rc = d.iterations.at(i) as f64 * t_comm.max(t_comp);
                *s = t_soft / t_rc;
            }
        }
    }
}

/// Evaluate Eq. (7) for every point: `out[i]` is bit-identical to
/// `speedup_only(&points.materialize(i))`. On an invalid point, the
/// lowest-indexed point's exact scalar error is returned.
pub fn speedup_batch(points: &BatchPoints) -> Result<Vec<f64>, RatError> {
    speedup_batch_indexed(points).map_err(|(_, e)| e)
}

/// [`speedup_batch`], reporting *which* point failed — callers that map batch
/// indices back to their own domain (corner numbers, sample indices) need the
/// index to keep error attribution deterministic.
pub fn speedup_batch_indexed(points: &BatchPoints) -> Result<Vec<f64>, (usize, RatError)> {
    let plan = points.stage_plan();
    let d = decode(points);
    if let Some(bad) = first_error(points, &d) {
        return Err(bad);
    }
    telemetry::add(Metric::BatchPoints, points.len as u64);
    stages::record_batch(&plan, points.len as u64);
    Ok(eval_speedups(points.base, &d, &plan))
}

/// Evaluate the **full worksheet** for every point: `out[i]` is bit-identical
/// to `Worksheet::new(points.materialize(i)).analyze()` — the prediction at
/// the point's buffering, the alternate-buffering prediction, and the
/// communication-bound ceiling. The numeric pipeline runs as column loops;
/// only the final `Report` assembly materializes per-point inputs.
pub fn solve_batch(points: &BatchPoints) -> Result<Vec<Report>, RatError> {
    let d = decode(points);
    if let Some((_, e)) = first_error(points, &d) {
        return Err(e);
    }
    telemetry::add(Metric::BatchPoints, points.len as u64);
    stages::record_batch(&points.stage_plan(), points.len as u64);
    let base = points.base;
    let bw = base.comm.ideal_bandwidth.bytes_per_sec();
    let bytes_out = base.dataset.elements_out * base.dataset.bytes_per_element;
    let t_soft = base.software.t_soft.seconds();
    let mut reports = Vec::with_capacity(points.len);
    for i in 0..points.len {
        let (t_write, t_read, t_comp) = point_terms(base, &d, i, bw, bytes_out);
        let t_comm = t_write + t_read;
        let iters = d.iterations.at(i) as f64;
        let single = prediction(
            Buffering::Single,
            t_write,
            t_read,
            t_comm,
            t_comp,
            iters,
            t_soft,
        );
        let double = prediction(
            Buffering::Double,
            t_write,
            t_read,
            t_comm,
            t_comp,
            iters,
            t_soft,
        );
        let (throughput, alternate) = match base.buffering {
            Buffering::Single => (single, double),
            Buffering::Double => (double, single),
        };
        let max_speedup = t_soft / (iters * t_comm);
        reports.push(Report {
            speedup: throughput.speedup,
            throughput,
            alternate,
            max_speedup,
            input: points.materialize(i),
        });
    }
    Ok(reports)
}

/// Assemble one [`ThroughputPrediction`] from the shared per-iteration terms,
/// in the exact expression order of `ThroughputPrediction::analyze`.
fn prediction(
    buffering: Buffering,
    t_write: f64,
    t_read: f64,
    t_comm: f64,
    t_comp: f64,
    iters: f64,
    t_soft: f64,
) -> ThroughputPrediction {
    let (t_rc, util_comp, util_comm) = match buffering {
        Buffering::Single => (
            iters * (t_comm + t_comp),
            t_comp / (t_comm + t_comp),
            t_comm / (t_comm + t_comp),
        ),
        Buffering::Double => (
            iters * t_comm.max(t_comp),
            t_comp / t_comm.max(t_comp),
            t_comm / t_comm.max(t_comp),
        ),
    };
    ThroughputPrediction {
        t_write: Seconds::new(t_write),
        t_read: Seconds::new(t_read),
        t_comm: Seconds::new(t_comm),
        t_comp: Seconds::new(t_comp),
        t_rc: Seconds::new(t_rc),
        speedup: t_soft / t_rc,
        util_comm,
        util_comp,
        buffering,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;
    use crate::solve::speedup_only;
    use crate::worksheet::Worksheet;

    const ALL_PARAMS: [SweepParam; 8] = [
        SweepParam::Fclock,
        SweepParam::AlphaWrite,
        SweepParam::AlphaRead,
        SweepParam::AlphaBoth,
        SweepParam::ThroughputProc,
        SweepParam::OpsPerElement,
        SweepParam::ElementsIn,
        SweepParam::Iterations,
    ];

    #[test]
    fn single_column_batches_match_scalar_bit_for_bit() {
        for buffering in [Buffering::Single, Buffering::Double] {
            let base = pdf1d_example().with_buffering(buffering);
            for param in ALL_PARAMS {
                let center = param.read(&base);
                let values: Vec<f64> = (0..97).map(|k| center * (0.5 + 0.02 * k as f64)).collect();
                let mut points = BatchPoints::new(&base, values.len());
                points.push_column(param, values);
                let batch = speedup_batch(&points).expect("all points valid");
                for (i, &got) in batch.iter().enumerate() {
                    let want = speedup_only(&points.materialize(i)).expect("scalar path agrees");
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{param:?}/{buffering:?} point {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn chained_alpha_columns_match_chained_scalar_applies() {
        let base = pdf1d_example();
        let n = 33;
        let mut points = BatchPoints::new(&base, n);
        points.push_column(
            SweepParam::AlphaWrite,
            (0..n).map(|k| 0.2 + 0.02 * k as f64).collect::<Vec<f64>>(),
        );
        points.push_column(
            SweepParam::AlphaBoth,
            (0..n).map(|k| 0.3 + 0.01 * k as f64).collect::<Vec<f64>>(),
        );
        let batch = speedup_batch(&points).expect("valid");
        for (i, &got) in batch.iter().enumerate() {
            let want = speedup_only(&points.materialize(i)).expect("valid");
            assert_eq!(got.to_bits(), want.to_bits(), "point {i}");
        }
    }

    #[test]
    fn lowest_indexed_invalid_point_wins_with_the_scalar_error() {
        let base = pdf1d_example();
        let mut points = BatchPoints::new(&base, 5);
        // Points 2 and 4 push alpha_write out of (0, 1].
        points.push_column(SweepParam::AlphaWrite, vec![0.5, 0.6, 1.5, 0.7, -1.0]);
        let (index, err) = speedup_batch_indexed(&points).expect_err("point 2 invalid");
        assert_eq!(index, 2);
        let scalar_err = speedup_only(&points.materialize(2)).expect_err("scalar rejects too");
        assert_eq!(err.to_string(), scalar_err.to_string());
    }

    #[test]
    fn solve_batch_matches_the_worksheet_pipeline() {
        for buffering in [Buffering::Single, Buffering::Double] {
            let base = pdf1d_example().with_buffering(buffering);
            let values = vec![75.0e6, 100.0e6, 150.0e6];
            let mut points = BatchPoints::new(&base, values.len());
            points.push_column(SweepParam::Fclock, values);
            let reports = solve_batch(&points).expect("valid");
            for (i, got) in reports.iter().enumerate() {
                let want = Worksheet::new(points.materialize(i))
                    .analyze()
                    .expect("worksheet agrees");
                assert_eq!(got, &want, "{buffering:?} point {i}");
            }
        }
    }

    #[test]
    fn empty_batch_is_legal() {
        let base = pdf1d_example();
        let points = BatchPoints::new(&base, 0);
        assert!(points.is_empty());
        assert_eq!(speedup_batch(&points).expect("empty ok"), Vec::<f64>::new());
        assert!(solve_batch(&points).expect("empty ok").is_empty());
    }

    #[test]
    fn stage_plan_marks_exactly_the_written_stages() {
        let base = pdf1d_example();
        let mut points = BatchPoints::new(&base, 3);
        points.push_column(SweepParam::Fclock, vec![75.0e6, 100.0e6, 150.0e6]);
        assert_eq!(
            points.stage_plan(),
            BatchStagePlan {
                comm_varies: false,
                comp_varies: true,
                overlap_varies: true,
                speedup_varies: true,
            }
        );
        let mut points = BatchPoints::new(&base, 2);
        points.push_column(SweepParam::AlphaRead, vec![0.5, 0.6]);
        let plan = points.stage_plan();
        assert!(plan.comm_varies && !plan.comp_varies && plan.overlap_varies);
        // elements_in feeds both sides of the model.
        let mut points = BatchPoints::new(&base, 2);
        points.push_column(SweepParam::ElementsIn, vec![256.0, 512.0]);
        let plan = points.stage_plan();
        assert!(plan.comm_varies && plan.comp_varies);
        // iterations alone leaves both per-iteration stages uniform.
        let mut points = BatchPoints::new(&base, 2);
        points.push_column(SweepParam::Iterations, vec![100.0, 200.0]);
        let plan = points.stage_plan();
        assert!(!plan.comm_varies && !plan.comp_varies && plan.overlap_varies);
        // No columns at all: everything uniform.
        let plan = BatchPoints::new(&base, 4).stage_plan();
        assert!(!plan.overlap_varies && !plan.speedup_varies);
    }

    #[test]
    fn borrowed_columns_match_owned_columns() {
        let base = pdf1d_example();
        let values: Vec<f64> = (0..40).map(|k| 60.0e6 + 2.0e6 * k as f64).collect();
        let mut owned = BatchPoints::new(&base, values.len());
        owned.push_column(SweepParam::Fclock, values.clone());
        let mut borrowed = BatchPoints::new(&base, values.len());
        borrowed.push_column(SweepParam::Fclock, &values[..]);
        assert_eq!(
            speedup_batch(&owned).expect("valid"),
            speedup_batch(&borrowed).expect("valid")
        );
        assert_eq!(
            solve_batch(&owned).expect("valid"),
            solve_batch(&borrowed).expect("valid")
        );
    }

    #[test]
    fn materialize_into_matches_materialize() {
        let base = pdf1d_example();
        let mut points = BatchPoints::new(&base, 4);
        points.push_column(SweepParam::AlphaWrite, vec![0.3, 0.5, 0.7, 0.9]);
        points.push_column(SweepParam::AlphaBoth, vec![0.4, 0.5, 0.6, 0.7]);
        let mut scratch = base.clone();
        for i in 0..4 {
            points.materialize_into(i, &mut scratch);
            assert_eq!(scratch, points.materialize(i), "point {i}");
        }
    }

    #[test]
    fn invalid_base_constant_reports_point_zero() {
        let mut base = pdf1d_example();
        base.dataset.bytes_per_element = 0;
        let mut points = BatchPoints::new(&base, 3);
        points.push_column(SweepParam::Fclock, vec![1.0e8; 3]);
        let (index, err) = speedup_batch_indexed(&points).expect_err("base invalid");
        assert_eq!(index, 0);
        assert!(err.to_string().contains("bytes_per_element"), "{err}");
    }
}
