//! The memoized stage graph over the analytic chain.
//!
//! The RAT model is a chain of independent sub-models — communication time
//! (Eqs. 1–3), computation time (Eq. 4), overlap/buffering (Eqs. 5–6 and
//! 8–11), speedup and its ceiling (Eq. 7), and the resource test (§3.3) —
//! yet the monolithic pipeline recomputes the whole chain whenever *any*
//! input changes. A sweep over `fclock` re-derives the communication terms at
//! every point even though no parameter they read moved. This module splits
//! the chain into five **stages**, each memoized under a key built from
//! exactly the typed-quantity inputs that stage reads, so varying one axis
//! skips every invariant stage:
//!
//! | stage     | reads                                                       |
//! |-----------|-------------------------------------------------------------|
//! | `comm`    | `elements_in/out`, `bytes_per_element`, both alphas, bandwidth |
//! | `comp`    | `elements_in`, `ops_per_element`, `throughput_proc`, `fclock` |
//! | `overlap` | `t_comm`, `t_comp` (stage outputs), `iterations`            |
//! | `speedup` | `t_rc` terms, `t_comm`, `t_soft`, `iterations`              |
//! | `resource`| the device capacities and the design estimate               |
//!
//! ## Keying and invalidation
//!
//! Keys are **exact**: every `f64` a stage reads is stored by its raw bit
//! pattern (`f64::to_bits`), integers and enums verbatim. There is no lossy
//! digest, so a cache hit *is* an equality witness — the cached output was
//! produced from bit-identical inputs, and returning it cannot change any
//! result. Invalidation is therefore trivial: a changed input is a different
//! key, and stale entries are only ever *unused*, never wrong. Each map is
//! bounded ([`MAX_ENTRIES`]) and cleared wholesale when full — correctness
//! never depends on retention.
//!
//! ## Bit-identity
//!
//! On a miss, each stage computes through the **same expressions on the same
//! bit values** as the monolithic chain in [`crate::throughput`] /
//! [`crate::utilization`] / [`crate::solve`] — mostly by calling those very
//! functions — so the staged path is bit-identical to the monolithic path by
//! construction (and pinned by `tests/stage_differential.rs`).
//!
//! ## Counters
//!
//! Every lookup records a hit or a miss twice: into this thread's session
//! counters ([`session_counters`], always on — `rat watch` reads deltas to
//! report which stages re-ran), and into [`crate::telemetry`] (when enabled —
//! surfaced by `--metrics` and the serve `GET /metrics` endpoint). Batched
//! kernels do not probe the per-point maps at all; they derive their counts
//! structurally from which columns vary (see [`BatchStagePlan`]) and record
//! them with [`record_batch`].

use std::cell::RefCell;
use std::collections::HashMap;

use crate::params::RatInput;
use crate::quantity::Seconds;
use crate::resources::{FpgaDevice, ResourceEstimate, ResourceReport};
use crate::telemetry::{self, Metric};
use crate::throughput;
use crate::utilization;

/// Entries per stage map before the map is cleared wholesale. Bounds memory
/// without an eviction policy: exact keys mean a refill is always correct.
pub const MAX_ENTRIES: usize = 4096;

/// The five analytic stages, in dependency order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Communication time, Eqs. (1)–(3).
    Comm,
    /// Computation time, Eq. (4).
    Comp,
    /// Overlap/buffering: execution times (Eqs. 5–6) and utilizations
    /// (Eqs. 8–11) under both disciplines.
    Overlap,
    /// Speedup (Eq. 7) under both disciplines plus the communication-bound
    /// ceiling.
    Speedup,
    /// The resource test, §3.3.
    Resource,
}

impl Stage {
    /// Every stage, in dependency order.
    pub const ALL: [Stage; 5] = [
        Stage::Comm,
        Stage::Comp,
        Stage::Overlap,
        Stage::Speedup,
        Stage::Resource,
    ];

    /// Short stable name (used by `rat watch` status lines).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Comm => "comm",
            Stage::Comp => "comp",
            Stage::Overlap => "overlap",
            Stage::Speedup => "speedup",
            Stage::Resource => "resource",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Comm => 0,
            Stage::Comp => 1,
            Stage::Overlap => 2,
            Stage::Speedup => 3,
            Stage::Resource => 4,
        }
    }

    fn hit_metric(self) -> Metric {
        match self {
            Stage::Comm => Metric::StageCommHits,
            Stage::Comp => Metric::StageCompHits,
            Stage::Overlap => Metric::StageOverlapHits,
            Stage::Speedup => Metric::StageSpeedupHits,
            Stage::Resource => Metric::StageResourceHits,
        }
    }

    fn miss_metric(self) -> Metric {
        match self {
            Stage::Comm => Metric::StageCommMisses,
            Stage::Comp => Metric::StageCompMisses,
            Stage::Overlap => Metric::StageOverlapMisses,
            Stage::Speedup => Metric::StageSpeedupMisses,
            Stage::Resource => Metric::StageResourceMisses,
        }
    }
}

/// Per-stage hit/miss totals, indexed by [`Stage::ALL`] order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Cache hits per stage.
    pub hits: [u64; 5],
    /// Cache misses per stage.
    pub misses: [u64; 5],
}

impl StageCounters {
    /// Hits recorded for one stage.
    pub fn hits_for(&self, stage: Stage) -> u64 {
        self.hits[stage.index()]
    }

    /// Misses recorded for one stage.
    pub fn misses_for(&self, stage: Stage) -> u64 {
        self.misses[stage.index()]
    }

    /// Total hits across all stages.
    pub fn total_hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Total misses across all stages.
    pub fn total_misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// The counters accumulated since `earlier` (elementwise saturating
    /// difference — `earlier` should be a previous snapshot of the same
    /// counters).
    pub fn since(&self, earlier: &StageCounters) -> StageCounters {
        let mut d = StageCounters::default();
        for i in 0..5 {
            d.hits[i] = self.hits[i].saturating_sub(earlier.hits[i]);
            d.misses[i] = self.misses[i].saturating_sub(earlier.misses[i]);
        }
        d
    }

    fn add(&mut self, other: &StageCounters) {
        for i in 0..5 {
            self.hits[i] = self.hits[i].saturating_add(other.hits[i]);
            self.misses[i] = self.misses[i].saturating_add(other.misses[i]);
        }
    }
}

// ---------------------------------------------------------------------------
// Stage keys and outputs
// ---------------------------------------------------------------------------

/// Exact key over everything the communication stage reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CommKey {
    elements_in: u64,
    elements_out: u64,
    bytes_per_element: u64,
    alpha_write_bits: u64,
    alpha_read_bits: u64,
    bandwidth_bits: u64,
}

impl CommKey {
    fn of(input: &RatInput) -> Self {
        CommKey {
            elements_in: input.dataset.elements_in,
            elements_out: input.dataset.elements_out,
            bytes_per_element: input.dataset.bytes_per_element,
            alpha_write_bits: input.comm.alpha_write.to_bits(),
            alpha_read_bits: input.comm.alpha_read.to_bits(),
            bandwidth_bits: input.comm.ideal_bandwidth.bytes_per_sec().to_bits(),
        }
    }
}

/// The communication stage's outputs: Eqs. (2), (3), (1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommOut {
    /// Host→FPGA transfer time per iteration, Eq. (2).
    pub t_write: Seconds,
    /// FPGA→host transfer time per iteration, Eq. (3).
    pub t_read: Seconds,
    /// Total communication time per iteration, Eq. (1).
    pub t_comm: Seconds,
}

/// Exact key over everything the computation stage reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CompKey {
    elements_in: u64,
    ops_per_element_bits: u64,
    throughput_proc_bits: u64,
    fclock_hz_bits: u64,
}

impl CompKey {
    fn of(input: &RatInput) -> Self {
        CompKey {
            elements_in: input.dataset.elements_in,
            ops_per_element_bits: input.comp.ops_per_element.to_bits(),
            throughput_proc_bits: input.comp.throughput_proc.to_bits(),
            fclock_hz_bits: input.comp.fclock.hz().to_bits(),
        }
    }
}

/// Exact key over everything the overlap/buffering stage reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OverlapKey {
    t_comm_bits: u64,
    t_comp_bits: u64,
    iterations: u64,
}

/// The overlap stage's outputs: both buffering disciplines at once, since
/// they read the same inputs and the worksheet reports both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapOut {
    /// Single-buffered execution time, Eq. (5).
    pub t_rc_single: Seconds,
    /// Double-buffered execution time, Eq. (6).
    pub t_rc_double: Seconds,
    /// Single-buffered computation utilization, Eq. (8).
    pub util_comp_single: f64,
    /// Single-buffered communication utilization, Eq. (9).
    pub util_comm_single: f64,
    /// Double-buffered computation utilization, Eq. (10).
    pub util_comp_double: f64,
    /// Double-buffered communication utilization, Eq. (11).
    pub util_comm_double: f64,
}

/// Exact key over everything the speedup stage reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SpeedupKey {
    t_rc_single_bits: u64,
    t_rc_double_bits: u64,
    t_comm_bits: u64,
    t_soft_bits: u64,
    iterations: u64,
}

/// The speedup stage's outputs: Eq. (7) under both disciplines plus the
/// communication-bound ceiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupOut {
    /// Speedup under single buffering.
    pub speedup_single: f64,
    /// Speedup under double buffering.
    pub speedup_double: f64,
    /// The communication-bound ceiling, `t_soft / (N_iter * t_comm)`.
    pub max_speedup: f64,
}

/// Exact key over everything the resource stage reads: the full device
/// record and the design estimate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ResourceKey {
    name: String,
    dsp_name: String,
    dsp_blocks: u32,
    bram_blocks: u32,
    logic_cells: u64,
    logic_kind: crate::resources::LogicKind,
    native_mult_width: u32,
    dsp: u32,
    bram: u32,
    logic: u64,
}

impl ResourceKey {
    fn of(device: &FpgaDevice, estimate: ResourceEstimate) -> Self {
        ResourceKey {
            name: device.name.clone(),
            dsp_name: device.dsp_name.clone(),
            dsp_blocks: device.dsp_blocks,
            bram_blocks: device.bram_blocks,
            logic_cells: device.logic_cells,
            logic_kind: device.logic_kind,
            native_mult_width: device.native_mult_width,
            dsp: estimate.dsp,
            bram: estimate.bram,
            logic: estimate.logic,
        }
    }
}

// ---------------------------------------------------------------------------
// The per-thread session
// ---------------------------------------------------------------------------

#[derive(Default)]
struct StageSession {
    comm: HashMap<CommKey, CommOut>,
    comp: HashMap<CompKey, Seconds>,
    overlap: HashMap<OverlapKey, OverlapOut>,
    speedup: HashMap<SpeedupKey, SpeedupOut>,
    resource: HashMap<ResourceKey, ResourceReport>,
    counters: StageCounters,
}

thread_local! {
    /// Each thread memoizes independently: no locks on the hot path, and the
    /// engine's deterministic chunk→job mapping keeps outputs bit-identical
    /// at every thread count regardless of what each thread has cached.
    static SESSION: RefCell<StageSession> = RefCell::new(StageSession::default());
}

/// This thread's cumulative stage hit/miss counters. Always recorded (one
/// thread-local increment per lookup), independent of telemetry; `rat watch`
/// snapshots before/after a render to report which stages re-ran.
pub fn session_counters() -> StageCounters {
    SESSION.with(|s| s.borrow().counters)
}

/// Drop every cached entry on this thread (counters are kept). Mostly for
/// tests that need a cold cache.
pub fn clear_session_cache() {
    SESSION.with(|s| {
        let mut s = s.borrow_mut();
        s.comm.clear();
        s.comp.clear();
        s.overlap.clear();
        s.speedup.clear();
        s.resource.clear();
    });
}

// ---------------------------------------------------------------------------
// The stages
// ---------------------------------------------------------------------------

/// The communication stage: Eqs. (1)–(3), memoized on exactly the fields
/// they read. A miss computes through [`throughput::t_write`] /
/// [`throughput::t_read`] — the monolithic chain's own functions — so the
/// output is bit-identical to it by construction.
pub fn comm_stage(input: &RatInput) -> CommOut {
    let key = CommKey::of(input);
    SESSION.with(|s| {
        let cached = s.borrow().comm.get(&key).copied();
        if let Some(out) = cached {
            record_in(s, Stage::Comm, true);
            return out;
        }
        let t_write = throughput::t_write(input);
        let t_read = throughput::t_read(input);
        let out = CommOut {
            t_write,
            t_read,
            // Same expression as throughput::t_comm on the same bit values.
            t_comm: t_write + t_read,
        };
        let mut st = s.borrow_mut();
        if st.comm.len() >= MAX_ENTRIES {
            st.comm.clear();
        }
        st.comm.insert(key, out);
        drop(st);
        record_in(s, Stage::Comm, false);
        out
    })
}

/// The computation stage: Eq. (4), memoized. A miss is
/// [`throughput::t_comp`] verbatim.
pub fn comp_stage(input: &RatInput) -> Seconds {
    let key = CompKey::of(input);
    SESSION.with(|s| {
        let cached = s.borrow().comp.get(&key).copied();
        if let Some(out) = cached {
            record_in(s, Stage::Comp, true);
            return out;
        }
        let out = throughput::t_comp(input);
        let mut st = s.borrow_mut();
        if st.comp.len() >= MAX_ENTRIES {
            st.comp.clear();
        }
        st.comp.insert(key, out);
        drop(st);
        record_in(s, Stage::Comp, false);
        out
    })
}

/// The overlap/buffering stage: Eqs. (5)–(6) and (8)–(11) under both
/// disciplines, keyed on the upstream stage outputs plus `iterations`.
/// `t_comm`/`t_comp` must come from [`comm_stage`]/[`comp_stage`] on the
/// same input (the key *is* their bit patterns).
pub fn overlap_stage(input: &RatInput, t_comm: Seconds, t_comp: Seconds) -> OverlapOut {
    let key = OverlapKey {
        t_comm_bits: t_comm.seconds().to_bits(),
        t_comp_bits: t_comp.seconds().to_bits(),
        iterations: input.software.iterations,
    };
    SESSION.with(|s| {
        let cached = s.borrow().overlap.get(&key).copied();
        if let Some(out) = cached {
            record_in(s, Stage::Overlap, true);
            return out;
        }
        // Same expressions as throughput::t_rc_single / t_rc_double and the
        // utilization:: functions, on the same bit values.
        let iters = input.software.iterations as f64;
        let out = OverlapOut {
            t_rc_single: iters * (t_comm + t_comp),
            t_rc_double: iters * t_comm.max(t_comp),
            util_comp_single: utilization::util_comp_single(t_comm, t_comp),
            util_comm_single: utilization::util_comm_single(t_comm, t_comp),
            util_comp_double: utilization::util_comp_double(t_comm, t_comp),
            util_comm_double: utilization::util_comm_double(t_comm, t_comp),
        };
        let mut st = s.borrow_mut();
        if st.overlap.len() >= MAX_ENTRIES {
            st.overlap.clear();
        }
        st.overlap.insert(key, out);
        drop(st);
        record_in(s, Stage::Overlap, false);
        out
    })
}

/// The speedup stage: Eq. (7) under both disciplines plus the
/// communication-bound ceiling, keyed on the upstream time terms plus
/// `t_soft` and `iterations`.
pub fn speedup_stage(input: &RatInput, overlap: &OverlapOut, t_comm: Seconds) -> SpeedupOut {
    let key = SpeedupKey {
        t_rc_single_bits: overlap.t_rc_single.seconds().to_bits(),
        t_rc_double_bits: overlap.t_rc_double.seconds().to_bits(),
        t_comm_bits: t_comm.seconds().to_bits(),
        t_soft_bits: input.software.t_soft.seconds().to_bits(),
        iterations: input.software.iterations,
    };
    SESSION.with(|s| {
        let cached = s.borrow().speedup.get(&key).copied();
        if let Some(out) = cached {
            record_in(s, Stage::Speedup, true);
            return out;
        }
        // Same expressions as throughput::speedup and solve::max_speedup.
        let out = SpeedupOut {
            speedup_single: input.software.t_soft / overlap.t_rc_single,
            speedup_double: input.software.t_soft / overlap.t_rc_double,
            max_speedup: input.software.t_soft / (input.software.iterations as f64 * t_comm),
        };
        let mut st = s.borrow_mut();
        if st.speedup.len() >= MAX_ENTRIES {
            st.speedup.clear();
        }
        st.speedup.insert(key, out);
        drop(st);
        record_in(s, Stage::Speedup, false);
        out
    })
}

/// The communication-bound speedup ceiling through the stage graph —
/// bit-identical to [`crate::solve::max_speedup`]. Resolves the full chain
/// so repeated renders of the same input hit every stage.
pub fn ceiling(input: &RatInput) -> Result<f64, crate::error::RatError> {
    input.validate()?;
    let comm = comm_stage(input);
    let comp = comp_stage(input);
    let overlap = overlap_stage(input, comm.t_comm, comp);
    Ok(speedup_stage(input, &overlap, comm.t_comm).max_speedup)
}

/// The resource stage: §3.3's fit test, memoized on the full device record
/// plus the estimate. A miss is [`ResourceReport::analyze`] verbatim.
pub fn resource_report(device: &FpgaDevice, estimate: ResourceEstimate) -> ResourceReport {
    let key = ResourceKey::of(device, estimate);
    SESSION.with(|s| {
        let cached = s.borrow().resource.get(&key).cloned();
        if let Some(out) = cached {
            record_in(s, Stage::Resource, true);
            return out;
        }
        let out = ResourceReport::analyze(device.clone(), estimate);
        let mut st = s.borrow_mut();
        if st.resource.len() >= MAX_ENTRIES {
            st.resource.clear();
        }
        st.resource.insert(key, out.clone());
        drop(st);
        record_in(s, Stage::Resource, false);
        out
    })
}

/// `record`, but reusing an already-resolved thread-local handle (the stage
/// functions are inside `SESSION.with` when they record).
fn record_in(s: &RefCell<StageSession>, stage: Stage, hit: bool) {
    {
        let c = &mut s.borrow_mut().counters;
        let i = stage.index();
        if hit {
            c.hits[i] += 1;
        } else {
            c.misses[i] += 1;
        }
    }
    if telemetry::enabled() {
        if hit {
            telemetry::add(Metric::StageHits, 1);
            telemetry::add(stage.hit_metric(), 1);
        } else {
            telemetry::add(Metric::StageMisses, 1);
            telemetry::add(stage.miss_metric(), 1);
        }
    }
}

// ---------------------------------------------------------------------------
// Batched stage accounting
// ---------------------------------------------------------------------------

/// Which stages vary across a batch, derived **structurally** from which
/// columns the batch carries (a stage varies iff a column writes a field it
/// reads). The batch kernels never probe the per-point maps — a uniform
/// stage is computed once per chunk and every remaining point is a hit by
/// construction, which is what the counters report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStagePlan {
    /// Whether a column writes a communication-stage input.
    pub comm_varies: bool,
    /// Whether a column writes a computation-stage input.
    pub comp_varies: bool,
    /// Whether the overlap stage's inputs vary (either upstream stage, or
    /// `iterations`).
    pub overlap_varies: bool,
    /// Whether the speedup stage's inputs vary (follows `overlap`).
    pub speedup_varies: bool,
}

impl BatchStagePlan {
    /// The hit/miss counters a batch of `n` points contributes: a varying
    /// stage recomputes at every point (`n` misses); a uniform stage
    /// computes once and is reused for the rest (1 miss, `n-1` hits). An
    /// empty batch records nothing.
    pub fn counters(&self, n: u64) -> StageCounters {
        let mut c = StageCounters::default();
        if n == 0 {
            return c;
        }
        let per_stage = [
            (Stage::Comm, self.comm_varies),
            (Stage::Comp, self.comp_varies),
            (Stage::Overlap, self.overlap_varies),
            (Stage::Speedup, self.speedup_varies),
        ];
        for (stage, varies) in per_stage {
            let i = stage.index();
            if varies {
                c.misses[i] = n;
            } else {
                c.misses[i] = 1;
                c.hits[i] = n - 1;
            }
        }
        c
    }
}

/// Record one batch's structural stage counters into this thread's session
/// counters and (when enabled) telemetry.
pub fn record_batch(plan: &BatchStagePlan, n: u64) {
    let c = plan.counters(n);
    SESSION.with(|s| s.borrow_mut().counters.add(&c));
    if telemetry::enabled() {
        telemetry::add(Metric::StageHits, c.total_hits());
        telemetry::add(Metric::StageMisses, c.total_misses());
        for stage in [Stage::Comm, Stage::Comp, Stage::Overlap, Stage::Speedup] {
            let i = stage.index();
            if c.hits[i] > 0 {
                telemetry::add(stage.hit_metric(), c.hits[i]);
            }
            if c.misses[i] > 0 {
                telemetry::add(stage.miss_metric(), c.misses[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::pdf1d_example;
    use crate::quantity::Freq;
    use crate::resources::device;

    #[test]
    fn stage_outputs_match_the_monolithic_chain_bit_for_bit() {
        let input = pdf1d_example();
        let comm = comm_stage(&input);
        assert_eq!(comm.t_write, throughput::t_write(&input));
        assert_eq!(comm.t_read, throughput::t_read(&input));
        assert_eq!(comm.t_comm, throughput::t_comm(&input));
        let t_comp = comp_stage(&input);
        assert_eq!(t_comp, throughput::t_comp(&input));
        let overlap = overlap_stage(&input, comm.t_comm, t_comp);
        assert_eq!(overlap.t_rc_single, throughput::t_rc_single(&input));
        assert_eq!(overlap.t_rc_double, throughput::t_rc_double(&input));
        let sp = speedup_stage(&input, &overlap, comm.t_comm);
        assert_eq!(
            sp.speedup_single.to_bits(),
            (input.software.t_soft / throughput::t_rc_single(&input)).to_bits()
        );
        assert_eq!(
            sp.max_speedup.to_bits(),
            crate::solve::max_speedup(&input)
                .expect("valid input")
                .to_bits()
        );
    }

    #[test]
    fn repeated_lookups_hit_and_changed_inputs_miss() {
        let input = pdf1d_example();
        clear_session_cache();
        let before = session_counters();
        let first = comm_stage(&input);
        let second = comm_stage(&input);
        assert_eq!(first, second);
        let d = session_counters().since(&before);
        assert_eq!(d.misses_for(Stage::Comm), 1);
        assert_eq!(d.hits_for(Stage::Comm), 1);

        // Varying fclock does not touch the comm stage's key...
        let faster = input.with_fclock(Freq::from_mhz(200.0));
        let before = session_counters();
        let third = comm_stage(&faster);
        assert_eq!(first, third);
        assert_eq!(session_counters().since(&before).hits_for(Stage::Comm), 1);
        // ...but it does invalidate the comp stage.
        let before = session_counters();
        let _ = comp_stage(&input);
        let _ = comp_stage(&faster);
        let d = session_counters().since(&before);
        assert!(d.misses_for(Stage::Comp) >= 1, "{d:?}");
    }

    #[test]
    fn resource_stage_matches_and_memoizes() {
        let dev = device::virtex4_lx100();
        let est = ResourceEstimate {
            dsp: 8,
            bram: 36,
            logic: 6000,
        };
        clear_session_cache();
        let before = session_counters();
        let staged = resource_report(&dev, est);
        assert_eq!(staged, ResourceReport::analyze(dev.clone(), est));
        let again = resource_report(&dev, est);
        assert_eq!(staged, again);
        let d = session_counters().since(&before);
        assert_eq!(d.misses_for(Stage::Resource), 1);
        assert_eq!(d.hits_for(Stage::Resource), 1);
    }

    #[test]
    fn batch_plan_counter_arithmetic() {
        // A single-axis fclock sweep: comm uniform, everything downstream
        // varies.
        let plan = BatchStagePlan {
            comm_varies: false,
            comp_varies: true,
            overlap_varies: true,
            speedup_varies: true,
        };
        let c = plan.counters(3);
        assert_eq!(c.hits_for(Stage::Comm), 2);
        assert_eq!(c.misses_for(Stage::Comm), 1);
        assert_eq!(c.misses_for(Stage::Comp), 3);
        assert_eq!(c.misses_for(Stage::Overlap), 3);
        assert_eq!(c.misses_for(Stage::Speedup), 3);
        assert_eq!(c.total_hits(), 2);
        assert_eq!(c.total_misses(), 10);
        // Empty batches record nothing at all.
        assert_eq!(plan.counters(0), StageCounters::default());
        // A fully-uniform batch is one miss + n-1 hits per stage.
        let uniform = BatchStagePlan {
            comm_varies: false,
            comp_varies: false,
            overlap_varies: false,
            speedup_varies: false,
        };
        let c = uniform.counters(5);
        assert_eq!(c.total_misses(), 4);
        assert_eq!(c.total_hits(), 16);
    }

    #[test]
    fn record_batch_accumulates_session_counters() {
        let plan = BatchStagePlan {
            comm_varies: false,
            comp_varies: true,
            overlap_varies: true,
            speedup_varies: true,
        };
        let before = session_counters();
        record_batch(&plan, 3);
        let d = session_counters().since(&before);
        assert_eq!(d.total_hits(), 2);
        assert_eq!(d.total_misses(), 10);
    }

    #[test]
    fn bounded_maps_clear_and_refill() {
        clear_session_cache();
        let base = pdf1d_example();
        for k in 0..(MAX_ENTRIES + 10) {
            let input = base.with_fclock(Freq::from_hz(1.0e8 + k as f64));
            let _ = comp_stage(&input);
        }
        // The map stayed bounded and lookups still work.
        let probe = base.with_fclock(Freq::from_hz(1.0e8));
        assert_eq!(comp_stage(&probe), throughput::t_comp(&probe));
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["comm", "comp", "overlap", "speedup", "resource"]);
    }
}
