//! AVX2 lanes for the batch speedup kernel.
//!
//! Four design points evaluate per iteration as one `f64x4` vector each for
//! `t_comp`, `t_comm`, `t_rc`, and the final speedup. The kernel is selected
//! at runtime ([`crate::simd::avx2_enabled`]) exactly like the ChaCha8 bulk
//! path in `vendor/rand_chacha`; the scalar loop in `batch.rs` stays the
//! always-compiled fallback and evaluates the sub-vector tail.
//!
//! ## Bit-identity argument
//!
//! Every output must equal the scalar chain bit for bit, so the vector code
//! is a transliteration, not a re-derivation:
//!
//! - **Same operations, same order.** Each lane performs the identical
//!   IEEE-754 double-precision `mul`/`div`/`add` sequence as the scalar
//!   expression chain (`vmulpd`/`vdivpd`/`vaddpd` are per-lane exact by the
//!   standard). Nothing is reassociated and no reciprocal approximations are
//!   used.
//! - **No FMA contraction.** The intrinsics compile to exactly the named
//!   instructions; a separate `mul` then `add` can never fuse into one
//!   differently-rounded `vfmadd` the way optimizers may fuse scalar source.
//! - **Integer conversion parity.** `u64 → f64` happens lane-by-lane with
//!   the same `as f64` scalar conversion before the vector is formed, so
//!   rounding matches the scalar path by construction.
//! - **`max` semantics.** `f64::max` returns the non-NaN operand when one
//!   side is NaN, while `vmaxpd` returns its *second* operand; [`vmax`]
//!   rebuilds the scalar semantics exactly with a compare-and-blend. (A NaN
//!   can only arise here from `inf/inf` after extreme inputs overflow, but
//!   the kernel must not diverge even then.)

use super::{ColF, ColU, Decoded};
use crate::params::{Buffering, RatInput};
use crate::solve::stages::BatchStagePlan;
use std::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_and_pd, _mm256_blendv_pd, _mm256_cmp_pd, _mm256_div_pd,
    _mm256_loadu_pd, _mm256_max_pd, _mm256_movemask_pd, _mm256_mul_pd, _mm256_set1_pd,
    _mm256_setr_pd, _mm256_setzero_pd, _mm256_storeu_pd, _CMP_GT_OQ, _CMP_LE_OQ, _CMP_LT_OQ,
    _CMP_UNORD_Q,
};

/// A decoded `f64` field as vector lanes: a uniform field is one splat
/// register, a varied field loads four contiguous values per step. The
/// `Option` discriminant is loop-invariant, so the branch predicts (and
/// typically hoists) perfectly.
struct FLanes<'a> {
    splat: __m256d,
    values: Option<&'a [f64]>,
}

impl<'a> FLanes<'a> {
    #[target_feature(enable = "avx2")]
    unsafe fn new(col: &'a ColF<'_>) -> Self {
        match col {
            ColF::Uniform(v) => FLanes {
                splat: _mm256_set1_pd(*v),
                values: None,
            },
            ColF::Varied(vals) => FLanes {
                splat: _mm256_set1_pd(0.0),
                values: Some(vals),
            },
        }
    }

    /// Lanes `i..i+4`; caller guarantees `i + 4 <= len` for varied fields.
    #[inline(always)]
    unsafe fn load(&self, i: usize) -> __m256d {
        match self.values {
            Some(vals) => _mm256_loadu_pd(vals.as_ptr().add(i)),
            None => self.splat,
        }
    }
}

/// A decoded `u64` field pre-converted to `f64` lanes: uniform fields splat
/// the single scalar conversion, varied fields convert lane-by-lane with the
/// same `as f64` the scalar kernel applies.
struct ULanes<'a> {
    splat: __m256d,
    values: Option<&'a [u64]>,
}

impl<'a> ULanes<'a> {
    #[target_feature(enable = "avx2")]
    unsafe fn new(col: &'a ColU) -> Self {
        match col {
            ColU::Uniform(v) => ULanes {
                splat: _mm256_set1_pd(*v as f64),
                values: None,
            },
            ColU::Varied(vals) => ULanes {
                splat: _mm256_set1_pd(0.0),
                values: Some(vals),
            },
        }
    }

    #[inline(always)]
    unsafe fn load_f64(&self, i: usize) -> __m256d {
        match self.values {
            Some(v) => _mm256_setr_pd(
                v[i] as f64,
                v[i + 1] as f64,
                v[i + 2] as f64,
                v[i + 3] as f64,
            ),
            None => self.splat,
        }
    }
}

/// The validity scan behind `first_error`'s varied-column checks, four lanes
/// per compare. Equivalence with the scalar predicates is exact:
///
/// * `RATE` (`ALPHA = false`): scalar is `v.is_finite() & (v > 0.0)`, vector
///   is `(v > 0) & (v < +inf)` with ordered-quiet compares. A NaN lane fails
///   both ordered compares just as `is_finite` fails it; `+inf` fails
///   `v < +inf` just as `is_finite` does; every finite value agrees
///   trivially.
/// * `ALPHA` (`ALPHA = true`): scalar is `is_finite & (v > 0) & (v <= 1)`,
///   vector is `(v > 0) & (v <= 1)` — any non-finite value already fails one
///   of the ordered compares, so dropping the redundant finiteness test
///   changes nothing.
///
/// A flagged vector (or the tail) re-scans scalar so the *index* returned is
/// exactly the scalar scan's.
#[target_feature(enable = "avx2")]
unsafe fn first_invalid_range<const ALPHA: bool>(vals: &[f64]) -> Option<usize> {
    let zero = _mm256_setzero_pd();
    let hi = _mm256_set1_pd(if ALPHA { 1.0 } else { f64::INFINITY });
    let scalar_ok = |v: f64| {
        if ALPHA {
            v.is_finite() & (v > 0.0) & (v <= 1.0)
        } else {
            v.is_finite() & (v > 0.0)
        }
    };
    let n4 = vals.len() & !3;
    let mut i = 0usize;
    while i < n4 {
        let v = _mm256_loadu_pd(vals.as_ptr().add(i));
        let gt = _mm256_cmp_pd::<_CMP_GT_OQ>(v, zero);
        let in_range = if ALPHA {
            _mm256_cmp_pd::<_CMP_LE_OQ>(v, hi)
        } else {
            _mm256_cmp_pd::<_CMP_LT_OQ>(v, hi)
        };
        if _mm256_movemask_pd(_mm256_and_pd(gt, in_range)) != 0b1111 {
            return (i..i + 4).find(|&j| !scalar_ok(vals[j]));
        }
        i += 4;
    }
    (n4..vals.len()).find(|&j| !scalar_ok(vals[j]))
}

/// First index failing `is_finite & (v > 0)`, or `None` if the column is
/// clean. # Safety: AVX2 must be supported at runtime.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn first_invalid_rate(vals: &[f64]) -> Option<usize> {
    first_invalid_range::<false>(vals)
}

/// First index failing `is_finite & (v > 0) & (v <= 1)`, or `None`.
/// # Safety: AVX2 must be supported at runtime.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn first_invalid_alpha(vals: &[f64]) -> Option<usize> {
    first_invalid_range::<true>(vals)
}

/// `f64::max` semantics on four lanes: where `b` is NaN take `a`, otherwise
/// `vmaxpd` already agrees with the scalar result bit for bit (non-NaN lanes
/// with `a > b` give `a`, all other ordered lanes give `b`, and `a`-is-NaN
/// lanes give `b` — exactly `a.max(b)`).
#[inline(always)]
unsafe fn vmax(a: __m256d, b: __m256d) -> __m256d {
    let m = _mm256_max_pd(a, b);
    let b_nan = _mm256_cmp_pd::<_CMP_UNORD_Q>(b, b);
    _mm256_blendv_pd(m, a, b_nan)
}

/// Evaluate speedups for as many leading whole vectors as possible, writing
/// `out[i]` for `i < returned`, and return how many points were covered (a
/// multiple of 4). The caller finishes `returned..n` on the scalar kernel.
///
/// # Safety
/// AVX2 must be supported at runtime.
pub(super) unsafe fn eval_speedups_avx2(
    base: &RatInput,
    d: &Decoded,
    plan: &BatchStagePlan,
    out: &mut [f64],
) -> usize {
    match (plan.comm_varies, base.buffering) {
        (false, Buffering::Single) => kernel::<false, false>(base, d, out),
        (false, Buffering::Double) => kernel::<false, true>(base, d, out),
        (true, Buffering::Single) => kernel::<true, false>(base, d, out),
        (true, Buffering::Double) => kernel::<true, true>(base, d, out),
    }
}

#[target_feature(enable = "avx2")]
unsafe fn kernel<const COMM_VARIES: bool, const DOUBLE: bool>(
    base: &RatInput,
    d: &Decoded,
    out: &mut [f64],
) -> usize {
    let n = out.len();
    let n4 = n & !3;
    let bw = base.comm.ideal_bandwidth.bytes_per_sec();
    let bpe = base.dataset.bytes_per_element;
    let bytes_out = base.dataset.elements_out * bpe;
    let t_soft = base.software.t_soft.seconds();

    let ops = FLanes::new(&d.ops_per_element);
    let tp = FLanes::new(&d.throughput_proc);
    let hz = FLanes::new(&d.fclock_hz);
    let aw = FLanes::new(&d.alpha_write);
    let ar = FLanes::new(&d.alpha_read);
    let iters = ULanes::new(&d.iterations);
    let elems = ULanes::new(&d.elements_in);
    // Varied elements also feed `bytes_in = elements_in * bytes_per_element`
    // (a u64 multiply *before* the f64 conversion, as in the scalar chain).
    let elems_raw = d.elements_in.varied();

    let bw_v = _mm256_set1_pd(bw);
    let t_soft_v = _mm256_set1_pd(t_soft);
    let bytes_out_v = _mm256_set1_pd(bytes_out as f64);
    // The comm-uniform kernel hoists the whole comm term, in exactly the
    // scalar kernel's expressions; uniform-elements batches with varied
    // alphas hoist just the byte count.
    let bytes_in_u = base.dataset.elements_in * bpe;
    let t_write_u = bytes_in_u as f64 / (base.comm.alpha_write * bw);
    let t_read_u = bytes_out as f64 / (base.comm.alpha_read * bw);
    let t_comm_uv = _mm256_set1_pd(t_write_u + t_read_u);
    let bytes_in_uv = _mm256_set1_pd(bytes_in_u as f64);

    let mut i = 0;
    while i < n4 {
        let elems_f = elems.load_f64(i);
        let t_comm = if COMM_VARIES {
            let bytes_in = match elems_raw {
                Some(e) => _mm256_setr_pd(
                    (e[i] * bpe) as f64,
                    (e[i + 1] * bpe) as f64,
                    (e[i + 2] * bpe) as f64,
                    (e[i + 3] * bpe) as f64,
                ),
                None => bytes_in_uv,
            };
            let t_write = _mm256_div_pd(bytes_in, _mm256_mul_pd(aw.load(i), bw_v));
            let t_read = _mm256_div_pd(bytes_out_v, _mm256_mul_pd(ar.load(i), bw_v));
            _mm256_add_pd(t_write, t_read)
        } else {
            t_comm_uv
        };
        let t_comp = _mm256_div_pd(
            _mm256_mul_pd(elems_f, ops.load(i)),
            _mm256_mul_pd(hz.load(i), tp.load(i)),
        );
        let per_iter = if DOUBLE {
            vmax(t_comm, t_comp)
        } else {
            _mm256_add_pd(t_comm, t_comp)
        };
        let t_rc = _mm256_mul_pd(iters.load_f64(i), per_iter);
        let s = _mm256_div_pd(t_soft_v, t_rc);
        _mm256_storeu_pd(out.as_mut_ptr().add(i), s);
        i += 4;
    }
    n4
}

#[cfg(test)]
mod tests {
    use super::super::{decode, eval_speedups_scalar, BatchPoints};
    use crate::params::{pdf1d_example, Buffering};
    use crate::sweep::SweepParam;

    /// The AVX2 validity scans agree with the scalar predicates on every
    /// adversarial value, at every position (vector body and tail), for both
    /// predicate shapes.
    #[test]
    fn avx2_validity_scans_match_scalar_predicates() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let rate_ok = |v: f64| v.is_finite() & (v > 0.0);
        let alpha_ok = |v: f64| v.is_finite() & (v > 0.0) & (v <= 1.0);
        let bad_values = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            -1.0,
            1.0 + f64::EPSILON, // bad for alpha only
        ];
        for n in [1usize, 3, 4, 5, 8, 17, 64, 130] {
            for bad in bad_values {
                for at in [0, n / 2, n - 1] {
                    let mut vals = vec![0.5f64; n];
                    vals[at] = bad;
                    // SAFETY: feature checked above.
                    let (simd_rate, simd_alpha) = unsafe {
                        (
                            super::first_invalid_rate(&vals),
                            super::first_invalid_alpha(&vals),
                        )
                    };
                    assert_eq!(
                        simd_rate,
                        vals.iter().position(|&v| !rate_ok(v)),
                        "rate scan, n={n} bad={bad} at={at}"
                    );
                    assert_eq!(
                        simd_alpha,
                        vals.iter().position(|&v| !alpha_ok(v)),
                        "alpha scan, n={n} bad={bad} at={at}"
                    );
                }
            }
            // Clean, subnormal, and boundary-value columns return None/Some
            // exactly like the scalar predicates.
            let edge = vec![f64::MIN_POSITIVE / 2.0, 1.0, 0.25, f64::MAX];
            let take = edge.into_iter().cycle().take(n).collect::<Vec<_>>();
            let (simd_rate, simd_alpha) = unsafe {
                (
                    super::first_invalid_rate(&take),
                    super::first_invalid_alpha(&take),
                )
            };
            assert_eq!(simd_rate, take.iter().position(|&v| !rate_ok(v)));
            assert_eq!(simd_alpha, take.iter().position(|&v| !alpha_ok(v)));
        }
    }

    /// Environment-independent bit-identity: drive the AVX2 kernel and the
    /// scalar kernel directly (no runtime dispatch involved) over every
    /// plan/buffering combination, including awkward tails.
    #[test]
    fn avx2_kernel_matches_scalar_kernel_bit_for_bit() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        for buffering in [Buffering::Single, Buffering::Double] {
            let base = pdf1d_example().with_buffering(buffering);
            for params in [
                vec![SweepParam::Fclock],
                vec![SweepParam::AlphaWrite, SweepParam::ThroughputProc],
                vec![SweepParam::ElementsIn, SweepParam::Iterations],
                vec![SweepParam::AlphaBoth],
                vec![SweepParam::Iterations],
            ] {
                for n in [4usize, 5, 63, 64, 97, 256] {
                    let mut points = BatchPoints::new(&base, n);
                    for (which, &param) in params.iter().enumerate() {
                        let center = param.read(&base);
                        let values: Vec<f64> = (0..n)
                            .map(|k| center * (0.6 + 0.01 * (k + which) as f64))
                            .collect();
                        points.push_column(param, values);
                    }
                    let plan = points.stage_plan();
                    let d = decode(&points);
                    let mut scalar = vec![0.0_f64; n];
                    eval_speedups_scalar(&base, &d, &plan, 0, &mut scalar);
                    let mut vector = vec![0.0_f64; n];
                    // SAFETY: AVX2 presence checked above.
                    let done = unsafe { super::eval_speedups_avx2(&base, &d, &plan, &mut vector) };
                    eval_speedups_scalar(&base, &d, &plan, done, &mut vector);
                    assert_eq!(done, n & !3);
                    for i in 0..n {
                        assert_eq!(
                            vector[i].to_bits(),
                            scalar[i].to_bits(),
                            "{params:?}/{buffering:?} n={n} point {i}"
                        );
                    }
                }
            }
        }
    }

    /// The NaN-exact blend in [`super::vmax`]: overflow a Double-buffered
    /// point into `inf/inf = NaN` territory and require the vector and
    /// scalar kernels to agree bit for bit even there.
    #[test]
    fn vmax_matches_scalar_max_on_nan_lanes() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let mut base = pdf1d_example().with_buffering(Buffering::Double);
        // Blow up t_comp to infinity: enormous ops per element over a tiny
        // clock leaves t_comp = inf, and inf.max(finite) exercises the
        // second-operand-NaN... path once t_soft / inf collapses.
        base.comp.ops_per_element = f64::MAX;
        base.comp.throughput_proc = f64::MIN_POSITIVE;
        let n = 8;
        let mut points = BatchPoints::new(&base, n);
        points.push_column(
            SweepParam::Fclock,
            (0..n)
                .map(|k| 1e-300 * (k + 1) as f64)
                .collect::<Vec<f64>>(),
        );
        let plan = points.stage_plan();
        let d = decode(&points);
        let mut scalar = vec![0.0_f64; n];
        eval_speedups_scalar(&base, &d, &plan, 0, &mut scalar);
        let mut vector = vec![0.0_f64; n];
        // SAFETY: AVX2 presence checked above.
        let done = unsafe { super::eval_speedups_avx2(&base, &d, &plan, &mut vector) };
        eval_speedups_scalar(&base, &d, &plan, done, &mut vector);
        for i in 0..n {
            assert_eq!(vector[i].to_bits(), scalar[i].to_bits(), "point {i}");
        }
    }
}
