//! Typed physical quantities for the RAT equations.
//!
//! Every number in the paper's Table 1 carries a dimension — bytes, elements,
//! cycles, Hz, seconds, bytes/second — and every equation (1)–(11) is
//! dimensional arithmetic over them. This module makes those dimensions
//! first-class as zero-cost newtypes, with **only the dimensionally valid**
//! operator impls:
//!
//! - [`Bytes`] `/` [`Throughput`] `=` [`Seconds`] (Eqs. 2–3, transfer time)
//! - [`Bytes`] `/` [`Seconds`] `=` [`Throughput`] (measured bandwidth)
//! - [`Cycles`] `/` [`Freq`] `=` [`Seconds`] (Eq. 4, cycle time)
//! - [`Elements`] `*` [`Bytes`] `=` [`Bytes`] (bytes-per-element scaling)
//! - `f64 *` [`Throughput`] `=` [`Throughput`] (alpha derating)
//! - [`Seconds`] arithmetic (`+`, `-`, `* f64`, `/ f64`, `max`) for Eqs. 5–6
//! - [`Seconds`] `/` [`Seconds`] `= f64` (Eq. 7, speedup ratios)
//!
//! A cycles-vs-seconds or Mbps-vs-MB/s mix-up is therefore a **compile
//! error**, not a silently corrupted table.
//!
//! ## Unit conventions
//!
//! Internally each quantity stores one base unit: `Seconds` in seconds,
//! `Freq` in Hz, `Throughput` in bytes/second. Constructors and accessors
//! convert from/to the units the paper's tables print ([`Freq::from_mhz`],
//! [`Throughput::from_mbps`], [`Throughput::from_mbytes_per_sec`]).
//! Serialization writes the bare base-unit number (so existing worksheet
//! TOML files are unchanged); deserialization additionally accepts suffixed
//! strings such as `"133 MHz"`, `"1 Mbps"`, `"1000 MB/s"`, or `"0.578 s"`.
//!
//! The wrappers are `#[repr(transparent)]` over their primitive, so the
//! compiled arithmetic — and therefore every golden table — is bit-identical
//! to the untyped original.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Sub};
use std::str::FromStr;

use serde::{DeError, Deserialize, Serialize, Value};

/// Parse a number-with-optional-unit string: `"133 MHz"` → `(133.0, "MHz")`.
fn split_number_unit(s: &str) -> Result<(f64, &str), String> {
    let s = s.trim();
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '+' | '-' | 'e' | 'E' | '_')))
        .unwrap_or(s.len());
    let (num, unit) = s.split_at(end);
    let value: f64 = num
        .trim()
        .replace('_', "")
        .parse()
        .map_err(|_| format!("`{s}` has no leading number"))?;
    if !value.is_finite() {
        return Err(format!("`{s}` is not a finite number"));
    }
    Ok((value, unit.trim()))
}

/// Deserialize a float-valued quantity from a bare number or a suffixed
/// string, mapping the unit via `scale` (factor from that unit to the base
/// unit). Rejects non-finite values.
fn quantity_from_value(
    value: &Value,
    what: &str,
    scale: impl Fn(&str) -> Option<f64>,
) -> Result<f64, DeError> {
    let base = match value {
        Value::Float(f) => *f,
        Value::Int(i) => *i as f64,
        Value::Str(s) => {
            let (num, unit) = split_number_unit(s).map_err(DeError::custom)?;
            let factor = scale(unit)
                .ok_or_else(|| DeError::custom(format!("unknown {what} unit `{unit}` in `{s}`")))?;
            num * factor
        }
        other => return Err(DeError::expected(what, other)),
    };
    if !base.is_finite() {
        return Err(DeError::custom(format!(
            "{what} must be finite, got {base}"
        )));
    }
    Ok(base)
}

/// Deserialize an integer-valued quantity (bytes, elements, cycles) from an
/// integer, a whole float, or a suffixed string.
fn count_from_value(
    value: &Value,
    what: &str,
    scale: impl Fn(&str) -> Option<u64>,
) -> Result<u64, DeError> {
    match value {
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        Value::Int(i) => Err(DeError::custom(format!(
            "{what} cannot be negative, got {i}"
        ))),
        Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => Ok(*f as u64),
        Value::Float(f) => Err(DeError::custom(format!(
            "{what} must be a non-negative whole number, got {f}"
        ))),
        Value::Str(s) => {
            let (num, unit) = split_number_unit(s).map_err(DeError::custom)?;
            let factor = scale(unit)
                .ok_or_else(|| DeError::custom(format!("unknown {what} unit `{unit}` in `{s}`")))?;
            let scaled = num * factor as f64;
            if scaled < 0.0 || scaled.fract() != 0.0 || scaled > u64::MAX as f64 {
                return Err(DeError::custom(format!(
                    "{what} must be a non-negative whole number, got `{s}`"
                )));
            }
            Ok(scaled as u64)
        }
        other => Err(DeError::expected(what, other)),
    }
}

// ---------------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------------

/// A byte count on the communication channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// A byte count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// The raw count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The count as `f64`, for rate arithmetic.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B", self.0)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

/// `Bytes / Throughput = Seconds`: ideal transfer time of a block.
impl Div<Throughput> for Bytes {
    type Output = Seconds;
    fn div(self, rhs: Throughput) -> Seconds {
        Seconds(self.0 as f64 / rhs.0)
    }
}

/// `Bytes / Seconds = Throughput`: measured bandwidth of a timed transfer.
impl Div<Seconds> for Bytes {
    type Output = Throughput;
    fn div(self, rhs: Seconds) -> Throughput {
        Throughput(self.0 as f64 / rhs.0)
    }
}

// ---------------------------------------------------------------------------
// Elements
// ---------------------------------------------------------------------------

/// A count of the paper's §3.1 *elements* — the unit tying communication to
/// computation (an array value, an atom, a character).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Elements(u64);

impl Elements {
    /// An element count.
    pub const fn new(elements: u64) -> Self {
        Elements(elements)
    }

    /// The raw count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The count as `f64`, for rate arithmetic.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Elements {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} elements", self.0)
    }
}

/// `Elements * Bytes = Bytes`, reading the right-hand side as bytes **per
/// element** — the worksheet's `N_elements * N_bytes/element` product.
impl Mul<Bytes> for Elements {
    type Output = Bytes;
    fn mul(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 * rhs.0)
    }
}

// ---------------------------------------------------------------------------
// Cycles
// ---------------------------------------------------------------------------

/// A count of FPGA clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// A cycle count.
    pub const fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// The raw count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The count as `f64`, for time arithmetic.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

/// `Cycles / Freq = Seconds`: the time a cycle count takes at a clock.
impl Div<Freq> for Cycles {
    type Output = Seconds;
    fn div(self, rhs: Freq) -> Seconds {
        Seconds(self.0 as f64 / rhs.0)
    }
}

// ---------------------------------------------------------------------------
// Freq
// ---------------------------------------------------------------------------

/// A clock frequency, stored in Hz. The paper's tables print MHz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[repr(transparent)]
pub struct Freq(f64);

impl Freq {
    /// A frequency from Hz. Permissive by design (no range check): validation
    /// happens where a frequency is *used* — worksheet validation and the
    /// simulator's clock check both reject non-positive clocks with a field-
    /// named error.
    pub const fn from_hz(hz: f64) -> Self {
        Freq(hz)
    }

    /// A frequency from MHz — the unit of the paper's `f_clock` rows.
    pub fn from_mhz(mhz: f64) -> Self {
        Freq(mhz * 1e6)
    }

    /// The frequency in Hz.
    pub const fn hz(self) -> f64 {
        self.0
    }

    /// The frequency in MHz, for table rendering.
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.mhz(), f)?;
        write!(f, " MHz")
    }
}

/// Scale a frequency (e.g. `fclock * throughput_proc` = ops/second).
impl Mul<f64> for Freq {
    type Output = Freq;
    fn mul(self, rhs: f64) -> Freq {
        Freq(self.0 * rhs)
    }
}

/// Scale a frequency from the left.
impl Mul<Freq> for f64 {
    type Output = Freq;
    fn mul(self, rhs: Freq) -> Freq {
        Freq(self * rhs.0)
    }
}

impl MulAssign<f64> for Freq {
    fn mul_assign(&mut self, rhs: f64) {
        self.0 *= rhs;
    }
}

/// `count / Freq = Seconds`: how long `count` events take at this rate.
impl Div<Freq> for f64 {
    type Output = Seconds;
    fn div(self, rhs: Freq) -> Seconds {
        Seconds(self / rhs.0)
    }
}

/// `Freq / Freq = f64`: a dimensionless frequency ratio.
impl Div<Freq> for Freq {
    type Output = f64;
    fn div(self, rhs: Freq) -> f64 {
        self.0 / rhs.0
    }
}

/// `Freq * Seconds = f64`: the cycle (or event) count in a window.
impl Mul<Seconds> for Freq {
    type Output = f64;
    fn mul(self, rhs: Seconds) -> f64 {
        self.0 * rhs.0
    }
}

// ---------------------------------------------------------------------------
// Seconds
// ---------------------------------------------------------------------------

/// A duration in seconds — the unit of every `t_*` row in the paper.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[repr(transparent)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero seconds.
    pub const ZERO: Seconds = Seconds(0.0);

    /// A duration from seconds. Permissive by design (negative differences
    /// are meaningful, e.g. break-even "time saved"); worksheet validation
    /// rejects non-positive baselines where required.
    pub const fn new(secs: f64) -> Self {
        Seconds(secs)
    }

    /// The duration in seconds.
    pub const fn seconds(self) -> f64 {
        self.0
    }

    /// The larger of two durations (Eq. 6's overlap).
    pub fn max(self, other: Seconds) -> Seconds {
        Seconds(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Seconds) -> Seconds {
        Seconds(self.0.min(other.0))
    }

    /// Whether the duration is a finite number.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)?;
        write!(f, " s")
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

/// Scale a duration from the left (e.g. `N_iter * t_comm`).
impl Mul<Seconds> for f64 {
    type Output = Seconds;
    fn mul(self, rhs: Seconds) -> Seconds {
        Seconds(self * rhs.0)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    fn div(self, rhs: f64) -> Seconds {
        Seconds(self.0 / rhs)
    }
}

/// `Seconds / Seconds = f64`: a dimensionless time ratio (Eq. 7's speedup).
impl Div<Seconds> for Seconds {
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl std::iter::Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        Seconds(iter.map(|s| s.0).sum())
    }
}

// ---------------------------------------------------------------------------
// Throughput
// ---------------------------------------------------------------------------

/// A data rate, stored in bytes/second. The paper's Table 1 quotes MB/s;
/// interconnect datasheets often quote Mbps — the constructors make the
/// factor-of-8 difference explicit instead of silent.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[repr(transparent)]
pub struct Throughput(f64);

impl Throughput {
    /// A rate from bytes/second (the stored base unit).
    pub const fn from_bytes_per_sec(bytes_per_sec: f64) -> Self {
        Throughput(bytes_per_sec)
    }

    /// A rate from **megabytes** per second — the paper's `throughput_ideal`
    /// unit (Table 1 quotes 1000 MB/s for PCI-X).
    pub fn from_mbytes_per_sec(mbytes_per_sec: f64) -> Self {
        Throughput(mbytes_per_sec * 1e6)
    }

    /// A rate from **megabits** per second — the unit interconnect marketing
    /// quotes. `Throughput::from_mbps(8.0) == Throughput::from_mbytes_per_sec(1.0)`.
    pub fn from_mbps(mbps: f64) -> Self {
        Throughput(mbps * 1e6 / 8.0)
    }

    /// The rate in bytes/second.
    pub const fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// The rate in MB/s, for table rendering.
    pub fn mbytes_per_sec(self) -> f64 {
        self.0 / 1e6
    }

    /// The rate in Mbps.
    pub fn mbps(self) -> f64 {
        self.0 * 8.0 / 1e6
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.mbytes_per_sec(), f)?;
        write!(f, " MB/s")
    }
}

/// Derate a bandwidth by a sustained fraction (`alpha * throughput_ideal`).
impl Mul<Throughput> for f64 {
    type Output = Throughput;
    fn mul(self, rhs: Throughput) -> Throughput {
        Throughput(self * rhs.0)
    }
}

/// Derate a bandwidth from the right.
impl Mul<f64> for Throughput {
    type Output = Throughput;
    fn mul(self, rhs: f64) -> Throughput {
        Throughput(self.0 * rhs)
    }
}

/// `Throughput / Throughput = f64`: a dimensionless rate ratio (a measured
/// alpha).
impl Div<Throughput> for Throughput {
    type Output = f64;
    fn div(self, rhs: Throughput) -> f64 {
        self.0 / rhs.0
    }
}

// ---------------------------------------------------------------------------
// Serde (base-unit numbers out; numbers or suffixed strings in)
// ---------------------------------------------------------------------------

fn freq_unit(unit: &str) -> Option<f64> {
    match unit.to_ascii_lowercase().as_str() {
        "" | "hz" => Some(1.0),
        "khz" => Some(1e3),
        "mhz" => Some(1e6),
        "ghz" => Some(1e9),
        _ => None,
    }
}

fn seconds_unit(unit: &str) -> Option<f64> {
    match unit {
        "" | "s" | "sec" | "secs" | "seconds" => Some(1.0),
        "ms" => Some(1e-3),
        "us" | "\u{b5}s" => Some(1e-6),
        "ns" => Some(1e-9),
        _ => None,
    }
}

/// Bandwidth units are case-sensitive where it matters: `MB/s` is megabytes,
/// `Mbps` megabits — an 8x trap this table refuses to guess about.
fn throughput_unit(unit: &str) -> Option<f64> {
    match unit {
        "" | "B/s" => Some(1.0),
        "kB/s" | "KB/s" => Some(1e3),
        "MB/s" => Some(1e6),
        "GB/s" => Some(1e9),
        "bps" => Some(1.0 / 8.0),
        "kbps" | "Kbps" => Some(1e3 / 8.0),
        "Mbps" => Some(1e6 / 8.0),
        "Gbps" => Some(1e9 / 8.0),
        _ => None,
    }
}

fn bytes_unit(unit: &str) -> Option<u64> {
    match unit {
        "" | "B" => Some(1),
        "kB" | "KB" => Some(1_000),
        "MB" => Some(1_000_000),
        "KiB" => Some(1 << 10),
        "MiB" => Some(1 << 20),
        _ => None,
    }
}

fn plain_count_unit(unit: &str) -> Option<u64> {
    unit.is_empty().then_some(1)
}

impl Serialize for Freq {
    fn to_value(&self) -> Value {
        Value::Float(self.0)
    }
}

impl Deserialize for Freq {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        quantity_from_value(value, "frequency", freq_unit).map(Freq)
    }
}

impl Serialize for Seconds {
    fn to_value(&self) -> Value {
        Value::Float(self.0)
    }
}

impl Deserialize for Seconds {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        quantity_from_value(value, "duration", seconds_unit).map(Seconds)
    }
}

impl Serialize for Throughput {
    fn to_value(&self) -> Value {
        Value::Float(self.0)
    }
}

impl Deserialize for Throughput {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        quantity_from_value(value, "bandwidth", throughput_unit).map(Throughput)
    }
}

impl Serialize for Bytes {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for Bytes {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        count_from_value(value, "byte count", bytes_unit).map(Bytes)
    }
}

impl Serialize for Elements {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for Elements {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        count_from_value(value, "element count", plain_count_unit).map(Elements)
    }
}

impl Serialize for Cycles {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for Cycles {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        count_from_value(value, "cycle count", plain_count_unit).map(Cycles)
    }
}

// ---------------------------------------------------------------------------
// FromStr (CLI flag parsing)
// ---------------------------------------------------------------------------

macro_rules! impl_from_str {
    ($ty:ident, $what:expr, $unit:expr, $wrap:expr) => {
        impl FromStr for $ty {
            type Err = String;
            fn from_str(s: &str) -> Result<Self, String> {
                let (num, unit) = split_number_unit(s)?;
                let factor =
                    $unit(unit).ok_or_else(|| format!("unknown {} unit `{unit}`", $what))?;
                #[allow(clippy::redundant_closure_call)]
                Ok($wrap(num * factor))
            }
        }
    };
}

impl_from_str!(Freq, "frequency", freq_unit, Freq);
impl_from_str!(Seconds, "duration", seconds_unit, Seconds);
impl_from_str!(Throughput, "bandwidth", throughput_unit, Throughput);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensional_products_match_hand_arithmetic() {
        let bytes = Elements::new(512) * Bytes::new(4);
        assert_eq!(bytes, Bytes::new(2048));
        let bw = 0.37 * Throughput::from_bytes_per_sec(1.0e9);
        let t = bytes / bw;
        assert!((t.seconds() - 2048.0 / 0.37e9).abs() < 1e-18);
        let back = bytes / t;
        assert!((back.bytes_per_sec() - 0.37e9).abs() < 1e-3);
    }

    #[test]
    fn cycles_over_freq_is_seconds() {
        let t = Cycles::new(20_850) / Freq::from_mhz(150.0);
        assert!((t.seconds() - 1.39e-4).abs() < 1e-7);
    }

    #[test]
    fn mbps_is_an_eighth_of_mbytes() {
        let a = Throughput::from_mbps(8.0);
        let b = Throughput::from_mbytes_per_sec(1.0);
        assert_eq!(a, b);
        assert!((a.mbps() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_arithmetic_matches_floats() {
        let a = Seconds::new(5.56e-6);
        let b = Seconds::new(1.31e-4);
        assert_eq!((a + b).seconds(), 5.56e-6 + 1.31e-4);
        assert_eq!((400.0 * (a + b)).seconds(), 400.0 * (5.56e-6 + 1.31e-4));
        assert_eq!(a.max(b), b);
        assert_eq!(Seconds::new(0.578) / b, 0.578 / 1.31e-4);
    }

    #[test]
    fn suffixed_strings_deserialize() {
        let f = Freq::from_value(&Value::Str("133 MHz".into())).unwrap();
        assert_eq!(f, Freq::from_hz(133.0e6));
        let bw = Throughput::from_value(&Value::Str("1000 MB/s".into())).unwrap();
        assert_eq!(bw, Throughput::from_bytes_per_sec(1.0e9));
        let mbps = Throughput::from_value(&Value::Str("1 Mbps".into())).unwrap();
        assert_eq!(mbps, Throughput::from_bytes_per_sec(1e6 / 8.0));
        let t = Seconds::from_value(&Value::Str("0.578 s".into())).unwrap();
        assert_eq!(t, Seconds::new(0.578));
        let ms = Seconds::from_value(&Value::Str("2.5 ms".into())).unwrap();
        assert_eq!(ms, Seconds::new(2.5e-3));
        let b = Bytes::from_value(&Value::Str("2 KiB".into())).unwrap();
        assert_eq!(b, Bytes::new(2048));
    }

    #[test]
    fn bare_numbers_deserialize_in_base_units() {
        assert_eq!(
            Freq::from_value(&Value::Float(150.0e6)).unwrap(),
            Freq::from_mhz(150.0)
        );
        assert_eq!(
            Freq::from_value(&Value::Int(100)).unwrap(),
            Freq::from_hz(100.0)
        );
        assert_eq!(
            Seconds::from_value(&Value::Float(0.578)).unwrap(),
            Seconds::new(0.578)
        );
    }

    #[test]
    fn serialization_is_the_bare_base_unit() {
        assert_eq!(Freq::from_mhz(150.0).to_value(), Value::Float(150.0e6));
        assert_eq!(Seconds::new(0.578).to_value(), Value::Float(0.578));
        assert_eq!(
            Throughput::from_bytes_per_sec(1.0e9).to_value(),
            Value::Float(1.0e9)
        );
        assert_eq!(Bytes::new(2048).to_value(), Value::Int(2048));
    }

    #[test]
    fn unknown_units_and_nonfinite_values_rejected() {
        assert!(Freq::from_value(&Value::Str("133 parsecs".into())).is_err());
        assert!(Throughput::from_value(&Value::Str("1 MBps".into())).is_err());
        assert!(Freq::from_value(&Value::Float(f64::NAN)).is_err());
        assert!(Seconds::from_value(&Value::Float(f64::INFINITY)).is_err());
        assert!(Bytes::from_value(&Value::Int(-4)).is_err());
        assert!(Elements::from_value(&Value::Float(1.5)).is_err());
    }

    #[test]
    fn from_str_parses_cli_style_inputs() {
        assert_eq!("150 MHz".parse::<Freq>().unwrap(), Freq::from_mhz(150.0));
        assert_eq!("1.5e8".parse::<Freq>().unwrap(), Freq::from_hz(1.5e8));
        assert_eq!(
            "500 MB/s".parse::<Throughput>().unwrap(),
            Throughput::from_mbytes_per_sec(500.0)
        );
        assert!("fast".parse::<Freq>().is_err());
    }

    #[test]
    fn display_prints_table_units() {
        assert_eq!(Freq::from_mhz(150.0).to_string(), "150 MHz");
        assert_eq!(
            Throughput::from_mbytes_per_sec(1000.0).to_string(),
            "1000 MB/s"
        );
        assert_eq!(Seconds::new(0.578).to_string(), "0.578 s");
        assert_eq!(Bytes::new(2048).to_string(), "2048 B");
        assert_eq!(Cycles::new(7).to_string(), "7 cycles");
        assert_eq!(Elements::new(512).to_string(), "512 elements");
    }
}
